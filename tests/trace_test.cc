// Tests for the trace layer: types, store, aggregation, CSV and binary round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/aggregate.h"
#include "trace/binary_io.h"
#include "trace/csv.h"
#include "trace/trace_store.h"

namespace coldstart::trace {
namespace {

TEST(TypesTest, TriggerSynchronicity) {
  EXPECT_TRUE(IsSynchronous(Trigger::kApigSync));
  EXPECT_TRUE(IsSynchronous(Trigger::kWorkflowSync));
  EXPECT_TRUE(IsSynchronous(Trigger::kKafkaSync));
  EXPECT_FALSE(IsSynchronous(Trigger::kTimer));
  EXPECT_FALSE(IsSynchronous(Trigger::kObs));
  EXPECT_FALSE(IsSynchronous(Trigger::kLts));
}

TEST(TypesTest, TriggerGrouping) {
  EXPECT_EQ(GroupOf(Trigger::kApigSync), TriggerGroup::kApigS);
  EXPECT_EQ(GroupOf(Trigger::kObs), TriggerGroup::kObsA);
  EXPECT_EQ(GroupOf(Trigger::kTimer), TriggerGroup::kTimerA);
  EXPECT_EQ(GroupOf(Trigger::kWorkflowSync), TriggerGroup::kWorkflowS);
  EXPECT_EQ(GroupOf(Trigger::kCts), TriggerGroup::kOtherA);
  EXPECT_EQ(GroupOf(Trigger::kKafkaSync), TriggerGroup::kOtherS);
  EXPECT_EQ(GroupOf(Trigger::kUnknown), TriggerGroup::kUnknown);
}

TEST(TypesTest, PoolSizeClassBoundary) {
  // Small: at most 400 millicores AND at most 256 MB (§4.2).
  EXPECT_EQ(SizeClassOf(ResourceConfig::k300m128), PoolSizeClass::kSmall);
  EXPECT_EQ(SizeClassOf(ResourceConfig::k400m256), PoolSizeClass::kSmall);
  EXPECT_EQ(SizeClassOf(ResourceConfig::k600m512), PoolSizeClass::kLarge);
  EXPECT_EQ(SizeClassOf(ResourceConfig::k26000m32768), PoolSizeClass::kLarge);
}

TEST(TypesTest, ConfigGroups) {
  EXPECT_EQ(ConfigGroupOf(ResourceConfig::k300m128), ConfigGroup::k300m128);
  EXPECT_EQ(ConfigGroupOf(ResourceConfig::k2000m2048), ConfigGroup::kOther);
}

TEST(TypesTest, NamesAreStableAndDistinct) {
  EXPECT_STREQ(RuntimeName(Runtime::kPython3), "Python3");
  EXPECT_STREQ(TriggerName(Trigger::kObs), "OBS-A");
  EXPECT_EQ(RegionName(0), "R1");
  EXPECT_EQ(RegionName(4), "R5");
  EXPECT_STREQ(ResourceConfigName(ResourceConfig::k300m128), "300-128");
}

TEST(TypesTest, HashedIdIsStable) {
  EXPECT_EQ(HashedId(42), HashedId(42));
  EXPECT_NE(HashedId(42), HashedId(43));
  EXPECT_EQ(HashedId(1).size(), 16u);
}

FunctionRecord MakeFunction(FunctionId id, RegionId region,
                            Runtime rt = Runtime::kPython3,
                            Trigger trig = Trigger::kTimer,
                            ResourceConfig cfg = ResourceConfig::k300m128) {
  FunctionRecord f;
  f.function_id = id;
  f.user_id = id * 10;
  f.region = region;
  f.runtime = rt;
  f.primary_trigger = trig;
  f.trigger_mask = TriggerBit(trig);
  f.config = cfg;
  return f;
}

TEST(TraceStoreTest, SealSortsByTimestamp) {
  TraceStore store;
  store.AddFunction(MakeFunction(0, 0));
  RequestRecord r1, r2;
  r1.timestamp = 100;
  r2.timestamp = 50;
  store.AddRequest(r1);
  store.AddRequest(r2);
  store.Seal();
  EXPECT_EQ(store.requests()[0].timestamp, 50);
  EXPECT_EQ(store.requests()[1].timestamp, 100);
}

TEST(TraceStoreTest, FunctionIdsMustBeDense) {
  TraceStore store;
  store.AddFunction(MakeFunction(0, 0));
  store.AddFunction(MakeFunction(1, 1));
  EXPECT_EQ(store.functions().size(), 2u);
  EXPECT_DEATH(store.AddFunction(MakeFunction(5, 0)), "CHECK");
}

TraceStore MakeTinyStore() {
  TraceStore store;
  store.AddFunction(MakeFunction(0, 0, Runtime::kPython3, Trigger::kTimer));
  store.AddFunction(MakeFunction(1, 1, Runtime::kJava, Trigger::kApigSync,
                                 ResourceConfig::k1000m1024));
  RequestRecord r;
  r.timestamp = 30 * kSecond;
  r.request_id = 7;
  r.pod_id = 1;
  r.function_id = 0;
  r.user_id = 0;
  r.region = 0;
  r.cluster = 2;
  r.cpu_millicores = 250;
  r.execution_time_us = 50000;
  r.memory_kb = 2048;
  store.AddRequest(r);
  r.timestamp = 90 * kSecond;
  r.function_id = 1;
  r.region = 1;
  store.AddRequest(r);

  ColdStartRecord c;
  c.timestamp = 10 * kSecond;
  c.pod_id = 1;
  c.function_id = 0;
  c.region = 0;
  c.cluster = 2;
  c.pod_alloc_us = 1000;
  c.deploy_code_us = 2000;
  c.deploy_dep_us = 0;
  c.scheduling_us = 3000;
  c.cold_start_us = 6000;
  store.AddColdStart(c);

  PodLifetimeRecord p;
  p.pod_id = 1;
  p.function_id = 0;
  p.region = 0;
  p.cluster = 2;
  p.config = ResourceConfig::k300m128;
  p.cold_start_begin = 10 * kSecond;
  p.ready_time = 10 * kSecond + 6000;
  p.last_busy_end = 31 * kSecond;
  p.death_time = 91 * kSecond;
  p.cold_start_us = 6000;
  p.requests_served = 1;
  store.AddPodLifetime(p);

  store.set_horizon(2 * kMinute);
  store.Seal();
  return store;
}

TEST(AggregateTest, RequestCountSeries) {
  const TraceStore store = MakeTinyStore();
  const auto all = RequestCountSeries(store, -1, kMinute);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 1.0);
  EXPECT_DOUBLE_EQ(all[1], 1.0);
  const auto r1 = RequestCountSeries(store, 0, kMinute);
  EXPECT_DOUBLE_EQ(r1[0], 1.0);
  EXPECT_DOUBLE_EQ(r1[1], 0.0);
}

TEST(AggregateTest, MeanExecutionSeries) {
  const TraceStore store = MakeTinyStore();
  const auto exec = MeanExecutionTimeSeries(store, 0, kMinute);
  EXPECT_NEAR(exec[0], 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(exec[1], 0.0);
}

TEST(AggregateTest, ColdStartComponentSeries) {
  const TraceStore store = MakeTinyStore();
  const auto s = ColdStartComponentSeries(store, 0, kMinute);
  EXPECT_DOUBLE_EQ(s.count[0], 1.0);
  EXPECT_NEAR(s.total[0], 0.006, 1e-9);
  EXPECT_NEAR(s.pod_alloc[0], 0.001, 1e-9);
  EXPECT_NEAR(s.scheduling[0], 0.003, 1e-9);
}

TEST(AggregateTest, RunningPodsSeriesCoversLifetime) {
  const TraceStore store = MakeTinyStore();
  const auto pods = RunningPodsSeries(store, 0, kMinute, 1,
                                      [](const PodLifetimeRecord&) { return 0; });
  // Pod alive 10s..91s: touches both minute buckets.
  EXPECT_DOUBLE_EQ(pods[0][0], 1.0);
  EXPECT_DOUBLE_EQ(pods[0][1], 1.0);
}

TEST(AggregateTest, PerFunctionCounts) {
  const TraceStore store = MakeTinyStore();
  const auto reqs = RequestsPerFunction(store);
  const auto cs = ColdStartsPerFunction(store);
  EXPECT_EQ(reqs[0], 1u);
  EXPECT_EQ(reqs[1], 1u);
  EXPECT_EQ(cs[0], 1u);
  EXPECT_EQ(cs[1], 0u);
}

TEST(AggregateTest, AllocatedCpuSeries) {
  const TraceStore store = MakeTinyStore();
  const auto cpu = AllocatedCpuCoreSeries(store, 0, kMinute);
  // 0.3 cores for 50s of the first minute = 0.25 core-minutes.
  EXPECT_NEAR(cpu[0], 0.3 * 50.0 / 60.0, 1e-6);
  EXPECT_NEAR(cpu[1], 0.3 * 31.0 / 60.0, 1e-6);
}

class RoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "coldstart_trace_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(RoundTripTest, CsvPreservesRecords) {
  const TraceStore store = MakeTinyStore();
  const std::string base = (dir_ / "t").string();
  ASSERT_TRUE(WriteRequestsCsv(store, base + "_req.csv"));
  ASSERT_TRUE(WriteColdStartsCsv(store, base + "_cs.csv"));
  ASSERT_TRUE(WriteFunctionsCsv(store, base + "_fn.csv"));
  ASSERT_TRUE(WritePodsCsv(store, base + "_pod.csv"));

  TraceStore loaded;
  ASSERT_TRUE(ReadFunctionsCsv(base + "_fn.csv", loaded));
  ASSERT_TRUE(ReadRequestsCsv(base + "_req.csv", loaded));
  ASSERT_TRUE(ReadColdStartsCsv(base + "_cs.csv", loaded));
  ASSERT_TRUE(ReadPodsCsv(base + "_pod.csv", loaded));

  ASSERT_EQ(loaded.requests().size(), store.requests().size());
  EXPECT_EQ(loaded.requests()[0].timestamp, store.requests()[0].timestamp);
  EXPECT_EQ(loaded.requests()[0].cpu_millicores, store.requests()[0].cpu_millicores);
  EXPECT_EQ(loaded.requests()[0].memory_kb, store.requests()[0].memory_kb);
  ASSERT_EQ(loaded.cold_starts().size(), 1u);
  EXPECT_EQ(loaded.cold_starts()[0].scheduling_us, 3000u);
  ASSERT_EQ(loaded.functions().size(), 2u);
  EXPECT_EQ(loaded.functions()[1].runtime, Runtime::kJava);
  EXPECT_EQ(loaded.functions()[1].config, ResourceConfig::k1000m1024);
  ASSERT_EQ(loaded.pods().size(), 1u);
  EXPECT_EQ(loaded.pods()[0].death_time, 91 * kSecond);
}

TEST_F(RoundTripTest, BinaryPreservesEverything) {
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "trace.bin").string();
  ASSERT_TRUE(WriteBinaryTrace(store, path));
  TraceStore loaded;
  ASSERT_TRUE(ReadBinaryTrace(path, loaded));
  EXPECT_EQ(loaded.horizon(), store.horizon());
  ASSERT_EQ(loaded.requests().size(), store.requests().size());
  ASSERT_EQ(loaded.cold_starts().size(), store.cold_starts().size());
  ASSERT_EQ(loaded.pods().size(), store.pods().size());
  ASSERT_EQ(loaded.functions().size(), store.functions().size());
  EXPECT_EQ(loaded.requests()[0].request_id, store.requests()[0].request_id);
  EXPECT_EQ(loaded.pods()[0].ready_time, store.pods()[0].ready_time);
}

TEST_F(RoundTripTest, BinaryPreservesAggregates) {
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "trace_agg.bin").string();
  TraceAggregates agg;
  agg.visible_cold_starts = {10, 20};
  agg.prewarm_spawns = {1, 2};
  agg.delayed_allocations = {0, 3};
  agg.scratch_allocations = {4, 5};
  agg.cold_start_latency_sum_us = {123456, 654321};
  agg.events_processed = 987654321;
  ASSERT_TRUE(WriteBinaryTrace(store, path, &agg));
  TraceStore loaded;
  TraceAggregates loaded_agg;
  ASSERT_TRUE(ReadBinaryTrace(path, loaded, &loaded_agg));
  EXPECT_EQ(loaded_agg.visible_cold_starts, agg.visible_cold_starts);
  EXPECT_EQ(loaded_agg.prewarm_spawns, agg.prewarm_spawns);
  EXPECT_EQ(loaded_agg.delayed_allocations, agg.delayed_allocations);
  EXPECT_EQ(loaded_agg.scratch_allocations, agg.scratch_allocations);
  EXPECT_EQ(loaded_agg.cold_start_latency_sum_us, agg.cold_start_latency_sum_us);
  EXPECT_EQ(loaded_agg.events_processed, agg.events_processed);
  EXPECT_EQ(loaded.requests().size(), store.requests().size());
}

TEST_F(RoundTripTest, BinaryRejectsGarbage) {
  const std::string path = (dir_ / "garbage.bin").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a trace", f);
  std::fclose(f);
  TraceStore loaded;
  EXPECT_FALSE(ReadBinaryTrace(path, loaded));
}

TEST_F(RoundTripTest, BinaryRejectsCorruptHeaderCounts) {
  // A header whose counts promise far more data than the file holds must be
  // rejected up front — the old reader would resize() straight off the bogus
  // count (a multi-GB allocation for a hand-corrupted byte) and only then fail.
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "corrupt_counts.bin").string();
  ASSERT_TRUE(WriteBinaryTrace(store, path));
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // request_count sits after magic + horizon.
    ASSERT_EQ(std::fseek(f, 2 * sizeof(uint64_t), SEEK_SET), 0);
    const uint64_t absurd = uint64_t{1} << 40;  // ~5e13 records.
    ASSERT_EQ(std::fwrite(&absurd, sizeof(absurd), 1, f), 1u);
    std::fclose(f);
  }
  TraceStore loaded;
  EXPECT_FALSE(ReadBinaryTrace(path, loaded));
  EXPECT_TRUE(loaded.requests().empty());
}

TEST_F(RoundTripTest, BinaryRejectsOverflowingHeaderCounts) {
  // Counts crafted so that count * record_size wraps mod 2^64 must be rejected by
  // the overflow guard, not slip past the file-size comparison into resize().
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "overflow_counts.bin").string();
  ASSERT_TRUE(WriteBinaryTrace(store, path));
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    // aggregate_region_count sits after magic + horizon + the four table counts.
    ASSERT_EQ(std::fseek(f, 6 * sizeof(uint64_t), SEEK_SET), 0);
    const uint64_t wrapping = uint64_t{1} << 61;  // * 40 bytes == 0 mod 2^64.
    ASSERT_EQ(std::fwrite(&wrapping, sizeof(wrapping), 1, f), 1u);
    std::fclose(f);
  }
  TraceStore loaded;
  EXPECT_FALSE(ReadBinaryTrace(path, loaded));
}

TEST_F(RoundTripTest, BinaryRejectsTruncatedFile) {
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "truncated.bin").string();
  ASSERT_TRUE(WriteBinaryTrace(store, path));
  const auto full_size = std::filesystem::file_size(path);
  ASSERT_GT(full_size, 8u);
  std::filesystem::resize_file(path, full_size - 8);
  TraceStore loaded;
  EXPECT_FALSE(ReadBinaryTrace(path, loaded));
}

TEST_F(RoundTripTest, BinaryRejectsTrailingBytes) {
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "trailing.bin").string();
  ASSERT_TRUE(WriteBinaryTrace(store, path));
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("junk", f);
    std::fclose(f);
  }
  TraceStore loaded;
  EXPECT_FALSE(ReadBinaryTrace(path, loaded));
}

TEST(TraceStoreMergeTest, AppendFromThenSealMatchesInterleavedInsertion) {
  // Two stores fed the same records in different groupings seal identically:
  // the canonical Seal order is a function of the record multiset only.
  auto request = [](SimTime t, uint64_t id, RegionId region) {
    RequestRecord r;
    r.timestamp = t;
    r.request_id = id;
    r.region = region;
    return r;
  };
  TraceStore merged;  // Region-grouped, out of time order across groups.
  merged.AddRequest(request(5, 1, 0));
  merged.AddRequest(request(9, 2, 0));
  TraceStore shard;
  shard.AddRequest(request(5, 3, 1));
  shard.AddRequest(request(7, 4, 1));
  shard.set_horizon(100);
  merged.AppendFrom(std::move(shard));
  merged.Seal();

  TraceStore serial;  // Same records, interleaved by time.
  serial.AddRequest(request(5, 3, 1));
  serial.AddRequest(request(5, 1, 0));
  serial.AddRequest(request(7, 4, 1));
  serial.AddRequest(request(9, 2, 0));
  serial.set_horizon(100);
  serial.Seal();

  EXPECT_EQ(merged.horizon(), serial.horizon());
  ASSERT_EQ(merged.requests().size(), serial.requests().size());
  for (size_t i = 0; i < merged.requests().size(); ++i) {
    EXPECT_EQ(merged.requests()[i].request_id, serial.requests()[i].request_id) << i;
  }
  // Ties sort region 0 before region 1 at t=5.
  EXPECT_EQ(merged.requests()[0].region, 0);
  EXPECT_EQ(merged.requests()[1].region, 1);
}

TEST_F(RoundTripTest, MissingFileFails) {
  TraceStore loaded;
  EXPECT_FALSE(ReadBinaryTrace((dir_ / "missing.bin").string(), loaded));
  CsvError error;
  EXPECT_FALSE(ReadRequestsCsv((dir_ / "missing.csv").string(), loaded, &error));
  EXPECT_EQ(error.line, 0);  // File-level failure, no line to blame.
}

// --- Malformed-input rejection: the replay path makes the parsers load-bearing,
// so every broken row must fail with the offending line number. ---

class CsvRejectionTest : public RoundTripTest {
 protected:
  std::string WriteCsv(const char* name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::FILE* f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fputs(content.c_str(), f);
    std::fclose(f);
    return path;
  }
  static constexpr const char* kRequestsHeader =
      "timestamp_us,pod_id,cluster,function,user,request_id,"
      "execution_time_us,cpu_millicores,memory_bytes\n";
};

TEST_F(CsvRejectionTest, TruncatedRowReportsLine) {
  const std::string path = WriteCsv(
      "truncated.csv", std::string(kRequestsHeader) +
                           "30000000,1,R1-c2,0,0,7,50000,250,2097152\n"
                           "90000000,1,R1-c2\n");
  TraceStore store;
  CsvError error;
  EXPECT_FALSE(ReadRequestsCsv(path, store, &error));
  EXPECT_EQ(error.line, 3);
  EXPECT_NE(error.message.find("truncated"), std::string::npos) << error.message;
  EXPECT_EQ(store.requests().size(), 1u);  // Rows before the break were parsed.
}

TEST_F(CsvRejectionTest, NonNumericFieldReportsLineAndField) {
  const std::string path = WriteCsv(
      "nonnumeric.csv", std::string(kRequestsHeader) +
                            "abc,1,R1-c2,0,0,7,50000,250,2097152\n");
  TraceStore store;
  CsvError error;
  EXPECT_FALSE(ReadRequestsCsv(path, store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("timestamp_us"), std::string::npos) << error.message;
  EXPECT_NE(error.message.find("abc"), std::string::npos) << error.message;
}

TEST_F(CsvRejectionTest, OutOfRangeValuesRejected) {
  TraceStore store;
  CsvError error;
  // cpu_millicores overflows uint16.
  EXPECT_FALSE(ReadRequestsCsv(
      WriteCsv("cpu.csv", std::string(kRequestsHeader) +
                              "1,1,R1-c2,0,0,7,50000,70000,2097152\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("cpu_millicores"), std::string::npos);
  // Region beyond R5 and cluster beyond c3.
  EXPECT_FALSE(ReadRequestsCsv(
      WriteCsv("region.csv", std::string(kRequestsHeader) +
                                 "1,1,R9-c2,0,0,7,50000,250,2097152\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_FALSE(ReadRequestsCsv(
      WriteCsv("cluster.csv", std::string(kRequestsHeader) +
                                  "1,1,R1-c7,0,0,7,50000,250,2097152\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  // Negative value in an unsigned column.
  EXPECT_FALSE(ReadRequestsCsv(
      WriteCsv("negative.csv", std::string(kRequestsHeader) +
                                   "1,-4,R1-c2,0,0,7,50000,250,2097152\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
}

TEST_F(CsvRejectionTest, FunctionIdValidatedAgainstLoadedTable) {
  // With a 2-entry function table loaded, a request naming function 99 is an
  // out-of-range id, not silently-accepted garbage.
  const TraceStore exported = MakeTinyStore();
  const std::string fn_path = (dir_ / "fn.csv").string();
  ASSERT_TRUE(WriteFunctionsCsv(exported, fn_path));
  TraceStore store;
  ASSERT_TRUE(ReadFunctionsCsv(fn_path, store));
  CsvError error;
  EXPECT_FALSE(ReadRequestsCsv(
      WriteCsv("badfn.csv", std::string(kRequestsHeader) +
                                "1,1,R1-c2,99,0,7,50000,250,2097152\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("out of range"), std::string::npos) << error.message;
}

TEST_F(CsvRejectionTest, HashedIdExportIsNotReadable) {
  // Release-format files carry one-way hashed ids; the old reader silently
  // parsed them as zeros, the hardened reader rejects them.
  const TraceStore store = MakeTinyStore();
  const std::string path = (dir_ / "hashed.csv").string();
  CsvExportOptions opts;
  opts.hash_ids = true;
  ASSERT_TRUE(WriteRequestsCsv(store, path, opts));
  TraceStore loaded;
  CsvError error;
  EXPECT_FALSE(ReadRequestsCsv(path, loaded, &error));
  EXPECT_EQ(error.line, 2);
}

TEST_F(CsvRejectionTest, ColdStartAndPodReadersRejectBadRows) {
  TraceStore store;
  CsvError error;
  EXPECT_FALSE(ReadColdStartsCsv(
      WriteCsv("cs.csv",
               "timestamp_us,pod_id,cluster,function,user,cold_start_us,"
               "pod_alloc_us,deploy_code_us,deploy_dep_us,scheduling_us\n"
               "1,1,R1-c2,0,0,6000,1000,2000,0,xyz\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("scheduling_us"), std::string::npos) << error.message;

  EXPECT_FALSE(ReadPodsCsv(
      WriteCsv("pods.csv",
               "pod_id,function,region,cluster,cpu_mem,cold_start_begin_us,ready_us,"
               "last_busy_end_us,death_us,cold_start_us,requests_served\n"
               "1,0,R1,2,no-such-config,1,2,3,4,100,1\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("cpu_mem"), std::string::npos) << error.message;

  EXPECT_FALSE(ReadFunctionsCsv(
      WriteCsv("fn_sparse.csv",
               "function,user,region,runtime,trigger_type,trigger_mask,cpu_mem\n"
               "5,0,R1,Python3,TIMER-A,4,300-128\n"),
      store, &error));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("dense"), std::string::npos) << error.message;
}

}  // namespace
}  // namespace coldstart::trace
