// Tests for distribution parameterizations, sampling, and analytic functions.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"

namespace coldstart::stats {
namespace {

// --- LogNormal: property sweep over (mu, sigma). ---
class LogNormalParamTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LogNormalParamTest, MomentRoundTrip) {
  const auto [mu, sigma] = GetParam();
  const LogNormalParams p{mu, sigma};
  const LogNormalParams q = LogNormalParams::FromMoments(p.Mean(), p.StdDev());
  EXPECT_NEAR(q.mu, mu, 1e-9);
  EXPECT_NEAR(q.sigma, sigma, 1e-9);
}

TEST_P(LogNormalParamTest, SampleMomentsMatch) {
  const auto [mu, sigma] = GetParam();
  const LogNormalParams p{mu, sigma};
  Rng rng(1234);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += p.Sample(rng);
  }
  EXPECT_NEAR(sum / n, p.Mean(), p.Mean() * 0.05);
}

TEST_P(LogNormalParamTest, CdfQuantileInverse) {
  const auto [mu, sigma] = GetParam();
  const LogNormalParams p{mu, sigma};
  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(p.Cdf(p.Quantile(q)), q, 1e-6);
  }
}

TEST_P(LogNormalParamTest, MedianIsExpMu) {
  const auto [mu, sigma] = GetParam();
  const LogNormalParams p{mu, sigma};
  EXPECT_NEAR(p.Quantile(0.5), std::exp(mu), std::exp(mu) * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogNormalParamTest,
                         ::testing::Values(std::pair{0.0, 0.5}, std::pair{0.0, 1.0},
                                           std::pair{1.0, 1.5}, std::pair{-1.0, 0.8},
                                           std::pair{2.0, 0.3}));

// --- Weibull: property sweep over (shape, scale). ---
class WeibullParamTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullParamTest, MomentRoundTrip) {
  const auto [k, lambda] = GetParam();
  const WeibullParams p{k, lambda};
  const WeibullParams q = WeibullParams::FromMoments(p.Mean(), p.StdDev());
  EXPECT_NEAR(q.shape, k, k * 0.01);
  EXPECT_NEAR(q.scale, lambda, lambda * 0.01);
}

TEST_P(WeibullParamTest, SampleMeanMatches) {
  const auto [k, lambda] = GetParam();
  const WeibullParams p{k, lambda};
  Rng rng(99);
  double sum = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    sum += p.Sample(rng);
  }
  EXPECT_NEAR(sum / n, p.Mean(), p.Mean() * 0.05);
}

TEST_P(WeibullParamTest, CdfQuantileInverse) {
  const auto [k, lambda] = GetParam();
  const WeibullParams p{k, lambda};
  for (const double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(p.Cdf(p.Quantile(q)), q, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeibullParamTest,
                         ::testing::Values(std::pair{0.5, 1.0}, std::pair{0.744, 4.0},
                                           std::pair{1.0, 2.0}, std::pair{2.0, 0.5},
                                           std::pair{3.5, 10.0}));

TEST(WeibullTest, ShapeOneIsExponential) {
  const WeibullParams p{1.0, 2.0};
  EXPECT_NEAR(p.Cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(p.Mean(), 2.0, 1e-12);
}

TEST(BoundedParetoTest, SamplesWithinBounds) {
  const BoundedParetoParams p{0.7, 1.0, 1000.0};
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = p.Sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(BoundedParetoTest, CdfMatchesEmpirical) {
  const BoundedParetoParams p{0.7, 1.0, 1000.0};
  Rng rng(6);
  const int n = 100000;
  int below10 = 0;
  for (int i = 0; i < n; ++i) {
    below10 += p.Sample(rng) <= 10.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(below10) / n, p.Cdf(10.0), 0.01);
}

TEST(BoundedParetoTest, HeavierTailForSmallerAlpha) {
  const BoundedParetoParams heavy{0.4, 1.0, 1e6};
  const BoundedParetoParams light{1.5, 1.0, 1e6};
  EXPECT_LT(heavy.Cdf(100.0), light.Cdf(100.0));
}

TEST(ZipfTest, RankProbabilitiesDecrease) {
  const ZipfSampler zipf(100, 1.0);
  for (int r = 1; r < 100; ++r) {
    EXPECT_GE(zipf.ProbabilityOfRank(r - 1), zipf.ProbabilityOfRank(r));
  }
}

TEST(ZipfTest, EmpiricalMatchesProbability) {
  const ZipfSampler zipf(10, 1.2);
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(zipf.Sample(rng))];
  }
  for (int r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(r)]) / n,
                zipf.ProbabilityOfRank(r), 0.01);
  }
}

TEST(CategoricalTest, RespectsWeights) {
  const CategoricalSampler cat({1.0, 3.0, 6.0});
  Rng rng(10);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(cat.Sample(rng))];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
  EXPECT_DOUBLE_EQ(cat.Probability(2), 0.6);
}

TEST(CategoricalTest, ZeroWeightNeverSampled) {
  const CategoricalSampler cat({1.0, 0.0, 1.0});
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(cat.Sample(rng), 1);
  }
}

TEST(PoissonTest, MeanAndVarianceMatchLambda) {
  Rng rng(14);
  for (const double lambda : {0.3, 2.0, 20.0, 150.0}) {
    double sum = 0, sum2 = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      const int k = SamplePoisson(rng, lambda);
      sum += k;
      sum2 += static_cast<double>(k) * k;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, lambda, std::max(0.05, lambda * 0.03));
    EXPECT_NEAR(var, lambda, std::max(0.15, lambda * 0.08));
  }
}

TEST(PoissonTest, ZeroLambdaGivesZero) {
  Rng rng(15);
  EXPECT_EQ(SamplePoisson(rng, 0.0), 0);
  EXPECT_EQ(SamplePoisson(rng, -1.0), 0);
}

TEST(StdNormalCdfTest, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(StdNormalCdf(-1.959963985), 0.025, 1e-6);
}

}  // namespace
}  // namespace coldstart::stats
