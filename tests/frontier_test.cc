// Frontier-driver tests: the Pareto geometry (dominated points excluded,
// strict monotonicity, deterministic tie-breaks), RunFrontier's determinism
// across thread counts, and the point cache's freshness contract — a
// fingerprint change (scenario or policy config) must invalidate cached
// evaluations, and a corrupt entry must be rejected and re-evaluated.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/pareto.h"
#include "core/coldstart_lab.h"
#include "core/frontier.h"
#include "policy/forecast.h"

namespace coldstart {
namespace {

namespace fs = std::filesystem;

using analysis::Dominates;
using analysis::ParetoFrontier;
using analysis::ParetoPoint;
using core::FrontierCandidate;
using core::FrontierPoint;
using core::FrontierResult;
using core::ScenarioConfig;

// --- Pareto geometry. --------------------------------------------------------

TEST(ParetoTest, DominatesRequiresOneStrictImprovement) {
  EXPECT_TRUE(Dominates({1, 5}, {2, 6}));   // Better on both.
  EXPECT_TRUE(Dominates({1, 5}, {1, 6}));   // Equal cost, better latency.
  EXPECT_TRUE(Dominates({1, 5}, {2, 5}));   // Better cost, equal latency.
  EXPECT_FALSE(Dominates({1, 5}, {1, 5}));  // Identical: neither dominates.
  EXPECT_FALSE(Dominates({1, 6}, {2, 5}));  // Trade-off: incomparable.
  EXPECT_FALSE(Dominates({2, 6}, {1, 5}));
}

TEST(ParetoTest, DominatedPointsExcluded) {
  const std::vector<ParetoPoint> points = {
      {10, 1.0},  // 0: expensive, fast — frontier.
      {1, 10.0},  // 1: cheap, slow — frontier.
      {5, 5.0},   // 2: middle — frontier.
      {6, 6.0},   // 3: dominated by 2.
      {10, 2.0},  // 4: dominated by 0.
      {2, 10.0},  // 5: dominated by 1.
  };
  const std::vector<size_t> frontier = ParetoFrontier(points);
  EXPECT_EQ(frontier, (std::vector<size_t>{1, 2, 0}));
  // Cross-check against the Dominates predicate: every excluded point is
  // dominated by some frontier point.
  for (const size_t i : {size_t{3}, size_t{4}, size_t{5}}) {
    bool dominated = false;
    for (const size_t f : frontier) {
      dominated = dominated || Dominates(points[f], points[i]);
    }
    EXPECT_TRUE(dominated) << "point " << i;
  }
}

TEST(ParetoTest, FrontierIsStrictlyMonotone) {
  // A scrambled mix of frontier and interior points.
  const std::vector<ParetoPoint> points = {
      {7, 3.0}, {2, 9.0}, {9, 1.0}, {4, 6.0}, {5, 6.5},
      {3, 8.0}, {8, 2.0}, {6, 5.0}, {2, 8.5}, {9, 1.5},
  };
  const std::vector<size_t> frontier = ParetoFrontier(points);
  ASSERT_GE(frontier.size(), 2u);
  for (size_t i = 1; i < frontier.size(); ++i) {
    // Cost strictly increases and latency strictly decreases along the
    // frontier — no flat segments, no duplicates.
    EXPECT_LT(points[frontier[i - 1]].cost, points[frontier[i]].cost);
    EXPECT_GT(points[frontier[i - 1]].latency, points[frontier[i]].latency);
  }
}

TEST(ParetoTest, DuplicatePointsKeepLowestIndex) {
  const std::vector<ParetoPoint> points = {{5, 5.0}, {1, 9.0}, {5, 5.0},
                                           {1, 9.0}, {5, 5.0}};
  // Of each duplicate group only the lowest input index survives, making
  // ties deterministic regardless of sort implementation.
  EXPECT_EQ(ParetoFrontier(points), (std::vector<size_t>{1, 0}));
}

TEST(ParetoTest, EqualCostKeepsOnlyLowestLatency) {
  const std::vector<ParetoPoint> points = {{3, 7.0}, {3, 4.0}, {3, 9.0},
                                           {1, 8.0}};
  EXPECT_EQ(ParetoFrontier(points), (std::vector<size_t>{3, 1}));
}

TEST(ParetoTest, EmptyAndSingleton) {
  EXPECT_TRUE(ParetoFrontier({}).empty());
  EXPECT_EQ(ParetoFrontier({{42, 7.0}}), (std::vector<size_t>{0}));
}

// --- RunFrontier: structure and determinism. ---------------------------------

ScenarioConfig TinyFrontierScenario() {
  ScenarioConfig config;
  config.days = 1;
  config.scale = 0.05;
  return config;
}

std::vector<FrontierCandidate> TinyCandidates(double min_confidence = 0.7) {
  policy::ForecastPrewarmPolicy::Options options;
  options.forecaster.min_confidence = min_confidence;
  std::vector<FrontierCandidate> candidates;
  candidates.push_back({"baseline", nullptr, 0});
  candidates.push_back(
      {"keepalive-dynamic",
       [] { return std::make_unique<policy::DynamicKeepAlivePolicy>(); },
       HashString("keepalive-dynamic")});
  candidates.push_back(
      {"forecast",
       [options] {
         return std::make_unique<policy::ForecastPrewarmPolicy>(options);
       },
       options.Fingerprint()});
  return candidates;
}

void ExpectSameMetrics(const FrontierResult& a, const FrontierResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    const FrontierPoint& pa = a.points[i];
    const FrontierPoint& pb = b.points[i];
    EXPECT_EQ(pa.name, pb.name);
    EXPECT_EQ(pa.cold_starts, pb.cold_starts) << pa.name;
    EXPECT_EQ(pa.requests, pb.requests) << pa.name;
    // Exact, not approximate: the runs are bit-identical by contract.
    EXPECT_EQ(pa.p50_cold_start_s, pb.p50_cold_start_s) << pa.name;
    EXPECT_EQ(pa.p99_cold_start_s, pb.p99_cold_start_s) << pa.name;
    EXPECT_EQ(pa.pod_seconds, pb.pod_seconds) << pa.name;
    EXPECT_EQ(pa.warm_idle_seconds, pb.warm_idle_seconds) << pa.name;
    EXPECT_EQ(pa.on_frontier, pb.on_frontier) << pa.name;
  }
  EXPECT_EQ(a.frontier, b.frontier);
}

TEST(FrontierTest, StructureAndThreadCountDeterminism) {
  const ScenarioConfig config = TinyFrontierScenario();
  const std::vector<FrontierCandidate> candidates = TinyCandidates();

  const FrontierResult serial = core::RunFrontier(config, candidates, 1);
  ASSERT_EQ(serial.points.size(), candidates.size());
  ASSERT_FALSE(serial.frontier.empty());
  for (const FrontierPoint& p : serial.points) {
    EXPECT_GT(p.requests, 0u) << p.name;
    EXPECT_GT(p.cost(), 0.0) << p.name;
    EXPECT_FALSE(p.from_cache) << p.name;
  }
  // The on_frontier flags are exactly the frontier index set.
  size_t flagged = 0;
  for (const FrontierPoint& p : serial.points) {
    flagged += p.on_frontier ? 1 : 0;
  }
  EXPECT_EQ(flagged, serial.frontier.size());
  // No frontier point is dominated by any point in the set.
  for (const size_t f : serial.frontier) {
    for (const FrontierPoint& p : serial.points) {
      EXPECT_FALSE(Dominates({p.cost(), p.p99_cold_start_s},
                             {serial.points[f].cost(),
                              serial.points[f].p99_cold_start_s}))
          << p.name << " dominates frontier point " << serial.points[f].name;
    }
  }

  // Same study on a thread pool: every metric and the frontier agree exactly.
  const FrontierResult pooled = core::RunFrontier(config, candidates, 8);
  ExpectSameMetrics(serial, pooled);
}

TEST(FrontierTest, PointKeySensitivity) {
  const ScenarioConfig config = TinyFrontierScenario();
  const FrontierCandidate candidate = TinyCandidates()[2];
  const uint64_t base = core::FrontierPointKey(config, candidate);

  ScenarioConfig reseeded = config;
  reseeded.seed = config.seed + 1;
  EXPECT_NE(core::FrontierPointKey(reseeded, candidate), base);

  FrontierCandidate renamed = candidate;
  renamed.name = "forecast-v2";
  EXPECT_NE(core::FrontierPointKey(config, renamed), base);

  // A policy-config change reaches the key through Options::Fingerprint().
  const FrontierCandidate reconfigured = TinyCandidates(0.9)[2];
  ASSERT_NE(reconfigured.policy_fingerprint, candidate.policy_fingerprint);
  EXPECT_NE(core::FrontierPointKey(config, reconfigured), base);
}

class FrontierCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "coldstart_frontier_cache_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FrontierCacheTest, CacheRoundTripAndConfigInvalidation) {
  const ScenarioConfig config = TinyFrontierScenario();
  const std::vector<FrontierCandidate> candidates = TinyCandidates();

  const FrontierResult fresh = core::RunFrontier(config, candidates, 1, dir_);
  for (const FrontierPoint& p : fresh.points) {
    EXPECT_FALSE(p.from_cache) << p.name;
  }

  // Second run: every point served from cache, metrics identical.
  const FrontierResult cached = core::RunFrontier(config, candidates, 1, dir_);
  for (const FrontierPoint& p : cached.points) {
    EXPECT_TRUE(p.from_cache) << p.name;
  }
  ExpectSameMetrics(fresh, cached);

  // Tighten the forecaster's confidence gate: its fingerprint changes, so its
  // point — and only its point — must be re-evaluated. A stale cached
  // evaluation of the old configuration can never be served.
  const std::vector<FrontierCandidate> reconfigured = TinyCandidates(0.95);
  const FrontierResult invalidated =
      core::RunFrontier(config, reconfigured, 1, dir_);
  EXPECT_TRUE(invalidated.points[0].from_cache);   // baseline: unchanged.
  EXPECT_TRUE(invalidated.points[1].from_cache);   // keepalive: unchanged.
  EXPECT_FALSE(invalidated.points[2].from_cache);  // forecast: new config.
}

TEST_F(FrontierCacheTest, CorruptCacheEntryRejectedAndReevaluated) {
  const ScenarioConfig config = TinyFrontierScenario();
  const std::vector<FrontierCandidate> candidates = TinyCandidates();
  const FrontierResult fresh = core::RunFrontier(config, candidates, 1, dir_);

  // Flip one payload bit in every cache file: the CRC must reject each entry
  // and the driver must fall back to fresh (identical) evaluations.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::fstream f(entry.path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(10);
    char byte = 0;
    f.seekg(10);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(10);
    f.write(&byte, 1);
  }
  testing::internal::CaptureStderr();
  const FrontierResult recovered = core::RunFrontier(config, candidates, 1, dir_);
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("CRC mismatch"), std::string::npos) << log;
  for (const FrontierPoint& p : recovered.points) {
    EXPECT_FALSE(p.from_cache) << p.name;
  }
  ExpectSameMetrics(fresh, recovered);

  // The fallback rewrote valid entries.
  const FrontierResult rehit = core::RunFrontier(config, candidates, 1, dir_);
  for (const FrontierPoint& p : rehit.points) {
    EXPECT_TRUE(p.from_cache) << p.name;
  }
}

}  // namespace
}  // namespace coldstart
