// Tests for the platform: pools, the cold-start pipeline, pod lifecycle, keep-alive,
// autoscaling, and workflow fan-out. Small hand-built scenarios with exact assertions.
#include <gtest/gtest.h>

#include "platform/coldstart_pipeline.h"
#include "platform/platform.h"
#include "trace/trace_store.h"
#include "workload/arrivals.h"

namespace coldstart::platform {
namespace {

using trace::Runtime;
using trace::Trigger;
using workload::ArrivalKind;
using workload::FunctionSpec;

// --- Resource pool. ---

TEST(ResourcePoolTest, StartsFullAndDrains) {
  ResourcePool pool(4, /*refill_per_min=*/0.0);
  Rng rng(1);
  EXPECT_EQ(pool.free_pods(0), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(pool.Acquire(0, rng).from_scratch);
  }
  EXPECT_TRUE(pool.Acquire(0, rng).from_scratch);
  EXPECT_EQ(pool.scratch_count(), 1);
}

TEST(ResourcePoolTest, FullPoolAnswersLocally) {
  ResourcePool pool(100, 0.0);
  Rng rng(2);
  // First draws at high occupancy must be stage 1.
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(pool.Acquire(0, rng).stage, 1);
  }
}

TEST(ResourcePoolTest, LowOccupancyExpandsSearch) {
  ResourcePool pool(100, 0.0);
  Rng rng(3);
  for (int i = 0; i < 95; ++i) {
    pool.Acquire(0, rng);
  }
  // Occupancy now 5%: stages must be 2 or 3.
  int deep = 0;
  for (int i = 0; i < 5; ++i) {
    const auto acq = pool.Acquire(0, rng);
    if (!acq.from_scratch) {
      EXPECT_GE(acq.stage, 2);
      ++deep;
    }
  }
  EXPECT_GT(deep, 0);
}

TEST(ResourcePoolTest, RefillRestoresCapacity) {
  ResourcePool pool(10, /*refill_per_min=*/2.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    pool.Acquire(0, rng);
  }
  EXPECT_EQ(pool.free_pods(0), 0);
  EXPECT_EQ(pool.free_pods(5 * kMinute), 10);  // 2/min for 5 min, capped at target.
}

TEST(ResourcePoolTest, ReleaseRecyclesUpToCap) {
  ResourcePool pool(4, 0.0);
  Rng rng(5);
  pool.Acquire(0, rng);
  pool.Release(0);
  EXPECT_EQ(pool.free_pods(0), 4);
  for (int i = 0; i < 20; ++i) {
    pool.Release(0);  // Must not overfill unboundedly.
  }
  EXPECT_LE(pool.free_pods(0), 5);  // target + target/4 margin.
}

TEST(ResourcePoolTest, SetTargetAffectsScratch) {
  ResourcePool pool(0, 0.0);
  Rng rng(6);
  EXPECT_TRUE(pool.Acquire(0, rng).from_scratch);
  pool.SetTarget(8);
  // Refill credit accrues only via refill rate; with rate 0 the pool stays empty.
  EXPECT_TRUE(pool.Acquire(0, rng).from_scratch);
}

// --- Cold-start pipeline. ---

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : profile_(workload::DefaultRegionProfiles()[1]),
        pipeline_(profile_, workload::Calendar{}),
        pool_(100, 10.0),
        rng_(9) {}

  workload::RegionProfile profile_;
  YuanRongModel pipeline_;
  ResourcePool pool_;
  RegionLoadState load_;
  Rng rng_;
};

TEST_F(PipelineTest, ComponentsArePositiveAndSumToTotal) {
  FunctionSpec spec;
  spec.dep_size_kb = 4096;
  for (int i = 0; i < 100; ++i) {
    const auto c = pipeline_.Compute(spec, pool_, load_, kHour, rng_);
    EXPECT_GT(c.pod_alloc, 0);
    EXPECT_GT(c.deploy_code, 0);
    EXPECT_GT(c.deploy_dep, 0);
    EXPECT_GT(c.scheduling, 0);
    EXPECT_EQ(c.total(), c.pod_alloc + c.deploy_code + c.deploy_dep + c.scheduling);
  }
}

TEST_F(PipelineTest, NoDependenciesMeansZeroDepTime) {
  FunctionSpec spec;
  spec.dep_size_kb = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pipeline_.Compute(spec, pool_, load_, 0, rng_).deploy_dep, 0);
  }
}

TEST_F(PipelineTest, CustomRuntimeAlwaysFromScratchAndSlow) {
  FunctionSpec spec;
  spec.runtime = Runtime::kCustom;
  double sum = 0;
  for (int i = 0; i < 200; ++i) {
    const auto c = pipeline_.Compute(spec, pool_, load_, 0, rng_);
    EXPECT_TRUE(c.from_scratch);
    sum += ToSeconds(c.pod_alloc);
  }
  EXPECT_GT(sum / 200, 5.0);  // Custom image pull ~10s median.
  EXPECT_EQ(pool_.free_pods(0), 100);  // Pool untouched.
}

TEST_F(PipelineTest, HttpPaysServerStart) {
  FunctionSpec py, http;
  py.runtime = Runtime::kPython3;
  http.runtime = Runtime::kHttp;
  double py_sum = 0, http_sum = 0;
  for (int i = 0; i < 200; ++i) {
    py_sum += ToSeconds(pipeline_.Compute(py, pool_, load_, 0, rng_).pod_alloc);
    pool_.Release(0);
    http_sum += ToSeconds(pipeline_.Compute(http, pool_, load_, 0, rng_).pod_alloc);
    pool_.Release(0);
  }
  EXPECT_GT(http_sum / 200, py_sum / 200 + 5.0);
}

TEST_F(PipelineTest, CodeTimeGrowsWithPackageSize) {
  FunctionSpec small, big;
  small.code_size_kb = 64;
  big.code_size_kb = 65536;
  double small_sum = 0, big_sum = 0;
  for (int i = 0; i < 200; ++i) {
    small_sum += ToSeconds(pipeline_.Compute(small, pool_, load_, 0, rng_).deploy_code);
    pool_.Release(0);
    big_sum += ToSeconds(pipeline_.Compute(big, pool_, load_, 0, rng_).deploy_code);
    pool_.Release(0);
  }
  EXPECT_GT(big_sum, small_sum * 3);
}

TEST_F(PipelineTest, CongestionWindowInflatesCoupledComponents) {
  FunctionSpec spec;
  RegionLoadState calm, congested;
  congested.cold_start_window = 100.0;
  double calm_sum = 0, hot_sum = 0;
  for (int i = 0; i < 300; ++i) {
    calm_sum += ToSeconds(pipeline_.Compute(spec, pool_, load_, 0, rng_).pod_alloc);
    pool_.Release(0);
    hot_sum += ToSeconds(pipeline_.Compute(spec, pool_, congested, 0, rng_).pod_alloc);
    pool_.Release(0);
  }
  // R2 couples allocation to the window (alloc_rate_coeff > 0).
  EXPECT_GT(hot_sum, calm_sum * 1.5);
}

TEST_F(PipelineTest, PostHolidayDependencyPenalty) {
  FunctionSpec spec;
  spec.dep_size_kb = 8192;
  double before = 0, after = 0;
  const SimTime day10 = 10 * kDay;
  const SimTime day24 = 24 * kDay;
  for (int i = 0; i < 400; ++i) {
    before += ToSeconds(pipeline_.Compute(spec, pool_, load_, day10, rng_).deploy_dep);
    pool_.Release(0);
    after += ToSeconds(pipeline_.Compute(spec, pool_, load_, day24, rng_).deploy_dep);
    pool_.Release(0);
  }
  EXPECT_GT(after, before * 1.3);
}

// --- Platform end-to-end on tiny populations. ---

struct TinyWorld {
  workload::Population pop;
  std::vector<workload::RegionProfile> profiles;
  workload::Calendar calendar;
  sim::Simulator sim;
  trace::TraceStore store;
  std::unique_ptr<Platform> platform;

  explicit TinyWorld(std::vector<FunctionSpec> specs, int days = 1,
                     PlatformPolicy* policy = nullptr) {
    Calendar();
    workload::Calendar::Options copts;
    copts.trace_days = days;
    calendar = workload::Calendar(copts);
    profiles = {workload::DefaultRegionProfiles()[0]};
    pop.functions = std::move(specs);
    pop.num_users = 1;
    pop.region_begin = {0, static_cast<uint32_t>(pop.functions.size())};
    Platform::Options opts;
    opts.seed = 17;
    platform = std::make_unique<Platform>(pop, profiles, calendar, sim, store, opts,
                                          policy);
  }

  void Run(const std::vector<workload::ArrivalEvent>& arrivals) {
    platform->InjectArrivals(arrivals);
    sim.RunUntil(calendar.horizon());
    platform->Finalize();
    store.Seal();
  }

 private:
  static void Calendar() {}
};

FunctionSpec BasicSpec() {
  FunctionSpec f;
  f.id = 0;
  f.user = 0;
  f.region = 0;
  f.runtime = Runtime::kPython3;
  f.primary_trigger = Trigger::kApigSync;
  f.exec_median_us = 10e3;
  f.exec_sigma = 0.01;  // Nearly deterministic exec for exact assertions.
  f.pod_concurrency = 1;
  f.code_size_kb = 100;
  f.dep_size_kb = 0;
  return f;
}

TEST(PlatformTest, SingleRequestColdStartsOnce) {
  TinyWorld world({BasicSpec()});
  world.Run({{kHour, 0}});
  EXPECT_EQ(world.store.cold_starts().size(), 1u);
  EXPECT_EQ(world.store.requests().size(), 1u);
  EXPECT_EQ(world.store.pods().size(), 1u);
  const auto& pod = world.store.pods()[0];
  EXPECT_EQ(pod.requests_served, 1u);
  // Death = last busy end + 60s keep-alive.
  EXPECT_EQ(pod.death_time, pod.last_busy_end + kMinute);
}

TEST(PlatformTest, RequestsWithinKeepAliveShareOnePod) {
  TinyWorld world({BasicSpec()});
  // Second request 30s after the first: inside keep-alive, warm start.
  world.Run({{kHour, 0}, {kHour + 30 * kSecond, 0}});
  EXPECT_EQ(world.store.cold_starts().size(), 1u);
  EXPECT_EQ(world.store.requests().size(), 2u);
  EXPECT_EQ(world.store.pods().size(), 1u);
  EXPECT_EQ(world.store.pods()[0].requests_served, 2u);
}

TEST(PlatformTest, GapBeyondKeepAliveColdStartsAgain) {
  TinyWorld world({BasicSpec()});
  world.Run({{kHour, 0}, {kHour + 10 * kMinute, 0}});
  EXPECT_EQ(world.store.cold_starts().size(), 2u);
  EXPECT_EQ(world.store.pods().size(), 2u);
}

TEST(PlatformTest, ConcurrencyOverflowSpawnsSecondPod) {
  FunctionSpec f = BasicSpec();
  f.exec_median_us = 30e6;  // 30s executions.
  f.pod_concurrency = 1;
  TinyWorld world({f});
  // Two arrivals 1s apart: the second cannot fit in the busy pod.
  world.Run({{kHour, 0}, {kHour + kSecond, 0}});
  EXPECT_EQ(world.store.cold_starts().size(), 2u);
  EXPECT_EQ(world.store.pods().size(), 2u);
}

TEST(PlatformTest, HigherConcurrencySharesPod) {
  FunctionSpec f = BasicSpec();
  f.exec_median_us = 30e6;
  f.pod_concurrency = 4;
  TinyWorld world({f});
  world.Run({{kHour, 0}, {kHour + kSecond, 0}, {kHour + 2 * kSecond, 0}});
  EXPECT_EQ(world.store.cold_starts().size(), 1u);
  EXPECT_EQ(world.store.pods().size(), 1u);
  EXPECT_EQ(world.store.pods()[0].requests_served, 3u);
}

TEST(PlatformTest, ColdStartComponentsSumToTotal) {
  TinyWorld world({BasicSpec()});
  world.Run({{kHour, 0}});
  const auto& c = world.store.cold_starts()[0];
  EXPECT_EQ(c.cold_start_us,
            c.pod_alloc_us + c.deploy_code_us + c.deploy_dep_us + c.scheduling_us);
}

TEST(PlatformTest, RecordsShareConsistentIds) {
  TinyWorld world({BasicSpec()});
  world.Run({{kHour, 0}});
  const auto& c = world.store.cold_starts()[0];
  const auto& r = world.store.requests()[0];
  const auto& p = world.store.pods()[0];
  EXPECT_EQ(c.pod_id, r.pod_id);
  EXPECT_EQ(c.pod_id, p.pod_id);
  EXPECT_EQ(c.function_id, 0u);
  // Request executes only after the pod is ready.
  EXPECT_GE(r.timestamp, c.timestamp + c.cold_start_us);
  EXPECT_EQ(p.ready_time, c.timestamp + c.cold_start_us);
}

TEST(PlatformTest, WorkflowChildInvokedAfterParent) {
  FunctionSpec parent = BasicSpec();
  FunctionSpec child = BasicSpec();
  child.id = 1;
  child.kind = ArrivalKind::kWorkflowChild;
  child.primary_trigger = Trigger::kWorkflowSync;
  parent.children.push_back({1, 1.0});
  TinyWorld world({parent, child});
  world.Run({{kHour, 0}});
  ASSERT_EQ(world.store.requests().size(), 2u);
  EXPECT_EQ(world.store.cold_starts().size(), 2u);
  // The child executes strictly after the parent's completion.
  const auto& reqs = world.store.requests();
  EXPECT_EQ(reqs[0].function_id, 0u);
  EXPECT_EQ(reqs[1].function_id, 1u);
  EXPECT_GT(reqs[1].timestamp, reqs[0].timestamp);
}

TEST(PlatformTest, ZeroProbabilityEdgeNeverFires) {
  FunctionSpec parent = BasicSpec();
  FunctionSpec child = BasicSpec();
  child.id = 1;
  child.kind = ArrivalKind::kWorkflowChild;
  parent.children.push_back({1, 0.0});
  TinyWorld world({parent, child});
  world.Run({{kHour, 0}});
  EXPECT_EQ(world.store.requests().size(), 1u);
}

TEST(PlatformTest, PodsAliveAtHorizonAreCensored) {
  FunctionSpec f = BasicSpec();
  TinyWorld world({f});
  // Arrival 20s before the horizon: pod would live past it.
  const SimTime horizon = kDay;
  world.Run({{horizon - 20 * kSecond, 0}});
  ASSERT_EQ(world.store.pods().size(), 1u);
  EXPECT_EQ(world.store.pods()[0].death_time, horizon);
}

TEST(PlatformTest, PrewarmedPodAbsorbsColdStart) {
  struct PrewarmOnce : PlatformPolicy {
    void OnAttach(Platform& p) override {
      platform = &p;
      // Prewarm function 0 at t=30min, long before the arrival at t=60min.
      p.simulator().ScheduleAt(30 * kMinute, [this] {
        platform->SpawnPrewarmedPod(0, 0, kHour);
      });
    }
    Platform* platform = nullptr;
  } policy;
  TinyWorld world({BasicSpec()}, 1, &policy);
  world.Run({{kHour, 0}});
  // No user-visible cold start; one pod total (the prewarmed one).
  EXPECT_EQ(world.store.cold_starts().size(), 0u);
  EXPECT_EQ(world.store.pods().size(), 1u);
  EXPECT_EQ(world.store.pods()[0].requests_served, 1u);
  EXPECT_EQ(world.platform->load(0).prewarm_spawns, 1);
}

TEST(PlatformTest, SynchronousTriggersNeverDelayed) {
  struct DelayEverything : PlatformPolicy {
    SimDuration AdmissionDelay(const FunctionSpec&, SimTime,
                               const RegionLoadState&) override {
      ++asked;
      return kMinute;
    }
    int asked = 0;
  } policy;
  FunctionSpec f = BasicSpec();
  f.primary_trigger = Trigger::kApigSync;  // Synchronous.
  TinyWorld world({f}, 1, &policy);
  world.Run({{kHour, 0}});
  EXPECT_EQ(policy.asked, 0);
  EXPECT_EQ(world.platform->load(0).delayed_allocations, 0);
}

TEST(PlatformTest, AsyncTriggersCanBeDelayed) {
  struct DelayOnce : PlatformPolicy {
    SimDuration AdmissionDelay(const FunctionSpec&, SimTime,
                               const RegionLoadState&) override {
      return 5 * kMinute;
    }
  } policy;
  FunctionSpec f = BasicSpec();
  f.primary_trigger = Trigger::kObs;  // Asynchronous.
  TinyWorld world({f}, 1, &policy);
  world.Run({{kHour, 0}});
  EXPECT_EQ(world.platform->load(0).delayed_allocations, 1);
  ASSERT_EQ(world.store.requests().size(), 1u);
  EXPECT_GE(world.store.requests()[0].timestamp, kHour + 5 * kMinute);
}

TEST(PlatformTest, DynamicKeepAliveHookRespected) {
  struct ShortKeepAlive : PlatformPolicy {
    SimDuration KeepAliveFor(const FunctionSpec&, SimTime) override {
      return 5 * kSecond;
    }
  } policy;
  TinyWorld world({BasicSpec()}, 1, &policy);
  world.Run({{kHour, 0}});
  ASSERT_EQ(world.store.pods().size(), 1u);
  const auto& pod = world.store.pods()[0];
  EXPECT_EQ(pod.death_time, pod.last_busy_end + 5 * kSecond);
}

TEST(PlatformTest, CrossRegionRoutingExecutesElsewhere) {
  struct RouteToR2 : PlatformPolicy {
    trace::RegionId RouteColdStart(const FunctionSpec&, SimTime) override { return 1; }
  } policy;
  // Two regions needed.
  workload::Calendar::Options copts;
  copts.trace_days = 1;
  const workload::Calendar cal(copts);
  auto profiles = std::vector<workload::RegionProfile>{
      workload::DefaultRegionProfiles()[0], workload::DefaultRegionProfiles()[1]};
  workload::Population pop;
  pop.functions = {BasicSpec()};
  pop.num_users = 1;
  pop.region_begin = {0, 1, 1};
  sim::Simulator sim;
  trace::TraceStore store;
  Platform::Options opts;
  opts.seed = 21;
  Platform platform(pop, profiles, cal, sim, store, opts, &policy);
  platform.InjectArrivals({{kHour, 0}});
  sim.RunUntil(cal.horizon());
  platform.Finalize();
  store.Seal();
  ASSERT_EQ(store.cold_starts().size(), 1u);
  EXPECT_EQ(store.cold_starts()[0].region, 1);  // Executed in R2.
  EXPECT_EQ(platform.cold_starts(1), 1);
  EXPECT_EQ(platform.cold_starts(0), 0);
}

TEST(PlatformTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    FunctionSpec f = BasicSpec();
    f.exec_sigma = 0.8;
    TinyWorld world({f});
    std::vector<workload::ArrivalEvent> arrivals;
    for (int i = 0; i < 50; ++i) {
      arrivals.push_back({kHour + i * 40 * kSecond, 0});
    }
    world.Run(arrivals);
    return std::pair{world.store.cold_starts().size(),
                     world.store.pods()[0].cold_start_us};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PlatformTest, ArrivalAtTimeZeroHandled) {
  // Regression: the day-batch starter wakes at the day boundary (t=0 for day 0),
  // so an arrival at exactly t=0 must still be opened and delivered by the
  // cursor rather than lost to a starter scheduled in its past.
  TinyWorld world({BasicSpec()});
  world.Run({{0, 0}, {kSecond, 0}});
  EXPECT_EQ(world.store.requests().size(), 2u);
  EXPECT_EQ(world.store.cold_starts().size(), 1u);
  EXPECT_EQ(world.store.cold_starts()[0].timestamp, 0);
}

TEST(PlatformTest, CountersBitIdenticalAcrossRuns) {
  // Same seed => bit-identical aggregate counters, request stream, and event
  // count across two full runs (burstier workload than DeterministicAcrossRuns:
  // concurrency overflow, keep-alive expiry, and workflow fan-out all engage).
  auto run_once = [] {
    FunctionSpec parent = BasicSpec();
    parent.exec_sigma = 0.8;
    parent.exec_median_us = 5e6;
    parent.pod_concurrency = 2;
    FunctionSpec child = BasicSpec();
    child.id = 1;
    child.kind = ArrivalKind::kWorkflowChild;
    child.primary_trigger = Trigger::kWorkflowSync;
    child.exec_sigma = 0.5;
    parent.children.push_back({1, 0.5});
    TinyWorld world({parent, child});
    std::vector<workload::ArrivalEvent> arrivals;
    for (int i = 0; i < 200; ++i) {
      arrivals.push_back({kHour + i * 7 * kSecond, 0});
    }
    world.Run(arrivals);
    return std::tuple{world.platform->total_cold_starts(),
                      world.platform->pods_created(),
                      world.sim.events_processed(),
                      world.store.requests().size(),
                      world.store.pods().back().death_time};
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- Pod slab. ---

TEST(PodSlabTest, AllocateResolveFreeCycle) {
  Slab<Pod> slab;
  auto [pod, handle] = slab.Allocate();
  ASSERT_NE(pod, nullptr);
  pod->id = 42;
  EXPECT_EQ(slab.Resolve(handle), pod);
  EXPECT_EQ(slab.alive_count(), 1u);
  slab.Free(handle);
  EXPECT_EQ(slab.alive_count(), 0u);
  EXPECT_EQ(slab.Resolve(handle), nullptr);  // Stale handle detected.
}

TEST(PodSlabTest, RecycledSlotInvalidatesOldHandle) {
  Slab<Pod> slab;
  auto [pod1, h1] = slab.Allocate();
  pod1->id = 1;
  slab.Free(h1);
  auto [pod2, h2] = slab.Allocate();  // LIFO freelist: same slot, new generation.
  EXPECT_EQ(pod1, pod2);
  EXPECT_EQ(h1.index, h2.index);
  EXPECT_NE(h1.gen, h2.gen);
  EXPECT_EQ(slab.Resolve(h1), nullptr);
  EXPECT_EQ(slab.Resolve(h2), pod2);
  EXPECT_EQ(pod2->id, 0u);  // Slot is value-reset on reuse.
}

TEST(PodSlabTest, PointersStableAcrossGrowth) {
  Slab<Pod> slab;
  std::vector<std::pair<Pod*, SlabHandle>> all;
  for (int i = 0; i < 5000; ++i) {
    all.push_back(slab.Allocate());
    all.back().first->id = static_cast<trace::PodId>(i);
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(slab.Resolve(all[static_cast<size_t>(i)].second),
              all[static_cast<size_t>(i)].first);
    EXPECT_EQ(all[static_cast<size_t>(i)].first->id,
              static_cast<trace::PodId>(i));
  }
}

TEST(PodSlabTest, ForEachAliveVisitsInIndexOrder) {
  Slab<Pod> slab;
  std::vector<SlabHandle> handles;
  for (int i = 0; i < 10; ++i) {
    auto [pod, h] = slab.Allocate();
    pod->id = static_cast<trace::PodId>(i);
    handles.push_back(h);
  }
  slab.Free(handles[3]);
  slab.Free(handles[7]);
  std::vector<trace::PodId> seen;
  slab.ForEachAlive([&seen](Pod& pod) { seen.push_back(pod.id); });
  EXPECT_EQ(seen, (std::vector<trace::PodId>{0, 1, 2, 4, 5, 6, 8, 9}));
}

}  // namespace
}  // namespace coldstart::platform
