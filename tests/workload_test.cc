// Tests for calendar, diurnal profiles, population generation, and arrivals —
// including the statistical properties the replay subsystem leans on: sorted
// in-horizon streams, per-region rates that track the diurnal-profile integral,
// and bit-identical regeneration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "workload/arrival_stream.h"
#include "workload/arrivals.h"
#include "workload/population.h"
#include "workload/workload_source.h"

namespace coldstart::workload {
namespace {

TEST(CalendarTest, HolidayWindow) {
  const Calendar cal;
  EXPECT_FALSE(cal.IsHoliday(13));
  EXPECT_TRUE(cal.IsHoliday(14));
  EXPECT_TRUE(cal.IsHoliday(23));
  EXPECT_FALSE(cal.IsHoliday(24));
  EXPECT_EQ(cal.last_workday_before_holiday(), 13);
  EXPECT_EQ(cal.first_workday_after_holiday(), 24);
}

TEST(CalendarTest, WeekendsWithTuesdayStart) {
  const Calendar cal;  // Day 0 is a Tuesday.
  EXPECT_FALSE(cal.IsWeekend(0));   // Tuesday.
  EXPECT_TRUE(cal.IsWeekend(4));    // Saturday.
  EXPECT_TRUE(cal.IsWeekend(5));    // Sunday.
  EXPECT_FALSE(cal.IsWeekend(6));   // Monday.
  EXPECT_FALSE(cal.IsWeekend(13));  // Last pre-holiday workday is a weekday.
  EXPECT_FALSE(cal.IsWeekend(24));  // First post-holiday workday is a weekday.
}

TEST(CalendarTest, HorizonMatchesDays) {
  Calendar::Options opts;
  opts.trace_days = 7;
  const Calendar cal(opts);
  EXPECT_EQ(cal.horizon(), 7 * kDay);
}

TEST(DiurnalTest, DayShapePeaksAtConfiguredHour) {
  DiurnalParams params;
  params.bumps = {{14.0, 1.0, 5.0}};
  params.floor = 0.2;
  const DiurnalProfile profile(params, Calendar{});
  EXPECT_NEAR(profile.DayShape(14.0), 1.0, 1e-6);  // Normalized peak.
  EXPECT_LT(profile.DayShape(2.0), 0.4);
}

TEST(DiurnalTest, WeekendFactorApplies) {
  DiurnalParams params;
  params.weekend_factor = 0.7;
  const DiurnalProfile profile(params, Calendar{});
  EXPECT_DOUBLE_EQ(profile.DayLevel(0), 1.0);
  EXPECT_DOUBLE_EQ(profile.DayLevel(5), 0.7);
}

TEST(DiurnalTest, HolidayDipAndCatchUp) {
  DiurnalParams params;
  params.holiday = HolidayResponse::kDipWithCatchUp;
  params.holiday_level = 0.5;
  params.pre_holiday_boost = 1.2;
  params.catch_up_boost = 1.4;
  const DiurnalProfile profile(params, Calendar{});
  EXPECT_NEAR(profile.DayLevel(13), 1.2, 1e-9);   // Last-workday rush.
  EXPECT_LE(profile.DayLevel(17), 0.5 + 1e-9);    // Mid-holiday.
  EXPECT_GT(profile.DayLevel(24), 1.2);           // Catch-up.
  EXPECT_GT(profile.DayLevel(24), profile.DayLevel(26));  // Decays.
}

TEST(DiurnalTest, RisePatternIncreasesDuringHoliday) {
  DiurnalParams params;
  params.holiday = HolidayResponse::kRise;
  params.holiday_level = 1.3;
  const DiurnalProfile profile(params, Calendar{});
  EXPECT_GT(profile.DayLevel(17), profile.DayLevel(10));
}

TEST(DiurnalTest, NoneIgnoresHoliday) {
  DiurnalParams params;
  params.holiday = HolidayResponse::kNone;
  const DiurnalProfile profile(params, Calendar{});
  EXPECT_DOUBLE_EQ(profile.DayLevel(17), profile.DayLevel(3));
}

class PopulationTest : public ::testing::Test {
 protected:
  static const Population& Pop() {
    static const Population pop =
        GeneratePopulation(DefaultRegionProfiles(), /*seed=*/42);
    return pop;
  }
};

TEST_F(PopulationTest, CountsMatchProfiles) {
  const auto& profiles = DefaultRegionProfiles();
  int expected = 0;
  for (const auto& p : profiles) {
    expected += p.num_functions;
  }
  EXPECT_EQ(Pop().functions.size(), static_cast<size_t>(expected));
  ASSERT_EQ(Pop().region_begin.size(), profiles.size() + 1);
  EXPECT_EQ(Pop().region_begin.back(), Pop().functions.size());
}

TEST_F(PopulationTest, DeterministicInSeed) {
  const Population a = GeneratePopulation(DefaultRegionProfiles(), 7);
  const Population b = GeneratePopulation(DefaultRegionProfiles(), 7);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].runtime, b.functions[i].runtime);
    EXPECT_EQ(a.functions[i].primary_trigger, b.functions[i].primary_trigger);
    EXPECT_DOUBLE_EQ(a.functions[i].base_rate_per_day, b.functions[i].base_rate_per_day);
  }
}

TEST_F(PopulationTest, RuntimeMixWithinTolerance) {
  // R2's Python3 share should be near its 0.38 weight.
  const auto& pop = Pop();
  int py3 = 0, total = 0;
  for (uint32_t i = pop.region_begin[1]; i < pop.region_begin[2]; ++i) {
    total += 1;
    py3 += pop.functions[i].runtime == trace::Runtime::kPython3 ? 1 : 0;
  }
  const double share = static_cast<double>(py3) / total;
  EXPECT_GT(share, 0.30);
  EXPECT_LT(share, 0.46);
}

TEST_F(PopulationTest, TimerShareInBand) {
  const auto& pop = Pop();
  int timers = 0, total = 0;
  for (uint32_t i = pop.region_begin[1]; i < pop.region_begin[2]; ++i) {
    total += 1;
    timers += pop.functions[i].primary_trigger == trace::Trigger::kTimer ? 1 : 0;
  }
  const double share = static_cast<double>(timers) / total;
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.60);
}

TEST_F(PopulationTest, TimersHaveValidPeriodsAndFlatDiurnal) {
  for (const auto& f : Pop().functions) {
    if (f.kind == ArrivalKind::kTimer) {
      EXPECT_GT(f.timer_period, 0);
      EXPECT_DOUBLE_EQ(f.diurnal_exponent, 0.0);
    }
  }
}

TEST_F(PopulationTest, WorkflowChildrenAreWiredToParents) {
  const auto& pop = Pop();
  std::set<trace::FunctionId> children_with_parents;
  for (const auto& f : pop.functions) {
    for (const auto& edge : f.children) {
      EXPECT_GT(edge.probability, 0.0);
      EXPECT_LE(edge.probability, 1.0);
      // Parent and child live in the same region.
      EXPECT_EQ(pop.functions[edge.child].region, f.region);
      children_with_parents.insert(edge.child);
    }
  }
  int workflow_children = 0;
  for (const auto& f : pop.functions) {
    if (f.kind == ArrivalKind::kWorkflowChild) {
      ++workflow_children;
      EXPECT_TRUE(children_with_parents.count(f.id) == 1);
    }
  }
  EXPECT_GT(workflow_children, 20);
}

TEST_F(PopulationTest, CpuWithinConfigLimits) {
  for (const auto& f : Pop().functions) {
    EXPECT_LE(f.cpu_mean_cores,
              static_cast<double>(CpuMillicoresOf(f.config)) / 1000.0 + 1e-9);
    EXPECT_GT(f.cpu_mean_cores, 0.0);
  }
}

TEST_F(PopulationTest, UsersOwnAtLeastOneFunction) {
  const auto& pop = Pop();
  std::set<uint32_t> users;
  for (const auto& f : pop.functions) {
    users.insert(f.user);
  }
  EXPECT_EQ(users.size(), pop.num_users);
}

TEST(ArrivalsTest, TimerArrivalsAreExactlyPeriodic) {
  FunctionSpec spec;
  spec.kind = ArrivalKind::kTimer;
  spec.timer_period = kHour;
  Calendar::Options opts;
  opts.trace_days = 2;
  const Calendar cal(opts);
  const DiurnalProfile profile(DiurnalParams{}, cal);
  const auto times = GenerateFunctionArrivals(spec, profile, cal, Rng(5));
  EXPECT_EQ(times.size(), 48u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], kHour);
  }
}

TEST(ArrivalsTest, PoissonRateApproximatelyHonored) {
  FunctionSpec spec;
  spec.kind = ArrivalKind::kModulatedPoisson;
  spec.base_rate_per_day = 500;
  spec.diurnal_exponent = 0.0;  // Flat: realized = base x day level.
  Calendar::Options opts;
  opts.trace_days = 5;  // All weekdays, before the holiday.
  const Calendar cal(opts);
  const DiurnalProfile profile(DiurnalParams{}, cal);
  const auto times = GenerateFunctionArrivals(spec, profile, cal, Rng(6));
  EXPECT_NEAR(static_cast<double>(times.size()), 2500.0, 150.0);
}

TEST(ArrivalsTest, RegularArrivalsBoundGaps) {
  FunctionSpec spec;
  spec.kind = ArrivalKind::kModulatedPoisson;
  spec.base_rate_per_day = 2880;  // 2/minute.
  spec.diurnal_exponent = 0.0;
  spec.regular_arrivals = true;
  Calendar::Options opts;
  opts.trace_days = 1;
  const Calendar cal(opts);
  const DiurnalProfile profile(DiurnalParams{}, cal);
  const auto times = GenerateFunctionArrivals(spec, profile, cal, Rng(7));
  ASSERT_GT(times.size(), 100u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i] - times[i - 1], 40 * kSecond);  // 30s nominal, 20% jitter.
  }
}

TEST(ArrivalsTest, SortedAndWithinHorizon) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 3);
  Calendar::Options opts;
  opts.trace_days = 2;
  const Calendar cal(opts);
  const auto events = GenerateArrivals(pop, profiles, cal, 3);
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  EXPECT_GE(events.front().time, 0);
  EXPECT_LT(events.back().time, cal.horizon());
}

TEST(ArrivalsTest, DeterministicInSeed) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 3);
  Calendar::Options opts;
  opts.trace_days = 1;
  const Calendar cal(opts);
  const auto a = GenerateArrivals(pop, profiles, cal, 11);
  const auto b = GenerateArrivals(pop, profiles, cal, 11);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].function, b[i].function);
  }
}

// --- Statistical properties of the full generator. ---

TEST(ArrivalsStatsTest, SortedWithinHorizonInEveryRegion) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 17);
  Calendar::Options opts;
  opts.trace_days = 3;
  const Calendar cal(opts);
  const auto events = GenerateArrivals(pop, profiles, cal, 17);
  ASSERT_FALSE(events.empty());
  std::vector<int64_t> per_region(profiles.size(), 0);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      ASSERT_LE(events[i - 1].time, events[i].time) << "unsorted at " << i;
    }
    ASSERT_GE(events[i].time, 0);
    ASSERT_LT(events[i].time, cal.horizon());
    ASSERT_LT(events[i].function, pop.functions.size());
    ++per_region[pop.functions[events[i].function].region];
  }
  for (size_t r = 0; r < per_region.size(); ++r) {
    EXPECT_GT(per_region[r], 0) << "region " << r << " generated no arrivals";
  }
}

TEST(ArrivalsStatsTest, PerRegionRateMatchesDiurnalIntegral) {
  // A controlled population — plain modulated-Poisson functions, personality
  // exponent 1, no bursts — whose expected count has a closed form: the hourly
  // integral of base_rate/24 * DayShape^1 * DayLevel, exactly the envelope the
  // generator samples under. Empirical per-region counts must land within
  // Poisson noise of that integral.
  Calendar::Options opts;
  opts.trace_days = 7;
  const Calendar cal(opts);
  const auto& defaults = DefaultRegionProfiles();
  const std::vector<RegionProfile> profiles = {defaults[0], defaults[1]};
  constexpr int kPerRegion = 40;
  constexpr double kRatePerDay = 300.0;

  Population pop;
  pop.num_users = 1;
  pop.region_begin.push_back(0);
  for (size_t r = 0; r < profiles.size(); ++r) {
    for (int i = 0; i < kPerRegion; ++i) {
      FunctionSpec f;
      f.id = static_cast<trace::FunctionId>(pop.functions.size());
      f.region = static_cast<trace::RegionId>(r);
      f.kind = ArrivalKind::kModulatedPoisson;
      f.base_rate_per_day = kRatePerDay;
      f.diurnal_exponent = 1.0;
      pop.functions.push_back(f);
    }
    pop.region_begin.push_back(static_cast<uint32_t>(pop.functions.size()));
  }

  const auto events = GenerateArrivals(pop, profiles, cal, 99);
  std::vector<double> observed(profiles.size(), 0);
  for (const auto& e : events) {
    observed[pop.functions[e.function].region] += 1;
  }

  for (size_t r = 0; r < profiles.size(); ++r) {
    const DiurnalProfile profile(profiles[r].diurnal, cal);
    double expected_per_function = 0;
    for (int64_t h = 0; h < cal.trace_days() * 24; ++h) {
      const double hour_mid = static_cast<double>(h % 24) + 0.5;
      expected_per_function +=
          kRatePerDay / 24.0 * profile.DayShape(hour_mid) * profile.DayLevel(h / 24);
    }
    const double expected = kPerRegion * expected_per_function;
    ASSERT_GT(expected, 1000.0);
    // 5 sigma of Poisson noise: a false failure is a ~1e-6 event.
    EXPECT_NEAR(observed[r], expected, 5.0 * std::sqrt(expected))
        << "region " << r << " empirical rate drifted from the diurnal integral";
  }
}

TEST(ArrivalsStatsTest, BitIdenticalAcrossRepeatedCalls) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 23);
  Calendar::Options opts;
  opts.trace_days = 2;
  const Calendar cal(opts);
  const auto a = GenerateArrivals(pop, profiles, cal, 23);
  const auto b = GenerateArrivals(pop, profiles, cal, 23);
  // Through the WorkloadSource interface as well: the synthetic source is a
  // transparent wrapper, so all three streams must agree element for element.
  const SyntheticSource source;
  const auto c = source.Arrivals(pop, profiles, cal, 23);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].time, b[i].time) << i;
    ASSERT_EQ(a[i].function, b[i].function) << i;
    ASSERT_EQ(a[i].time, c[i].time) << i;
    ASSERT_EQ(a[i].function, c[i].function) << i;
  }
  // And a different seed actually changes the stream.
  const auto d = GenerateArrivals(pop, profiles, cal, 24);
  EXPECT_TRUE(d.size() != a.size() ||
              !std::equal(a.begin(), a.end(), d.begin(),
                          [](const ArrivalEvent& x, const ArrivalEvent& y) {
                            return x.time == y.time && x.function == y.function;
                          }));
}

// --- Chunked arrival streaming (workload/arrival_stream.h). ---
//
// The contracts the platform's day-batch injector leans on: day-ordered chunks
// whose sorted events partition the eager vector at day boundaries, bit-identical
// regeneration of any window from a fresh stream, and region-filtered streams
// that partition the full one (what each experiment shard pulls).

std::vector<ArrivalChunk> CollectChunks(ArrivalStream& stream) {
  std::vector<ArrivalChunk> chunks;
  ArrivalChunk chunk;
  while (stream.NextChunk(&chunk)) {
    chunks.push_back(chunk);
  }
  return chunks;
}

void ExpectChunkInvariants(const std::vector<ArrivalChunk>& chunks,
                           const Calendar& cal) {
  ASSERT_EQ(chunks.size(), static_cast<size_t>(NumDayChunks(cal)));
  for (size_t d = 0; d < chunks.size(); ++d) {
    ASSERT_EQ(chunks[d].day, static_cast<int64_t>(d));
    const auto& events = chunks[d].events;
    for (size_t i = 0; i < events.size(); ++i) {
      ASSERT_GE(events[i].time, static_cast<SimTime>(d) * kDay);
      ASSERT_LT(events[i].time,
                std::min<SimTime>(static_cast<SimTime>(d + 1) * kDay, cal.horizon()));
      if (i > 0) {
        // Sorted by (time, function) within the chunk.
        ASSERT_TRUE(events[i - 1].time < events[i].time ||
                    (events[i - 1].time == events[i].time &&
                     events[i - 1].function <= events[i].function))
            << "chunk " << d << " unsorted at " << i;
      }
    }
  }
}

std::vector<ArrivalEvent> Concat(const std::vector<ArrivalChunk>& chunks) {
  std::vector<ArrivalEvent> out;
  for (const auto& c : chunks) {
    out.insert(out.end(), c.events.begin(), c.events.end());
  }
  return out;
}

void ExpectSameEvents(const std::vector<ArrivalEvent>& a,
                      const std::vector<ArrivalEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].time, b[i].time) << i;
    ASSERT_EQ(a[i].function, b[i].function) << i;
  }
}

TEST(ArrivalStreamTest, SyntheticChunksPartitionTheEagerVector) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 31);
  Calendar::Options opts;
  opts.trace_days = 3;
  const Calendar cal(opts);
  const SyntheticSource source;
  const auto eager = source.Arrivals(pop, profiles, cal, 31);

  auto stream = source.OpenStream(pop, profiles, cal, 31);
  const auto chunks = CollectChunks(*stream);
  ExpectChunkInvariants(chunks, cal);
  ExpectSameEvents(Concat(chunks), eager);
  // The split is real: every day carries load (timers alone guarantee it), so
  // arrival processes straddle both chunk boundaries.
  for (const auto& c : chunks) {
    EXPECT_FALSE(c.events.empty()) << "day " << c.day;
  }
}

TEST(ArrivalStreamTest, DayBoundaryStraddleKeepsCursorStateContinuous) {
  // A 7-hour timer is never day-aligned: ticks straddle midnight, and the split
  // windows must contain exactly the whole-horizon sequence — the cursor carries
  // its phase across the boundary instead of re-drawing it.
  FunctionSpec spec;
  spec.kind = ArrivalKind::kTimer;
  spec.timer_period = 7 * kHour;
  Calendar::Options opts;
  opts.trace_days = 3;
  const Calendar cal(opts);
  const DiurnalProfile profile(DiurnalParams{}, cal);
  const auto whole = GenerateFunctionArrivals(spec, profile, cal, Rng(9));

  FunctionArrivalCursor cursor(spec, profile, cal, Rng(9));
  std::vector<SimTime> split;
  std::vector<size_t> day_first_index;
  for (int64_t d = 0; d < NumDayChunks(cal); ++d) {
    day_first_index.push_back(split.size());
    cursor.EmitDay(d, split);
  }
  ASSERT_EQ(split, whole);
  // Continuity across the day-0/day-1 boundary: the first tick of day 1 is
  // exactly one period after the last tick of day 0 (nothing re-phased), and it
  // is not day-aligned (the straddle is real).
  ASSERT_GT(day_first_index[1], 0u);
  ASSERT_LT(day_first_index[1], split.size());
  EXPECT_EQ(split[day_first_index[1]] - split[day_first_index[1] - 1],
            spec.timer_period);
  EXPECT_NE(split[day_first_index[1]] % kDay, 0);
}

TEST(ArrivalStreamTest, OutOfOrderWindowRegeneratesBitIdentically) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 31);
  Calendar::Options opts;
  opts.trace_days = 4;
  const Calendar cal(opts);
  const SyntheticSource source;

  auto sequential = source.OpenStream(pop, profiles, cal, 31);
  const auto chunks = CollectChunks(*sequential);
  ASSERT_EQ(chunks.size(), 4u);

  // Regenerate day 2 "out of order": a fresh stream fast-forwarded past days 0-1.
  // Determinism in the construction arguments makes the windows bit-identical.
  auto reopened = source.OpenStream(pop, profiles, cal, 31);
  ArrivalChunk chunk;
  for (int skip = 0; skip < 2; ++skip) {
    ASSERT_TRUE(reopened->NextChunk(&chunk));
  }
  ASSERT_TRUE(reopened->NextChunk(&chunk));
  ASSERT_EQ(chunk.day, 2);
  ExpectSameEvents(chunk.events, chunks[2].events);
}

TEST(ArrivalStreamTest, RegionFilteredStreamsPartitionTheFullStream) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 31);
  Calendar::Options opts;
  opts.trace_days = 2;
  const Calendar cal(opts);
  const SyntheticSource source;

  auto full = source.OpenStream(pop, profiles, cal, 31);
  const auto full_chunks = CollectChunks(*full);

  size_t filtered_total = 0;
  for (size_t r = 0; r < profiles.size(); ++r) {
    auto filtered = source.OpenStream(pop, profiles, cal, 31,
                                      static_cast<trace::RegionId>(r));
    const auto region_chunks = CollectChunks(*filtered);
    ASSERT_EQ(region_chunks.size(), full_chunks.size());
    for (size_t d = 0; d < full_chunks.size(); ++d) {
      // The filtered chunk is the order-preserving subsequence of the full one.
      std::vector<ArrivalEvent> expected;
      for (const auto& e : full_chunks[d].events) {
        if (pop.functions[e.function].region == r) {
          expected.push_back(e);
        }
      }
      ExpectSameEvents(region_chunks[d].events, expected);
      filtered_total += region_chunks[d].events.size();
    }
  }
  EXPECT_EQ(filtered_total, Concat(full_chunks).size());
}

TEST(ArrivalStreamTest, MaterializedStreamRoundTrips) {
  const auto& profiles = DefaultRegionProfiles();
  const Population pop = GeneratePopulation(profiles, 5);
  Calendar::Options opts;
  opts.trace_days = 2;
  const Calendar cal(opts);
  const auto eager = GenerateArrivals(pop, profiles, cal, 5);

  MaterializedArrivalStream stream(eager, NumDayChunks(cal));
  const auto chunks = CollectChunks(stream);
  ExpectChunkInvariants(chunks, cal);
  ExpectSameEvents(Concat(chunks), eager);
}

TEST(ScaledProfileTest, ScalesFunctionsAndPools) {
  const RegionProfile base = DefaultRegionProfiles()[0];
  const RegionProfile half = ScaledProfile(base, 0.5);
  EXPECT_EQ(half.num_functions, base.num_functions / 2);
  EXPECT_LE(half.pool_base_size[0], base.pool_base_size[0]);
  EXPECT_GE(half.pool_base_size[6], 1);
}

TEST(RuntimeTraitsTest, CalibratedShape) {
  EXPECT_FALSE(TraitsOf(trace::Runtime::kCustom).pool_backed);
  EXPECT_GT(TraitsOf(trace::Runtime::kHttp).alloc_extra_s, 5.0);
  EXPECT_GT(TraitsOf(trace::Runtime::kNodeJs).sched_factor,
            TraitsOf(trace::Runtime::kGo1x).sched_factor * 3);
  EXPECT_GT(TraitsOf(trace::Runtime::kGo1x).dep_factor,
            TraitsOf(trace::Runtime::kPython3).dep_factor);
}

}  // namespace
}  // namespace coldstart::workload
