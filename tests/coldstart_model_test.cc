// Cold-start model layer: provider presets, the snapshot-restore decorator,
// model-state checkpointing, fingerprint coverage, and the model-matrix
// determinism pin — for every preset, serial == region-sharded == sub-region
// K=4, down to streaming-aggregate bytes and cost-ledger bits.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>

#include "common/byte_serde.h"
#include "core/coldstart_lab.h"

namespace coldstart {
namespace {

namespace fs = std::filesystem;

using core::Experiment;
using core::ExperimentResult;
using core::ScenarioConfig;
using platform::ColdStartComponents;
using platform::ColdStartModel;
using platform::MakeColdStartModel;
using platform::RegionLoadState;
using platform::ResourcePool;
using platform::SnapshotRestoreModel;
using platform::YuanRongModel;
using workload::ColdStartModelKind;

// --- Direct model behavior. ------------------------------------------------

double MeanTotalSeconds(ColdStartModel& model, int draws) {
  ResourcePool pool(100, 10.0);
  RegionLoadState load;
  workload::FunctionSpec spec;
  spec.code_size_kb = 2048;
  spec.dep_size_kb = 4096;
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < draws; ++i) {
    sum += ToSeconds(model.Compute(spec, pool, load, kHour, rng).total());
    pool.Release(kHour);
  }
  return sum / draws;
}

TEST(ProviderModels, PresetColdStartsFollowPublishedOrdering) {
  const workload::RegionProfile profile = workload::DefaultRegionProfiles()[0];
  const workload::Calendar calendar;
  auto aws = platform::MakeAwsLikeModel(profile, calendar);
  auto gcp = platform::MakeGcpLikeModel(profile, calendar);
  auto azure = platform::MakeAzureLikeModel(profile, calendar);
  EXPECT_EQ(aws->name(), "aws-like");
  EXPECT_EQ(gcp->name(), "gcp-like");
  EXPECT_EQ(azure->name(), "azure-like");

  const double aws_mean = MeanTotalSeconds(*aws, 300);
  const double gcp_mean = MeanTotalSeconds(*gcp, 300);
  const double azure_mean = MeanTotalSeconds(*azure, 300);
  // Published cold-start benchmarks order the providers AWS < GCP < Azure for
  // pool-backed runtimes; the presets must preserve that ordering with margin.
  EXPECT_LT(aws_mean * 2, gcp_mean);
  EXPECT_LT(gcp_mean, azure_mean);
  EXPECT_LT(aws_mean, 1.0);   // Sub-second typical AWS cold start.
  EXPECT_GT(azure_mean, 2.0);  // Multi-second Azure cold start.
}

TEST(SnapshotRestore, CollapsesInitComponentsIntoRestoreTerm) {
  const workload::RegionProfile profile = workload::DefaultRegionProfiles()[0];
  const workload::Calendar calendar;
  SnapshotRestoreModel::Options opts;
  opts.restore_base_s = 0.1;
  opts.restore_bandwidth_mb_per_s = 1000;
  opts.restore_sigma = 0.0;  // Deterministic restore for exact assertions.
  opts.snapshot_memory_mb = 400;
  SnapshotRestoreModel model(
      std::make_unique<YuanRongModel>(profile, calendar), opts);
  EXPECT_EQ(model.name(), "snapshot(yuanrong)");
  EXPECT_DOUBLE_EQ(model.snapshot_memory_mb_per_pod(), 400.0);

  ResourcePool pool(100, 10.0);
  RegionLoadState load;
  workload::FunctionSpec spec;
  spec.dep_size_kb = 8192;  // Would cost a dep deploy without the snapshot.
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const ColdStartComponents c = model.Compute(spec, pool, load, 0, rng);
    EXPECT_EQ(c.deploy_dep, 0);  // Snapshot already holds initialized layers.
    // restore = base + mb / bandwidth = 0.1 + 0.4 = 0.5 s, sigma 0.
    EXPECT_EQ(c.deploy_code, FromSeconds(0.5));
    EXPECT_GT(c.pod_alloc, 0);   // Alloc/scheduling stay the provider's own.
    EXPECT_GT(c.scheduling, 0);
    pool.Release(0);
  }
  EXPECT_EQ(model.restores(), 50);
}

TEST(SnapshotRestore, ModelStateSurvivesSerdeAndCloneStartsFresh) {
  const workload::RegionProfile profile = workload::DefaultRegionProfiles()[0];
  const workload::Calendar calendar;
  SnapshotRestoreModel model(
      std::make_unique<YuanRongModel>(profile, calendar), {});
  ResourcePool pool(10, 1.0);
  RegionLoadState load;
  workload::FunctionSpec spec;
  Rng rng(5);
  for (int i = 0; i < 7; ++i) {
    model.Compute(spec, pool, load, 0, rng);
    pool.Release(0);
  }
  EXPECT_EQ(model.restores(), 7);

  // Clone copies configuration, not accumulated state: each (region, cell)
  // instance counts its own restores.
  auto clone = model.Clone();
  EXPECT_EQ(static_cast<SnapshotRestoreModel&>(*clone).restores(), 0);
  EXPECT_EQ(clone->name(), model.name());

  // Serde round-trip restores the counter exactly.
  ByteWriter w;
  model.SaveModelState(w);
  ByteReader r(w.data());
  clone->RestoreModelState(r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(static_cast<SnapshotRestoreModel&>(*clone).restores(), 7);
}

TEST(ProviderModels, FactoryHonorsProfileModelConfig) {
  const workload::Calendar calendar;
  workload::RegionProfile profile = workload::DefaultRegionProfiles()[0];
  EXPECT_EQ(MakeColdStartModel(profile, calendar)->name(), "yuanrong");
  profile.model.kind = ColdStartModelKind::kGcpLike;
  EXPECT_EQ(MakeColdStartModel(profile, calendar)->name(), "gcp-like");
  profile.model.snapshot_restore = true;
  EXPECT_EQ(MakeColdStartModel(profile, calendar)->name(), "snapshot(gcp-like)");
  EXPECT_GT(MakeColdStartModel(profile, calendar)->snapshot_memory_mb_per_pod(), 0);
}

// --- Fingerprint coverage (cache/checkpoint invalidation). -----------------

TEST(ProviderModels, ModelSelectionEntersScenarioFingerprint) {
  const ScenarioConfig base = core::SmallScenario();
  const uint64_t base_fp = base.Fingerprint();

  ScenarioConfig kind = base;
  kind.profiles[0].model.kind = ColdStartModelKind::kAwsLike;
  EXPECT_NE(kind.Fingerprint(), base_fp);

  ScenarioConfig snapshot = base;
  snapshot.profiles[0].model.snapshot_restore = true;
  EXPECT_NE(snapshot.Fingerprint(), base_fp);
  EXPECT_NE(snapshot.Fingerprint(), kind.Fingerprint());

  ScenarioConfig tuned = snapshot;
  tuned.profiles[0].model.snapshot_memory_mb = 999.0;
  EXPECT_NE(tuned.Fingerprint(), snapshot.Fingerprint());
}

// --- Model matrix: every preset is bit-identical across geometries. --------

ScenarioConfig MatrixScenario(ColdStartModelKind kind, bool snapshot) {
  ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.2;
  config.record_requests = false;
  config.cells_per_region = 4;
  config.trace_mode = core::TraceMode::kStreaming;
  for (auto& profile : config.profiles) {
    profile.model.kind = kind;
    profile.model.snapshot_restore = snapshot;
  }
  return config;
}

std::string StreamingBytes(const ExperimentResult& result) {
  ByteWriter w;
  result.streaming.SaveState(w);
  return w.Take();
}

std::string LedgerBytes(const ExperimentResult& result) {
  ByteWriter w;
  result.cost_ledger.SaveState(w);
  return w.Take();
}

TEST(ModelMatrix, EveryPresetBitIdenticalAcrossGeometries) {
  const struct {
    ColdStartModelKind kind;
    bool snapshot;
    const char* label;
  } kMatrix[] = {
      {ColdStartModelKind::kYuanRong, false, "yuanrong"},
      {ColdStartModelKind::kAwsLike, false, "aws-like"},
      {ColdStartModelKind::kGcpLike, false, "gcp-like"},
      {ColdStartModelKind::kAzureLike, false, "azure-like"},
      {ColdStartModelKind::kYuanRong, true, "snapshot(yuanrong)"},
  };
  for (const auto& entry : kMatrix) {
    SCOPED_TRACE(entry.label);
    const Experiment experiment(MatrixScenario(entry.kind, entry.snapshot));
    ASSERT_TRUE(experiment.CanShard(nullptr));
    // 5 regions: 1 thread = serial, 5 = region-sharded (K=1), 20 = K=4.
    const ExperimentResult serial = experiment.Run(nullptr, 1);
    const ExperimentResult region_sharded = experiment.Run(nullptr, 5);
    const ExperimentResult k4 = experiment.Run(nullptr, 20);

    EXPECT_EQ(serial.visible_cold_starts, region_sharded.visible_cold_starts);
    EXPECT_EQ(serial.visible_cold_starts, k4.visible_cold_starts);
    EXPECT_EQ(serial.cold_start_latency_sum_us, k4.cold_start_latency_sum_us);
    EXPECT_EQ(serial.scratch_allocations, k4.scratch_allocations);

    // Byte-level: full streaming aggregate state (counters, histograms, cost
    // rows) and the experiment's cost ledger, at every geometry.
    const std::string serial_stream = StreamingBytes(serial);
    EXPECT_EQ(serial_stream, StreamingBytes(region_sharded));
    EXPECT_EQ(serial_stream, StreamingBytes(k4));
    const std::string serial_ledger = LedgerBytes(serial);
    EXPECT_EQ(serial_ledger, LedgerBytes(region_sharded));
    EXPECT_EQ(serial_ledger, LedgerBytes(k4));

    // The ledger is live: pods ran, so pod-seconds accrued everywhere.
    EXPECT_GT(serial.cost_ledger.TotalRecord().pod_seconds(), 0.0);
    if (entry.snapshot) {
      EXPECT_GT(serial.cost_ledger.TotalRecord().snapshot_mb_seconds(), 0.0);
    } else {
      EXPECT_EQ(serial.cost_ledger.TotalRecord().snapshot_mb_seconds(), 0.0);
    }
  }
}

// --- Checkpoint integration: model identity + state ride the cckpt frame. --

TEST(ModelCheckpoint, SnapshotModelRunResumesBitIdentical) {
  // A stateful model (snapshot-restore counts restores) must checkpoint and
  // resume without perturbing the run — and the checkpoint frame pins model
  // identity, so a resumed run re-attaches the same model per (region, cell).
  ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.scale = 0.05;
  for (auto& profile : config.profiles) {
    profile.model.kind = ColdStartModelKind::kAwsLike;
    profile.model.snapshot_restore = true;
  }
  const Experiment experiment(config);
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 1);

  const std::string dir =
      (fs::temp_directory_path() / "coldstart_model_ckpt_test").string();
  fs::remove_all(dir);
  std::atomic<bool> stop{false};
  core::CheckpointPolicy ckpt;
  ckpt.dir = dir;
  ckpt.stop = &stop;
  ckpt.on_checkpoint = [&stop](int64_t day, uint32_t) {
    if (day >= 1) {
      stop.store(true);
    }
  };
  const ExperimentResult interrupted = experiment.Run(nullptr, 1, &ckpt);
  ASSERT_GT(interrupted.interrupted_at_day, 0);

  const ExperimentResult resumed = experiment.ResumeFrom(dir, nullptr, 1);
  fs::remove_all(dir);
  EXPECT_EQ(resumed.interrupted_at_day, -1);
  ASSERT_GT(uninterrupted.store.cold_starts().size(), 100u);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
  EXPECT_EQ(uninterrupted.visible_cold_starts, resumed.visible_cold_starts);
  ByteWriter a, b;
  uninterrupted.cost_ledger.SaveState(a);
  resumed.cost_ledger.SaveState(b);
  EXPECT_EQ(a.data(), b.data());
}

}  // namespace
}  // namespace coldstart
