// Golden-trace regression test: one end-to-end SmallScenario() run, digested and
// compared against a checked-in golden digest. Any unintended behavioral drift —
// an extra RNG draw, a reordered event, a changed component latency — shows up
// here as a digest mismatch, with instructions to regenerate when the change is
// intentional.
//
// The golden digest covers the full sealed TraceStore (every field of every
// record) plus the per-region platform aggregates, so serial and sharded runs
// must both reproduce it (they are bit-identical by contract).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/coldstart_lab.h"

namespace coldstart {
namespace {

std::string GoldenPath() {
  return std::string(COLDSTART_GOLDEN_DIR) + "/small_scenario.digest";
}

uint64_t AggregateDigest(const core::ExperimentResult& result) {
  uint64_t h = HashString("aggregate-digest-v1");
  const auto mix_vec = [&h](const std::vector<int64_t>& v) {
    h = MixHash(h, v.size());
    for (const int64_t x : v) {
      h = MixHash(h, static_cast<uint64_t>(x));
    }
  };
  mix_vec(result.visible_cold_starts);
  mix_vec(result.prewarm_spawns);
  mix_vec(result.delayed_allocations);
  mix_vec(result.scratch_allocations);
  mix_vec(result.cold_start_latency_sum_us);
  return h;
}

TEST(GoldenTraceTest, SmallScenarioMatchesCheckedInDigest) {
  const core::Experiment experiment(core::SmallScenario());
  const core::ExperimentResult result = experiment.Run();
  ASSERT_GT(result.store.requests().size(), 10000u);

  char digest[64];
  std::snprintf(digest, sizeof(digest), "%016llx-%016llx",
                static_cast<unsigned long long>(trace::Digest(result.store)),
                static_cast<unsigned long long>(AggregateDigest(result)));

  if (std::getenv("COLDSTART_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << digest << "\n";
    out.close();
    GTEST_SKIP() << "golden digest regenerated: " << GoldenPath() << " = " << digest
                 << " — commit the file.";
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << " — generate it with:\n  COLDSTART_UPDATE_GOLDENS=1 ctest -R golden_trace_test";
  std::string expected;
  in >> expected;
  EXPECT_EQ(expected, digest)
      << "SmallScenario() output drifted from the checked-in golden digest.\n"
      << "If this behavioral change is INTENDED, regenerate the golden with:\n"
      << "  COLDSTART_UPDATE_GOLDENS=1 ctest -R golden_trace_test\n"
      << "and commit tests/golden/small_scenario.digest. If it is NOT intended,\n"
      << "a change in this PR perturbed simulation behavior (RNG draw order,\n"
      << "event ordering, or model constants) — find it before shipping.";
}

}  // namespace
}  // namespace coldstart
