// Tests for the analysis layer on hand-built trace stores.
#include <gtest/gtest.h>

#include "analysis/components.h"
#include "analysis/fits.h"
#include "analysis/group_cdfs.h"
#include "analysis/groups.h"
#include "analysis/holiday.h"
#include "analysis/peaks.h"
#include "analysis/pool_size.h"
#include "analysis/region_stats.h"
#include "analysis/utility.h"

namespace coldstart::analysis {
namespace {

using trace::ColdStartRecord;
using trace::FunctionRecord;
using trace::PodLifetimeRecord;
using trace::RequestRecord;
using trace::TraceStore;

FunctionRecord Fn(trace::FunctionId id, trace::RegionId region, trace::Runtime rt,
                  trace::Trigger trig,
                  trace::ResourceConfig cfg = trace::ResourceConfig::k300m128,
                  trace::UserId user = 0) {
  FunctionRecord f;
  f.function_id = id;
  f.user_id = user;
  f.region = region;
  f.runtime = rt;
  f.primary_trigger = trig;
  f.trigger_mask = trace::TriggerBit(trig);
  f.config = cfg;
  return f;
}

RequestRecord Req(SimTime t, trace::FunctionId fn, trace::RegionId region,
                  uint32_t exec_us = 1000, trace::UserId user = 0) {
  RequestRecord r;
  r.timestamp = t;
  r.function_id = fn;
  r.user_id = user;
  r.region = region;
  r.execution_time_us = exec_us;
  r.cpu_millicores = 100;
  r.memory_kb = 1024;
  return r;
}

ColdStartRecord Cs(SimTime t, trace::FunctionId fn, trace::RegionId region,
                   uint32_t alloc, uint32_t code, uint32_t dep, uint32_t sched) {
  ColdStartRecord c;
  c.timestamp = t;
  c.function_id = fn;
  c.region = region;
  c.pod_alloc_us = alloc;
  c.deploy_code_us = code;
  c.deploy_dep_us = dep;
  c.scheduling_us = sched;
  c.cold_start_us = alloc + code + dep + sched;
  return c;
}

PodLifetimeRecord Pod(trace::PodId id, trace::FunctionId fn, trace::RegionId region,
                      SimTime begin, uint32_t cs_us, SimTime death,
                      trace::ResourceConfig cfg = trace::ResourceConfig::k300m128) {
  PodLifetimeRecord p;
  p.pod_id = id;
  p.function_id = fn;
  p.region = region;
  p.config = cfg;
  p.cold_start_begin = begin;
  p.ready_time = begin + cs_us;
  p.cold_start_us = cs_us;
  p.death_time = death;
  p.last_busy_end = death - kMinute;
  return p;
}

TEST(RegionStatsTest, SizesCountPerRegion) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 1, trace::Runtime::kJava, trace::Trigger::kApigSync,
                       trace::ResourceConfig::k300m128, 5));
  store.AddRequest(Req(kSecond, 0, 0));
  store.AddRequest(Req(2 * kSecond, 0, 0));
  store.AddRequest(Req(kSecond, 1, 1));
  store.set_horizon(kDay);
  store.Seal();
  const auto sizes = ComputeRegionSizes(store);
  EXPECT_EQ(sizes[0].functions, 1u);
  EXPECT_EQ(sizes[0].requests, 2u);
  EXPECT_EQ(sizes[1].requests, 1u);
  EXPECT_EQ(sizes[0].users, 1u);
}

TEST(RegionStatsTest, RequestsPerDayPerFunction) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  for (int i = 0; i < 20; ++i) {
    store.AddRequest(Req(i * kHour, 0, 0));
  }
  store.set_horizon(2 * kDay);
  store.Seal();
  const auto ecdf = RequestsPerDayPerFunction(store, 0);
  ASSERT_EQ(ecdf.size(), 1u);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5), 10.0);
}

TEST(UtilityTest, RatioFormula) {
  // Lifetime 10min, keep-alive 1min, cold start 30s: useful = 10 - 1 - 0.5 = 8.5 min.
  const PodLifetimeRecord p = Pod(0, 0, 0, 0, 30 * 1000 * 1000, 10 * kMinute);
  EXPECT_NEAR(PodUtilityRatio(p), 8.5 * 60 / 30.0, 1e-9);
}

TEST(UtilityTest, ShortLivedPodBelowOne) {
  // Pod served one 1s request with a 10s cold start: useful ~ 1s -> ratio ~ 0.1.
  const SimTime begin = 0;
  const uint32_t cs = 10 * 1000 * 1000;
  const SimTime death = begin + cs + kSecond + kMinute;
  const auto p = Pod(0, 0, 0, begin, cs, death);
  EXPECT_NEAR(PodUtilityRatio(p), 0.1, 1e-6);
}

TEST(UtilityTest, FlooredPositive) {
  // Death before keep-alive would imply negative useful lifetime; floor at 1ms.
  const auto p = Pod(0, 0, 0, 0, 1000000, 30 * kSecond);
  EXPECT_GT(PodUtilityRatio(p), 0.0);
}

TEST(UtilityTest, GroupFiltering) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kGo1x, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 0, trace::Runtime::kJava, trace::Trigger::kApigSync));
  store.AddPodLifetime(Pod(0, 0, 0, 0, 1000000, kHour));
  store.AddPodLifetime(Pod(1, 1, 0, 0, 1000000, 2 * kMinute));
  store.set_horizon(kDay);
  store.Seal();
  EXPECT_EQ(UtilityByRuntime(store, 0, static_cast<int>(trace::Runtime::kGo1x)).size(), 1u);
  EXPECT_EQ(UtilityByRuntime(store, 0, -1).size(), 2u);
  EXPECT_EQ(
      UtilityByTrigger(store, 0, static_cast<int>(trace::TriggerGroup::kTimerA)).size(),
      1u);
}

TEST(GroupsTest, SharesSumToOne) {
  TraceStore store;
  store.AddFunction(Fn(0, 1, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 1, trace::Runtime::kJava, trace::Trigger::kApigSync));
  store.AddColdStart(Cs(kSecond, 0, 1, 100, 100, 0, 100));
  store.AddColdStart(Cs(2 * kSecond, 1, 1, 100, 100, 0, 100));
  store.AddPodLifetime(Pod(0, 0, 1, 0, 300, kHour));
  store.AddPodLifetime(Pod(1, 1, 1, 0, 300, 2 * kHour));
  store.set_horizon(kDay);
  store.Seal();
  for (const auto axis :
       {GroupAxis::kTrigger, GroupAxis::kRuntime, GroupAxis::kConfig}) {
    const auto shares = ComputeGroupShares(store, 1, axis);
    double pods = 0, cs = 0, fns = 0;
    for (int k = 0; k < NumKeys(axis); ++k) {
      pods += shares.pods[static_cast<size_t>(k)];
      cs += shares.cold_starts[static_cast<size_t>(k)];
      fns += shares.functions[static_cast<size_t>(k)];
    }
    EXPECT_NEAR(pods, 1.0, 1e-9);
    EXPECT_NEAR(cs, 1.0, 1e-9);
    EXPECT_NEAR(fns, 1.0, 1e-9);
  }
}

TEST(GroupsTest, PodShareWeighsLifetime) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 0, trace::Runtime::kJava, trace::Trigger::kApigSync));
  store.AddPodLifetime(Pod(0, 0, 0, 0, 1000, kHour));          // 1 hour alive.
  store.AddPodLifetime(Pod(1, 1, 0, 0, 1000, 3 * kHour));      // 3 hours alive.
  store.set_horizon(kDay);
  store.Seal();
  const auto shares = ComputeGroupShares(store, 0, GroupAxis::kRuntime);
  EXPECT_NEAR(shares.pods[static_cast<size_t>(trace::Runtime::kJava)], 0.75, 1e-9);
}

TEST(GroupsTest, TriggerMixRowsNormalized) {
  TraceStore store;
  store.AddFunction(Fn(0, 1, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 1, trace::Runtime::kPython3, trace::Trigger::kApigSync));
  store.AddFunction(Fn(2, 1, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.set_horizon(kDay);
  store.Seal();
  const auto mix = TriggerMixByRuntime(store, 1);
  const auto& py3 = mix[static_cast<size_t>(trace::Runtime::kPython3)];
  EXPECT_NEAR(py3[static_cast<size_t>(trace::TriggerGroup::kTimerA)], 2.0 / 3, 1e-9);
  EXPECT_NEAR(py3[static_cast<size_t>(trace::TriggerGroup::kApigS)], 1.0 / 3, 1e-9);
}

TEST(FitsTest, InterArrivalComputedWithinRegion) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 1, trace::Runtime::kPython3, trace::Trigger::kTimer));
  // R1 cold starts at 0s, 10s; R2 at 5s. IATs must not mix regions.
  store.AddColdStart(Cs(0, 0, 0, 100, 100, 0, 100));
  store.AddColdStart(Cs(5 * kSecond, 1, 1, 100, 100, 0, 100));
  store.AddColdStart(Cs(10 * kSecond, 0, 0, 100, 100, 0, 100));
  store.set_horizon(kMinute);
  store.Seal();
  const auto iats = ColdStartInterArrivalCdfs(store);
  ASSERT_EQ(iats[0].size(), 1u);
  EXPECT_DOUBLE_EQ(iats[0].Quantile(0.5), 10.0);
  EXPECT_EQ(iats[1].size(), 0u);
  // The pooled stream concatenates per-region IATs (R2 has a single event, so no IAT).
  EXPECT_EQ(iats.back().size(), 1u);
}

TEST(FitsTest, RecoverKnownLogNormal) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  Rng rng(31);
  const stats::LogNormalParams truth{0.0, 0.7};  // Seconds.
  SimTime t = 0;
  for (int i = 0; i < 20000; ++i) {
    const double seconds = truth.Sample(rng);
    auto c = Cs(t, 0, 0, 0, 0, 0, 0);
    c.cold_start_us = static_cast<uint32_t>(seconds * 1e6);
    c.pod_alloc_us = c.cold_start_us;
    store.AddColdStart(c);
    t += kSecond;
  }
  store.set_horizon(t + kMinute);
  store.Seal();
  const auto fits = FitColdStartDistributions(store);
  EXPECT_NEAR(fits.cold_start_lognormal.mu, 0.0, 0.03);
  EXPECT_NEAR(fits.cold_start_lognormal.sigma, 0.7, 0.03);
  EXPECT_LT(fits.cold_start_quality.ks_distance, 0.02);
}

TEST(ComponentsTest, CorrelationDetectsCoupledSeries) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  Rng rng(37);
  // Scheduling tracks a slow sinusoid; alloc is independent noise.
  for (int minute = 0; minute < 2000; ++minute) {
    const double level = 2.0 + std::sin(minute / 50.0);
    const auto sched = static_cast<uint32_t>(level * 1e5 * (0.9 + 0.2 * rng.NextDouble()));
    const auto alloc = static_cast<uint32_t>(1e5 * (0.5 + rng.NextDouble()));
    store.AddColdStart(Cs(minute * kMinute, 0, 0, alloc, 1000, 0, sched));
  }
  store.set_horizon(2000 * kMinute);
  store.Seal();
  const auto m = ComponentCorrelationMatrix(store, 0);
  // Variable order: 0 total, 1 code, 2 dep, 3 sched, 4 alloc.
  EXPECT_GT(m[0][3].rho, 0.7);        // Total tracks scheduling.
  EXPECT_LT(std::abs(m[3][4].rho), 0.2);  // Scheduling vs alloc: independent.
  EXPECT_TRUE(m[0][3].significant());
}

TEST(PoolSizeTest, SplitsBySizeClassAndExcludesZeroDep) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer,
                       trace::ResourceConfig::k300m128));
  store.AddFunction(Fn(1, 0, trace::Runtime::kJava, trace::Trigger::kApigSync,
                       trace::ResourceConfig::k1000m1024));
  store.AddColdStart(Cs(0, 0, 0, 100, 100, 0, 100));        // Small, no deps.
  store.AddColdStart(Cs(kSecond, 1, 0, 500, 100, 700, 100));  // Large, with deps.
  store.set_horizon(kMinute);
  store.Seal();
  EXPECT_EQ(PoolSizeDistribution(store, 0, trace::PoolSizeClass::kSmall,
                                 ColdStartComponent::kTotal)
                .size(),
            1u);
  EXPECT_EQ(PoolSizeDistribution(store, 0, trace::PoolSizeClass::kSmall,
                                 ColdStartComponent::kDeployDep)
                .size(),
            0u);  // Zero dep excluded.
  EXPECT_EQ(PoolSizeDistribution(store, 0, trace::PoolSizeClass::kLarge,
                                 ColdStartComponent::kDeployDep)
                .size(),
            1u);
  EXPECT_EQ(ComputePoolSizeSummaries(store).size(),
            static_cast<size_t>(trace::kNumRegions * 2 * kNumColdStartComponents));
}

TEST(GroupCdfsTest, RequestsVsColdStartsPerFunction) {
  TraceStore store;
  store.AddFunction(Fn(0, 1, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 1, trace::Runtime::kJava, trace::Trigger::kApigSync));
  for (int i = 0; i < 10; ++i) {
    store.AddRequest(Req(i * kMinute, 0, 1));
  }
  store.AddColdStart(Cs(0, 0, 1, 100, 100, 0, 100));
  store.set_horizon(kDay);
  store.Seal();
  const auto entries = ComputeRequestsVsColdStarts(store, 1);
  ASSERT_EQ(entries.size(), 1u);  // Function 1 has zero requests: skipped.
  EXPECT_EQ(entries[0].total_requests, 10u);
  EXPECT_EQ(entries[0].cold_starts, 1u);
  EXPECT_EQ(entries[0].trigger, trace::TriggerGroup::kTimerA);
}

TEST(PeaksTest, DailyPeakDetection) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kApigSync));
  // Two days with a burst at hour 14 each day.
  for (int day = 0; day < 2; ++day) {
    for (int i = 0; i < 100; ++i) {
      store.AddRequest(Req(day * kDay + 14 * kHour + i * kSecond, 0, 0));
    }
    store.AddRequest(Req(day * kDay + 2 * kHour, 0, 0));  // Background.
  }
  store.set_horizon(2 * kDay);
  store.Seal();
  const auto peaks = ComputeRegionPeaks(store);
  ASSERT_EQ(peaks[0].daily_peaks.size(), 2u);
  for (const auto& p : peaks[0].daily_peaks) {
    const double hour = static_cast<double>(p.index % 1440) / 60.0;
    EXPECT_NEAR(hour, 14.0, 1.0);
  }
}

TEST(PeaksTest, FunctionPeakTroughIdentifiesBursty) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  store.AddFunction(Fn(1, 0, trace::Runtime::kPython3, trace::Trigger::kObs));
  // Function 0: steady 1/hour. Function 1: 200 requests in one hour only.
  for (int h = 0; h < 48; ++h) {
    store.AddRequest(Req(h * kHour + kMinute, 0, 0));
  }
  for (int i = 0; i < 200; ++i) {
    store.AddRequest(Req(20 * kHour + i * 10 * kSecond, 1, 0));
  }
  store.set_horizon(2 * kDay);
  store.Seal();
  const auto entries = ComputeFunctionPeakTrough(store, 1);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NEAR(entries[0].peak_to_trough, 1.0, 0.2);
  EXPECT_GT(entries[1].peak_to_trough, 20.0);
}

TEST(HolidayTest, NormalizedToPreHolidayMax) {
  TraceStore store;
  store.AddFunction(Fn(0, 0, trace::Runtime::kPython3, trace::Trigger::kTimer));
  // Pods: 4 alive on day 12 (pre-holiday), 2 alive on day 16 (holiday).
  trace::PodId id = 0;
  for (int i = 0; i < 4; ++i) {
    store.AddPodLifetime(Pod(id++, 0, 0, 12 * kDay, 1000, 13 * kDay));
  }
  for (int i = 0; i < 2; ++i) {
    store.AddPodLifetime(Pod(id++, 0, 0, 16 * kDay, 1000, 17 * kDay));
  }
  store.set_horizon(28 * kDay);
  store.Seal();
  const auto series = ComputeHolidayEffect(store, 10, 27, 14);
  const auto& pods = series[0].pods_normalized;
  EXPECT_NEAR(pods[2], 1.0, 1e-9);   // Day 12 is the pre-holiday max.
  EXPECT_NEAR(pods[6], 0.5, 1e-9);   // Day 16 at half.
}

}  // namespace
}  // namespace coldstart::analysis
