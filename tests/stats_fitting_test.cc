// Tests for MLE fitting and goodness-of-fit (the Figure 10 machinery).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/ecdf.h"
#include "stats/fitting.h"

namespace coldstart::stats {
namespace {

class LogNormalFitTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LogNormalFitTest, RecoversParameters) {
  const auto [mu, sigma] = GetParam();
  const LogNormalParams truth{mu, sigma};
  Rng rng(777);
  std::vector<double> samples(50000);
  for (auto& x : samples) {
    x = truth.Sample(rng);
  }
  const LogNormalParams fit = FitLogNormalMle(samples);
  EXPECT_NEAR(fit.mu, mu, 0.02);
  EXPECT_NEAR(fit.sigma, sigma, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LogNormalFitTest,
                         ::testing::Values(std::pair{0.0, 1.0}, std::pair{1.2, 0.4},
                                           std::pair{-0.5, 1.8}, std::pair{2.0, 0.9}));

class WeibullFitTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullFitTest, RecoversParameters) {
  const auto [k, lambda] = GetParam();
  const WeibullParams truth{k, lambda};
  Rng rng(888);
  std::vector<double> samples(50000);
  for (auto& x : samples) {
    x = truth.Sample(rng);
  }
  const WeibullParams fit = FitWeibullMle(samples);
  EXPECT_NEAR(fit.shape, k, k * 0.03);
  EXPECT_NEAR(fit.scale, lambda, lambda * 0.03);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeibullFitTest,
                         ::testing::Values(std::pair{0.5, 1.0}, std::pair{0.744, 4.0},
                                           std::pair{1.3, 2.5}, std::pair{2.5, 0.8}));

TEST(FitQualityTest, CorrectModelHasSmallKs) {
  const LogNormalParams truth{0.5, 1.0};
  Rng rng(99);
  std::vector<double> samples(20000);
  for (auto& x : samples) {
    x = truth.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  const LogNormalParams fit = FitLogNormalMle(samples);
  EXPECT_LT(EvaluateLogNormalFit(samples, fit).ks_distance, 0.02);
}

TEST(FitQualityTest, WrongModelHasLargerKs) {
  // Samples from a heavy LogNormal; a Weibull fit should be visibly worse.
  const LogNormalParams truth{0.0, 1.8};
  Rng rng(101);
  std::vector<double> samples(20000);
  for (auto& x : samples) {
    x = truth.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  const double ks_right =
      EvaluateLogNormalFit(samples, FitLogNormalMle(samples)).ks_distance;
  const double ks_wrong = EvaluateWeibullFit(samples, FitWeibullMle(samples)).ks_distance;
  EXPECT_LT(ks_right, ks_wrong);
}

TEST(FitQualityTest, LogLikelihoodPrefersTrueModel) {
  const WeibullParams truth{0.8, 2.0};
  Rng rng(103);
  std::vector<double> samples(20000);
  for (auto& x : samples) {
    x = truth.Sample(rng);
  }
  std::sort(samples.begin(), samples.end());
  const auto wq = EvaluateWeibullFit(samples, FitWeibullMle(samples));
  const auto lq = EvaluateLogNormalFit(samples, FitLogNormalMle(samples));
  EXPECT_GT(wq.log_likelihood, lq.log_likelihood);
}

TEST(KsDistanceTest, PerfectFitOnQuantiles) {
  // Samples placed exactly at quantile midpoints -> K-S bounded by 1/n.
  const LogNormalParams p{0.0, 1.0};
  std::vector<double> samples;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    samples.push_back(p.Quantile((i + 0.5) / n));
  }
  EXPECT_LE(KsDistance(samples, p), 1.0 / n + 1e-9);
}

TEST(EcdfTest, QuantileInterpolation) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(e.Quantile(0.5), 2.5);
}

TEST(EcdfTest, CdfAtCountsInclusive) {
  Ecdf e({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(e.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.CdfAt(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.CdfAt(5.0), 1.0);
}

TEST(EcdfTest, SummaryStats) {
  Ecdf e;
  for (int i = 1; i <= 100; ++i) {
    e.Add(static_cast<double>(i));
  }
  e.Seal();
  const SummaryStats s = e.Summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
}

TEST(EcdfTest, CurveLogXIsMonotone) {
  Ecdf e;
  Rng rng(17);
  const LogNormalParams p{0.0, 1.0};
  for (int i = 0; i < 5000; ++i) {
    e.Add(p.Sample(rng));
  }
  e.Seal();
  const auto curve = e.CurveLogX(30);
  ASSERT_EQ(curve.size(), 30u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_NEAR(curve.back().second, 1.0, 1e-9);
}

TEST(EcdfTest, EmptyIsSafe) {
  // Empty-set statistics are NaN (rendered "n/a"), never fabricated zeros — the
  // regression where AddQuantileRow printed all-zero rows for empty groups.
  Ecdf e;
  e.Seal();
  EXPECT_TRUE(std::isnan(e.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(e.Mean()));
  EXPECT_TRUE(std::isnan(e.StdDev()));
  const SummaryStats s = e.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.median));
  EXPECT_TRUE(std::isnan(s.min));
  EXPECT_TRUE(std::isnan(s.max));
  EXPECT_EQ(e.CdfAt(1.0), 0.0);  // P(X <= x) over no samples stays 0.
  EXPECT_TRUE(e.CurveLogX(10).empty());
}

}  // namespace
}  // namespace coldstart::stats
