// Trace-replay tests: the round-trip bit-identity contract (export a run's
// arrival stream, replay it serially and region-sharded, get the identical
// trace back), replay semantics (remapping, windowing, rate scaling), and the
// fingerprint separation that keeps replay runs out of synthetic cache entries.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "core/coldstart_lab.h"

namespace coldstart {
namespace {

namespace fs = std::filesystem;

using workload::ArrivalEvent;
using workload::ReplayOptions;
using workload::ReplaySource;

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "coldstart_replay_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const char* name) const { return (dir_ / name).string(); }

  void WriteFile(const char* name, const std::string& content) const {
    std::FILE* f = std::fopen(Path(name).c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(content.c_str(), f);
    std::fclose(f);
  }

  fs::path dir_;
};

// A minimal population for pure-Arrivals tests (no simulation): `counts[r]`
// functions in region r, dense ids.
workload::Population TinyPopulation(const std::vector<uint32_t>& counts) {
  workload::Population pop;
  pop.region_begin.push_back(0);
  for (size_t r = 0; r < counts.size(); ++r) {
    for (uint32_t i = 0; i < counts[r]; ++i) {
      workload::FunctionSpec f;
      f.id = static_cast<trace::FunctionId>(pop.functions.size());
      f.region = static_cast<trace::RegionId>(r);
      pop.functions.push_back(f);
    }
    pop.region_begin.push_back(static_cast<uint32_t>(pop.functions.size()));
  }
  pop.num_users = 1;
  return pop;
}

std::vector<workload::RegionProfile> TinyProfiles(size_t regions) {
  const auto defaults = workload::DefaultRegionProfiles();
  return {defaults.begin(), defaults.begin() + regions};
}

// --- Tentpole acceptance: export -> replay is bit-identical, serial & sharded. ---

TEST_F(ReplayTest, RoundTripBitIdentitySerialAndSharded) {
  const core::ScenarioConfig config = core::SmallScenario();
  const core::Experiment synthetic(config);
  const core::ExperimentResult original = synthetic.Run(nullptr, /*num_threads=*/1);
  ASSERT_GT(original.store.requests().size(), 10000u);

  // Export exactly the arrival stream the run consumed (the source is
  // deterministic in the config, so regenerating it here matches the run).
  const core::WorkloadSnapshot snapshot = core::SnapshotWorkload(config);
  const auto& arrivals = snapshot.arrivals;
  ASSERT_TRUE(workload::WriteArrivalsCsv(arrivals, Path("arrivals.csv")));

  trace::CsvError error;
  std::shared_ptr<ReplaySource> replay =
      ReplaySource::FromArrivalsCsv(Path("arrivals.csv"), {}, &error);
  ASSERT_NE(replay, nullptr) << "line " << error.line << ": " << error.message;
  EXPECT_EQ(replay->raw_event_count(), arrivals.size());

  core::ScenarioConfig replay_config = config;
  replay_config.workload = replay;
  // The fingerprint distinguishes replay from synthetic: the trace cache can
  // never serve one for the other.
  EXPECT_NE(replay_config.Fingerprint(), config.Fingerprint());

  // The replayed arrival stream is the original, element for element.
  const auto replayed_arrivals = replay->Arrivals(
      snapshot.population, config.ScaledProfiles(), config.MakeCalendar(),
      config.seed);
  ASSERT_EQ(replayed_arrivals.size(), arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    ASSERT_EQ(replayed_arrivals[i].time, arrivals[i].time) << "arrival " << i;
    ASSERT_EQ(replayed_arrivals[i].function, arrivals[i].function) << "arrival " << i;
  }

  const core::Experiment replayed(replay_config);
  const core::ExperimentResult serial = replayed.Run(nullptr, 1);
  ASSERT_TRUE(replayed.CanShard(nullptr));
  const core::ExperimentResult sharded = replayed.Run(nullptr, 4);

  const uint64_t want = trace::Digest(original.store);
  EXPECT_EQ(trace::Digest(serial.store), want);
  EXPECT_EQ(trace::Digest(sharded.store), want);
  // Per-region cold-start aggregates reproduce exactly, serial and sharded.
  EXPECT_EQ(serial.visible_cold_starts, original.visible_cold_starts);
  EXPECT_EQ(sharded.visible_cold_starts, original.visible_cold_starts);
  EXPECT_EQ(serial.cold_start_latency_sum_us, original.cold_start_latency_sum_us);
  EXPECT_EQ(sharded.cold_start_latency_sum_us, original.cold_start_latency_sum_us);
  EXPECT_EQ(serial.scratch_allocations, original.scratch_allocations);
  EXPECT_EQ(sharded.scratch_allocations, original.scratch_allocations);
}

// --- Replay of our own exported request log (approximate mode). ---

TEST_F(ReplayTest, RequestsCsvReplayDrivesASimulation) {
  core::ScenarioConfig config;
  config.days = 2;
  config.scale = 0.1;
  const core::ExperimentResult original = core::Experiment(config).Run();
  ASSERT_GT(original.store.requests().size(), 0u);
  ASSERT_TRUE(trace::WriteRequestsCsv(original.store, Path("requests.csv")));

  trace::CsvError error;
  std::shared_ptr<ReplaySource> replay =
      ReplaySource::FromRequestsCsv(Path("requests.csv"), {}, &error);
  ASSERT_NE(replay, nullptr) << "line " << error.line << ": " << error.message;
  EXPECT_EQ(replay->raw_event_count(), original.store.requests().size());

  core::ScenarioConfig replay_config = config;
  replay_config.workload = replay;
  const core::ExperimentResult result = core::Experiment(replay_config).Run();
  // The replayed log drives real load: requests flow and pods cold-start. The
  // trace is *not* expected to match bit for bit (logged timestamps are
  // execution starts, and recorded workflow children re-enter as exogenous
  // arrivals on top of runtime fan-out).
  EXPECT_GT(result.store.requests().size(), original.store.requests().size() / 2);
  int64_t cold = 0;
  for (const int64_t c : result.visible_cold_starts) {
    cold += c;
  }
  EXPECT_GT(cold, 0);
}

// --- External-trace semantics. ---

TEST_F(ReplayTest, ExternalCsvRemapsOntoPopulationRegions) {
  WriteFile("external.csv",
            "timestamp,function,region,duration\n"
            "1.5,alpha,,250\n"
            "0.5,beta,R2,100\n"
            "2.0,beta,R2,90\n");
  ReplayOptions options;
  options.timestamp_scale = 1e6;  // Seconds -> microseconds.
  trace::CsvError error;
  const auto source =
      ReplaySource::FromExternalCsv(Path("external.csv"), options, &error);
  ASSERT_NE(source, nullptr) << "line " << error.line << ": " << error.message;
  ASSERT_EQ(source->raw_event_count(), 3u);

  const auto pop = TinyPopulation({4, 4, 4});
  const auto profiles = TinyProfiles(3);
  workload::Calendar::Options copts;
  copts.trace_days = 1;
  const workload::Calendar calendar(copts);

  const auto arrivals = source->Arrivals(pop, profiles, calendar, /*seed=*/7);
  ASSERT_EQ(arrivals.size(), 3u);
  // Sorted by time, shifted to microseconds.
  EXPECT_EQ(arrivals[0].time, 500000);
  EXPECT_EQ(arrivals[1].time, 1500000);
  EXPECT_EQ(arrivals[2].time, 2000000);
  // "beta" is pinned to R2: both its events map to the same function id inside
  // region 1's id range.
  EXPECT_EQ(arrivals[0].function, arrivals[2].function);
  EXPECT_GE(arrivals[0].function, pop.region_begin[1]);
  EXPECT_LT(arrivals[0].function, pop.region_begin[2]);
  // "alpha" has no region tag and lands somewhere valid.
  EXPECT_LT(arrivals[1].function, pop.functions.size());

  // Remapping is seed-independent (the same trace hits the same functions
  // across platform-seed sweeps).
  const auto again = source->Arrivals(pop, profiles, calendar, /*seed=*/8);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[0].function, arrivals[0].function);
  EXPECT_EQ(again[1].function, arrivals[1].function);
}

TEST_F(ReplayTest, WindowClippingShiftsAndDrops) {
  std::vector<ArrivalEvent> events;
  for (int i = 0; i < 10; ++i) {
    events.push_back(ArrivalEvent{i * kSecond, 0});
  }
  ASSERT_TRUE(workload::WriteArrivalsCsv(events, Path("window.csv")));
  ReplayOptions options;
  options.window_begin = 3 * kSecond;
  options.window_end = 7 * kSecond;
  const auto source = ReplaySource::FromArrivalsCsv(Path("window.csv"), options);
  ASSERT_NE(source, nullptr);

  const auto pop = TinyPopulation({1});
  const auto profiles = TinyProfiles(1);
  const workload::Calendar calendar;
  const auto arrivals = source->Arrivals(pop, profiles, calendar, 1);
  ASSERT_EQ(arrivals.size(), 4u);  // Recorded times 3,4,5,6 s.
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].time, static_cast<SimTime>(i) * kSecond);
  }
}

TEST_F(ReplayTest, RateScalingIsDeterministicAndProportional) {
  std::vector<ArrivalEvent> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back(ArrivalEvent{i * kSecond, 0});
  }
  ASSERT_TRUE(workload::WriteArrivalsCsv(events, Path("rate.csv")));
  const auto pop = TinyPopulation({1});
  const auto profiles = TinyProfiles(1);
  const workload::Calendar calendar;  // 31 days; all events inside.

  ReplayOptions half;
  half.rate_scale = 0.5;
  const auto thinned = ReplaySource::FromArrivalsCsv(Path("rate.csv"), half);
  ASSERT_NE(thinned, nullptr);
  const auto a = thinned->Arrivals(pop, profiles, calendar, 3);
  const auto b = thinned->Arrivals(pop, profiles, calendar, 3);
  ASSERT_EQ(a.size(), b.size());  // Deterministic in the seed.
  EXPECT_GT(a.size(), 400u);      // ~Binomial(1000, 0.5).
  EXPECT_LT(a.size(), 600u);
  const auto other_seed = thinned->Arrivals(pop, profiles, calendar, 4);
  EXPECT_NE(other_seed.size(), 0u);

  ReplayOptions triple;
  triple.rate_scale = 3.0;
  const auto tripled = ReplaySource::FromArrivalsCsv(Path("rate.csv"), triple);
  ASSERT_NE(tripled, nullptr);
  EXPECT_EQ(tripled->Arrivals(pop, profiles, calendar, 3).size(), 3000u);
}

// --- Chunked delivery: OpenStream windows the recorded buffer by day. ---

TEST_F(ReplayTest, ChunkedStreamPartitionsEagerReplayUnderOptions) {
  // Recorded events straddle several day boundaries; replay them windowed +
  // rate-scaled, both eagerly and as day chunks, serial and region-filtered.
  // The chunk concatenation must reproduce the eager vector bit for bit (they
  // share the per-raw-index rate hash and remap salts), and the per-region
  // streams must partition it — the property each experiment shard relies on.
  std::vector<ArrivalEvent> events;
  for (int i = 0; i < 3000; ++i) {
    // 2-minute spacing: ~4.2 recorded days, so the 5-day replay below crosses
    // four day boundaries and leaves the last day empty (an edge chunk).
    events.push_back(ArrivalEvent{i * 2 * kMinute, static_cast<trace::FunctionId>(i % 3)});
  }
  ASSERT_TRUE(workload::WriteArrivalsCsv(events, Path("chunks.csv")));
  const auto pop = TinyPopulation({2, 1});  // Functions 0,1 in R1; 2 in R2.
  const auto profiles = TinyProfiles(2);
  workload::Calendar::Options copts;
  copts.trace_days = 5;
  const workload::Calendar calendar(copts);

  ReplayOptions options;
  options.window_begin = 6 * kHour;  // Shift: day boundaries cut mid-recording.
  options.rate_scale = 1.5;          // Whole copy + hashed extra copies.
  const auto source = ReplaySource::FromArrivalsCsv(Path("chunks.csv"), options);
  ASSERT_NE(source, nullptr);

  const auto eager = source->Arrivals(pop, profiles, calendar, 7);
  ASSERT_GT(eager.size(), 3000u);  // rate_scale > 1 engaged.
  ASSERT_LT(eager.back().time, calendar.horizon());

  auto stream = source->OpenStream(pop, profiles, calendar, 7);
  std::vector<ArrivalEvent> concat;
  std::vector<std::vector<ArrivalEvent>> per_day;
  workload::ArrivalChunk chunk;
  while (stream->NextChunk(&chunk)) {
    ASSERT_EQ(chunk.day, static_cast<int64_t>(per_day.size()));
    for (const auto& e : chunk.events) {
      ASSERT_GE(e.time, chunk.day * kDay);
      ASSERT_LT(e.time, (chunk.day + 1) * kDay);
    }
    per_day.push_back(chunk.events);
    concat.insert(concat.end(), chunk.events.begin(), chunk.events.end());
  }
  ASSERT_EQ(per_day.size(), 5u);
  ASSERT_EQ(concat.size(), eager.size());
  for (size_t i = 0; i < eager.size(); ++i) {
    ASSERT_EQ(concat[i].time, eager[i].time) << i;
    ASSERT_EQ(concat[i].function, eager[i].function) << i;
  }

  // Region-filtered streams partition each day chunk, order preserved.
  for (size_t r = 0; r < profiles.size(); ++r) {
    auto filtered = source->OpenStream(pop, profiles, calendar, 7,
                                       static_cast<trace::RegionId>(r));
    for (size_t d = 0; d < per_day.size(); ++d) {
      ASSERT_TRUE(filtered->NextChunk(&chunk));
      std::vector<ArrivalEvent> expected;
      for (const auto& e : per_day[d]) {
        if (pop.functions[e.function].region == r) {
          expected.push_back(e);
        }
      }
      ASSERT_EQ(chunk.events.size(), expected.size()) << "region " << r << " day " << d;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(chunk.events[i].time, expected[i].time);
        ASSERT_EQ(chunk.events[i].function, expected[i].function);
      }
    }
    ASSERT_FALSE(filtered->NextChunk(&chunk));
  }
}

// --- Loader robustness. ---

TEST_F(ReplayTest, MalformedArrivalsCsvReportsLine) {
  WriteFile("bad.csv",
            "timestamp_us,function\n"
            "1000,0\n"
            "2000,not_an_id\n");
  trace::CsvError error;
  EXPECT_EQ(ReplaySource::FromArrivalsCsv(Path("bad.csv"), {}, &error), nullptr);
  EXPECT_EQ(error.line, 3);
  EXPECT_NE(error.message.find("not_an_id"), std::string::npos);
}

TEST_F(ReplayTest, MalformedExternalCsvReportsLine) {
  WriteFile("bad_external.csv",
            "timestamp,function\n"
            "1.0,ok\n"
            "-5,negative_time\n");
  trace::CsvError error;
  EXPECT_EQ(ReplaySource::FromExternalCsv(Path("bad_external.csv"), {}, &error),
            nullptr);
  EXPECT_EQ(error.line, 3);

  WriteFile("short_row.csv", "0.5\n");  // Headerless numeric row, too few fields.
  EXPECT_EQ(ReplaySource::FromExternalCsv(Path("short_row.csv"), {}, &error),
            nullptr);
  EXPECT_EQ(error.line, 1);
}

TEST_F(ReplayTest, MissingFileFails) {
  trace::CsvError error;
  EXPECT_EQ(ReplaySource::FromArrivalsCsv(Path("missing.csv"), {}, &error), nullptr);
  EXPECT_EQ(error.line, 0);
}

TEST_F(ReplayTest, ArrivalsCsvRoundTripIsLossless) {
  std::vector<ArrivalEvent> events = {{0, 3}, {42, 1}, {42, 2}, {kDay, 0}};
  ASSERT_TRUE(workload::WriteArrivalsCsv(events, Path("loop.csv")));
  std::vector<ArrivalEvent> loaded;
  ASSERT_TRUE(workload::ReadArrivalsCsv(Path("loop.csv"), loaded));
  ASSERT_EQ(loaded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].time, events[i].time);
    EXPECT_EQ(loaded[i].function, events[i].function);
  }
}

// Different replayed traces (and different options on one trace) fingerprint
// differently, while reloading the same file reproduces the same fingerprint.
TEST_F(ReplayTest, FingerprintCoversEventsAndOptions) {
  std::vector<ArrivalEvent> events = {{0, 0}, {kSecond, 0}};
  ASSERT_TRUE(workload::WriteArrivalsCsv(events, Path("fp_a.csv")));
  events[1].time += 1;
  ASSERT_TRUE(workload::WriteArrivalsCsv(events, Path("fp_b.csv")));

  const auto a1 = ReplaySource::FromArrivalsCsv(Path("fp_a.csv"));
  const auto a2 = ReplaySource::FromArrivalsCsv(Path("fp_a.csv"));
  const auto b = ReplaySource::FromArrivalsCsv(Path("fp_b.csv"));
  ReplayOptions scaled;
  scaled.rate_scale = 0.5;
  const auto a_scaled = ReplaySource::FromArrivalsCsv(Path("fp_a.csv"), scaled);
  ASSERT_TRUE(a1 && a2 && b && a_scaled);
  EXPECT_EQ(a1->Fingerprint(), a2->Fingerprint());
  EXPECT_NE(a1->Fingerprint(), b->Fingerprint());
  EXPECT_NE(a1->Fingerprint(), a_scaled->Fingerprint());
  EXPECT_NE(a1->Fingerprint(), workload::DefaultSyntheticSource().Fingerprint());
}

}  // namespace
}  // namespace coldstart
