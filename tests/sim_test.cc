// Tests for the discrete-event simulator core: time/FIFO ordering under the
// timer wheel (near buckets, cascaded frames, overflow heap), clock semantics,
// and the merged EventSource stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace coldstart::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NowAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAt(42, [&] { seen = sim.now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 42);
}

TEST(SimulatorTest, HandlersCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(20), 2u);  // Events at exactly `until` fire.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);  // Clock advances to the requested horizon.
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, SchedulingInPastDies) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.RunToCompletion();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "CHECK");
}

TEST(SimulatorTest, EventCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleAt(i, [] {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SchedulePeriodicTest, FiresWithIndexUntilEnd) {
  Simulator sim;
  std::vector<int64_t> indices;
  std::vector<SimTime> times;
  SchedulePeriodic(sim, 0, 10, 35, [&](int64_t i) {
    indices.push_back(i);
    times.push_back(sim.now());
  });
  sim.RunToCompletion();
  EXPECT_EQ(indices, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(times, (std::vector<SimTime>{0, 10, 20, 30}));
}

TEST(SchedulePeriodicTest, EmptyRangeNoFiring) {
  Simulator sim;
  int fired = 0;
  SchedulePeriodic(sim, 10, 5, 10, [&](int64_t) { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 0);
}

// --- Timer-wheel-specific ordering. ---

TEST(SimulatorTest, StoppedRunLeavesClockAtLastEvent) {
  Simulator sim;
  sim.ScheduleAt(10, [&] { sim.Stop(); });
  sim.RunUntil(1000);
  // The queue is empty and Stop() was honored: the clock must not jump to 1000.
  EXPECT_EQ(sim.now(), 10);
  // A fresh run without Stop() does advance to the horizon.
  EXPECT_EQ(sim.RunUntil(1000), 0u);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulatorTest, SameTimeFifoAcrossWheelLevels) {
  // Events at one far timestamp enter through different structures over time
  // (overflow at schedule, L1 after a partial run, L0 near the end); FIFO by
  // insertion must survive every migration.
  Simulator sim;
  const SimTime t = 10 * kMinute;
  std::vector<int> order;
  sim.ScheduleAt(t, [&] { order.push_back(0); });        // Overflow at schedule.
  sim.RunUntil(8 * kMinute);                             // Now within the L1 window.
  sim.ScheduleAt(t, [&] { order.push_back(1); });
  sim.RunUntil(t - 100 * kMillisecond);                  // Now within the L0 window.
  sim.ScheduleAt(t, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, MixedHorizonsFireInTimeOrder) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  const std::vector<SimTime> times = {
      3 * kHour,  500,  kDay, 2 * kMinute, 90 * kSecond, 1,
      5 * kHour,  kDay, 999,  kMinute,     kSecond,      kHour + 1,
  };
  for (const SimTime t : times) {
    sim.ScheduleAt(t, [&fire_times, &sim] { fire_times.push_back(sim.now()); });
  }
  sim.RunToCompletion();
  std::vector<SimTime> expected = times;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fire_times, expected);
}

TEST(SimulatorTest, ScheduleIntoCursorGapPreservesOrder) {
  // RunUntil may scout the wheel cursor past its horizon while peeking at a far
  // event; a later schedule into that gap must still fire first.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(kHour, [&] { order.push_back(1); });  // Far event, peeked at.
  sim.RunUntil(1000);
  EXPECT_EQ(sim.now(), 1000);
  sim.ScheduleAt(2000, [&] { order.push_back(0); });  // Behind the scouted cursor.
  sim.ScheduleAt(2000, [&] { order.push_back(10); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1}));
  EXPECT_EQ(sim.now(), kHour);
}

TEST(SimulatorTest, RandomScheduleMatchesStableSortOrder) {
  // The wheel must reproduce exactly the (time, insertion seq) total order of a
  // stable sort, across bucket/frame/overflow migrations and handler reentrancy.
  Simulator sim;
  Rng rng(2024);
  std::vector<std::pair<SimTime, int>> scheduled;
  std::vector<int> fired;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    // Spread over ~6 minutes so all three structures participate.
    const SimTime t = static_cast<SimTime>(rng.NextBounded(6 * kMinute));
    scheduled.push_back({t, i});
    sim.ScheduleAt(t, [&fired, i] { fired.push_back(i); });
  }
  sim.RunToCompletion();
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(fired.size(), scheduled.size());
  for (size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_EQ(fired[i], scheduled[i].second) << "position " << i;
  }
}

TEST(SimulatorTest, HandlersSchedulingAtNowRunThisSweep) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(100, [&] {
    order.push_back(0);
    sim.ScheduleAt(100, [&] { order.push_back(2); });  // Same timestamp, later seq.
  });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), 100);
}

// --- EventSource merging. ---

// A stream of `count` events at fixed `stride` spacing, opened with a reserved
// seq range like the platform's arrival cursor.
class TestSource : public EventSource {
 public:
  TestSource(Simulator& sim, SimTime start, SimTime stride, int count,
             std::vector<int>* log)
      : sim_(sim), start_(start), stride_(stride), count_(count), log_(log) {}

  void Reserve() { seq_base_ = sim_.ReserveSeqRange(static_cast<uint64_t>(count_)); }

  bool Head(SimTime* time, uint64_t* seq) override {
    if (next_ == count_) {
      return false;
    }
    *time = start_ + stride_ * next_;
    *seq = seq_base_ + static_cast<uint64_t>(next_);
    return true;
  }

  void RunHead() override {
    log_->push_back(1000 + next_);
    ++next_;
  }

 private:
  Simulator& sim_;
  SimTime start_;
  SimTime stride_;
  int count_;
  std::vector<int>* log_;
  uint64_t seq_base_ = 0;
  int next_ = 0;
};

TEST(EventSourceTest, StreamInterleavesWithQueueByTime) {
  Simulator sim;
  std::vector<int> log;
  TestSource source(sim, 10, 20, 3, &log);  // Heads at 10, 30, 50.
  source.Reserve();
  sim.AttachSource(&source);
  sim.ScheduleAt(5, [&] { log.push_back(0); });
  sim.ScheduleAt(20, [&] { log.push_back(1); });
  sim.ScheduleAt(40, [&] { log.push_back(2); });
  sim.ScheduleAt(60, [&] { log.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(log, (std::vector<int>{0, 1000, 1, 1001, 2, 1002, 3}));
  EXPECT_EQ(sim.events_processed(), 7u);
  sim.AttachSource(nullptr);
}

TEST(EventSourceTest, SameTimeTieBreaksBySeq) {
  // A queued event scheduled before the stream reserves its range outranks the
  // stream head at the same timestamp; one scheduled after does not.
  Simulator sim;
  std::vector<int> log;
  sim.ScheduleAt(10, [&] { log.push_back(0); });  // seq 0 < stream seqs.
  TestSource source(sim, 10, 10, 2, &log);        // Heads at 10, 20.
  source.Reserve();                               // seqs 1, 2.
  sim.AttachSource(&source);
  sim.ScheduleAt(10, [&] { log.push_back(1); });  // seq 3 > stream head seq.
  sim.ScheduleAt(20, [&] { log.push_back(2); });  // seq 4 > second head.
  sim.RunToCompletion();
  EXPECT_EQ(log, (std::vector<int>{0, 1000, 1, 1001, 2}));
  sim.AttachSource(nullptr);
}

TEST(EventSourceTest, RunUntilHonorsStreamBoundary) {
  Simulator sim;
  std::vector<int> log;
  TestSource source(sim, 100, 100, 3, &log);  // Heads at 100, 200, 300.
  source.Reserve();
  sim.AttachSource(&source);
  EXPECT_EQ(sim.RunUntil(200), 2u);  // Heads at 100 and 200 fire; 300 waits.
  EXPECT_EQ(sim.now(), 200);
  EXPECT_EQ(log, (std::vector<int>{1000, 1001}));
  sim.RunToCompletion();
  EXPECT_EQ(log, (std::vector<int>{1000, 1001, 1002}));
  sim.AttachSource(nullptr);
}

}  // namespace
}  // namespace coldstart::sim
