// Tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace coldstart::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NowAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAt(42, [&] { seen = sim.now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 42);
}

TEST(SimulatorTest, HandlersCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sim.ScheduleAfter(10, chain);
    }
  };
  sim.ScheduleAt(0, chain);
  sim.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(20), 2u);  // Events at exactly `until` fire.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntil(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 100);  // Clock advances to the requested horizon.
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, SchedulingInPastDies) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.RunToCompletion();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "CHECK");
}

TEST(SimulatorTest, EventCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleAt(i, [] {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SchedulePeriodicTest, FiresWithIndexUntilEnd) {
  Simulator sim;
  std::vector<int64_t> indices;
  std::vector<SimTime> times;
  SchedulePeriodic(sim, 0, 10, 35, [&](int64_t i) {
    indices.push_back(i);
    times.push_back(sim.now());
  });
  sim.RunToCompletion();
  EXPECT_EQ(indices, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(times, (std::vector<SimTime>{0, 10, 20, 30}));
}

TEST(SchedulePeriodicTest, EmptyRangeNoFiring) {
  Simulator sim;
  int fired = 0;
  SchedulePeriodic(sim, 10, 5, 10, [&](int64_t) { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace coldstart::sim
