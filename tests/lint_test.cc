// Tests for tools/lint: each determinism-contract rule against known-bad and
// known-clean snippets, the LINT-ALLOW suppression contract, and the
// diagnostic format the ctest output promises.
#include "lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace coldstart::lint {
namespace {

Result Lint(const std::string& path, const std::string& content) {
  return LintFiles({FileInput{path, content}});
}

std::vector<std::string> RuleNames(const Result& r) {
  std::vector<std::string> names;
  names.reserve(r.diagnostics.size());
  for (const Diagnostic& d : r.diagnostics) {
    names.push_back(d.rule);
  }
  return names;
}

TEST(LintRegistry, HasAllSixRules) {
  std::vector<std::string> names;
  for (const RuleInfo& r : Rules()) {
    names.push_back(r.name);
  }
  const std::vector<std::string> expected = {"wall-clock",  "ambient-rng",
                                             "unordered-iter", "serde-pair",
                                             "policy-hooks", "stale-allow"};
  for (const std::string& rule : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), rule), names.end())
        << "missing rule " << rule;
  }
}

// --- wall-clock -----------------------------------------------------------

TEST(WallClock, FlagsSystemClockCall) {
  const Result r = Lint("src/platform/bad.cc",
                        "void F() {\n"
                        "  auto t = std::chrono::system_clock::now();\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "wall-clock");
  EXPECT_EQ(r.diagnostics[0].line, 2);
  EXPECT_EQ(r.diagnostics[0].file, "src/platform/bad.cc");
}

TEST(WallClock, FlagsTimeAndGettimeofday) {
  const Result r = Lint("src/core/bad.cc",
                        "void F() {\n"
                        "  time_t t = time(nullptr);\n"
                        "  gettimeofday(&tv, nullptr);\n"
                        "}\n");
  EXPECT_EQ(RuleNames(r), (std::vector<std::string>{"wall-clock", "wall-clock"}));
}

TEST(WallClock, IgnoresCommentsAndStrings) {
  const Result r = Lint("src/core/ok.cc",
                        "// calls system_clock::now() — just a comment\n"
                        "const char* kMsg = \"time(nullptr) in a string\";\n"
                        "/* gettimeofday too */\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(WallClock, SimTimeIdentifiersAreClean) {
  // Identifiers merely containing "time" must not trip the token scan.
  const Result r = Lint("src/core/ok.cc",
                        "SimTime OnTime(SimTime timestamp) {\n"
                        "  return timestamp + runtime_us;\n"
                        "}\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(WallClock, SuppressedByInlineAllow) {
  const Result r =
      Lint("src/core/timed.cc",
           "void F() {\n"
           "  // LINT-ALLOW(wall-clock): diagnostics-only wall timing\n"
           "  auto t = std::chrono::steady_clock::now();\n"
           "}\n");
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].rule, "wall-clock");
  EXPECT_EQ(r.allowed[0].reason, "diagnostics-only wall timing");
}

// --- ambient-rng ----------------------------------------------------------

TEST(AmbientRng, FlagsRandAndRandomDevice) {
  const Result r = Lint("src/workload/bad.cc",
                        "int F() {\n"
                        "  std::random_device rd;\n"
                        "  return std::rand() % 7;\n"
                        "}\n");
  EXPECT_EQ(RuleNames(r),
            (std::vector<std::string>{"ambient-rng", "ambient-rng"}));
}

TEST(AmbientRng, FlagsUnseededEngine) {
  const Result r = Lint("src/policy/bad.cc", "std::mt19937_64 gen;\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "ambient-rng");
}

TEST(AmbientRng, RngImplementationDirIsExempt) {
  const Result r = Lint("src/common/rng.h",
                        "// the one place engine machinery is allowed\n"
                        "inline uint64_t SplitMix64(uint64_t* s) { return *s; }\n"
                        "std::mt19937_64 reference_engine;\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

// --- unordered-iter -------------------------------------------------------

TEST(UnorderedIter, FlagsRangeForInOutputAffectingDir) {
  const Result r = Lint("src/analysis/bad.cc",
                        "void F() {\n"
                        "  std::unordered_map<uint64_t, int> counts;\n"
                        "  for (const auto& [k, v] : counts) {\n"
                        "    Emit(k, v);\n"
                        "  }\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "unordered-iter");
  EXPECT_EQ(r.diagnostics[0].line, 3);
}

TEST(UnorderedIter, FlagsExplicitBeginIteration) {
  const Result r = Lint("src/trace/bad.cc",
                        "std::unordered_set<int> live;\n"
                        "void F() {\n"
                        "  for (auto it = live.begin(); it != live.end(); ++it) {}\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "unordered-iter");
}

TEST(UnorderedIter, FindEndComparisonIsClean) {
  // it != m.end() after find() leaks no order; only begin-family iteration
  // entry points count.
  const Result r = Lint("src/policy/ok.cc",
                        "std::unordered_map<int, int> m;\n"
                        "bool F(int k) { return m.find(k) != m.end(); }\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(UnorderedIter, NonOutputAffectingDirIsClean) {
  const Result r = Lint("src/stats/ok.cc",
                        "std::unordered_map<int, int> m;\n"
                        "void F() {\n"
                        "  for (const auto& kv : m) { Use(kv); }\n"
                        "}\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(UnorderedIter, MemberDeclaredInPairedHeaderFlagsAtCcSite) {
  const Result r = LintFiles(
      {FileInput{"src/policy/p.h",
                 "class P {\n"
                 "  std::unordered_map<uint64_t, int> history_;\n"
                 "};\n"},
       FileInput{"src/policy/p.cc",
                 "void P::Dump() {\n"
                 "  for (const auto& [k, v] : history_) { Emit(k, v); }\n"
                 "}\n"}});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].file, "src/policy/p.cc");
  EXPECT_EQ(r.diagnostics[0].line, 2);
  EXPECT_EQ(r.diagnostics[0].rule, "unordered-iter");
}

TEST(UnorderedIter, SuppressionIsRecorded) {
  const Result r =
      Lint("src/analysis/ok.cc",
           "std::unordered_map<int, int> counts;\n"
           "void F() {\n"
           "  // LINT-ALLOW(unordered-iter): fold is commutative and sorted on Seal\n"
           "  for (const auto& kv : counts) { Add(kv); }\n"
           "}\n");
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].rule, "unordered-iter");
}

// --- serde-pair -----------------------------------------------------------

constexpr const char* kSymmetricPair =
    "bool T::SaveState(std::string* out) const {\n"
    "  ByteWriter w;\n"
    "  w.U64(n_);\n"
    "  w.I64(t_);\n"
    "  w.F64(x_);\n"
    "  *out = w.Take();\n"
    "  return true;\n"
    "}\n"
    "bool T::RestoreState(std::string_view blob) {\n"
    "  ByteReader r(blob);\n"
    "  n_ = r.U64();\n"
    "  t_ = r.I64();\n"
    "  x_ = r.F64();\n"
    "  return true;\n"
    "}\n";

TEST(SerdePair, SymmetricPairIsClean) {
  EXPECT_TRUE(Lint("src/core/ok.cc", kSymmetricPair).diagnostics.empty());
}

TEST(SerdePair, MissingRestoreFieldIsFlagged) {
  // The classic bug: a field added to Save but not Restore.
  const Result r = Lint("src/core/bad.cc",
                        "bool T::SaveState(std::string* out) const {\n"
                        "  ByteWriter w;\n"
                        "  w.U64(n_);\n"
                        "  w.I64(t_);\n"
                        "  return true;\n"
                        "}\n"
                        "bool T::RestoreState(std::string_view blob) {\n"
                        "  ByteReader r(blob);\n"
                        "  n_ = r.U64();\n"
                        "  return true;\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "serde-pair");
  EXPECT_EQ(r.diagnostics[0].line, 1);
  EXPECT_NE(r.diagnostics[0].message.find("[U64,I64]"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("[U64]"), std::string::npos);
}

TEST(SerdePair, TypeMismatchIsFlagged) {
  const Result r = Lint("src/core/bad.cc",
                        "void T::SaveState(ByteWriter& w) const {\n"
                        "  w.U32(n_);\n"
                        "}\n"
                        "void T::RestoreState(ByteReader& r) {\n"
                        "  n_ = r.U64();\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "serde-pair");
  EXPECT_NE(r.diagnostics[0].message.find("writes U32"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("reads U64"), std::string::npos);
}

TEST(SerdePair, WriteReadPrefixesPairToo) {
  const Result r = Lint("src/checkpoint/bad.cc",
                        "void WriteFrame(ByteWriter& w) {\n"
                        "  w.U64(magic);\n"
                        "  w.U32(crc);\n"
                        "}\n"
                        "void ReadFrame(ByteReader& r) {\n"
                        "  magic = r.U64();\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "serde-pair");
}

TEST(SerdePair, UnpairedSaveWithOpsIsFlagged) {
  const Result r = Lint("src/core/bad.cc",
                        "bool T::SaveState(std::string* out) const {\n"
                        "  ByteWriter w;\n"
                        "  w.U64(n_);\n"
                        "  *out = w.Take();\n"
                        "  return true;\n"
                        "}\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "serde-pair");
  EXPECT_NE(r.diagnostics[0].message.find("no matching RestoreState"),
            std::string::npos);
}

TEST(SerdePair, HelperDelegationIsClean) {
  // Pairs whose branches live in delegated helpers have no direct ops; the
  // checker must not invent an asymmetry for them.
  const Result r = Lint("src/core/ok.cc",
                        "bool T::SaveState(std::string* out) const {\n"
                        "  ByteWriter w;\n"
                        "  SaveInner(w);\n"
                        "  *out = w.Take();\n"
                        "  return true;\n"
                        "}\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(SerdePair, CallsInsideOtherFunctionsAreNotDefinitions) {
  // RestoreEvent(...) invocations (with lambda bodies) inside another
  // function must not register as Restore* definitions.
  const Result r = Lint("src/platform/ok.cc",
                        "void T::Rebuild(ByteReader& r) {\n"
                        "  sim_.RestoreEvent(t, s, [this] {\n"
                        "    Fire();\n"
                        "  });\n"
                        "}\n");
  for (const Diagnostic& d : r.diagnostics) {
    EXPECT_NE(d.rule, "serde-pair") << d.message;
  }
}

// --- policy-hooks ---------------------------------------------------------

TEST(PolicyHooks, StatefulPolicyWithoutHooksIsFlagged) {
  const Result r = Lint("src/policy/bad.h",
                        "class MyPolicy : public platform::PlatformPolicy {\n"
                        " public:\n"
                        "  void OnArrival(const F& spec, SimTime now) override;\n"
                        " private:\n"
                        "  std::map<uint64_t, int> history_;\n"
                        "};\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "policy-hooks");
  EXPECT_EQ(r.diagnostics[0].line, 1);
  EXPECT_NE(r.diagnostics[0].message.find("history_"), std::string::npos);
}

TEST(PolicyHooks, CompletePolicyIsClean) {
  const Result r =
      Lint("src/policy/ok.h",
           "class MyPolicy : public platform::PlatformPolicy {\n"
           " public:\n"
           "  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const "
           "override;\n"
           "  bool SavePolicyState(std::string* out) const override;\n"
           "  bool RestorePolicyState(std::string_view blob) override;\n"
           " private:\n"
           "  std::map<uint64_t, int> history_;\n"
           "};\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(PolicyHooks, ConfigOnlyPolicyIsClean) {
  const Result r = Lint("src/policy/ok.h",
                        "class MyPolicy : public platform::PlatformPolicy {\n"
                        " public:\n"
                        "  SimDuration KeepAliveFor(const F&, SimTime) override;\n"
                        " private:\n"
                        "  Options options_;\n"
                        "};\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(PolicyHooks, StatefulModelWithoutHooksIsFlagged) {
  const Result r = Lint("src/platform/bad.h",
                        "class MyModel : public ColdStartModel {\n"
                        " public:\n"
                        "  ColdStartComponents Compute(const F& spec, ResourcePool& pool,\n"
                        "                              const RegionLoadState& load,\n"
                        "                              SimTime now, Rng& rng) override;\n"
                        " private:\n"
                        "  int64_t restores_ = 0;\n"
                        "};\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "policy-hooks");
  EXPECT_EQ(r.diagnostics[0].line, 1);
  EXPECT_NE(r.diagnostics[0].message.find("restores_"), std::string::npos);
  EXPECT_NE(r.diagnostics[0].message.find("cold-start model"), std::string::npos);
}

TEST(PolicyHooks, CompleteModelIsClean) {
  const Result r =
      Lint("src/platform/ok.h",
           "class MyModel : public ColdStartModel {\n"
           " public:\n"
           "  std::unique_ptr<ColdStartModel> Clone() const override;\n"
           "  void SaveModelState(ByteWriter& w) const override;\n"
           "  void RestoreModelState(ByteReader& r) override;\n"
           " private:\n"
           "  int64_t restores_ = 0;\n"
           "};\n");
  EXPECT_TRUE(r.diagnostics.empty());
}

TEST(PolicyHooks, ModelMissingOnlySerdeHooksIsFlagged) {
  const Result r =
      Lint("src/platform/bad.h",
           "class MyModel : public ColdStartModel {\n"
           " public:\n"
           "  std::unique_ptr<ColdStartModel> Clone() const override;\n"
           " private:\n"
           "  int64_t restores_ = 0;\n"
           "};\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "policy-hooks");
  EXPECT_NE(r.diagnostics[0].message.find("SaveModelState/RestoreModelState"),
            std::string::npos);
}

TEST(PolicyHooks, AllowOnClassLineSuppresses) {
  const Result r =
      Lint("src/policy/ok.h",
           "// LINT-ALLOW(policy-hooks): not region-local; never sharded\n"
           "class MyPolicy : public platform::PlatformPolicy {\n"
           "  int64_t offloads_ = 0;\n"
           "};\n");
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.allowed.size(), 1u);
  EXPECT_EQ(r.allowed[0].rule, "policy-hooks");
}

// --- stale-allow ----------------------------------------------------------

TEST(StaleAllow, AllowOnCleanLineIsFlagged) {
  const Result r = Lint("src/core/ok.cc",
                        "// LINT-ALLOW(wall-clock): this line stopped needing it\n"
                        "int x = 1;\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "stale-allow");
  EXPECT_EQ(r.diagnostics[0].line, 1);
  EXPECT_NE(r.diagnostics[0].message.find("stale"), std::string::npos);
}

TEST(StaleAllow, UnknownRuleIsFlagged) {
  const Result r = Lint("src/core/ok.cc",
                        "// LINT-ALLOW(no-such-rule): whatever\n"
                        "int x = 1;\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "stale-allow");
  EXPECT_NE(r.diagnostics[0].message.find("no-such-rule"), std::string::npos);
}

TEST(StaleAllow, MalformedAllowIsFlagged) {
  const Result r = Lint("src/core/ok.cc",
                        "// LINT-ALLOW wall-clock — missing parens and reason\n"
                        "int x = 1;\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].rule, "stale-allow");
  EXPECT_NE(r.diagnostics[0].message.find("malformed"), std::string::npos);
}

TEST(StaleAllow, AllowWithoutReasonIsMalformed) {
  const Result r = Lint("src/core/bad.cc",
                        "// LINT-ALLOW(wall-clock):\n"
                        "auto t = std::chrono::steady_clock::now();\n");
  // The annotation is rejected, so the wall-clock diagnostic fires too.
  const std::vector<std::string> rules = RuleNames(r);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "stale-allow"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "wall-clock"), rules.end());
}

// --- output format --------------------------------------------------------

TEST(Format, PathLineRuleMessage) {
  Diagnostic d;
  d.file = "src/core/x.cc";
  d.line = 42;
  d.rule = "wall-clock";
  d.message = "boom";
  EXPECT_EQ(FormatDiagnostic(d), "src/core/x.cc:42: [wall-clock] boom");
}

TEST(Format, DiagnosticsAreSortedByFileAndLine) {
  const Result r = LintFiles(
      {FileInput{"src/trace/b.cc", "time_t t = time(nullptr);\n"},
       FileInput{"src/analysis/a.cc",
                 "int x = std::rand();\nint y = std::rand();\n"}});
  ASSERT_EQ(r.diagnostics.size(), 3u);
  EXPECT_EQ(r.diagnostics[0].file, "src/analysis/a.cc");
  EXPECT_EQ(r.diagnostics[0].line, 1);
  EXPECT_EQ(r.diagnostics[1].line, 2);
  EXPECT_EQ(r.diagnostics[2].file, "src/trace/b.cc");
}

}  // namespace
}  // namespace coldstart::lint
