// Tests for the common layer: RNG, histograms, env parsing, time formatting,
// tables, and the small-buffer handler the event queue stores.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <set>
#include <vector>

#include "common/env.h"
#include "common/histogram.h"
#include "common/inline_handler.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/table.h"
#include "stats/ecdf.h"

namespace coldstart {
namespace {

TEST(InlineHandlerTest, SmallCapturesStayInline) {
  int counter = 0;
  InlineHandler h([&counter] { ++counter; });
  EXPECT_TRUE(h.is_inline());
  h();
  h();
  EXPECT_EQ(counter, 2);
}

TEST(InlineHandlerTest, CapturesUpTo48BytesStayInline) {
  int64_t a = 1, b = 2, c = 3, d = 4, e = 5;  // 40 bytes of captures.
  int64_t sum = 0;
  InlineHandler h([&sum, a, b, c, d, e] { sum = a + b + c + d + e; });
  EXPECT_TRUE(h.is_inline());
  h();
  EXPECT_EQ(sum, 15);
}

TEST(InlineHandlerTest, OversizedCapturesFallBackToHeap) {
  struct Big {
    char bytes[64] = {};
  } big;
  big.bytes[63] = 7;
  char out = 0;
  InlineHandler h([big, &out] { out = big.bytes[63]; });
  EXPECT_FALSE(h.is_inline());
  h();
  EXPECT_EQ(out, 7);
}

TEST(InlineHandlerTest, MoveTransfersOwnership) {
  auto flag = std::make_shared<int>(0);
  InlineHandler a([flag] { ++*flag; });
  EXPECT_EQ(flag.use_count(), 2);
  InlineHandler b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*flag, 1);
  InlineHandler c;
  c = std::move(b);
  c();
  EXPECT_EQ(*flag, 2);
  EXPECT_EQ(flag.use_count(), 2);  // Exactly one live copy of the capture.
}

TEST(InlineHandlerTest, DestructionReleasesCapture) {
  auto flag = std::make_shared<int>(0);
  {
    InlineHandler h([flag] { ++*flag; });
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);  // Inline capture destroyed.
  {
    struct Big {
      std::shared_ptr<int> p;
      char pad[56] = {};
    };
    InlineHandler h([big = Big{flag}] { ++*big.p; });
    EXPECT_FALSE(h.is_inline());
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);  // Heap cell destroyed.
}

TEST(InlineHandlerTest, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(41);
  InlineHandler h([p = std::move(owned)] { ++*p; });
  h();
}

TEST(InlineHandlerTest, HandlersAreVectorSafe) {
  // The wheel stores handlers in growing containers; moves must preserve them.
  std::vector<InlineHandler> v;
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    v.emplace_back([&hits] { ++hits; });
  }
  for (auto& h : v) {
    h();
  }
  EXPECT_EQ(hits, 100);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoublePositive(), 0.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkStreamIsDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.ForkStream("workload");
  Rng fb = b.ForkStream("workload");
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
}

TEST(RngTest, ForkStreamLabelsIndependent) {
  Rng a(5);
  Rng f1 = a.ForkStream("x");
  Rng f2 = a.ForkStream("y");
  EXPECT_NE(f1.NextU64(), f2.NextU64());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.ForkStream("anything");
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, HashStringStableAndDistinct) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(FromSeconds(1.5), 1500000);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond), 2.0);
  EXPECT_EQ(MinuteIndex(59 * kSecond), 0);
  EXPECT_EQ(MinuteIndex(61 * kSecond), 1);
  EXPECT_EQ(DayIndex(25 * kHour), 1);
  EXPECT_DOUBLE_EQ(HourOfDay(kDay + 6 * kHour), 6.0);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimTime(0), "d00 00:00:00.000");
  EXPECT_EQ(FormatSimTime(kDay + kHour + kMinute + kSecond + kMillisecond),
            "d01 01:01:01.001");
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(2 * kSecond), "2.000s");
}

TEST(HistogramTest, QuantilesOfUniformSpread) {
  LogHistogram h(1e-3, 1e3);
  for (int i = 1; i <= 1000; ++i) {
    h.Add(static_cast<double>(i) / 10.0);  // 0.1 .. 100.
  }
  EXPECT_EQ(h.total_count(), 1000u);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 8.0);
  EXPECT_NEAR(h.Mean(), 50.05, 0.5);
}

TEST(HistogramTest, ClampsOutOfRange) {
  LogHistogram h(1.0, 100.0);
  h.Add(1e-9);
  h.Add(1e9);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_GT(h.CdfAt(1.5), 0.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  LogHistogram a(1.0, 100.0), b(1.0, 100.0);
  a.Add(2.0);
  b.Add(50.0);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 2u);
  EXPECT_DOUBLE_EQ(a.max_recorded(), 50.0);
  EXPECT_DOUBLE_EQ(a.min_recorded(), 2.0);
}

TEST(HistogramTest, EmptyStatisticsAreNaN) {
  const LogHistogram h(1.0, 100.0);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.Mean()));
  EXPECT_EQ(h.CdfAt(10.0), 0.0);
}

TEST(HistogramTest, MergeEmptyDoesNotClobberMinMax) {
  // The guard in Merge(): an empty other's zero-initialized min/max must not leak
  // into a populated histogram (and merging INTO an empty one must adopt the
  // source's range, not keep zeros).
  LogHistogram a(1.0, 100.0), empty(1.0, 100.0);
  a.Add(2.0);
  a.Add(50.0);
  a.Merge(empty);
  EXPECT_EQ(a.total_count(), 2u);
  EXPECT_DOUBLE_EQ(a.min_recorded(), 2.0);
  EXPECT_DOUBLE_EQ(a.max_recorded(), 50.0);

  LogHistogram b(1.0, 100.0);
  b.Merge(a);
  EXPECT_EQ(b.total_count(), 2u);
  EXPECT_DOUBLE_EQ(b.min_recorded(), 2.0);
  EXPECT_DOUBLE_EQ(b.max_recorded(), 50.0);

  LogHistogram c(1.0, 100.0);
  c.Merge(empty);  // empty.Merge(empty): still no samples, still NaN stats.
  EXPECT_EQ(c.total_count(), 0u);
  EXPECT_TRUE(std::isnan(c.Quantile(0.5)));
}

TEST(HistogramTest, SingleSampleQuantileClampsToSample) {
  // The bucket midpoint is clamped to [min_recorded, max_recorded], so with one
  // sample every quantile is that sample exactly — not the midpoint's ~2% error.
  LogHistogram h(1e-3, 1e3);
  h.Add(7.25);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 7.25);
  }
}

TEST(HistogramTest, CdfAtOutOfRangeValues) {
  LogHistogram h(1.0, 100.0);
  h.Add(5.0);
  h.Add(20.0);
  EXPECT_EQ(h.CdfAt(1e6), 1.0);     // Above the range: everything recorded is <=.
  EXPECT_EQ(h.CdfAt(200.0), 1.0);   // Above max_recorded but inside the top bucket.
  EXPECT_EQ(h.CdfAt(2.0), 0.0);     // Below every sample.
  // Non-positive values clamp into bucket 0, which holds no samples here.
  EXPECT_EQ(h.CdfAt(0.0), 0.0);
  EXPECT_EQ(h.CdfAt(-3.0), 0.0);
}

TEST(HistogramTest, QuantileWithinOneBucketGrowthFactorOfExact) {
  // The streaming-vs-exact error contract the O(1)-memory trace sink relies on:
  // a log-bucketed quantile is within one bucket growth factor (10^(1/64) at the
  // default resolution) of the exact Ecdf quantile.
  constexpr int kBucketsPerDecade = 64;
  LogHistogram h(1e-3, 1e3, kBucketsPerDecade);
  stats::Ecdf exact;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.NextGaussian());
    h.Add(v);
    exact.Add(v);
  }
  exact.Seal();
  const double growth = std::pow(10.0, 1.0 / kBucketsPerDecade);
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double approx = h.Quantile(q);
    const double truth = exact.Quantile(q);
    EXPECT_LE(approx, truth * growth) << "q=" << q;
    EXPECT_GE(approx, truth / growth) << "q=" << q;
  }
}

// --- Env parsing. ---

TEST(EnvTest, ParseIntAcceptsOnlyWholeDecimalIntegers) {
  EXPECT_EQ(ParseInt("0"), 0);
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-7"), -7);
  EXPECT_EQ(ParseInt("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(ParseInt("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("-").has_value());
  EXPECT_FALSE(ParseInt("abc").has_value());
  EXPECT_FALSE(ParseInt("4x").has_value());       // Trailing junk.
  EXPECT_FALSE(ParseInt(" 4").has_value());       // No whitespace tolerance.
  EXPECT_FALSE(ParseInt("4.0").has_value());
  EXPECT_FALSE(ParseInt("0x10").has_value());
  EXPECT_FALSE(ParseInt("9223372036854775808").has_value());    // Overflow.
  EXPECT_FALSE(ParseInt("-9223372036854775809").has_value());   // Underflow.
  EXPECT_FALSE(ParseInt("99999999999999999999999").has_value());
}

TEST(EnvTest, ParseDoubleAcceptsOnlyWholeFiniteNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.3").value(), 0.3);
  EXPECT_DOUBLE_EQ(ParseDouble("-2.5e-3").value(), -2.5e-3);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("0.3x").has_value());   // Trailing junk.
  EXPECT_FALSE(ParseDouble("x0.3").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());  // Non-finite.
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
}

TEST(EnvTest, ParseEnvIntFallsBackOnlyWhenUnset) {
  ASSERT_EQ(unsetenv("COLDSTART_ENV_TEST"), 0);
  EXPECT_EQ(ParseEnvInt("COLDSTART_ENV_TEST", -1, 1, 100), -1);
  ASSERT_EQ(setenv("COLDSTART_ENV_TEST", "37", 1), 0);
  EXPECT_EQ(ParseEnvInt("COLDSTART_ENV_TEST", -1, 1, 100), 37);
  ASSERT_EQ(unsetenv("COLDSTART_ENV_TEST"), 0);
}

TEST(EnvDeathTest, MalformedValuesDieLoudly) {
  // The regression this pins: COLDSTART_THREADS=garbage used to atoi() to 0 and
  // silently mean "default".
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ASSERT_EQ(setenv("COLDSTART_ENV_TEST", "garbage", 1), 0);
  EXPECT_DEATH(ParseEnvInt("COLDSTART_ENV_TEST", 0, 1, 100),
               "not a valid integer");
  ASSERT_EQ(setenv("COLDSTART_ENV_TEST", "", 1), 0);
  EXPECT_DEATH(ParseEnvInt("COLDSTART_ENV_TEST", 0, 1, 100),
               "not a valid integer");
  EXPECT_DEATH(ParseEnvString("COLDSTART_ENV_TEST", "fallback"),
               "set but empty");
  ASSERT_EQ(setenv("COLDSTART_ENV_TEST", "-3", 1), 0);
  EXPECT_DEATH(ParseEnvInt("COLDSTART_ENV_TEST", 0, 1, 100),
               "outside the allowed range");
  ASSERT_EQ(setenv("COLDSTART_ENV_TEST", "99999999999999999999", 1), 0);
  EXPECT_DEATH(ParseEnvInt("COLDSTART_ENV_TEST", 0, 1, 100),
               "not a valid integer");
  ASSERT_EQ(unsetenv("COLDSTART_ENV_TEST"), 0);
}

TEST(HistogramTest, CdfMonotone) {
  LogHistogram h(1e-2, 1e2);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    h.Add(std::exp(rng.NextGaussian()));
  }
  double prev = 0;
  for (double x = 0.01; x < 100; x *= 1.5) {
    const double c = h.CdfAt(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.CdfAt(1e3), 1.0);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.Row().Cell("a").Cell(int64_t{1});
  t.Row().Cell("long-name").Cell(2.5, 1);
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.Row().Cell("x").Cell(int64_t{7});
  EXPECT_EQ(t.RenderCsv(), "a,b\nx,7\n");
}

TEST(TableTest, FormatDoubleSwitchesToScientific) {
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
  EXPECT_NE(FormatDouble(1e9, 2).find('e'), std::string::npos);
  // Empty-distribution statistics are NaN by contract; tables must say so
  // explicitly instead of printing a number-like "nan".
  EXPECT_EQ(FormatDouble(std::nan(""), 2), "n/a");
}

}  // namespace
}  // namespace coldstart
