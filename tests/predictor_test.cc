// Dedicated forecaster test suite: direct unit coverage for the
// SeriesPredictor family (moving average, seasonal naive, Holt-Winters) and
// the inter-arrival forecaster's histogram/confidence math that
// ForecastPrewarmPolicy acts on. Complements the scenario-level checks in
// policy_test.cc with exact, input-controlled expectations: ring wraparound,
// partially-filled windows, sum drift over long streams, season boundaries,
// warm-up and fixed-point behavior, bucket geometry, confidence gating, and
// bit-exact serde round trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/byte_serde.h"
#include "policy/forecast.h"
#include "policy/predictors.h"

namespace coldstart::policy {
namespace {

// --- MovingAveragePredictor. ------------------------------------------------

TEST(MovingAveragePredictorTest, RingWraparoundEvictsOldest) {
  MovingAveragePredictor p(3);
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    p.Observe(v);
  }
  // Two full wraps: only {4, 5, 6} remain in the window.
  EXPECT_DOUBLE_EQ(p.Predict(), 5.0);
  p.Observe(9.0);  // Evicts the 4.
  EXPECT_DOUBLE_EQ(p.Predict(), (5.0 + 6.0 + 9.0) / 3.0);
}

TEST(MovingAveragePredictorTest, PartiallyFilledWindowAveragesOnlySeen) {
  MovingAveragePredictor p(8);
  double sum = 0;
  for (int i = 1; i <= 5; ++i) {
    p.Observe(static_cast<double>(i));
    sum += i;
    // The divisor is the number of observations, never the window size.
    EXPECT_DOUBLE_EQ(p.Predict(), sum / i);
  }
}

TEST(MovingAveragePredictorTest, SumDriftBoundedOverLongStreams) {
  // A long stream of awkward decimals: the incremental add/subtract update
  // would accumulate floating-point drift without the periodic re-derivation.
  // After a million observations the prediction must still match the exact
  // mean of the last `window` values to near machine precision.
  constexpr int kWindow = 32;
  constexpr int kStream = 1'000'000;
  MovingAveragePredictor p(kWindow);
  std::vector<double> tail(kWindow);
  for (int i = 0; i < kStream; ++i) {
    const double v = 0.1 * static_cast<double>(i % 7) + 0.0003;
    p.Observe(v);
    tail[static_cast<size_t>(i % kWindow)] = v;
  }
  double exact = 0;
  for (const double v : tail) {
    exact += v;
  }
  exact /= kWindow;
  EXPECT_NEAR(p.Predict(), exact, 1e-9);
}

TEST(MovingAveragePredictorTest, WindowOneTracksLastValue) {
  MovingAveragePredictor p(1);
  for (const double v : {3.5, -2.0, 100.0}) {
    p.Observe(v);
    EXPECT_DOUBLE_EQ(p.Predict(), v);
  }
}

// --- SeasonalNaivePredictor. ------------------------------------------------

TEST(SeasonalNaivePredictorTest, PreSeasonFallbackUsesLastObservation) {
  SeasonalNaivePredictor p(4);
  p.Observe(1.0);
  p.Observe(2.0);
  p.Observe(3.0);
  // Three of four season slots seen: still the last-value fallback.
  EXPECT_DOUBLE_EQ(p.Predict(), 3.0);
}

TEST(SeasonalNaivePredictorTest, ExactSeasonBoundarySwitchesToSeasonal) {
  SeasonalNaivePredictor p(4);
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    p.Observe(v);
  }
  // The fourth observation completes the season: the very next prediction is
  // the same-phase value from one season ago, not the last observation.
  EXPECT_DOUBLE_EQ(p.Predict(), 1.0);
}

TEST(SeasonalNaivePredictorTest, TracksSeasonAcrossCycles) {
  SeasonalNaivePredictor p(3);
  const double cycle[] = {10.0, 20.0, 30.0};
  for (int i = 0; i < 9; ++i) {
    p.Observe(cycle[i % 3]);
  }
  // After three full cycles every prediction repeats the periodic pattern.
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(p.Predict(), cycle[i % 3]);
    p.Observe(cycle[i % 3]);
  }
}

// --- HoltWintersPredictor. --------------------------------------------------

TEST(HoltWintersPredictorTest, WarmUpMatchesFirstObservation) {
  HoltWintersPredictor p(4, 0.3, 0.05, 0.15);
  p.Observe(42.0);
  // Warm-up seeds level to the first value with zero trend and seasonality:
  // the one-observation prediction is exactly that value.
  EXPECT_DOUBLE_EQ(p.Predict(), 42.0);
}

TEST(HoltWintersPredictorTest, ConstantSeriesFixedPoint) {
  HoltWintersPredictor p(6, 0.3, 0.05, 0.15);
  for (int i = 0; i < 500; ++i) {
    p.Observe(5.0);
  }
  // A constant series is a fixed point: level converges to the constant,
  // trend and seasonal components decay to zero.
  EXPECT_NEAR(p.Predict(), 5.0, 1e-6);
  p.Observe(5.0);
  EXPECT_NEAR(p.Predict(), 5.0, 1e-6);
}

TEST(HoltWintersPredictorTest, TrendTrackingWithinTolerance) {
  HoltWintersPredictor p(4, 0.5, 0.3, 0.1);
  constexpr double kSlope = 3.0;
  int i = 0;
  for (; i < 300; ++i) {
    p.Observe(kSlope * i);
  }
  // The one-step-ahead forecast follows the ramp within a few slopes' error.
  EXPECT_NEAR(p.Predict(), kSlope * i, 5.0 * kSlope);
}

TEST(MakePredictorTest, NamesMatchKinds) {
  for (const char* kind : {"moving-average", "seasonal-naive", "holt-winters"}) {
    const auto p = MakePredictor(kind, 12);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), kind);
  }
}

// --- InterArrivalForecaster: histogram and confidence math. ------------------

TEST(InterArrivalForecasterTest, BucketOfIsFloorLog2OfMicroseconds) {
  EXPECT_EQ(InterArrivalForecaster::BucketOf(1), 0);
  EXPECT_EQ(InterArrivalForecaster::BucketOf(2), 1);
  EXPECT_EQ(InterArrivalForecaster::BucketOf(3), 1);
  EXPECT_EQ(InterArrivalForecaster::BucketOf(4), 2);
  EXPECT_EQ(InterArrivalForecaster::BucketOf(1023), 9);
  EXPECT_EQ(InterArrivalForecaster::BucketOf(1024), 10);
  // One second = 1e6 us: floor(log2) = 19.
  EXPECT_EQ(InterArrivalForecaster::BucketOf(kSecond), 19);
  // Non-positive IATs clamp into the lowest bucket instead of misindexing.
  EXPECT_EQ(InterArrivalForecaster::BucketOf(0), 0);
  // The largest representable IAT stays in range.
  EXPECT_LT(InterArrivalForecaster::BucketOf(INT64_MAX),
            InterArrivalForecaster::kNumBuckets);
}

TEST(InterArrivalForecasterTest, NoPredictionBelowMinSamples) {
  InterArrivalForecaster f;
  EXPECT_EQ(f.ModalBucket(), -1);
  EXPECT_DOUBLE_EQ(f.Confidence(), 0.0);
  EXPECT_FALSE(f.Confident());
  EXPECT_EQ(f.PredictedIat(), 0);
  EXPECT_EQ(f.PredictNextArrival(), -1);
  // Five IATs is one short of the default min_samples = 6 gate.
  SimTime t = 0;
  for (int i = 0; i < 6; ++i) {
    f.ObserveArrival(t);
    t += 5 * kMinute;
  }
  EXPECT_EQ(f.sample_count(), 5);
  EXPECT_DOUBLE_EQ(f.Confidence(), 0.0);
  EXPECT_EQ(f.PredictNextArrival(), -1);
}

TEST(InterArrivalForecasterTest, PeriodicSeriesFullConfidenceExactIat) {
  InterArrivalForecaster f;
  SimTime t = 0;
  for (int i = 0; i < 20; ++i) {
    f.ObserveArrival(t);
    t += 5 * kMinute;
  }
  // A strict timer concentrates all mass in one bucket; the trimmed mean over
  // identical integer samples is exact, not approximate.
  EXPECT_DOUBLE_EQ(f.Confidence(), 1.0);
  EXPECT_TRUE(f.Confident());
  EXPECT_EQ(f.PredictedIat(), 5 * kMinute);
  EXPECT_EQ(f.PredictNextArrival(), f.last_arrival() + 5 * kMinute);
}

TEST(InterArrivalForecasterTest, ZeroIatArrivalsAddNoSamples) {
  InterArrivalForecaster f;
  f.ObserveArrival(kMinute);
  f.ObserveArrival(kMinute);  // Concurrent duplicate: no inter-arrival gap.
  f.ObserveArrival(kMinute);
  EXPECT_EQ(f.sample_count(), 0);
  EXPECT_EQ(f.last_arrival(), kMinute);
}

TEST(InterArrivalForecasterTest, WindowEvictionKeepsHistogramConsistent) {
  InterArrivalForecaster::Options options;
  options.window = 8;
  InterArrivalForecaster f(options);
  SimTime t = 0;
  // Fill the window with 1-second IATs, then overwrite it entirely with
  // 100-second IATs: eviction must fully drain the old bucket's counts.
  for (int i = 0; i < 9; ++i) {
    f.ObserveArrival(t);
    t += kSecond;
  }
  for (int i = 0; i < 20; ++i) {
    f.ObserveArrival(t);
    t += 100 * kSecond;
  }
  EXPECT_EQ(f.sample_count(), 8);
  EXPECT_EQ(f.ModalBucket(), InterArrivalForecaster::BucketOf(100 * kSecond));
  EXPECT_DOUBLE_EQ(f.Confidence(), 1.0);
  EXPECT_EQ(f.PredictedIat(), 100 * kSecond);
}

TEST(InterArrivalForecasterTest, DispersedIatsFailConfidenceGate) {
  InterArrivalForecaster f;
  // IATs spread across octaves at least three log2 buckets apart: no modal
  // neighborhood can ever hold a majority, so the gate must stay closed.
  const SimDuration iats[] = {kSecond,        8 * kSecond,     64 * kSecond,
                              512 * kSecond,  4096 * kSecond,  32768 * kSecond};
  SimTime t = 0;
  f.ObserveArrival(t);
  for (int round = 0; round < 2; ++round) {
    for (const SimDuration iat : iats) {
      t += iat;
      f.ObserveArrival(t);
    }
  }
  EXPECT_EQ(f.sample_count(), 12);
  EXPECT_NEAR(f.Confidence(), 2.0 / 12.0, 1e-12);
  EXPECT_FALSE(f.Confident());
  EXPECT_EQ(f.PredictNextArrival(), -1);
}

TEST(InterArrivalForecasterTest, JitterTolerantPrediction) {
  InterArrivalForecaster f;
  // ~300 s period with +-10% deterministic jitter: every IAT lands in the
  // same log2 bucket, so confidence is full and the trimmed mean is the
  // exact integer mean of the jittered samples.
  const SimDuration jitter[] = {0, 17 * kSecond, -23 * kSecond, 9 * kSecond,
                                -12 * kSecond, 28 * kSecond, -5 * kSecond};
  SimTime t = 0;
  int64_t sum = 0;
  int64_t count = 0;
  f.ObserveArrival(t);
  for (int i = 0; i < 21; ++i) {
    const SimDuration iat = 300 * kSecond + jitter[i % 7];
    t += iat;
    f.ObserveArrival(t);
    sum += iat;
    ++count;
  }
  EXPECT_DOUBLE_EQ(f.Confidence(), 1.0);
  EXPECT_EQ(f.PredictedIat(), sum / count);
  EXPECT_NEAR(ToSeconds(f.PredictedIat()), 300.0, 30.0);
}

TEST(InterArrivalForecasterTest, DiurnalPredictsNextActiveHour) {
  InterArrivalForecaster f;
  // Four arrivals inside hour 9 of day 0, one stray at hour 13: hour 9 is the
  // peak; hour 13's count is under half the peak and must be skipped.
  for (int k = 0; k < 4; ++k) {
    f.ObserveArrival(9 * kHour + k * 10 * kMinute);
  }
  f.ObserveArrival(13 * kHour);
  // From 06:30 next day, the next active hour is 09:00 that day.
  EXPECT_EQ(f.PredictDiurnalNext(kDay + 6 * kHour + 30 * kMinute),
            kDay + 9 * kHour);
  // From 12:30, hour 13 (count 1 < peak/2) is skipped: the answer wraps all
  // the way to 09:00 the following day.
  EXPECT_EQ(f.PredictDiurnalNext(kDay + 12 * kHour + 30 * kMinute),
            2 * kDay + 9 * kHour);
}

TEST(InterArrivalForecasterTest, DiurnalRequiresMinPeakCount) {
  InterArrivalForecaster f;
  f.ObserveArrival(9 * kHour);
  f.ObserveArrival(9 * kHour + 10 * kMinute);
  // Peak hour holds two arrivals, below diurnal_min_count = 3: too thin.
  EXPECT_EQ(f.PredictDiurnalNext(kDay), -1);
}

TEST(InterArrivalForecasterTest, SerdeRoundTripBitExact) {
  InterArrivalForecaster::Options options;
  options.window = 16;
  InterArrivalForecaster f(options);
  // Mixed stream that wraps the ring: serde must carry eviction state too.
  SimTime t = 0;
  for (int i = 0; i < 40; ++i) {
    t += (i % 5 + 1) * kMinute + i * kSecond;
    f.ObserveArrival(t);
  }
  ByteWriter w1;
  f.SaveState(w1);

  InterArrivalForecaster restored(options);
  ByteReader r(w1.data());
  restored.RestoreState(r);
  EXPECT_TRUE(r.AtEnd());

  // Bit-exact: the same bytes come back out, and the derived histogram
  // answers agree exactly.
  ByteWriter w2;
  restored.SaveState(w2);
  EXPECT_EQ(w1.data(), w2.data());
  EXPECT_EQ(restored.sample_count(), f.sample_count());
  EXPECT_EQ(restored.ModalBucket(), f.ModalBucket());
  EXPECT_DOUBLE_EQ(restored.Confidence(), f.Confidence());
  EXPECT_EQ(restored.PredictedIat(), f.PredictedIat());

  // And the two instances evolve identically after the round trip.
  for (int i = 0; i < 10; ++i) {
    t += 3 * kMinute;
    f.ObserveArrival(t);
    restored.ObserveArrival(t);
  }
  ByteWriter w3, w4;
  f.SaveState(w3);
  restored.SaveState(w4);
  EXPECT_EQ(w3.data(), w4.data());
}

}  // namespace
}  // namespace coldstart::policy
