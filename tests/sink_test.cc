// Trace-sink layer tests: the streaming aggregates sink must reproduce the exact
// store-derived statistics — per-region cold-start counts and integer latency sums
// bit for bit — in serial AND sharded execution, so month/year-scale streaming runs
// are trustworthy stand-ins for full-trace runs. Also pins the RunCached misuse
// guard (policy runs must never touch the baseline cache).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/coldstart_lab.h"
#include "trace/streaming_aggregates.h"

namespace coldstart {
namespace {

using core::Experiment;
using core::ExperimentResult;
using core::ScenarioConfig;
using core::TraceMode;
using trace::StreamCounters;
using trace::StreamingAggregates;
using trace::TriggerGroup;

void ExpectCountersEqual(const StreamCounters& a, const StreamCounters& b,
                         const std::string& what) {
  EXPECT_EQ(a.requests, b.requests) << what;
  EXPECT_EQ(a.cold_starts, b.cold_starts) << what;
  EXPECT_EQ(a.pods, b.pods) << what;
  EXPECT_EQ(a.cold_start_latency_sum_us, b.cold_start_latency_sum_us) << what;
  EXPECT_EQ(a.execution_time_sum_us, b.execution_time_sum_us) << what;
  EXPECT_EQ(a.pod_lifetime_sum_us, b.pod_lifetime_sum_us) << what;
  EXPECT_EQ(a.pod_requests_served, b.pod_requests_served) << what;
}

void ExpectHistogramsEqual(const LogHistogram& a, const LogHistogram& b,
                           const std::string& what) {
  ASSERT_EQ(a.num_buckets(), b.num_buckets()) << what;
  EXPECT_EQ(a.total_count(), b.total_count()) << what;
  for (int i = 0; i < a.num_buckets(); ++i) {
    ASSERT_EQ(a.bucket_count(i), b.bucket_count(i)) << what << " bucket " << i;
  }
  if (a.total_count() > 0) {
    EXPECT_DOUBLE_EQ(a.min_recorded(), b.min_recorded()) << what;
    EXPECT_DOUBLE_EQ(a.max_recorded(), b.max_recorded()) << what;
    // Quantiles derive from bucket counts + the min/max clamp, so they agree to
    // the last bit whenever the above do.
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
      EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q)) << what << " q=" << q;
    }
  }
}

void ExpectAggregatesEqual(const StreamingAggregates& a,
                           const StreamingAggregates& b) {
  EXPECT_EQ(a.horizon(), b.horizon());
  EXPECT_EQ(a.num_functions(), b.num_functions());
  ASSERT_EQ(a.num_regions(), b.num_regions());
  for (size_t r = 0; r < a.num_regions(); ++r) {
    const auto region = static_cast<trace::RegionId>(r);
    const std::string where = "region " + std::to_string(r);
    EXPECT_EQ(a.functions_in_region(region), b.functions_in_region(region));
    ExpectCountersEqual(a.region(region), b.region(region), where);
    ExpectHistogramsEqual(a.cold_start_hist(region), b.cold_start_hist(region),
                          where + " cold-start hist");
    ExpectHistogramsEqual(a.request_hist(region), b.request_hist(region),
                          where + " request hist");
    ExpectHistogramsEqual(a.pod_lifetime_hist(region), b.pod_lifetime_hist(region),
                          where + " pod hist");
    for (int g = 0; g < trace::kNumTriggerGroups; ++g) {
      const auto group = static_cast<TriggerGroup>(g);
      const std::string gwhere = where + " group " + trace::TriggerGroupName(group);
      ExpectCountersEqual(a.group(region, group), b.group(region, group), gwhere);
      ExpectHistogramsEqual(a.group_cold_start_hist(region, group),
                            b.group_cold_start_hist(region, group),
                            gwhere + " hist");
    }
  }
}

ScenarioConfig TestScenario() {
  ScenarioConfig config = core::SmallScenario();
  config.trace_mode = TraceMode::kStreaming;
  return config;
}

// --- TraceStore is itself a sink: the On* interface appends records. ---

TEST(TraceSinkTest, TraceStoreImplementsSinkInterface) {
  trace::TraceStore store;
  trace::TraceSink& sink = store;
  trace::FunctionRecord f;
  f.function_id = 0;
  f.region = 2;
  sink.OnFunction(f);
  trace::RequestRecord req;
  req.region = 2;
  sink.OnRequest(req);
  trace::ColdStartRecord cs;
  cs.region = 2;
  sink.OnColdStart(cs);
  trace::PodLifetimeRecord pod;
  pod.region = 2;
  sink.OnPodLifetime(pod);
  sink.OnHorizon(123);
  EXPECT_EQ(store.functions().size(), 1u);
  EXPECT_EQ(store.requests().size(), 1u);
  EXPECT_EQ(store.cold_starts().size(), 1u);
  EXPECT_EQ(store.pods().size(), 1u);
  EXPECT_EQ(store.horizon(), 123);
}

// --- Acceptance pin: streaming == exact-store-derived aggregates, serial AND
// sharded, and both match the platform's own per-region counters. ---

TEST(StreamingAggregatesTest, StreamingMatchesStoreDerivedAggregatesOnSmallScenario) {
  ScenarioConfig full_config = core::SmallScenario();
  ASSERT_EQ(full_config.trace_mode, TraceMode::kFull);
  const Experiment full_experiment(full_config);
  const ExperimentResult full = full_experiment.Run(nullptr, /*num_threads=*/1);
  ASSERT_GT(full.store.requests().size(), 10000u);
  const StreamingAggregates reference = trace::AggregatesFromStore(full.store);

  const Experiment streaming_experiment(TestScenario());
  const ExperimentResult serial = streaming_experiment.Run(nullptr, 1);
  const ExperimentResult sharded = streaming_experiment.Run(nullptr, 4);
  EXPECT_EQ(serial.mode, TraceMode::kStreaming);
  // Streaming runs materialize nothing.
  EXPECT_TRUE(serial.store.requests().empty());
  EXPECT_TRUE(serial.store.cold_starts().empty());
  EXPECT_TRUE(sharded.store.requests().empty());

  ExpectAggregatesEqual(reference, serial.streaming);
  ExpectAggregatesEqual(reference, sharded.streaming);

  // Cross-check against the platform's own aggregate counters, and pin the
  // acceptance numbers explicitly: per-region cold-start counts and latency sums.
  ASSERT_EQ(serial.streaming.num_regions(), full.visible_cold_starts.size());
  for (size_t r = 0; r < serial.streaming.num_regions(); ++r) {
    const auto region = static_cast<trace::RegionId>(r);
    EXPECT_EQ(static_cast<int64_t>(serial.streaming.region(region).cold_starts),
              full.visible_cold_starts[r]);
    EXPECT_EQ(static_cast<int64_t>(
                  serial.streaming.region(region).cold_start_latency_sum_us),
              full.cold_start_latency_sum_us[r]);
    EXPECT_EQ(sharded.streaming.region(region).cold_starts,
              serial.streaming.region(region).cold_starts);
    EXPECT_EQ(sharded.streaming.region(region).cold_start_latency_sum_us,
              serial.streaming.region(region).cold_start_latency_sum_us);
  }
  EXPECT_EQ(serial.streaming.horizon(), full.store.horizon());
  EXPECT_GT(serial.streaming.Totals().cold_starts, 0u);
}

TEST(StreamingAggregatesTest, ShardedStreamingBitIdenticalIncludingFloatSums) {
  // Per-region accumulators see the identical record sequence at any thread
  // count, so even the order-sensitive float histogram sums agree bit for bit.
  ScenarioConfig config = TestScenario();
  config.days = 3;
  const Experiment experiment(config);
  const ExperimentResult serial = experiment.Run(nullptr, 1);
  const ExperimentResult sharded = experiment.Run(nullptr, 4);
  ExpectAggregatesEqual(serial.streaming, sharded.streaming);
  for (size_t r = 0; r < serial.streaming.num_regions(); ++r) {
    const auto region = static_cast<trace::RegionId>(r);
    EXPECT_EQ(serial.streaming.cold_start_hist(region).sum(),
              sharded.streaming.cold_start_hist(region).sum());
    EXPECT_EQ(serial.streaming.request_hist(region).sum(),
              sharded.streaming.request_hist(region).sum());
    EXPECT_EQ(serial.streaming.pod_lifetime_hist(region).sum(),
              sharded.streaming.pod_lifetime_hist(region).sum());
  }
}

TEST(StreamingAggregatesTest, StreamingWorksUnderRegionLocalPolicy) {
  ScenarioConfig config = TestScenario();
  config.days = 3;
  config.record_requests = false;
  const Experiment experiment(config);
  policy::TimerAwarePrewarmPolicy serial_policy;
  const ExperimentResult serial = experiment.Run(&serial_policy, 1);
  policy::TimerAwarePrewarmPolicy sharded_policy;
  const ExperimentResult sharded = experiment.Run(&sharded_policy, 4);
  EXPECT_GT(serial_policy.prewarms_issued(), 0);
  EXPECT_EQ(serial_policy.prewarms_issued(), sharded_policy.prewarms_issued());
  ExpectAggregatesEqual(serial.streaming, sharded.streaming);
  // record_requests=false suppresses request records in both modes.
  EXPECT_EQ(serial.streaming.Totals().requests, 0u);
  EXPECT_GT(serial.streaming.Totals().cold_starts, 0u);
}

// --- Unit-level sink behavior. ---

TEST(StreamingAggregatesTest, GroupRollupsFoldAcrossRegions) {
  StreamingAggregates agg;
  trace::FunctionRecord f0;
  f0.function_id = 0;
  f0.region = 0;
  f0.primary_trigger = trace::Trigger::kTimer;
  agg.OnFunction(f0);
  trace::FunctionRecord f1;
  f1.function_id = 1;
  f1.region = 2;
  f1.primary_trigger = trace::Trigger::kApigSync;
  agg.OnFunction(f1);

  trace::ColdStartRecord cs;
  cs.function_id = 0;
  cs.region = 0;
  cs.cold_start_us = 2'000'000;  // 2 s.
  agg.OnColdStart(cs);
  cs.function_id = 1;
  cs.region = 2;
  cs.cold_start_us = 500'000;  // 0.5 s.
  agg.OnColdStart(cs);
  agg.OnHorizon(1000);

  EXPECT_EQ(agg.num_regions(), 3u);
  EXPECT_EQ(agg.GroupTotals(TriggerGroup::kTimerA).cold_starts, 1u);
  EXPECT_EQ(agg.GroupTotals(TriggerGroup::kApigS).cold_starts, 1u);
  EXPECT_EQ(agg.GroupTotals(TriggerGroup::kObsA).cold_starts, 0u);
  EXPECT_EQ(agg.Totals().cold_start_latency_sum_us, 2'500'000u);
  EXPECT_EQ(agg.region(0).cold_starts, 1u);
  EXPECT_EQ(agg.region(1).cold_starts, 0u);
  EXPECT_EQ(agg.GroupColdStartHist(TriggerGroup::kTimerA).total_count(), 1u);
  EXPECT_NEAR(agg.MergedColdStartHist().Quantile(0.99), 2.0, 0.1);
  // Out-of-range region queries return empty state rather than crashing.
  EXPECT_EQ(agg.region(7).cold_starts, 0u);
  EXPECT_TRUE(std::isnan(agg.cold_start_hist(7).Quantile(0.5)));
}

TEST(StreamingAggregatesTest, MergeFromAddsEventStateKeepsFunctionTable) {
  auto make = [](uint32_t cold_start_us) {
    StreamingAggregates agg;
    trace::FunctionRecord f;
    f.function_id = 0;
    f.region = 1;
    f.primary_trigger = trace::Trigger::kObs;
    agg.OnFunction(f);
    trace::ColdStartRecord cs;
    cs.function_id = 0;
    cs.region = 1;
    cs.cold_start_us = cold_start_us;
    agg.OnColdStart(cs);
    return agg;
  };
  StreamingAggregates a = make(1'000'000);
  const StreamingAggregates b = make(3'000'000);
  a.MergeFrom(b);
  // Event state added; the replicated function table is kept, not doubled.
  EXPECT_EQ(a.num_functions(), 1u);
  EXPECT_EQ(a.functions_in_region(1), 1u);
  EXPECT_EQ(a.region(1).cold_starts, 2u);
  EXPECT_EQ(a.region(1).cold_start_latency_sum_us, 4'000'000u);
  EXPECT_EQ(a.GroupTotals(TriggerGroup::kObsA).cold_starts, 2u);

  // Merging into a default-constructed sink adopts everything.
  StreamingAggregates empty;
  empty.MergeFrom(a);
  EXPECT_EQ(empty.num_functions(), 1u);
  EXPECT_EQ(empty.region(1).cold_starts, 2u);
}

// --- RunCached misuse guards. ---

TEST(RunCachedGuardDeathTest, RejectsPolicyRuns) {
  // The header has always said "policy runs must use Run()"; this pins the
  // enforcement — a policy run reaching the cache would silently poison the
  // baseline for every later reader.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScenarioConfig config = core::SmallScenario();
  config.days = 1;
  config.scale = 0.05;
  const Experiment experiment(config);
  policy::TimerAwarePrewarmPolicy policy;
  EXPECT_DEATH(experiment.RunCached("/tmp/coldstart_guard_test_cache", &policy),
               "RunCached is baseline-only");
}

TEST(RunCachedGuardDeathTest, RejectsStreamingMode) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScenarioConfig config = TestScenario();
  config.days = 1;
  config.scale = 0.05;
  const Experiment experiment(config);
  EXPECT_DEATH(experiment.RunCached("/tmp/coldstart_guard_test_cache"),
               "requires TraceMode::kFull");
}

}  // namespace
}  // namespace coldstart
