// Tests for Spearman correlation and p-values (the Figure 12 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/correlation.h"

namespace coldstart::stats {
namespace {

TEST(MidRanksTest, SimpleOrdering) {
  const auto r = MidRanks({30.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(MidRanksTest, TiesGetAverageRank) {
  const auto r = MidRanks({5.0, 1.0, 5.0, 9.0});
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(MidRanksTest, AllEqual) {
  const auto r = MidRanks({2.0, 2.0, 2.0});
  for (const double v : r) {
    EXPECT_DOUBLE_EQ(v, 2.0);
  }
}

TEST(PearsonTest, PerfectLinear) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, PerfectMonotoneNonlinear) {
  // Spearman sees through monotone transforms; Pearson would not be exactly 1.
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));
  }
  const auto r = SpearmanCorrelation(x, y);
  EXPECT_NEAR(r.rho, 1.0, 1e-12);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(SpearmanTest, AntiMonotone) {
  std::vector<double> x, y;
  for (int i = 1; i <= 30; ++i) {
    x.push_back(i);
    y.push_back(1.0 / i);
  }
  const auto r = SpearmanCorrelation(x, y);
  EXPECT_NEAR(r.rho, -1.0, 1e-12);
  EXPECT_TRUE(r.significant());
}

TEST(SpearmanTest, IndependentSeriesNearZero) {
  Rng rng(42);
  std::vector<double> x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  const auto r = SpearmanCorrelation(x, y);
  EXPECT_NEAR(r.rho, 0.0, 0.05);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(SpearmanTest, NoisyPositiveDetected) {
  Rng rng(43);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = 0.5 * x[i] + rng.NextGaussian();
  }
  const auto r = SpearmanCorrelation(x, y);
  EXPECT_GT(r.rho, 0.3);
  EXPECT_TRUE(r.significant());
}

TEST(SpearmanTest, TooFewSamplesReturnsNeutral) {
  const auto r = SpearmanCorrelation({1.0, 2.0}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(r.rho, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(SpearmanMatrixTest, SymmetricWithUnitDiagonal) {
  Rng rng(44);
  std::vector<std::vector<double>> series(3, std::vector<double>(200));
  for (auto& s : series) {
    for (auto& v : s) {
      v = rng.NextDouble();
    }
  }
  const auto m = SpearmanMatrix(series);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i][i].rho, 1.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m[i][j].rho, m[j][i].rho);
    }
  }
}

TEST(StudentTTest, KnownTwoSidedValues) {
  // t=2.086, dof=20 -> p ~ 0.05 (critical value tables).
  EXPECT_NEAR(StudentTTwoSidedPValue(2.086, 20), 0.05, 0.001);
  // t=0 -> p = 1.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-9);
  // Large t -> tiny p.
  EXPECT_LT(StudentTTwoSidedPValue(10.0, 30), 1e-9);
}

TEST(StudentTTest, SymmetricInT) {
  EXPECT_DOUBLE_EQ(StudentTTwoSidedPValue(1.5, 12), StudentTTwoSidedPValue(-1.5, 12));
}

}  // namespace
}  // namespace coldstart::stats
