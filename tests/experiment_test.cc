// Experiment-runner tests: sharded-vs-serial bit identity, cache-hit aggregate
// fidelity, and fingerprint sensitivity — the contracts the parallel execution
// layer and the trace cache are built on.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <utility>

#include "common/byte_serde.h"
#include "core/coldstart_lab.h"

namespace coldstart {
namespace {

using core::Experiment;
using core::ExperimentResult;
using core::ScenarioConfig;

// Field-wise equality for every record table (memcmp would also compare padding
// bytes, whose values the language does not pin down).
void ExpectStoresIdentical(const trace::TraceStore& a, const trace::TraceStore& b) {
  EXPECT_EQ(a.horizon(), b.horizon());
  ASSERT_EQ(a.functions().size(), b.functions().size());
  for (size_t i = 0; i < a.functions().size(); ++i) {
    const auto& x = a.functions()[i];
    const auto& y = b.functions()[i];
    ASSERT_TRUE(x.function_id == y.function_id && x.user_id == y.user_id &&
                x.region == y.region && x.runtime == y.runtime &&
                x.primary_trigger == y.primary_trigger &&
                x.trigger_mask == y.trigger_mask && x.config == y.config)
        << "function record " << i << " differs";
  }
  ASSERT_EQ(a.requests().size(), b.requests().size());
  for (size_t i = 0; i < a.requests().size(); ++i) {
    const auto& x = a.requests()[i];
    const auto& y = b.requests()[i];
    ASSERT_TRUE(x.timestamp == y.timestamp && x.request_id == y.request_id &&
                x.pod_id == y.pod_id && x.function_id == y.function_id &&
                x.user_id == y.user_id && x.region == y.region &&
                x.cluster == y.cluster && x.cpu_millicores == y.cpu_millicores &&
                x.execution_time_us == y.execution_time_us &&
                x.memory_kb == y.memory_kb)
        << "request record " << i << " differs";
  }
  ASSERT_EQ(a.cold_starts().size(), b.cold_starts().size());
  for (size_t i = 0; i < a.cold_starts().size(); ++i) {
    const auto& x = a.cold_starts()[i];
    const auto& y = b.cold_starts()[i];
    ASSERT_TRUE(x.timestamp == y.timestamp && x.pod_id == y.pod_id &&
                x.function_id == y.function_id && x.user_id == y.user_id &&
                x.region == y.region && x.cluster == y.cluster &&
                x.cold_start_us == y.cold_start_us && x.pod_alloc_us == y.pod_alloc_us &&
                x.deploy_code_us == y.deploy_code_us &&
                x.deploy_dep_us == y.deploy_dep_us &&
                x.scheduling_us == y.scheduling_us)
        << "cold-start record " << i << " differs";
  }
  ASSERT_EQ(a.pods().size(), b.pods().size());
  for (size_t i = 0; i < a.pods().size(); ++i) {
    const auto& x = a.pods()[i];
    const auto& y = b.pods()[i];
    ASSERT_TRUE(x.pod_id == y.pod_id && x.function_id == y.function_id &&
                x.region == y.region && x.cluster == y.cluster && x.config == y.config &&
                x.cold_start_begin == y.cold_start_begin && x.ready_time == y.ready_time &&
                x.last_busy_end == y.last_busy_end && x.death_time == y.death_time &&
                x.cold_start_us == y.cold_start_us &&
                x.requests_served == y.requests_served)
        << "pod record " << i << " differs";
  }
}

void ExpectAggregatesIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.visible_cold_starts, b.visible_cold_starts);
  EXPECT_EQ(a.prewarm_spawns, b.prewarm_spawns);
  EXPECT_EQ(a.delayed_allocations, b.delayed_allocations);
  EXPECT_EQ(a.scratch_allocations, b.scratch_allocations);
  EXPECT_EQ(a.cold_start_latency_sum_us, b.cold_start_latency_sum_us);
  // Cost ledgers compare as serialized bytes: every 128-bit sum bit-identical.
  ByteWriter cost_a, cost_b;
  a.cost_ledger.SaveState(cost_a);
  b.cost_ledger.SaveState(cost_b);
  EXPECT_EQ(cost_a.data(), cost_b.data());
}

// --- Tentpole: the sharded runner reproduces the serial run bit for bit. ---

TEST(ShardedExperimentTest, BaselineBitIdenticalToSerialOnSmallScenario) {
  const Experiment experiment(core::SmallScenario());
  ASSERT_TRUE(experiment.CanShard(nullptr));
  const ExperimentResult serial = experiment.Run(nullptr, /*num_threads=*/1);
  const ExperimentResult sharded = experiment.Run(nullptr, /*num_threads=*/4);
  ASSERT_GT(serial.store.requests().size(), 10000u);
  ExpectStoresIdentical(serial.store, sharded.store);
  ExpectAggregatesIdentical(serial, sharded);
}

TEST(ShardedExperimentTest, StreamedArrivalsBitIdenticalToEagerInjection) {
  // Tentpole acceptance: Experiment::Run now pulls day-chunked arrivals from the
  // workload source (serial: one unfiltered stream; sharded: one region-filtered
  // stream per shard). Feeding the same platform the fully materialized eager
  // vector instead must change nothing — the chunked pull is just a windowed
  // view of the same deterministic stream, and the day-anchored seq reservation
  // keeps the event total order identical.
  const core::ScenarioConfig config = core::SmallScenario();
  const Experiment experiment(config);
  const ExperimentResult serial = experiment.Run(nullptr, 1);
  const ExperimentResult sharded = experiment.Run(nullptr, 4);

  // Eager reference: materialize the whole arrival vector up front and inject it
  // through the compatibility shim, mirroring RunSerial by hand.
  core::WorkloadSnapshot snapshot = core::SnapshotWorkload(config);
  const workload::Calendar calendar = config.MakeCalendar();
  const auto profiles = config.ScaledProfiles();
  trace::TraceStore store;
  sim::Simulator sim;
  platform::Platform::Options options;
  options.seed = config.seed;
  options.record_requests = config.record_requests;
  options.default_keep_alive = config.default_keep_alive;
  platform::Platform platform(snapshot.population, profiles, calendar, sim, store,
                              options);
  platform.InjectArrivals(std::move(snapshot.arrivals));
  sim.RunUntil(calendar.horizon());
  platform.Finalize();
  store.Seal();

  ASSERT_GT(store.requests().size(), 10000u);
  ExpectStoresIdentical(store, serial.store);
  ExpectStoresIdentical(store, sharded.store);
}

TEST(ShardedExperimentTest, RegionLocalPolicyBitIdenticalToSerial) {
  ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.record_requests = false;
  const Experiment experiment(config);

  auto make_policy = [] {
    auto combo = std::make_unique<policy::CompositePolicy>();
    combo->Add(std::make_unique<policy::TimerAwarePrewarmPolicy>())
        .Add(std::make_unique<policy::DynamicKeepAlivePolicy>())
        .Add(std::make_unique<policy::WorkflowPrewarmPolicy>())
        .Add(std::make_unique<policy::PeakShavingPolicy>());
    return combo;
  };
  auto serial_policy = make_policy();
  ASSERT_TRUE(experiment.CanShard(serial_policy.get()));
  const ExperimentResult serial = experiment.Run(serial_policy.get(), 1);
  auto sharded_policy = make_policy();
  const ExperimentResult sharded = experiment.Run(sharded_policy.get(), 4);

  // The policies engaged (prewarms happened) and the runs still agree exactly.
  int64_t prewarms = 0;
  for (const int64_t p : sharded.prewarm_spawns) {
    prewarms += p;
  }
  EXPECT_GT(prewarms, 0);
  ExpectStoresIdentical(serial.store, sharded.store);
  ExpectAggregatesIdentical(serial, sharded);
}

// --- Tentpole: sub-region sharding (cells_per_region > 1) is bit-identical ---
// --- across every geometry: serial, region-sharded (K=1), and K=2 / K=4.  ---

TEST(SubRegionShardingTest, BaselineBitIdenticalAcrossGeometries) {
  ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.cells_per_region = 4;
  const Experiment experiment(config);
  ASSERT_TRUE(experiment.CanShard(nullptr));

  // The planner sizes K = min(cells, ceil(threads / regions)); with 5 regions,
  // 5 threads yield K=1 (plain region sharding), 10 yield K=2, 20 yield K=4.
  const ExperimentResult serial = experiment.Run(nullptr, /*num_threads=*/1);
  const ExperimentResult region_sharded = experiment.Run(nullptr, 5);
  const ExperimentResult k2 = experiment.Run(nullptr, 10);
  const ExperimentResult k4 = experiment.Run(nullptr, 20);

  ASSERT_GT(serial.store.requests().size(), 10000u);
  ExpectStoresIdentical(serial.store, region_sharded.store);
  ExpectStoresIdentical(serial.store, k2.store);
  ExpectStoresIdentical(serial.store, k4.store);
  ExpectAggregatesIdentical(serial, region_sharded);
  ExpectAggregatesIdentical(serial, k2);
  ExpectAggregatesIdentical(serial, k4);
}

TEST(SubRegionShardingTest, StreamingAggregatesBitIdenticalAcrossGeometries) {
  // kStreaming merges per-shard accumulators instead of record tables; every
  // accumulator must be partition-invariant for K > 1 to be exact.
  ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.record_requests = false;
  config.cells_per_region = 4;
  config.trace_mode = core::TraceMode::kStreaming;
  const Experiment experiment(config);
  const ExperimentResult serial = experiment.Run(nullptr, 1);
  const ExperimentResult k4 = experiment.Run(nullptr, 20);
  ExpectAggregatesIdentical(serial, k4);
  // Byte-level identity of the full aggregate state (counters, fixed-point
  // latency sums, histogram buckets), not just the headline numbers.
  ByteWriter serial_bytes;
  serial.streaming.SaveState(serial_bytes);
  ByteWriter k4_bytes;
  k4.streaming.SaveState(k4_bytes);
  EXPECT_EQ(serial_bytes.data(), k4_bytes.data());
}

TEST(SubRegionShardingTest, FunctionLocalPolicyBitIdenticalAcrossGeometries) {
  ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.record_requests = false;
  config.cells_per_region = 4;
  const Experiment experiment(config);

  // Every member is function-local, so the composite clears the K > 1 gate.
  auto make_policy = [] {
    auto combo = std::make_unique<policy::CompositePolicy>();
    combo->Add(std::make_unique<policy::TimerAwarePrewarmPolicy>())
        .Add(std::make_unique<policy::DynamicKeepAlivePolicy>())
        .Add(std::make_unique<policy::WorkflowPrewarmPolicy>());
    return combo;
  };
  auto serial_policy = make_policy();
  ASSERT_TRUE(serial_policy->is_function_local());
  const ExperimentResult serial = experiment.Run(serial_policy.get(), 1);
  auto k4_policy = make_policy();
  const ExperimentResult k4 = experiment.Run(k4_policy.get(), 20);

  int64_t prewarms = 0;
  for (const int64_t p : k4.prewarm_spawns) {
    prewarms += p;
  }
  EXPECT_GT(prewarms, 0);
  ExpectStoresIdentical(serial.store, k4.store);
  ExpectAggregatesIdentical(serial, k4);
}

TEST(SubRegionShardingTest, RegionCoupledPolicyKeepsRegionGeometry) {
  // PeakShaving reads region-wide load, so it must never be split below a
  // region: the planner keeps K=1 (still region-shardable) and results match
  // serial exactly.
  ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.2;
  config.record_requests = false;
  config.cells_per_region = 4;
  const Experiment experiment(config);
  policy::PeakShavingPolicy serial_policy;
  EXPECT_FALSE(serial_policy.is_function_local());
  const ExperimentResult serial = experiment.Run(&serial_policy, 1);
  policy::PeakShavingPolicy sharded_policy;
  const ExperimentResult sharded = experiment.Run(&sharded_policy, 20);
  ExpectStoresIdentical(serial.store, sharded.store);
  ExpectAggregatesIdentical(serial, sharded);
}

// --- Tentpole: batched arrival draining == per-event dispatch, bit for bit. ---

TEST(BatchedArrivalsTest, BatchedPipelineBitIdenticalToPerEvent) {
  const ScenarioConfig config = core::SmallScenario();
  const workload::Calendar calendar = config.MakeCalendar();
  const auto profiles = config.ScaledProfiles();
  const workload::Population pop =
      workload::GeneratePopulation(profiles, config.seed);

  auto run = [&](bool batched) {
    trace::TraceStore store;
    sim::Simulator sim;
    platform::Platform::Options options;
    options.seed = config.seed;
    options.record_requests = config.record_requests;
    options.default_keep_alive = config.default_keep_alive;
    options.batched_arrivals = batched;
    platform::Platform platform(pop, profiles, calendar, sim, store, options);
    platform.AttachArrivalStream(config.workload_source().OpenStream(
        pop, profiles, calendar, config.seed));
    sim.RunUntil(calendar.horizon());
    platform.Finalize();
    store.Seal();
    return std::make_pair(std::move(store), sim.events_processed());
  };

  auto [batched_store, batched_events] = run(true);
  auto [per_event_store, per_event_events] = run(false);
  ASSERT_GT(batched_store.requests().size(), 10000u);
  ExpectStoresIdentical(per_event_store, batched_store);
  // AddProcessedEvents credits drained runs, so even the event *count* agrees.
  EXPECT_EQ(per_event_events, batched_events);
}

TEST(ShardedExperimentTest, ShardedRunFoldsPolicyCountersIntoPrototype) {
  // policy.prewarms_issued() must read the same total whether the run sharded
  // (counters accumulate in per-shard clones, folded back via AbsorbShardStats)
  // or ran serially — results must never depend on the machine's core count.
  ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.2;
  config.record_requests = false;
  const Experiment experiment(config);
  policy::TimerAwarePrewarmPolicy serial_policy;
  experiment.Run(&serial_policy, 1);
  policy::TimerAwarePrewarmPolicy sharded_policy;
  experiment.Run(&sharded_policy, 4);
  EXPECT_GT(serial_policy.prewarms_issued(), 0);
  EXPECT_EQ(serial_policy.prewarms_issued(), sharded_policy.prewarms_issued());
}

TEST(ShardedExperimentTest, CrossRegionPolicyFallsBackToSerial) {
  const Experiment experiment(core::SmallScenario());
  policy::CrossRegionPolicy cross;
  EXPECT_FALSE(cross.is_region_local());
  EXPECT_FALSE(experiment.CanShard(&cross));
  // Composites inherit non-shardability from any member.
  policy::CompositePolicy combo;
  combo.Add(std::make_unique<policy::CrossRegionPolicy>());
  EXPECT_FALSE(combo.is_region_local());
  EXPECT_FALSE(experiment.CanShard(&combo));
}

// --- Satellite: cache hits restore the per-region aggregates. ---

TEST(ExperimentCacheTest, CachedAggregatesMatchFreshRun) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "coldstart_agg_cache_test";
  fs::remove_all(dir);
  ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.2;
  const Experiment experiment(config);
  const ExperimentResult fresh = experiment.RunCached(dir.string());
  ASSERT_FALSE(fresh.from_cache);
  const ExperimentResult cached = experiment.RunCached(dir.string());
  ASSERT_TRUE(cached.from_cache);

  ExpectAggregatesIdentical(fresh, cached);
  EXPECT_EQ(fresh.events_processed, cached.events_processed);
  // The regression this pins: cache hits used to come back with all-zero counters.
  int64_t visible = 0;
  for (const int64_t v : cached.visible_cold_starts) {
    visible += v;
  }
  EXPECT_GT(visible, 0);
  EXPECT_GT(cached.events_processed, 0u);
  EXPECT_EQ(static_cast<size_t>(visible), cached.store.cold_starts().size());
  ExpectStoresIdentical(fresh.store, cached.store);
  fs::remove_all(dir);
}

// --- Satellite: the fingerprint covers every generation-relevant field. ---

TEST(ScenarioFingerprintTest, DistinguishesEveryFieldClass) {
  const ScenarioConfig base;
  std::set<uint64_t> seen{base.Fingerprint()};
  // Each mutation must produce a fingerprint unseen so far (distinct from the base
  // and from every other mutation).
  auto expect_fresh = [&seen](const ScenarioConfig& config, const char* what) {
    EXPECT_TRUE(seen.insert(config.Fingerprint()).second)
        << "fingerprint collision after changing " << what;
  };

  ScenarioConfig c = base;
  c.seed = 43;
  expect_fresh(c, "seed");
  c = base;
  c.days = 30;
  expect_fresh(c, "days");
  c = base;
  c.scale = 0.999;
  expect_fresh(c, "scale");
  c = base;
  c.record_requests = false;
  expect_fresh(c, "record_requests");
  c = base;
  // trace_mode entered the fingerprint in v4: checkpoints carry the sink's
  // partial state, so a streaming checkpoint must never resume a full run.
  c.trace_mode = core::TraceMode::kStreaming;
  expect_fresh(c, "trace_mode");
  c = base;
  c.default_keep_alive = 2 * kMinute;
  expect_fresh(c, "default_keep_alive");
  c = base;
  // cells_per_region entered the fingerprint in v5: a cells > 1 run decomposes
  // per-region pools, so it is a different scenario and must never share cache
  // entries or checkpoints with the cells = 1 run.
  c.cells_per_region = 4;
  expect_fresh(c, "cells_per_region");
  c = base;
  c.profiles.pop_back();
  expect_fresh(c, "profile count");

  // Per-profile fields, including every architecture coefficient class the old
  // fingerprint ignored.
  c = base;
  c.profiles[0].num_functions += 1;
  expect_fresh(c, "num_functions");
  c = base;
  c.profiles[1].popularity_alpha += 1e-9;
  expect_fresh(c, "popularity_alpha (sub-1e-6 change)");
  c = base;
  c.profiles[2].obs_hot_fraction += 0.01;
  expect_fresh(c, "obs_hot_fraction");
  c = base;
  c.profiles[0].exec_median_s *= 1.01;
  expect_fresh(c, "exec_median_s");
  c = base;
  c.profiles[3].diurnal.weekend_factor += 0.01;
  expect_fresh(c, "diurnal.weekend_factor");
  c = base;
  c.profiles[0].runtime_weights[0] += 0.01;
  expect_fresh(c, "runtime_weights");
  c = base;
  c.profiles[0].config_weights[1] += 0.01;
  expect_fresh(c, "config_weights");
  c = base;
  ASSERT_FALSE(c.profiles[0].timer_period_weights.empty());
  c.profiles[0].timer_period_weights[0].second += 0.01;
  expect_fresh(c, "timer_period_weights");
  c = base;
  c.profiles[0].pool_base_size[0] += 1;
  expect_fresh(c, "pool_base_size");
  c = base;
  c.profiles[0].pool_refill_per_min += 0.5;
  expect_fresh(c, "pool_refill_per_min");
  c = base;
  c.profiles[4].inter_region_rtt_ms += 1.0;
  expect_fresh(c, "inter_region_rtt_ms");
  c = base;
  c.profiles[0].single_cluster_fraction += 0.01;
  expect_fresh(c, "single_cluster_fraction");

  c = base;
  c.profiles[0].arch.alloc_sigma += 0.01;
  expect_fresh(c, "arch.alloc_sigma");
  c = base;
  c.profiles[0].arch.alloc_scratch_median_s += 0.1;
  expect_fresh(c, "arch.alloc_scratch_median_s");
  c = base;
  c.profiles[0].arch.custom_scratch_median_s += 0.1;
  expect_fresh(c, "arch.custom_scratch_median_s");
  c = base;
  c.profiles[0].arch.code_bandwidth_kb_per_s += 1.0;
  expect_fresh(c, "arch.code_bandwidth_kb_per_s");
  c = base;
  c.profiles[0].arch.dep_congestion_coeff += 0.01;
  expect_fresh(c, "arch.dep_congestion_coeff");
  c = base;
  c.profiles[0].arch.sched_queue_coeff_s += 0.001;
  expect_fresh(c, "arch.sched_queue_coeff_s");
  c = base;
  c.profiles[0].arch.sched_rate_coeff += 0.001;
  expect_fresh(c, "arch.sched_rate_coeff");
  c = base;
  c.profiles[0].arch.rate_saturation += 1.0;
  expect_fresh(c, "arch.rate_saturation");
  c = base;
  c.profiles[0].arch.post_holiday_dep_penalty += 0.01;
  expect_fresh(c, "arch.post_holiday_dep_penalty");
}

TEST(ScenarioFingerprintTest, WorkloadSourceVariantIsCovered) {
  // An explicit SyntheticSource is the same workload as the null default — the
  // cache may share entries. Replay sources hash differently (replay_test pins
  // the full replay-vs-synthetic separation; here we pin the null/explicit
  // equivalence that keeps existing cache entries valid).
  const ScenarioConfig base;
  ScenarioConfig explicit_synth = base;
  explicit_synth.workload = std::make_shared<workload::SyntheticSource>();
  EXPECT_EQ(explicit_synth.Fingerprint(), base.Fingerprint());
  EXPECT_STREQ(base.workload_source().name(), "synthetic");
}

TEST(ScenarioFingerprintTest, StableAcrossCalls) {
  const ScenarioConfig config = core::SmallScenario();
  EXPECT_EQ(config.Fingerprint(), config.Fingerprint());
}

// --- ParallelSweep semantics. ---

TEST(ParallelSweepTest, RunsEveryJobExactlyOnce) {
  std::vector<int> hits(100, 0);
  core::ParallelSweep sweep(4);
  for (size_t i = 0; i < hits.size(); ++i) {
    sweep.Add([&hits, i] { hits[i] += 1; });
  }
  sweep.Run();
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ParallelSweepTest, RethrowsJobException) {
  core::ParallelSweep sweep(2);
  sweep.Add([] { throw std::runtime_error("boom"); });
  sweep.Add([] {});
  EXPECT_THROW(sweep.Run(), std::runtime_error);
}

TEST(ParallelSweepTest, FailsFastAfterFirstError) {
  // The regression this pins: a throwing job used to leave the queue draining —
  // a 100-scenario sweep whose first job failed still ran the other 99 before
  // reporting. With one worker the order is deterministic: job 0 throws, so
  // jobs 1..N-1 must never start.
  std::vector<int> hits(8, 0);
  core::ParallelSweep sweep(1);
  sweep.Add([] { throw std::runtime_error("boom"); });
  for (size_t i = 1; i < hits.size(); ++i) {
    sweep.Add([&hits, i] { hits[i] += 1; });
  }
  EXPECT_THROW(sweep.Run(), std::runtime_error);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 0) << "job " << i << " ran after the sweep failed";
  }
  // The sweep object stays reusable after a failed run.
  bool ran = false;
  sweep.Add([&ran] { ran = true; });
  sweep.Run();
  EXPECT_TRUE(ran);
}

TEST(ParallelSweepTest, DefaultThreadsRespectsEnvOverride) {
  ASSERT_EQ(setenv("COLDSTART_THREADS", "3", 1), 0);
  EXPECT_EQ(core::ParallelSweep::DefaultThreads(), 3);
  ASSERT_EQ(unsetenv("COLDSTART_THREADS"), 0);
  EXPECT_GE(core::ParallelSweep::DefaultThreads(), 1);
}

}  // namespace
}  // namespace coldstart
