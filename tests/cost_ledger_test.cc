// ResourceCostLedger: order-invariant accumulation (the serial == sharded
// contract for cost sums), merge semantics, and serde round-trips.
#include <gtest/gtest.h>

#include <vector>

#include "common/byte_serde.h"
#include "platform/cost_ledger.h"

namespace coldstart::platform {
namespace {

TEST(CostLedger, AccumulatesPerRegion) {
  ResourceCostLedger ledger(2);
  ledger.AddPodDeath(0, /*lifetime_us=*/1'000'000, /*warm_idle_us=*/250'000,
                     /*snapshot_mb=*/0.0);
  ledger.AddPodDeath(0, 3'000'000, 0, 0.0);
  ledger.AddPodDeath(1, 2'000'000, 2'000'000, 128.0);
  ledger.AddScratchCreation(1);
  ledger.AddScratchCreation(1);

  const trace::RegionCostRecord r0 = ledger.region_record(0);
  EXPECT_DOUBLE_EQ(r0.pod_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(r0.warm_idle_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(r0.snapshot_mb_seconds(), 0.0);
  EXPECT_EQ(r0.scratch_creations, 0);

  const trace::RegionCostRecord r1 = ledger.region_record(1);
  EXPECT_DOUBLE_EQ(r1.pod_seconds(), 2.0);
  EXPECT_EQ(r1.scratch_creations, 2);
  // 128 MB held for 2 s, quantized once at 2^20 fixed point.
  EXPECT_NEAR(r1.snapshot_mb_seconds(), 256.0, 1e-6);

  const trace::RegionCostRecord total = ledger.TotalRecord();
  EXPECT_DOUBLE_EQ(total.pod_seconds(), 6.0);
  EXPECT_EQ(total.scratch_creations, 2);
}

// The determinism contract: any partition of the same pod deaths across
// ledgers, merged in any order, lands on bit-identical sums — integer adds
// of per-pod quantized values are associative and commutative.
TEST(CostLedger, MergeIsOrderInvariant) {
  struct Death {
    trace::RegionId region;
    int64_t lifetime_us;
    int64_t idle_us;
    double mb;
  };
  std::vector<Death> deaths;
  for (int i = 0; i < 100; ++i) {
    deaths.push_back({static_cast<trace::RegionId>(i % 3),
                      1'000'000 + 37'123 * i, 10'000 + 977 * i,
                      (i % 2) == 0 ? 0.0 : 64.0 + 0.37 * i});
  }

  ResourceCostLedger serial(3);
  for (const Death& d : deaths) {
    serial.AddPodDeath(d.region, d.lifetime_us, d.idle_us, d.mb);
  }

  // Partition round-robin into 4 "shards", then fold in reverse shard order.
  std::vector<ResourceCostLedger> shards(4, ResourceCostLedger(3));
  for (size_t i = 0; i < deaths.size(); ++i) {
    const Death& d = deaths[i];
    shards[i % 4].AddPodDeath(d.region, d.lifetime_us, d.idle_us, d.mb);
  }
  ResourceCostLedger merged(3);
  for (int s = 3; s >= 0; --s) {
    merged.MergeFrom(shards[static_cast<size_t>(s)]);
  }

  for (trace::RegionId r = 0; r < 3; ++r) {
    const trace::RegionCostRecord a = serial.region_record(r);
    const trace::RegionCostRecord b = merged.region_record(r);
    EXPECT_TRUE(a.pod_us == b.pod_us);
    EXPECT_TRUE(a.warm_idle_us == b.warm_idle_us);
    EXPECT_TRUE(a.snapshot_mb_us_fp == b.snapshot_mb_us_fp);  // Bit-identical.
    EXPECT_EQ(a.scratch_creations, b.scratch_creations);
  }
}

TEST(CostLedger, MergeResizesToCoverLargerLedger) {
  ResourceCostLedger small(1);
  small.AddPodDeath(0, 1'000'000, 0, 0.0);
  ResourceCostLedger big(3);
  big.AddPodDeath(2, 2'000'000, 0, 0.0);
  small.MergeFrom(big);
  EXPECT_EQ(small.num_regions(), 3u);
  EXPECT_DOUBLE_EQ(small.region_record(0).pod_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(small.region_record(2).pod_seconds(), 2.0);
}

// Serde round-trip, including 128-bit sums large enough to spill past one
// 64-bit word (a month of million-pod lifetimes does this for MB·µs fixed
// point, so the hi word is load-bearing).
TEST(CostLedger, SerdeRoundTripPreserves128BitSums) {
  ResourceCostLedger ledger(2);
  // ~9.4e14 µs of lifetime at 10 GB per pod: snapshot_mb_us_fp exceeds 2^64.
  for (int i = 0; i < 10; ++i) {
    ledger.AddPodDeath(1, 94'000'000'000'000, 1'000'000, 10'240.0);
  }
  ledger.AddScratchCreation(0);

  ByteWriter w;
  ledger.SaveState(w);
  ResourceCostLedger restored;
  ByteReader r(w.data());
  restored.RestoreState(r);
  EXPECT_TRUE(r.AtEnd());

  ASSERT_EQ(restored.num_regions(), 2u);
  for (trace::RegionId region = 0; region < 2; ++region) {
    const trace::RegionCostRecord a = ledger.region_record(region);
    const trace::RegionCostRecord b = restored.region_record(region);
    EXPECT_TRUE(a.pod_us == b.pod_us);
    EXPECT_TRUE(a.warm_idle_us == b.warm_idle_us);
    EXPECT_TRUE(a.snapshot_mb_us_fp == b.snapshot_mb_us_fp);
    EXPECT_EQ(a.scratch_creations, b.scratch_creations);
  }
  // Sanity: the test actually exercised the hi word.
  const trace::RegionCostRecord r1 = ledger.region_record(1);
  EXPECT_TRUE(r1.snapshot_mb_us_fp > static_cast<__int128>(UINT64_MAX));
}

}  // namespace
}  // namespace coldstart::platform
