// End-to-end integration tests: full scenarios through the public API, checking
// structural invariants of the emitted traces and the headline paper shapes on a
// reduced scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "core/coldstart_lab.h"

namespace coldstart {
namespace {

// One shared small scenario for the whole suite (runs once, ~1-2s).
const core::ExperimentResult& SharedResult() {
  static const core::ExperimentResult result = [] {
    core::ScenarioConfig config = core::SmallScenario();
    core::Experiment experiment(config);
    return experiment.Run();
  }();
  return result;
}

TEST(IntegrationTest, ProducesAllStreams) {
  const auto& r = SharedResult();
  EXPECT_GT(r.store.requests().size(), 10000u);
  EXPECT_GT(r.store.cold_starts().size(), 1000u);
  EXPECT_GT(r.store.pods().size(), 1000u);
  EXPECT_GT(r.store.functions().size(), 500u);
  EXPECT_EQ(r.store.horizon(), 7 * kDay);
}

TEST(IntegrationTest, BaselinePodsEqualColdStarts) {
  // Without prewarming, every pod is born from a user-visible cold start.
  const auto& r = SharedResult();
  EXPECT_EQ(r.store.pods().size(), r.store.cold_starts().size());
  const int64_t visible = std::accumulate(r.visible_cold_starts.begin(),
                                          r.visible_cold_starts.end(), int64_t{0});
  EXPECT_EQ(static_cast<size_t>(visible), r.store.cold_starts().size());
}

TEST(IntegrationTest, ComponentsAlwaysSumToTotal) {
  for (const auto& c : SharedResult().store.cold_starts()) {
    EXPECT_EQ(c.cold_start_us,
              c.pod_alloc_us + c.deploy_code_us + c.deploy_dep_us + c.scheduling_us);
    EXPECT_GT(c.pod_alloc_us, 0u);
    EXPECT_GT(c.scheduling_us, 0u);
  }
}

TEST(IntegrationTest, TimestampsWithinHorizon) {
  const auto& r = SharedResult();
  for (const auto& req : r.store.requests()) {
    EXPECT_GE(req.timestamp, 0);
    EXPECT_LT(req.timestamp, r.store.horizon() + kHour);  // Tail executions spill a bit.
  }
  for (const auto& p : r.store.pods()) {
    EXPECT_LE(p.cold_start_begin, p.ready_time);
    EXPECT_LE(p.ready_time, p.death_time);
    // Horizon-censored pods may carry an in-flight execution slightly past the end.
    EXPECT_LE(p.death_time, r.store.horizon() + 2 * kHour);
  }
}

TEST(IntegrationTest, PodLifecycleConsistent) {
  for (const auto& p : SharedResult().store.pods()) {
    EXPECT_EQ(p.ready_time - p.cold_start_begin, p.cold_start_us);
    EXPECT_GE(p.last_busy_end, p.ready_time - 1);
    EXPECT_GE(p.death_time, p.last_busy_end);
  }
}

TEST(IntegrationTest, RequestsReferenceKnownFunctionsAndPods) {
  const auto& r = SharedResult();
  const size_t num_functions = r.store.functions().size();
  for (const auto& req : r.store.requests()) {
    EXPECT_LT(req.function_id, num_functions);
    EXPECT_LT(req.cluster, trace::kClustersPerRegion);
    EXPECT_LT(req.region, trace::kNumRegions);
    EXPECT_GT(req.execution_time_us, 0u);
  }
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  core::ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.2;
  core::Experiment experiment(config);
  const auto a = experiment.Run();
  const auto b = experiment.Run();
  EXPECT_EQ(a.store.requests().size(), b.store.requests().size());
  EXPECT_EQ(a.store.cold_starts().size(), b.store.cold_starts().size());
  ASSERT_EQ(a.visible_cold_starts, b.visible_cold_starts);
  // Spot-check record equality.
  for (size_t i = 0; i < std::min<size_t>(100, a.store.cold_starts().size()); ++i) {
    EXPECT_EQ(a.store.cold_starts()[i].cold_start_us,
              b.store.cold_starts()[i].cold_start_us);
  }
}

TEST(IntegrationTest, CacheRoundTripMatchesFreshRun) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "coldstart_cache_test";
  fs::remove_all(dir);
  core::ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.2;
  core::Experiment experiment(config);
  const auto fresh = experiment.RunCached(dir.string());
  EXPECT_FALSE(fresh.from_cache);
  const auto cached = experiment.RunCached(dir.string());
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(cached.store.requests().size(), fresh.store.requests().size());
  EXPECT_EQ(cached.store.cold_starts().size(), fresh.store.cold_starts().size());
  EXPECT_EQ(cached.store.pods().size(), fresh.store.pods().size());
  EXPECT_EQ(cached.store.horizon(), fresh.store.horizon());
  fs::remove_all(dir);
}

// --- Headline paper shapes on the small scenario (loose bands). ---

TEST(PaperShapeTest, RegionOrderings) {
  const auto sizes = analysis::ComputeRegionSizes(SharedResult().store);
  // R1 busiest; R3 smallest by requests.
  for (int r = 1; r < trace::kNumRegions; ++r) {
    EXPECT_GT(sizes[0].requests, sizes[static_cast<size_t>(r)].requests);
  }
  EXPECT_LT(sizes[2].requests, sizes[1].requests);
}

TEST(PaperShapeTest, R3HasFastestColdStarts) {
  const auto cdfs = analysis::ColdStartTimeCdfs(SharedResult().store);
  const double r3 = cdfs[2].Quantile(0.5);
  for (const int r : {0, 1, 3, 4}) {
    EXPECT_LT(r3, cdfs[static_cast<size_t>(r)].Quantile(0.5));
  }
}

TEST(PaperShapeTest, ColdStartTimesHeavyTailed) {
  const auto cdfs = analysis::ColdStartTimeCdfs(SharedResult().store);
  const auto& all = cdfs.back();
  EXPECT_GT(all.Quantile(0.99), 4 * all.Quantile(0.5));
}

TEST(PaperShapeTest, LogNormalFitIsReasonable) {
  const auto fits = analysis::FitColdStartDistributions(SharedResult().store);
  EXPECT_LT(fits.cold_start_quality.ks_distance, 0.15);
  EXPECT_GT(fits.cold_start_mean, 0.5);
  EXPECT_LT(fits.cold_start_mean, 30.0);
  EXPECT_LT(fits.iat_quality.ks_distance, 0.12);
  EXPECT_LT(fits.iat_weibull.shape, 1.0);  // Bursty inter-arrivals (shape < 1).
}

TEST(PaperShapeTest, CustomRuntimeSlowerThanPython) {
  const auto& store = SharedResult().store;
  const auto custom = analysis::ComponentCdfByRuntime(
      store, -1, static_cast<int>(trace::Runtime::kCustom),
      analysis::ColdStartComponent::kTotal);
  const auto py3 = analysis::ComponentCdfByRuntime(
      store, -1, static_cast<int>(trace::Runtime::kPython3),
      analysis::ColdStartComponent::kTotal);
  ASSERT_FALSE(custom.empty());
  ASSERT_FALSE(py3.empty());
  EXPECT_GT(custom.Quantile(0.5), 4 * py3.Quantile(0.5));
}

TEST(PaperShapeTest, TimersDominateDiagonalFunctions) {
  const auto entries = analysis::ComputeRequestsVsColdStarts(SharedResult().store, -1);
  size_t diagonal = 0, diagonal_timers = 0;
  for (const auto& e : entries) {
    if (e.cold_starts >= e.total_requests * 95 / 100 && e.total_requests >= 10) {
      ++diagonal;
      diagonal_timers += e.trigger == trace::TriggerGroup::kTimerA ? 1 : 0;
    }
  }
  ASSERT_GT(diagonal, 10u);
  EXPECT_GT(static_cast<double>(diagonal_timers) / static_cast<double>(diagonal), 0.4);
}

TEST(PaperShapeTest, UtilityRatioOrderings) {
  // At our volume scale most pods serve a single request, which compresses absolute
  // utility ratios (documented in EXPERIMENTS.md); the paper's *orderings* must hold:
  // timers are the worst trigger group, and a meaningful share of pods sits below 1.
  const auto& store = SharedResult().store;
  const auto all = analysis::UtilityByRuntime(store, -1, -1);
  ASSERT_GT(all.size(), 100u);
  EXPECT_GT(all.CdfAt(1.0), 0.05);
  const auto timers = analysis::UtilityByTrigger(
      store, -1, static_cast<int>(trace::TriggerGroup::kTimerA));
  const auto obs = analysis::UtilityByTrigger(
      store, -1, static_cast<int>(trace::TriggerGroup::kObsA));
  ASSERT_FALSE(timers.empty());
  ASSERT_FALSE(obs.empty());
  // OBS pods run long batch executions, so their useful lifetime dwarfs a timer pod's
  // single short invocation.
  EXPECT_LT(timers.Quantile(0.5), obs.Quantile(0.5));
}

TEST(PaperShapeTest, SmallPodsColdStartFasterInMostRegions) {
  const auto& store = SharedResult().store;
  int regions_with_effect = 0;
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto small = analysis::PoolSizeDistribution(
        store, r, trace::PoolSizeClass::kSmall, analysis::ColdStartComponent::kTotal);
    const auto large = analysis::PoolSizeDistribution(
        store, r, trace::PoolSizeClass::kLarge, analysis::ColdStartComponent::kTotal);
    if (small.empty() || large.empty()) {
      continue;
    }
    if (large.Quantile(0.5) > small.Quantile(0.5)) {
      ++regions_with_effect;
    }
  }
  EXPECT_GE(regions_with_effect, 3);
}

TEST(PaperShapeTest, ColdStartCountCorrelatesWithTotalTime) {
  // "Mean cold start time tends to correlate positively with number of cold starts."
  int positive = 0;
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto m = analysis::ComponentCorrelationMatrix(SharedResult().store, r);
    if (m[0][5].rho > 0) {
      ++positive;
    }
  }
  EXPECT_GE(positive, 4);
}

}  // namespace
}  // namespace coldstart
