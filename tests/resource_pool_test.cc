// Edge-case tests for the lazy-refill resource pool: credit saturation across
// long idle gaps, SetTarget shrink behavior, release caps after a shrink, and
// exact checkpoint round-trips of the refill bookkeeping.
#include <gtest/gtest.h>

#include "platform/resource_pool.h"

namespace coldstart::platform {
namespace {

// A pool left idle for a very long gap must not bank unbounded refill credit:
// the provisioner's capacity bound caps the credit at one target's worth, so
// the first drain after the gap refills instantly once — not repeatedly.
TEST(ResourcePoolEdge, CreditSaturatesAcrossLongIdleGap) {
  ResourcePool pool(4, /*refill_per_min=*/2.0);
  Rng rng(1);

  // Idle for a simulated year with the pool full. Credit accrues on paper at
  // 2/min but is clamped to target (= 4).
  const SimTime year = 365 * kDay;
  EXPECT_EQ(pool.free_pods(year), 4);

  // Drain everything at the same instant; the banked credit cannot apply at
  // an equal timestamp (lazy refill only advances when time does).
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(pool.Acquire(year, rng).from_scratch);
  }
  EXPECT_EQ(pool.free_pods(year), 0);

  // One microsecond later the saturated credit lands — exactly one target's
  // worth, despite a year of nominal accrual.
  EXPECT_EQ(pool.free_pods(year + 1), 4);

  // Drain again: the bank is spent, so a second instant refill is impossible;
  // only the trickle earned since `year` (2/min) is available.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(pool.Acquire(year + 1, rng).from_scratch);
  }
  EXPECT_EQ(pool.free_pods(year + kMinute), 2);
}

// SetTarget below the current free count: excess pods are not reclaimed
// eagerly — they drain through Acquire — and the occupancy ratio they imply
// keeps the staged search local until the surplus is gone.
TEST(ResourcePoolEdge, ShrinkTargetDrainsExcessThroughAcquire) {
  ResourcePool pool(8, /*refill_per_min=*/0.0);
  Rng rng(2);
  pool.SetTarget(2);
  EXPECT_EQ(pool.target(), 2);
  EXPECT_EQ(pool.free_pods(0), 8);  // Not clipped by the shrink.

  // All 8 former pods serve requests; occupancy (free/target >= 0.5 for the
  // first 7 draws) keeps the search at stage 1 with no RNG consumed.
  for (int i = 0; i < 8; ++i) {
    const PoolAcquisition acq = pool.Acquire(0, rng);
    EXPECT_FALSE(acq.from_scratch);
    if (i < 7) {
      EXPECT_EQ(acq.stage, 1);
    }
  }
  EXPECT_EQ(pool.free_pods(0), 0);
  EXPECT_TRUE(pool.Acquire(0, rng).from_scratch);
}

// After a shrink, Release honors the *new* target's overfill cap, so the pool
// cannot quietly re-inflate to its old size through pod churn.
TEST(ResourcePoolEdge, ReleaseAfterShrinkCapsAtNewTarget) {
  ResourcePool pool(8, /*refill_per_min=*/0.0);
  Rng rng(3);
  pool.SetTarget(2);
  for (int i = 0; i < 8; ++i) {
    pool.Acquire(0, rng);
  }
  EXPECT_EQ(pool.free_pods(0), 0);
  // New cap = target + max(1, target / 4) = 3.
  for (int i = 0; i < 20; ++i) {
    pool.Release(0);
  }
  EXPECT_EQ(pool.free_pods(0), 3);
}

// Release exactly at target still recycles into the surge margin, and a pool
// at its cap ignores further releases.
TEST(ResourcePoolEdge, ReleaseAtTargetEntersSurgeMargin) {
  ResourcePool pool(4, /*refill_per_min=*/0.0);
  EXPECT_EQ(pool.free_pods(0), 4);  // At target.
  pool.Release(0);
  EXPECT_EQ(pool.free_pods(0), 5);  // target + target/4 margin.
  pool.Release(0);
  EXPECT_EQ(pool.free_pods(0), 5);  // At cap: reclaimed, not stored.
}

// Checkpoint round-trip must capture the refill bookkeeping exactly:
// fractional refill credit and the last-refill stamp, so a restored pool's
// future refills are bit-identical to the original's.
TEST(ResourcePoolEdge, CheckpointRoundTripPreservesRefillState) {
  // 2.5/min over exactly one minute gives a binary-exact 0.5 fractional credit,
  // so the round trip can be asserted with equality, not tolerance.
  ResourcePool pool(4, /*refill_per_min=*/2.5);
  Rng rng(4);
  for (int i = 0; i < 4; ++i) {
    pool.Acquire(0, rng);
  }
  EXPECT_EQ(pool.free_pods(kMinute), 2);  // 2.5 credit: 2 pods, 0.5 banked.
  pool.SetTarget(6);  // Mutated target must survive the round trip too.

  const ResourcePool::CheckpointState state = pool.checkpoint_state();
  EXPECT_EQ(state.free, 2);
  EXPECT_EQ(state.target, 6);
  EXPECT_EQ(state.refill_credit, 0.5);
  EXPECT_EQ(state.last_refill, kMinute);

  // Restore into a freshly constructed pool (construction parameters come from
  // the profile, mutable state from the checkpoint) and advance both in
  // lockstep: identical observable behavior at every step.
  ResourcePool restored(4, /*refill_per_min=*/2.5);
  restored.restore_checkpoint_state(state);
  const SimTime later = 2 * kMinute;  // +2.5 credit -> 3.0 total.
  EXPECT_EQ(pool.free_pods(later), restored.free_pods(later));
  EXPECT_EQ(pool.free_pods(later), 5);
  EXPECT_EQ(pool.checkpoint_state().refill_credit,
            restored.checkpoint_state().refill_credit);
  EXPECT_EQ(pool.checkpoint_state().last_refill,
            restored.checkpoint_state().last_refill);
  EXPECT_EQ(pool.scratch_count(), restored.scratch_count());
}

}  // namespace
}  // namespace coldstart::platform
