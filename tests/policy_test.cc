// Tests for predictors and mitigation policies.
#include <gtest/gtest.h>

#include "common/byte_serde.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "policy/composite.h"
#include "policy/cross_region.h"
#include "policy/keepalive.h"
#include "policy/peak_shaving.h"
#include "policy/pool_prediction.h"
#include "policy/predictors.h"
#include "policy/prewarm.h"
#include "policy/provisioned.h"
#include "policy/workflow_prewarm.h"
#include "trace/trace_store.h"

namespace coldstart::policy {
namespace {

using workload::FunctionSpec;

TEST(MovingAveragePredictorTest, ConvergesToMean) {
  MovingAveragePredictor p(4);
  for (const double v : {2.0, 4.0, 6.0, 8.0}) {
    p.Observe(v);
  }
  EXPECT_DOUBLE_EQ(p.Predict(), 5.0);
  p.Observe(10.0);  // Evicts the 2.
  EXPECT_DOUBLE_EQ(p.Predict(), 7.0);
}

TEST(MovingAveragePredictorTest, PartialWindow) {
  MovingAveragePredictor p(10);
  EXPECT_DOUBLE_EQ(p.Predict(), 0.0);
  p.Observe(6.0);
  EXPECT_DOUBLE_EQ(p.Predict(), 6.0);
}

TEST(SeasonalNaivePredictorTest, RepeatsLastSeason) {
  SeasonalNaivePredictor p(3);
  for (const double v : {1.0, 2.0, 3.0}) {
    p.Observe(v);
  }
  // Next bucket is the same phase as the first observation.
  EXPECT_DOUBLE_EQ(p.Predict(), 1.0);
  p.Observe(10.0);
  EXPECT_DOUBLE_EQ(p.Predict(), 2.0);
}

TEST(SeasonalNaivePredictorTest, FallsBackToLastBeforeFullSeason) {
  SeasonalNaivePredictor p(5);
  p.Observe(7.0);
  EXPECT_DOUBLE_EQ(p.Predict(), 7.0);
}

TEST(HoltWintersPredictorTest, TracksLinearTrend) {
  HoltWintersPredictor p(4, 0.5, 0.3, 0.1);
  for (int i = 0; i < 200; ++i) {
    p.Observe(static_cast<double>(i));
  }
  EXPECT_NEAR(p.Predict(), 200.0, 8.0);
}

TEST(HoltWintersPredictorTest, LearnsSeasonality) {
  HoltWintersPredictor p(2, 0.2, 0.01, 0.4);
  for (int i = 0; i < 400; ++i) {
    p.Observe(i % 2 == 0 ? 10.0 : 2.0);  // Alternating season.
  }
  const double even = p.Predict();  // Next is an even-phase bucket.
  p.Observe(10.0);
  const double odd = p.Predict();
  EXPECT_GT(even, odd);
}

TEST(MakePredictorTest, AllKindsConstructible) {
  for (const char* kind : {"moving-average", "seasonal-naive", "holt-winters"}) {
    EXPECT_NE(MakePredictor(kind, 10), nullptr);
  }
}

FunctionSpec TimerSpec(SimDuration period) {
  FunctionSpec f;
  f.id = 1;
  f.region = 0;
  f.primary_trigger = trace::Trigger::kTimer;
  f.kind = workload::ArrivalKind::kTimer;
  f.timer_period = period;
  return f;
}

TEST(DynamicKeepAliveTest, LearnsInterArrivalTime) {
  DynamicKeepAlivePolicy policy;
  const FunctionSpec spec = TimerSpec(5 * kMinute);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i) {
    policy.OnArrival(spec, t);
    t += 5 * kMinute;
  }
  const SimDuration ka = policy.KeepAliveFor(spec, t);
  // Headroom 1.25 x 5min = 6.25min.
  EXPECT_NEAR(ToSeconds(ka), 375.0, 5.0);
}

TEST(DynamicKeepAliveTest, DefaultBeforeEnoughObservations) {
  DynamicKeepAlivePolicy policy;
  const FunctionSpec spec = TimerSpec(kMinute);
  EXPECT_EQ(policy.KeepAliveFor(spec, 0), kMinute);
  policy.OnArrival(spec, 0);
  policy.OnArrival(spec, kMinute);
  EXPECT_EQ(policy.KeepAliveFor(spec, kMinute), kMinute);
}

TEST(DynamicKeepAliveTest, ClampsToBounds) {
  DynamicKeepAlivePolicy policy;
  const FunctionSpec spec = TimerSpec(kDay);
  SimTime t = 0;
  for (int i = 0; i < 6; ++i) {
    policy.OnArrival(spec, t);
    t += kDay;
  }
  EXPECT_EQ(policy.KeepAliveFor(spec, t), 10 * kMinute);  // max_keep_alive.
}

TEST(PeakShavingTest, DelaysOnlyUnderPressure) {
  PeakShavingPolicy policy;
  FunctionSpec obs;
  obs.primary_trigger = trace::Trigger::kObs;
  platform::RegionLoadState calm, pressured;
  pressured.cold_start_window = 80;  // Well above the recent-window threshold.
  EXPECT_EQ(policy.AdmissionDelay(obs, 0, calm), 0);
  EXPECT_GT(policy.AdmissionDelay(obs, 0, pressured), 0);
  EXPECT_LE(policy.AdmissionDelay(obs, 0, pressured), kMinute);
}

TEST(PeakShavingTest, RespectsTriggerSensitivity) {
  PeakShavingPolicy policy;
  platform::RegionLoadState pressured;
  pressured.cold_start_window = 80;
  FunctionSpec timer;
  timer.primary_trigger = trace::Trigger::kTimer;  // Not delayable by default.
  EXPECT_EQ(policy.AdmissionDelay(timer, 0, pressured), 0);
  FunctionSpec dis;
  dis.primary_trigger = trace::Trigger::kDis;
  EXPECT_GT(policy.AdmissionDelay(dis, 0, pressured), 0);
}

TEST(CompositePolicyTest, FansOutAndCombines) {
  struct CountingPolicy : platform::PlatformPolicy {
    void OnArrival(const FunctionSpec&, SimTime) override { ++arrivals; }
    SimDuration AdmissionDelay(const FunctionSpec&, SimTime,
                               const platform::RegionLoadState&) override {
      return delay;
    }
    int arrivals = 0;
    SimDuration delay = 0;
  };
  auto a = std::make_unique<CountingPolicy>();
  auto b = std::make_unique<CountingPolicy>();
  a->delay = 10;
  b->delay = 30;
  CountingPolicy* ra = a.get();
  CountingPolicy* rb = b.get();
  CompositePolicy combo;
  combo.Add(std::move(a)).Add(std::move(b));

  FunctionSpec spec;
  combo.OnArrival(spec, 0);
  EXPECT_EQ(ra->arrivals, 1);
  EXPECT_EQ(rb->arrivals, 1);
  platform::RegionLoadState load;
  EXPECT_EQ(combo.AdmissionDelay(spec, 0, load), 30);  // Max of sub-delays.
}

TEST(CompositePolicyTest, KeepAliveFirstDeviationWins) {
  struct FixedKa : platform::PlatformPolicy {
    explicit FixedKa(SimDuration v) : ka(v) {}
    SimDuration KeepAliveFor(const FunctionSpec&, SimTime) override { return ka; }
    SimDuration ka;
  };
  CompositePolicy combo;
  combo.Add(std::make_unique<FixedKa>(kMinute));      // Default: skipped.
  combo.Add(std::make_unique<FixedKa>(5 * kSecond));  // First deviation.
  combo.Add(std::make_unique<FixedKa>(9 * kMinute));
  FunctionSpec spec;
  EXPECT_EQ(combo.KeepAliveFor(spec, 0), 5 * kSecond);
}

// End-to-end policy effect checks on a small simulated scenario.
struct TimerScenarioResult {
  int64_t cold_starts;
  int64_t prewarms;
};

TimerScenarioResult RunTimerScenario(platform::PlatformPolicy* policy) {
  workload::Calendar::Options copts;
  copts.trace_days = 1;
  const workload::Calendar cal(copts);
  auto profiles = std::vector<workload::RegionProfile>{
      workload::DefaultRegionProfiles()[0]};

  // 20 timer functions with a 5-minute period: 288 cold starts each at baseline.
  workload::Population pop;
  std::vector<workload::ArrivalEvent> arrivals;
  for (int i = 0; i < 20; ++i) {
    FunctionSpec f;
    f.id = static_cast<trace::FunctionId>(i);
    f.region = 0;
    f.primary_trigger = trace::Trigger::kTimer;
    f.kind = workload::ArrivalKind::kTimer;
    f.timer_period = 5 * kMinute;
    f.exec_median_us = 5e3;
    f.exec_sigma = 0.1;
    f.pod_concurrency = 1;
    pop.functions.push_back(f);
    for (SimTime t = static_cast<SimTime>(i) * kSecond; t < cal.horizon();
         t += 5 * kMinute) {
      arrivals.push_back({t, static_cast<trace::FunctionId>(i)});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  pop.num_users = 1;
  pop.region_begin = {0, static_cast<uint32_t>(pop.functions.size())};

  sim::Simulator sim;
  trace::TraceStore store;
  platform::Platform::Options opts;
  opts.seed = 33;
  opts.record_requests = false;
  platform::Platform platform(pop, profiles, cal, sim, store, opts, policy);
  platform.InjectArrivals(arrivals);
  sim.RunUntil(cal.horizon());
  platform.Finalize();
  return {platform.cold_starts(0), platform.load(0).prewarm_spawns};
}

TEST(PolicyScenarioTest, TimerPrewarmEliminatesMostColdStarts) {
  const auto baseline = RunTimerScenario(nullptr);
  TimerAwarePrewarmPolicy prewarm;
  const auto with_policy = RunTimerScenario(&prewarm);
  EXPECT_GT(baseline.cold_starts, 5000);
  // Prewarming converts user-visible cold starts into background spawns.
  EXPECT_LT(with_policy.cold_starts, baseline.cold_starts / 3);
  EXPECT_GT(with_policy.prewarms, 1000);
}

TEST(PolicyScenarioTest, DynamicKeepAliveCoversTimerPeriods) {
  const auto baseline = RunTimerScenario(nullptr);
  DynamicKeepAlivePolicy dynamic;
  const auto with_policy = RunTimerScenario(&dynamic);
  // Keep-alive stretches to ~6.25 min > 5 min period: pods stay warm.
  EXPECT_LT(with_policy.cold_starts, baseline.cold_starts / 10);
}

TEST(WorkflowPrewarmTest, PrewarmsChildrenOnParentStart) {
  // Minimal platform: parent with one child edge.
  workload::Calendar::Options copts;
  copts.trace_days = 1;
  const workload::Calendar cal(copts);
  auto profiles = std::vector<workload::RegionProfile>{
      workload::DefaultRegionProfiles()[0]};
  workload::Population pop;
  FunctionSpec parent;
  parent.id = 0;
  parent.region = 0;
  parent.exec_median_us = 5e6;  // 5s: long enough to hide the child's warm-up.
  parent.exec_sigma = 0.05;
  parent.children.push_back({1, 0.9});
  FunctionSpec child;
  child.id = 1;
  child.region = 0;
  child.kind = workload::ArrivalKind::kWorkflowChild;
  child.primary_trigger = trace::Trigger::kWorkflowSync;
  child.exec_median_us = 5e3;
  pop.functions = {parent, child};
  pop.num_users = 1;
  pop.region_begin = {0, 2};

  WorkflowPrewarmPolicy policy;
  sim::Simulator sim;
  trace::TraceStore store;
  platform::Platform::Options opts;
  opts.seed = 3;
  platform::Platform platform(pop, profiles, cal, sim, store, opts, &policy);
  platform.InjectArrivals({{kHour, 0}});
  sim.RunUntil(cal.horizon());
  platform.Finalize();
  store.Seal();

  EXPECT_EQ(policy.prewarms_issued(), 1);
  // The child's request lands on the prewarmed pod: only the parent cold-starts
  // user-visibly.
  EXPECT_EQ(platform.cold_starts(0), 1);
}

// --- Provisioned concurrency. ----------------------------------------------

TEST(ProvisionedConcurrencyTest, FloorAbsorbsRepeatColdStarts) {
  const auto baseline = RunTimerScenario(nullptr);
  ProvisionedConcurrencyPolicy policy;
  const auto with_policy = RunTimerScenario(&policy);

  // Every function enrolls on its first cold start; from then on the minute
  // tick keeps a ready pod ahead of the 5-minute timers.
  EXPECT_EQ(policy.enrolled_functions(), 20);
  EXPECT_LT(with_policy.cold_starts, baseline.cold_starts / 3);
  EXPECT_GT(policy.floor_spawns(), 100);
  EXPECT_GT(policy.floor_hits(), 1000);
  // Hits + misses account for every enrolled arrival that the policy observed.
  EXPECT_GT(policy.floor_hits() + policy.floor_misses(), 5000);
}

TEST(ProvisionedConcurrencyTest, EnrollmentBudgetCaps) {
  ProvisionedConcurrencyPolicy::Options options;
  options.max_provisioned_functions = 5;
  ProvisionedConcurrencyPolicy policy(options);
  RunTimerScenario(&policy);
  EXPECT_EQ(policy.enrolled_functions(), 5);  // 20 candidates, 5 slots.
}

TEST(ProvisionedConcurrencyTest, PolicyStateRoundTrips) {
  ProvisionedConcurrencyPolicy policy;
  RunTimerScenario(&policy);
  std::string blob;
  ASSERT_TRUE(policy.SavePolicyState(&blob));
  EXPECT_FALSE(blob.empty());

  ProvisionedConcurrencyPolicy restored;
  ASSERT_TRUE(restored.RestorePolicyState(blob));
  EXPECT_EQ(restored.enrolled_functions(), policy.enrolled_functions());
  EXPECT_EQ(restored.floor_spawns(), policy.floor_spawns());
  EXPECT_EQ(restored.floor_hits(), policy.floor_hits());
  EXPECT_EQ(restored.floor_misses(), policy.floor_misses());
  std::string blob2;
  ASSERT_TRUE(restored.SavePolicyState(&blob2));
  EXPECT_EQ(blob, blob2);  // Byte-stable round trip (sorted enrollment set).
}

TEST(ProvisionedConcurrencyTest, SerialAndRegionShardedRunsAgree) {
  // Region-local but not function-local: the enrollment budget pins each region
  // to one capacity cell, and serial vs. one-shard-per-region runs must still
  // be bit-identical — including the absorbed utilization counters.
  core::ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.1;
  config.record_requests = false;
  config.trace_mode = core::TraceMode::kStreaming;
  const core::Experiment experiment(config);

  ProvisionedConcurrencyPolicy serial_policy;
  const core::ExperimentResult serial = experiment.Run(&serial_policy, 1);
  ProvisionedConcurrencyPolicy sharded_policy;
  ASSERT_TRUE(experiment.CanShard(&sharded_policy));
  const core::ExperimentResult sharded = experiment.Run(&sharded_policy, 5);

  EXPECT_EQ(serial.visible_cold_starts, sharded.visible_cold_starts);
  EXPECT_EQ(serial.prewarm_spawns, sharded.prewarm_spawns);
  ByteWriter a, b;
  serial.streaming.SaveState(a);
  sharded.streaming.SaveState(b);
  EXPECT_EQ(a.data(), b.data());
  ByteWriter ca, cb;
  serial.cost_ledger.SaveState(ca);
  sharded.cost_ledger.SaveState(cb);
  EXPECT_EQ(ca.data(), cb.data());

  EXPECT_GT(serial_policy.enrolled_functions(), 0);
  EXPECT_EQ(serial_policy.enrolled_functions(), sharded_policy.enrolled_functions());
  EXPECT_EQ(serial_policy.floor_spawns(), sharded_policy.floor_spawns());
  EXPECT_EQ(serial_policy.floor_hits(), sharded_policy.floor_hits());
  EXPECT_EQ(serial_policy.floor_misses(), sharded_policy.floor_misses());
}

}  // namespace
}  // namespace coldstart::policy
