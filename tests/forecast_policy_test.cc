// ForecastPrewarmPolicy end-to-end tests: the SPES-style forecaster's
// mitigation effect, the statistical acceptance criterion (strictly fewer
// cold starts than the fixed keep-alive baseline at equal-or-lower ledger
// pod-seconds on a diurnal scenario), the determinism contract (serial ==
// region-sharded == sub-region K=4, bit-identical streaming and ledger
// bytes), policy-state serde, and kill-and-resume through a real fork/_exit
// process death.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "common/byte_serde.h"
#include "core/coldstart_lab.h"
#include "policy/forecast.h"

namespace coldstart {
namespace {

namespace fs = std::filesystem;

using core::CheckpointPolicy;
using core::Experiment;
using core::ExperimentResult;
using core::ScenarioConfig;
using policy::ForecastPrewarmPolicy;
using workload::FunctionSpec;

// Diurnal aggregate scenario, small enough for the tier1 budget.
ScenarioConfig ForecastScenario() {
  ScenarioConfig config = core::SmallScenario();
  config.days = 2;
  config.scale = 0.1;
  config.record_requests = false;
  config.trace_mode = core::TraceMode::kStreaming;
  return config;
}

int64_t TotalColdStarts(const ExperimentResult& result) {
  return std::accumulate(result.visible_cold_starts.begin(),
                         result.visible_cold_starts.end(), int64_t{0});
}

std::string StreamingBytes(const ExperimentResult& result) {
  ByteWriter w;
  result.streaming.SaveState(w);
  return w.Take();
}

std::string LedgerBytes(const ExperimentResult& result) {
  ByteWriter w;
  result.cost_ledger.SaveState(w);
  return w.Take();
}

// Same 20-timer micro-scenario as policy_test.cc: 5-minute periods, one day,
// 288 fires per function, every fire a cold start at baseline.
struct TimerScenarioResult {
  int64_t cold_starts;
  int64_t prewarms;
};

TimerScenarioResult RunTimerScenario(platform::PlatformPolicy* policy) {
  workload::Calendar::Options copts;
  copts.trace_days = 1;
  const workload::Calendar cal(copts);
  auto profiles = std::vector<workload::RegionProfile>{
      workload::DefaultRegionProfiles()[0]};

  workload::Population pop;
  std::vector<workload::ArrivalEvent> arrivals;
  for (int i = 0; i < 20; ++i) {
    FunctionSpec f;
    f.id = static_cast<trace::FunctionId>(i);
    f.region = 0;
    f.primary_trigger = trace::Trigger::kTimer;
    f.kind = workload::ArrivalKind::kTimer;
    f.timer_period = 5 * kMinute;
    f.exec_median_us = 5e3;
    f.exec_sigma = 0.1;
    f.pod_concurrency = 1;
    pop.functions.push_back(f);
    for (SimTime t = static_cast<SimTime>(i) * kSecond; t < cal.horizon();
         t += 5 * kMinute) {
      arrivals.push_back({t, static_cast<trace::FunctionId>(i)});
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  pop.num_users = 1;
  pop.region_begin = {0, static_cast<uint32_t>(pop.functions.size())};

  sim::Simulator sim;
  trace::TraceStore store;
  platform::Platform::Options opts;
  opts.seed = 33;
  opts.record_requests = false;
  platform::Platform platform(pop, profiles, cal, sim, store, opts, policy);
  platform.InjectArrivals(arrivals);
  sim.RunUntil(cal.horizon());
  platform.Finalize();
  return {platform.cold_starts(0), platform.load(0).prewarm_spawns};
}

// --- Mitigation effect on predictable timers. --------------------------------

TEST(ForecastPolicyTest, CutsTimerColdStartsViaPrewarm) {
  const auto baseline = RunTimerScenario(nullptr);
  ForecastPrewarmPolicy policy;
  const auto with_policy = RunTimerScenario(&policy);

  ASSERT_GT(baseline.cold_starts, 5000);
  // 5-minute IATs sit beyond prewarm_min_iat: the policy prewarms each fire
  // instead of holding pods warm, converting user-visible cold starts into
  // background spawns after the min_samples warm-up.
  EXPECT_LT(with_policy.cold_starts, baseline.cold_starts / 3);
  EXPECT_GT(with_policy.prewarms, 1000);
  EXPECT_GT(policy.prewarms_issued(), 1000);
  // Long-IAT functions get curtailed keep-alives: the next fire is prewarmed,
  // so holding the served pod would be pure idle cost.
  EXPECT_GT(policy.keepalive_curtailed(), 0);
  EXPECT_EQ(policy.tracked_functions(), 20);
}

// --- Statistical acceptance: better latency at equal-or-lower cost. ----------

TEST(ForecastPolicyTest, BeatsFixedKeepAliveOnDiurnalScenario) {
  const ScenarioConfig config = ForecastScenario();
  const Experiment experiment(config);

  const ExperimentResult baseline = experiment.Run(nullptr, 1);
  ForecastPrewarmPolicy policy;
  const ExperimentResult forecast = experiment.Run(&policy, 1);

  ASSERT_GT(TotalColdStarts(baseline), 0);
  // The acceptance criterion from the frontier study: strictly fewer visible
  // cold starts than the fixed keep-alive baseline, without paying for it in
  // ledger pod-seconds. Both runs are seeded and deterministic, so these are
  // exact comparisons, not flaky thresholds.
  EXPECT_LT(TotalColdStarts(forecast), TotalColdStarts(baseline));
  EXPECT_LE(forecast.cost_ledger.TotalRecord().pod_seconds(),
            baseline.cost_ledger.TotalRecord().pod_seconds());
}

// --- Determinism: serial == region-sharded == sub-region K=4. ----------------

TEST(ForecastPolicyTest, SerialShardedAndSubRegionShardedBitIdentical) {
  ScenarioConfig config = ForecastScenario();
  config.cells_per_region = 4;
  const Experiment experiment(config);

  ForecastPrewarmPolicy serial_policy;
  ASSERT_TRUE(experiment.CanShard(&serial_policy));
  const ExperimentResult serial = experiment.Run(&serial_policy, 1);
  ForecastPrewarmPolicy sharded_policy;
  const ExperimentResult sharded = experiment.Run(&sharded_policy, 5);
  ForecastPrewarmPolicy subregion_policy;
  const ExperimentResult subregion = experiment.Run(&subregion_policy, 20);

  EXPECT_EQ(serial.visible_cold_starts, sharded.visible_cold_starts);
  EXPECT_EQ(serial.visible_cold_starts, subregion.visible_cold_starts);
  EXPECT_EQ(serial.prewarm_spawns, sharded.prewarm_spawns);
  EXPECT_EQ(serial.prewarm_spawns, subregion.prewarm_spawns);

  // Bit-identical aggregates: every counter and histogram bucket of the
  // streaming sink, and every ledger field, across all three geometries.
  const std::string serial_stream = StreamingBytes(serial);
  EXPECT_EQ(serial_stream, StreamingBytes(sharded));
  EXPECT_EQ(serial_stream, StreamingBytes(subregion));
  const std::string serial_ledger = LedgerBytes(serial);
  EXPECT_EQ(serial_ledger, LedgerBytes(sharded));
  EXPECT_EQ(serial_ledger, LedgerBytes(subregion));

  // Absorbed shard counters agree with the serial policy's.
  EXPECT_GT(serial_policy.prewarms_issued(), 0);
  EXPECT_EQ(serial_policy.prewarms_issued(), sharded_policy.prewarms_issued());
  EXPECT_EQ(serial_policy.prewarms_issued(), subregion_policy.prewarms_issued());
  EXPECT_EQ(serial_policy.keepalive_extended(),
            sharded_policy.keepalive_extended());
  EXPECT_EQ(serial_policy.keepalive_extended(),
            subregion_policy.keepalive_extended());
  EXPECT_EQ(serial_policy.keepalive_curtailed(),
            sharded_policy.keepalive_curtailed());
  EXPECT_EQ(serial_policy.keepalive_curtailed(),
            subregion_policy.keepalive_curtailed());
}

// --- Serde: policy state round trips byte-stably. ----------------------------

TEST(ForecastPolicyTest, PolicyStateRoundTripByteStable) {
  ForecastPrewarmPolicy policy;
  RunTimerScenario(&policy);
  ASSERT_GT(policy.tracked_functions(), 0);
  std::string blob;
  ASSERT_TRUE(policy.SavePolicyState(&blob));
  EXPECT_FALSE(blob.empty());

  ForecastPrewarmPolicy restored;
  ASSERT_TRUE(restored.RestorePolicyState(blob));
  EXPECT_EQ(restored.tracked_functions(), policy.tracked_functions());
  EXPECT_EQ(restored.prewarms_issued(), policy.prewarms_issued());
  EXPECT_EQ(restored.keepalive_extended(), policy.keepalive_extended());
  EXPECT_EQ(restored.keepalive_curtailed(), policy.keepalive_curtailed());
  // Byte-stable round trip: sorted function ids and the ordered pending map
  // keep hash order out of the blob.
  std::string blob2;
  ASSERT_TRUE(restored.SavePolicyState(&blob2));
  EXPECT_EQ(blob, blob2);
}

TEST(ForecastPolicyTest, CloneForShardCopiesConfiguration) {
  ForecastPrewarmPolicy::Options options;
  options.forecaster.min_confidence = 0.9;
  options.max_horizon = 6 * kHour;
  const ForecastPrewarmPolicy policy(options);
  const auto clone = policy.CloneForShard();
  ASSERT_NE(clone, nullptr);
  const auto& typed = static_cast<const ForecastPrewarmPolicy&>(*clone);
  EXPECT_EQ(typed.options().Fingerprint(), options.Fingerprint());
  EXPECT_EQ(typed.tracked_functions(), 0);
  EXPECT_TRUE(policy.is_function_local());
}

// --- Crash safety: kill-and-resume is bit-identical. -------------------------

// Forked child commits checkpoints into `dir` and _exit()s from the
// on_checkpoint hook once `kill_day` committed — a real mid-run death.
void RunAndKillAtDay(const ScenarioConfig& config, const std::string& dir,
                     int64_t kill_day, int num_threads,
                     platform::PlatformPolicy* policy) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    CheckpointPolicy ckpt;
    ckpt.dir = dir;
    ckpt.on_checkpoint = [kill_day](int64_t day, uint32_t) {
      if (day >= kill_day) {
        _exit(7);  // Hard death: no unwinding, no flushes beyond the commit.
      }
    };
    Experiment(config).Run(policy, num_threads, &ckpt);
    _exit(1);  // Ran to completion — the kill never fired; fail loudly.
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(status), 7)
      << "child completed instead of dying at day " << kill_day;
}

class ForecastCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "coldstart_forecast_ckpt_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ForecastCheckpointTest, KillAndResumeBitIdentical) {
  ScenarioConfig config;
  config.days = 3;
  config.scale = 0.05;
  config.record_requests = false;
  config.trace_mode = core::TraceMode::kStreaming;
  const Experiment experiment(config);

  ForecastPrewarmPolicy plain_policy;
  const ExperimentResult uninterrupted = experiment.Run(&plain_policy, 1);

  ForecastPrewarmPolicy killed_policy;
  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/1,
                  &killed_policy);
  // Resume hands the checkpointed forecaster state (rings, diurnal profiles,
  // pending fires) to a *fresh* policy instance — the restart-after-crash
  // situation the serde contract exists for.
  ForecastPrewarmPolicy resumed_policy;
  const ExperimentResult resumed =
      experiment.ResumeFrom(dir_, &resumed_policy, 1);

  EXPECT_EQ(resumed.interrupted_at_day, -1);
  EXPECT_EQ(StreamingBytes(uninterrupted), StreamingBytes(resumed));
  EXPECT_EQ(LedgerBytes(uninterrupted), LedgerBytes(resumed));
  EXPECT_EQ(uninterrupted.prewarm_spawns, resumed.prewarm_spawns);
  EXPECT_EQ(uninterrupted.visible_cold_starts, resumed.visible_cold_starts);
}

}  // namespace
}  // namespace coldstart
