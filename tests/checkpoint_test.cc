// Checkpoint/restore tests: the crash-safety contract. A run that is killed at
// any committed checkpoint and resumed must finish with a trace bit-identical
// to the uninterrupted run — serial and sharded, with and without a policy,
// full and streaming trace modes. Kill-and-resume is exercised for real: the
// child process fork()s, dies mid-run via _exit() from the checkpoint hook,
// and the parent resumes from what actually hit the disk. Corruption tests
// pin the failure mode the subsystem promises: loud death naming the file,
// never a silent half-restore.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "checkpoint/checkpoint.h"
#include "common/atomic_file.h"
#include "common/byte_serde.h"
#include "common/crc32.h"
#include "core/coldstart_lab.h"

namespace coldstart {
namespace {

namespace fs = std::filesystem;

using core::CheckpointPolicy;
using core::Experiment;
using core::ExperimentResult;
using core::ScenarioConfig;

// Small but non-trivial: 5 regions, enough traffic that every record table and
// aggregate is exercised, short enough for the tier1 budget.
ScenarioConfig TinyScenario(core::TraceMode mode = core::TraceMode::kFull) {
  ScenarioConfig config;
  config.days = 3;
  config.scale = 0.05;
  config.trace_mode = mode;
  return config;
}

// A policy stack whose every member implements Save/RestorePolicyState.
std::unique_ptr<policy::CompositePolicy> CheckpointablePolicy() {
  auto combo = std::make_unique<policy::CompositePolicy>();
  combo->Add(std::make_unique<policy::DynamicKeepAlivePolicy>())
      .Add(std::make_unique<policy::WorkflowPrewarmPolicy>())
      .Add(std::make_unique<policy::PeakShavingPolicy>());
  return combo;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "coldstart_checkpoint_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

// Serializes the streaming sink so two runs can be compared byte-for-byte
// (counters, per-group state, and every histogram bucket).
std::string StreamingBytes(const ExperimentResult& result) {
  ByteWriter w;
  result.streaming.SaveState(w);
  return w.Take();
}

// Runs `config` in a forked child that commits checkpoints into `dir` and
// _exit()s from the on_checkpoint hook once `kill_day` has committed — a real
// mid-run process death, not a simulated one. Returns after reaping the child.
void RunAndKillAtDay(const ScenarioConfig& config, const std::string& dir,
                     int64_t kill_day, int num_threads,
                     platform::PlatformPolicy* policy = nullptr) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    CheckpointPolicy ckpt;
    ckpt.dir = dir;
    ckpt.on_checkpoint = [kill_day](int64_t day, uint32_t) {
      if (day >= kill_day) {
        _exit(7);  // Hard death: no unwinding, no flushes beyond the commit.
      }
    };
    Experiment(config).Run(policy, num_threads, &ckpt);
    _exit(1);  // Ran to completion — the kill never fired; fail loudly.
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(status), 7) << "child completed instead of dying at day "
                                    << kill_day;
}

// Flips one bit at `offset` in `path`.
void FlipBit(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  if (offset < 0) {
    f.seekg(0, std::ios::end);
    offset = static_cast<int64_t>(f.tellg()) + offset;
  }
  f.seekg(offset);
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(offset);
  f.write(&byte, 1);
}

// --- Tentpole: checkpointing never perturbs the run. ---

TEST_F(CheckpointTest, CheckpointedRunMatchesPlainRun) {
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  const ExperimentResult plain = experiment.Run(nullptr, 1);

  CheckpointPolicy ckpt;
  ckpt.dir = dir_;
  const ExperimentResult checkpointed = experiment.Run(nullptr, 1, &ckpt);

  ASSERT_GT(plain.store.requests().size(), 1000u);
  EXPECT_EQ(trace::Digest(plain.store), trace::Digest(checkpointed.store));
  EXPECT_EQ(checkpointed.interrupted_at_day, -1);
  // Every interior day boundary committed a checkpoint plus the manifest.
  for (int64_t day = 1; day < config.days; ++day) {
    EXPECT_TRUE(fs::exists(fs::path(dir_) /
                           checkpoint::CheckpointFileName(day, checkpoint::kSerialShard)))
        << "missing checkpoint for day " << day;
  }
  checkpoint::Manifest manifest;
  ASSERT_TRUE(checkpoint::ReadManifest(dir_, &manifest));
  EXPECT_FALSE(manifest.sharded);
  EXPECT_EQ(manifest.fingerprint, config.Fingerprint());
}

// --- Tentpole acceptance: kill at a day boundary, resume, bit-identical. ---

TEST_F(CheckpointTest, KillAndResumeSerialFullTrace) {
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 1);

  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/1);
  const ExperimentResult resumed = experiment.ResumeFrom(dir_, nullptr, 1);

  EXPECT_EQ(resumed.interrupted_at_day, -1);
  ASSERT_GT(uninterrupted.store.requests().size(), 1000u);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
  EXPECT_EQ(uninterrupted.visible_cold_starts, resumed.visible_cold_starts);
  EXPECT_EQ(uninterrupted.cold_start_latency_sum_us,
            resumed.cold_start_latency_sum_us);
}

TEST_F(CheckpointTest, KillAndResumeShardedFullTrace) {
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  ASSERT_TRUE(experiment.CanShard(nullptr));
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 4);

  // The kill fires from a worker thread, so sibling shards die wherever they
  // happen to be — the manifest legitimately holds different days per shard.
  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/4);
  checkpoint::Manifest manifest;
  ASSERT_TRUE(checkpoint::ReadManifest(dir_, &manifest));
  EXPECT_TRUE(manifest.sharded);

  const ExperimentResult resumed = experiment.ResumeFrom(dir_, nullptr, 4);
  EXPECT_EQ(resumed.interrupted_at_day, -1);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
  EXPECT_EQ(uninterrupted.visible_cold_starts, resumed.visible_cold_starts);
}

TEST_F(CheckpointTest, KillAndResumeSubRegionShardedFullTrace) {
  // Sub-region geometry: 4 cells per region, 20 threads -> K=4, so the child
  // commits one checkpoint stream per (region, cell group) — 20 shard ids —
  // and the resume must stitch all of them back bit-identically.
  ScenarioConfig config = TinyScenario();
  config.cells_per_region = 4;
  const Experiment experiment(config);
  ASSERT_TRUE(experiment.CanShard(nullptr));
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 20);

  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/20);
  checkpoint::Manifest manifest;
  ASSERT_TRUE(checkpoint::ReadManifest(dir_, &manifest));
  EXPECT_TRUE(manifest.sharded);
  EXPECT_EQ(manifest.shards_per_region, 4u);

  const ExperimentResult resumed = experiment.ResumeFrom(dir_, nullptr, 20);
  EXPECT_EQ(resumed.interrupted_at_day, -1);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
  EXPECT_EQ(uninterrupted.visible_cold_starts, resumed.visible_cold_starts);

  // And the whole thing must also match the serial run of the same scenario.
  const ExperimentResult serial = experiment.Run(nullptr, 1);
  EXPECT_EQ(trace::Digest(serial.store), trace::Digest(resumed.store));
}

TEST_F(CheckpointTest, ShardedResumeHonorsSingleThread) {
  // The satellite bugfix this pins: ResumeFrom used to force
  // max(num_threads, 2), overriding an explicit single-threaded request. A
  // sharded manifest must resume correctly on exactly one worker.
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 4);

  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/4);
  const ExperimentResult resumed = experiment.ResumeFrom(dir_, nullptr,
                                                         /*num_threads=*/1);
  EXPECT_EQ(resumed.interrupted_at_day, -1);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
}

TEST_F(CheckpointTest, KillAndResumeStreamingMode) {
  const ScenarioConfig config = TinyScenario(core::TraceMode::kStreaming);
  const Experiment experiment(config);
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 1);

  RunAndKillAtDay(config, dir_, /*kill_day=*/2, /*num_threads=*/1);
  const ExperimentResult resumed = experiment.ResumeFrom(dir_, nullptr, 1);

  EXPECT_EQ(resumed.interrupted_at_day, -1);
  // The sink state serializes identically: every counter, latency sum, and
  // histogram bucket agrees, not just a summary statistic.
  EXPECT_EQ(StreamingBytes(uninterrupted), StreamingBytes(resumed));
}

TEST_F(CheckpointTest, KillAndResumeWithCheckpointablePolicy) {
  ScenarioConfig config = TinyScenario();
  config.record_requests = false;
  const Experiment experiment(config);

  auto plain_policy = CheckpointablePolicy();
  const ExperimentResult uninterrupted = experiment.Run(plain_policy.get(), 1);

  auto killed_policy = CheckpointablePolicy();
  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/1,
                  killed_policy.get());
  // Resume hands the checkpointed policy state to a *fresh* policy instance —
  // exactly the restart-after-crash situation.
  auto resumed_policy = CheckpointablePolicy();
  const ExperimentResult resumed =
      experiment.ResumeFrom(dir_, resumed_policy.get(), 1);

  EXPECT_EQ(resumed.interrupted_at_day, -1);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
  EXPECT_EQ(uninterrupted.prewarm_spawns, resumed.prewarm_spawns);
}

// --- Cooperative stop: the SIGINT path, minus the signal. ---

TEST_F(CheckpointTest, StopFlagInterruptsAtBoundaryAndResumes) {
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  const ExperimentResult uninterrupted = experiment.Run(nullptr, 1);

  std::atomic<bool> stop{false};
  CheckpointPolicy ckpt;
  ckpt.dir = dir_;
  ckpt.stop = &stop;
  ckpt.on_checkpoint = [&stop](int64_t day, uint32_t) {
    if (day >= 1) {
      stop.store(true);
    }
  };
  const ExperimentResult interrupted = experiment.Run(nullptr, 1, &ckpt);
  ASSERT_GT(interrupted.interrupted_at_day, 0);
  ASSERT_LT(interrupted.interrupted_at_day, config.days);

  const ExperimentResult resumed = experiment.ResumeFrom(dir_, nullptr, 1);
  EXPECT_EQ(resumed.interrupted_at_day, -1);
  EXPECT_EQ(trace::Digest(uninterrupted.store), trace::Digest(resumed.store));
}

// --- Guard rails: misuse and mismatch fail loudly, up front. ---

TEST_F(CheckpointTest, NonCheckpointablePolicyDiesUpFront) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  // TimerAwarePrewarmPolicy keeps per-function timer state it cannot
  // serialize; asking for checkpoints with it must die before day 1, not at
  // the first checkpoint hours into a real run.
  policy::TimerAwarePrewarmPolicy policy;
  CheckpointPolicy ckpt;
  ckpt.dir = dir_;
  EXPECT_DEATH(Experiment(config).Run(&policy, 1, &ckpt), "not checkpointable");
}

TEST_F(CheckpointTest, ResumeWithMismatchedConfigDies) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const ScenarioConfig config = TinyScenario();
  std::atomic<bool> stop{false};
  CheckpointPolicy ckpt;
  ckpt.dir = dir_;
  ckpt.stop = &stop;
  ckpt.on_checkpoint = [&stop](int64_t, uint32_t) { stop.store(true); };
  Experiment(config).Run(nullptr, 1, &ckpt);

  // Same everything except the seed: the fingerprint catches it.
  ScenarioConfig other = config;
  other.seed = 43;
  EXPECT_DEATH(Experiment(other).ResumeFrom(dir_), "fingerprint");
}

TEST_F(CheckpointTest, StaleShardEntryFromDifferentGeometryDies) {
  // The satellite bugfix this pins: manifest entries are matched by a linear
  // (shard, day) scan, so an entry written under a larger K used to survive a
  // resume with a smaller one and silently restore the wrong state slice. The
  // resume must instead reject any entry outside regions x shards_per_region.
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ScenarioConfig config = TinyScenario();
  config.cells_per_region = 4;
  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/20);

  checkpoint::Manifest manifest;
  ASSERT_TRUE(checkpoint::ReadManifest(dir_, &manifest));
  ASSERT_EQ(manifest.shards_per_region, 4u);
  ASSERT_FALSE(manifest.entries.empty());
  // Rewrite the manifest claiming K=1, with an entry whose shard id only
  // existed under the larger geometry — a stale leftover. (The kill fires at
  // the first commit, so which shard ids committed is scheduling-dependent;
  // fabricate the out-of-range one deterministically.)
  manifest.shards_per_region = 1;
  checkpoint::ManifestEntry stale = manifest.entries.front();
  stale.shard = manifest.num_regions + 2;  // >= regions x K once K claims 1.
  manifest.entries = {stale};
  ASSERT_TRUE(checkpoint::WriteManifest(dir_, manifest));
  EXPECT_DEATH(Experiment(config).ResumeFrom(dir_), "stale");
}

TEST_F(CheckpointTest, DuplicateManifestEntryDies) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const ScenarioConfig config = TinyScenario();
  RunAndKillAtDay(config, dir_, /*kill_day=*/1, /*num_threads=*/4);

  checkpoint::Manifest manifest;
  ASSERT_TRUE(checkpoint::ReadManifest(dir_, &manifest));
  ASSERT_FALSE(manifest.entries.empty());
  manifest.entries.push_back(manifest.entries.front());
  ASSERT_TRUE(checkpoint::WriteManifest(dir_, manifest));
  EXPECT_DEATH(Experiment(config).ResumeFrom(dir_), "twice");
}

// --- Satellite: corrupted checkpoints die loudly, naming the file. ---

class CheckpointCorruptionTest : public CheckpointTest {
 protected:
  // Produces a valid interrupted checkpoint directory to corrupt.
  void MakeCheckpointDir(const ScenarioConfig& config) {
    std::atomic<bool> stop{false};
    CheckpointPolicy ckpt;
    ckpt.dir = dir_;
    ckpt.stop = &stop;
    ckpt.on_checkpoint = [&stop](int64_t, uint32_t) { stop.store(true); };
    const ExperimentResult r = Experiment(config).Run(nullptr, 1, &ckpt);
    ASSERT_GT(r.interrupted_at_day, 0);
    checkpoint_file_ =
        (fs::path(dir_) / checkpoint::CheckpointFileName(
                              r.interrupted_at_day, checkpoint::kSerialShard))
            .string();
    ASSERT_TRUE(fs::exists(checkpoint_file_));
  }

  std::string checkpoint_file_;
};

TEST_F(CheckpointCorruptionTest, BitFlippedCheckpointDiesNamingFile) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const ScenarioConfig config = TinyScenario();
  MakeCheckpointDir(config);
  FlipBit(checkpoint_file_, -100);  // Deep in the payload, past the header.
  EXPECT_DEATH(Experiment(config).ResumeFrom(dir_),
               "ckpt_day.*corrupt.*CRC mismatch");
}

TEST_F(CheckpointCorruptionTest, TruncatedCheckpointDiesNamingFile) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const ScenarioConfig config = TinyScenario();
  MakeCheckpointDir(config);
  fs::resize_file(checkpoint_file_, fs::file_size(checkpoint_file_) / 2);
  EXPECT_DEATH(Experiment(config).ResumeFrom(dir_), "ckpt_day.*corrupt");
}

TEST_F(CheckpointCorruptionTest, BitFlippedManifestDiesNamingFile) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const ScenarioConfig config = TinyScenario();
  MakeCheckpointDir(config);
  FlipBit(checkpoint::ManifestPath(dir_), -3);
  EXPECT_DEATH(Experiment(config).ResumeFrom(dir_), "MANIFEST.*corrupt");
}

// --- Satellite: a corrupted trace cache falls back to a fresh run. ---

TEST_F(CheckpointTest, CorruptedCacheFileIsRejectedAndRegenerated) {
  const ScenarioConfig config = TinyScenario();
  const Experiment experiment(config);
  const ExperimentResult fresh = experiment.RunCached(dir_);
  ASSERT_FALSE(fresh.from_cache);
  const ExperimentResult hit = experiment.RunCached(dir_);
  ASSERT_TRUE(hit.from_cache);

  // Find the cache file and flip one payload bit — the CRC must reject it and
  // the runner must fall back to a fresh (identical) simulation.
  std::string cache_file;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".bin") {
      cache_file = entry.path().string();
    }
  }
  ASSERT_FALSE(cache_file.empty());
  FlipBit(cache_file, -50);
  testing::internal::CaptureStderr();
  const ExperimentResult refreshed = experiment.RunCached(dir_);
  const std::string log = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(refreshed.from_cache);
  EXPECT_NE(log.find("CRC mismatch"), std::string::npos) << log;
  EXPECT_EQ(trace::Digest(fresh.store), trace::Digest(refreshed.store));

  // The fallback rewrote a valid cache file.
  const ExperimentResult rehit = experiment.RunCached(dir_);
  EXPECT_TRUE(rehit.from_cache);
  EXPECT_EQ(trace::Digest(fresh.store), trace::Digest(rehit.store));
}

// --- Satellite: AtomicFile and CRC32 primitives. ---

TEST(AtomicFileTest, CommitPublishesAbandonDoesNot) {
  const fs::path dir = fs::temp_directory_path() / "coldstart_atomic_file_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "target.bin").string();

  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.Write("v1", 2));
    ASSERT_TRUE(f.Commit());
  }
  ASSERT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), 2u);

  // An abandoned rewrite leaves the committed version untouched and no temp
  // file behind — the crash-mid-write contract.
  {
    AtomicFile f(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.Write("garbage", 7));
    f.Abandon();
  }
  EXPECT_EQ(fs::file_size(path), 2u);
  int files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1);
  fs::remove_all(dir);
}

TEST(Crc32Test, KnownAnswerAndChaining) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Chaining over a split buffer equals one shot over the whole.
  const uint32_t first = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, first), 0xCBF43926u);
  EXPECT_NE(Crc32("123456788", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace coldstart
