// Tests for time-series utilities (peaks, P2T, smoothing).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/timeseries.h"

namespace coldstart::stats {
namespace {

TEST(MovingAverageTest, ConstantSeriesUnchanged) {
  const std::vector<double> s(10, 3.0);
  for (const double v : MovingAverage(s, 5)) {
    EXPECT_DOUBLE_EQ(v, 3.0);
  }
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  const std::vector<double> s = {1, 5, 2, 8};
  EXPECT_EQ(MovingAverage(s, 1), s);
}

TEST(MovingAverageTest, SmoothsSpike) {
  std::vector<double> s(11, 0.0);
  s[5] = 10.0;
  const auto out = MovingAverage(s, 5);
  EXPECT_NEAR(out[5], 2.0, 1e-12);  // 10 spread over 5 buckets.
  EXPECT_NEAR(out[3], 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(MovingAverageTest, EdgesUsePartialWindow) {
  const std::vector<double> s = {4.0, 0.0, 0.0};
  const auto out = MovingAverage(s, 3);
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // Mean of {4, 0}.
}

TEST(MinMaxNormalizeTest, MapsToUnitRange) {
  const auto out = MinMaxNormalize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(MinMaxNormalizeTest, ConstantSeriesToZero) {
  for (const double v : MinMaxNormalize({5.0, 5.0, 5.0})) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(LargestPeakTest, FindsPerPeriodMaxima) {
  // Two "days" of 4 buckets each.
  const std::vector<double> s = {1, 9, 2, 3, 4, 5, 8, 6};
  const auto peaks = LargestPeakPerPeriod(s, 4);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 1u);
  EXPECT_DOUBLE_EQ(peaks[0].value, 9.0);
  EXPECT_EQ(peaks[1].index, 6u);
  EXPECT_DOUBLE_EQ(peaks[1].value, 8.0);
}

TEST(LargestPeakTest, DropsPartialTrailingPeriod) {
  const std::vector<double> s = {1, 2, 3, 4, 5};
  EXPECT_EQ(LargestPeakPerPeriod(s, 3).size(), 1u);
}

TEST(PeakToTroughTest, SineWaveRatio) {
  std::vector<double> s;
  for (int i = 0; i < 1000; ++i) {
    s.push_back(10.0 + 5.0 * std::sin(2 * M_PI * i / 100.0));
  }
  EXPECT_NEAR(PeakToTroughRatio(s, 0.001), 3.0, 0.01);  // 15 / 5.
}

TEST(PeakToTroughTest, FlooredAtOne) {
  EXPECT_DOUBLE_EQ(PeakToTroughRatio({5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(PeakToTroughRatio({0.5}), 1.0);
}

TEST(PeakToTroughTest, ZeroTroughUsesFloor) {
  EXPECT_DOUBLE_EQ(PeakToTroughRatio({0.0, 100.0}, 1.0), 100.0);
}

TEST(AutocorrelationTest, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> s;
  for (int i = 0; i < 240; ++i) {
    s.push_back(std::sin(2 * M_PI * i / 24.0));
  }
  EXPECT_GT(Autocorrelation(s, 24), 0.9);
  EXPECT_LT(Autocorrelation(s, 12), -0.9);
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  const std::vector<double> s = {1, 4, 2, 8, 5};
  EXPECT_NEAR(Autocorrelation(s, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, ConstantSeriesZero) {
  EXPECT_DOUBLE_EQ(Autocorrelation({3, 3, 3, 3}, 1), 0.0);
}

TEST(DownsampleTest, SumsGroups) {
  const auto out = Downsample({1, 2, 3, 4, 5, 6, 7}, 3);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(PeriodicProfileTest, AveragesAcrossPeriods) {
  const auto out = PeriodicProfile({1, 2, 3, 4, 5, 6}, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 2.5);
  EXPECT_DOUBLE_EQ(out[1], 3.5);
  EXPECT_DOUBLE_EQ(out[2], 4.5);
}

}  // namespace
}  // namespace coldstart::stats
