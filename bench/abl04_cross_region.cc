// Ablation A4: cross-region cold-start scheduling.
//
// §5: the most popular regions have the longest cold starts while inter-region RTT is
// tens of milliseconds; offloading congested cold starts to quiet regions trades RTT
// for queueing. Metric: mean cold-start latency in the congested region (R1) and
// fleet-wide, plus the number of offloads. Both scenario evaluations run concurrently
// on the ParallelSweep work queue (the cross-region run itself stays serial inside —
// the policy is not region-local, so the sharded runner declines it).
#include "bench/abl_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Ablation A4", "cross-region scheduling",
                     "RTT between developed regions is tens of ms, far below congested "
                     "cold-start times of seconds: offloading should pay off");
  const core::ScenarioConfig config = bench::AblationScenario();

  auto r1_mean = [](const core::ExperimentResult& result) {
    const auto n = result.visible_cold_starts[0];
    return n > 0 ? ToSeconds(result.cold_start_latency_sum_us[0]) / static_cast<double>(n)
                 : 0.0;
  };

  std::vector<double> r1_means(2, 0.0);
  int64_t offloads = 0;
  const std::vector<bench::AblationJob> jobs = {
      {"baseline (home region only)", nullptr,
       [&](const core::ExperimentResult& result, platform::PlatformPolicy*) {
         r1_means[0] = r1_mean(result);
       }},
      {"cross-region (async offload)",
       [] {
         policy::CrossRegionPolicy::Options opts;
         opts.home_pressure_threshold = 8;
         return std::make_unique<policy::CrossRegionPolicy>(opts);
       },
       [&](const core::ExperimentResult& result, platform::PlatformPolicy* policy) {
         r1_means[1] = r1_mean(result);
         offloads = static_cast<policy::CrossRegionPolicy*>(policy)->offloads();
       }},
  };
  const std::vector<bench::AblationRow> rows = bench::RunAblationSweep(config, jobs);

  bench::PrintRows(rows);
  std::printf("\nR1 mean cold start: baseline %.2fs vs cross-region %.2fs; offloads: %lld\n",
              r1_means[0], r1_means[1], static_cast<long long>(offloads));
  return 0;
}
