// Ablation A4: cross-region cold-start scheduling.
//
// §5: the most popular regions have the longest cold starts while inter-region RTT is
// tens of milliseconds; offloading congested cold starts to quiet regions trades RTT
// for queueing. Metric: mean cold-start latency in the congested region (R1) and
// fleet-wide, plus the number of offloads.
#include "bench/abl_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Ablation A4", "cross-region scheduling",
                     "RTT between developed regions is tens of ms, far below congested "
                     "cold-start times of seconds: offloading should pay off");
  const core::ScenarioConfig config = bench::AblationScenario();

  auto r1_mean = [](const core::ExperimentResult& result) {
    const auto n = result.visible_cold_starts[0];
    return n > 0 ? ToSeconds(result.cold_start_latency_sum_us[0]) / static_cast<double>(n)
                 : 0.0;
  };

  std::vector<bench::AblationRow> rows;
  std::vector<double> r1_means;
  int64_t offloads = 0;
  {
    core::Experiment experiment(config);
    auto result = experiment.Run();
    r1_means.push_back(r1_mean(result));
    rows.push_back(bench::Summarize("baseline (home region only)", std::move(result)));
  }
  {
    policy::CrossRegionPolicy::Options opts;
    opts.home_pressure_threshold = 8;
    policy::CrossRegionPolicy cross(opts);
    core::Experiment experiment(config);
    auto result = experiment.Run(&cross);
    r1_means.push_back(r1_mean(result));
    offloads = cross.offloads();
    rows.push_back(bench::Summarize("cross-region (async offload)", std::move(result)));
  }

  bench::PrintRows(rows);
  std::printf("\nR1 mean cold start: baseline %.2fs vs cross-region %.2fs; offloads: %lld\n",
              r1_means[0], r1_means[1], static_cast<long long>(offloads));
  return 0;
}
