// Figure 6: peak-to-trough ratio vs request volume (a) and vs cold-start count (b).
#include <cmath>

#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 6", "peak-to-trough analysis",
      "P2T spans <2 to >1000; low for low-request functions, high for moderately "
      "popular ones, lower again for the largest (largest workloads < 60); a cluster "
      "at P2T ~= 1 below 1440 requests/day; high cold-start counts come from high-P2T "
      "functions or the 1-per->minute cluster");
  const auto result = bench::LoadPaperTrace();

  const auto entries = analysis::ComputeFunctionPeakTrough(result.store);

  // (a) P2T by request-volume decade.
  TextTable a({"requests/day decade", "functions", "median P2T", "p90 P2T", "max P2T"});
  for (int decade = -1; decade <= 4; ++decade) {
    const double lo = std::pow(10.0, decade);
    const double hi = std::pow(10.0, decade + 1);
    stats::Ecdf p2t;
    for (const auto& e : entries) {
      if (e.requests_per_day >= lo && e.requests_per_day < hi) {
        p2t.Add(e.peak_to_trough);
      }
    }
    p2t.Seal();
    if (p2t.empty()) {
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "[1e%d, 1e%d)", decade, decade + 1);
    a.Row()
        .Cell(std::string(label))
        .Cell(static_cast<uint64_t>(p2t.size()))
        .Cell(p2t.Quantile(0.5), 2)
        .Cell(p2t.Quantile(0.9), 2)
        .Cell(p2t.Quantile(1.0), 2);
  }
  std::printf("(a) P2T vs requests/day\n%s\n", a.Render().c_str());

  // The timer cluster: P2T ~= 1 and <= 1440 requests/day.
  size_t cluster = 0, total = 0;
  for (const auto& e : entries) {
    ++total;
    if (e.peak_to_trough < 1.5 && e.requests_per_day <= 1440) {
      ++cluster;
    }
  }
  std::printf("cluster at P2T~1 with <=1440 req/day: %zu of %zu functions (%.1f%%)\n\n",
              cluster, total, 100.0 * static_cast<double>(cluster) / static_cast<double>(total));

  // (b) cold starts vs P2T.
  TextTable b({"P2T band", "functions", "median cold starts", "p90 cold starts"});
  const double bands[] = {1.0, 2.0, 10.0, 100.0, 1e9};
  const char* labels[] = {"[1,2)", "[2,10)", "[10,100)", ">=100"};
  for (int i = 0; i < 4; ++i) {
    stats::Ecdf cs;
    for (const auto& e : entries) {
      if (e.peak_to_trough >= bands[i] && e.peak_to_trough < bands[i + 1]) {
        cs.Add(static_cast<double>(e.cold_starts));
      }
    }
    cs.Seal();
    if (cs.empty()) {
      continue;
    }
    b.Row()
        .Cell(std::string(labels[i]))
        .Cell(static_cast<uint64_t>(cs.size()))
        .Cell(cs.Quantile(0.5), 1)
        .Cell(cs.Quantile(0.9), 1);
  }
  std::printf("(b) cold starts vs P2T\n%s\n", b.Render().c_str());

  double max_p2t = 0;
  for (const auto& e : entries) {
    max_p2t = std::max(max_p2t, e.peak_to_trough);
  }
  std::printf("max observed P2T: %.0f (paper: >1000)\n", max_p2t);
  return 0;
}
