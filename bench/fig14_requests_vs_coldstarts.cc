// Figure 14: total requests per function vs number of cold starts, colored by
// trigger type (Region 2).
#include <cmath>

#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 14", "requests vs cold starts per function (R2)",
      "infrequently invoked functions sit on the 1-request=1-cold-start diagonal, "
      "mostly timers; functions above ~1 request/min fall below the diagonal thanks "
      "to the 60s keep-alive");
  const auto result = bench::LoadPaperTrace();

  const auto entries = analysis::ComputeRequestsVsColdStarts(result.store, /*region=*/1);
  const double days = static_cast<double>(result.store.horizon()) / kDay;

  // Decade-binned summary of the scatter.
  TextTable t({"total requests decade", "functions", "median cs/request", "frac on diagonal",
               "timer frac of diagonal"});
  for (int decade = 0; decade <= 6; ++decade) {
    const double lo = std::pow(10.0, decade);
    const double hi = std::pow(10.0, decade + 1);
    stats::Ecdf ratio;
    size_t n = 0, diagonal = 0, diagonal_timers = 0;
    for (const auto& e : entries) {
      const double req = static_cast<double>(e.total_requests);
      if (req < lo || req >= hi) {
        continue;
      }
      ++n;
      ratio.Add(static_cast<double>(e.cold_starts) / req);
      if (e.cold_starts >= e.total_requests * 95 / 100) {
        ++diagonal;
        if (e.trigger == trace::TriggerGroup::kTimerA) {
          ++diagonal_timers;
        }
      }
    }
    ratio.Seal();
    if (n == 0) {
      continue;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "[1e%d, 1e%d)", decade, decade + 1);
    t.Row()
        .Cell(std::string(label))
        .Cell(static_cast<uint64_t>(n))
        .Cell(ratio.Quantile(0.5), 3)
        .Cell(static_cast<double>(diagonal) / static_cast<double>(n), 3)
        .Cell(diagonal > 0 ? static_cast<double>(diagonal_timers) /
                                 static_cast<double>(diagonal)
                           : 0.0,
              3);
  }
  std::printf("%s\n", t.Render().c_str());

  // The keep-alive knee: compare cs/request above and below 1 request/minute.
  stats::Ecdf below_knee, above_knee;
  for (const auto& e : entries) {
    const double per_day = static_cast<double>(e.total_requests) / days;
    const double ratio = static_cast<double>(e.cold_starts) /
                         static_cast<double>(e.total_requests);
    if (per_day >= 1440) {
      above_knee.Add(ratio);
    } else if (per_day <= 144) {
      below_knee.Add(ratio);
    }
  }
  below_knee.Seal();
  above_knee.Seal();
  std::printf("median cold-starts-per-request: rare functions (<=1/10min): %.3f, hot "
              "functions (>=1/min): %.3f (paper: hot functions fall well below 1)\n",
              below_knee.Quantile(0.5), above_knee.Quantile(0.5));
  return 0;
}
