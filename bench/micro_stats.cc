// Micro-benchmarks of the statistics kernels (google-benchmark).
#include <benchmark/benchmark.h>

#include "stats/correlation.h"
#include "stats/distributions.h"
#include "stats/ecdf.h"
#include "stats/fitting.h"
#include "stats/timeseries.h"

using namespace coldstart;

namespace {

std::vector<double> LogNormalSamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  const stats::LogNormalParams p{0.0, 1.0};
  std::vector<double> v(n);
  for (auto& x : v) {
    x = p.Sample(rng);
  }
  return v;
}

}  // namespace

static void BM_EcdfBuildQuery(benchmark::State& state) {
  const auto samples = LogNormalSamples(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    stats::Ecdf ecdf(samples);
    benchmark::DoNotOptimize(ecdf.Quantile(0.99));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EcdfBuildQuery)->Arg(1024)->Arg(262144);

static void BM_SpearmanCorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = LogNormalSamples(n, 5);
  const auto y = LogNormalSamples(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::SpearmanCorrelation(x, y).rho);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpearmanCorrelation)->Arg(1024)->Arg(44640);

static void BM_WeibullMleFit(benchmark::State& state) {
  Rng rng(9);
  const stats::WeibullParams p{0.7, 1.5};
  std::vector<double> samples(static_cast<size_t>(state.range(0)));
  for (auto& x : samples) {
    x = p.Sample(rng);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::FitWeibullMle(samples).shape);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WeibullMleFit)->Arg(4096)->Arg(65536);

static void BM_MovingAverage(benchmark::State& state) {
  const auto series = LogNormalSamples(44640, 13);  // A month of minutes.
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::MovingAverage(series, 61).size());
  }
  state.SetItemsProcessed(state.iterations() * 44640);
}
BENCHMARK(BM_MovingAverage);

static void BM_LogNormalSampling(benchmark::State& state) {
  Rng rng(17);
  const stats::LogNormalParams p{1.0, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogNormalSampling);

BENCHMARK_MAIN();
