// Figure 7: allocated pods and CPU around the holiday (days 10-27, normalized to the
// pre-holiday maximum).
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 7", "holiday effect on pods and CPU",
      "R1/R2/R4/R5 peak on day 13 (last workday), dip during the holiday (days 14-23) "
      "and rebound on day 24; R3 instead rises during the holiday");
  const auto result = bench::LoadPaperTrace();

  const int first = 10, last = 27, holiday_first = 14;
  const auto series = analysis::ComputeHolidayEffect(result.store, first, last, holiday_first);

  TextTable pods({"day", "R1 pods", "R2 pods", "R3 pods", "R4 pods", "R5 pods"});
  TextTable cpu({"day", "R1 cpu", "R2 cpu", "R3 cpu", "R4 cpu", "R5 cpu"});
  for (int day = first; day <= last; ++day) {
    const size_t i = static_cast<size_t>(day - first);
    pods.Row().Cell(static_cast<int64_t>(day));
    cpu.Row().Cell(static_cast<int64_t>(day));
    for (const auto& s : series) {
      pods.Cell(i < s.pods_normalized.size() ? s.pods_normalized[i] : 0.0, 3);
      cpu.Cell(i < s.cpu_normalized.size() ? s.cpu_normalized[i] : 0.0, 3);
    }
  }
  std::printf("(a) normalized allocated pods per day\n%s\n", pods.Render().c_str());
  std::printf("(b) normalized allocated CPU per day\n%s\n", cpu.Render().c_str());

  // Shape checks: dip regions drop during the holiday; R3 rises.
  auto mean_over = [&](const std::vector<double>& v, int from_day, int to_day) {
    double sum = 0;
    int n = 0;
    for (int d = from_day; d <= to_day; ++d) {
      const size_t i = static_cast<size_t>(d - first);
      if (i < v.size()) {
        sum += v[i];
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  for (const auto& s : series) {
    const double before = mean_over(s.pods_normalized, 10, 13);
    const double during = mean_over(s.pods_normalized, 15, 22);
    std::printf("%s: pods before=%.3f during=%.3f -> %s\n",
                trace::RegionName(s.region).c_str(), before, during,
                during < before ? "dip" : "rise");
  }
  return 0;
}
