// Ablation A6: workflow call-chain prewarming.
//
// §5: "Workflow function calls can be predicted using previous function calls...
// workflows account for 20% of cold starts" and are synchronous with strict SLOs.
// Metric: workflow-triggered cold starts and their latency. Both scenario
// evaluations run concurrently on the ParallelSweep work queue.
#include "bench/abl_util.h"

using namespace coldstart;

namespace {

// Cold starts of workflow-triggered functions + their median latency.
std::pair<int64_t, double> WorkflowColdStarts(const trace::TraceStore& store) {
  stats::Ecdf latency;
  for (const auto& c : store.cold_starts()) {
    const auto& f = store.function(c.function_id);
    const auto g = trace::GroupOf(f.primary_trigger);
    if (g == trace::TriggerGroup::kWorkflowS ||
        f.primary_trigger == trace::Trigger::kWorkflowAsync) {
      latency.Add(ToSeconds(c.cold_start_us));
    }
  }
  latency.Seal();
  return {static_cast<int64_t>(latency.size()), latency.Quantile(0.5)};
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation A6", "workflow chain prewarming",
                     "downstream functions can be prewarmed when upstream calls start, "
                     "hiding the child's cold start behind the parent's execution");
  const core::ScenarioConfig config = bench::AblationScenario();

  std::vector<std::pair<int64_t, double>> wf(2);
  const std::vector<bench::AblationJob> jobs = {
      {"baseline", nullptr,
       [&wf](const core::ExperimentResult& result, platform::PlatformPolicy*) {
         wf[0] = WorkflowColdStarts(result.store);
       }},
      {"workflow prewarm",
       [] { return std::make_unique<policy::WorkflowPrewarmPolicy>(); },
       [&wf](const core::ExperimentResult& result, platform::PlatformPolicy*) {
         wf[1] = WorkflowColdStarts(result.store);
       }},
  };
  const std::vector<bench::AblationRow> rows = bench::RunAblationSweep(config, jobs);

  bench::PrintRows(rows);
  std::printf("\nworkflow-triggered cold starts: baseline %lld (median %.2fs) vs "
              "prewarmed %lld (median %.2fs)\n",
              static_cast<long long>(wf[0].first), wf[0].second,
              static_cast<long long>(wf[1].first), wf[1].second);
  return 0;
}
