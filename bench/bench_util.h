// Shared helpers for the figure/table reproduction harnesses.
//
// Every figXX/tabXX binary loads the same cached paper scenario (31 days, 5 regions,
// seed 42); the first binary to run simulates it (~10 s) and the rest load the binary
// cache. PrintHeader standardizes the "what the paper reports vs. what we measure"
// preamble that EXPERIMENTS.md quotes.
#ifndef COLDSTART_BENCH_BENCH_UTIL_H_
#define COLDSTART_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "core/coldstart_lab.h"

namespace coldstart::bench {

inline core::ExperimentResult LoadPaperTrace() {
  core::Experiment experiment(core::PaperScenario());
  core::ExperimentResult result =
      experiment.RunCached(core::Experiment::DefaultCacheDir());
  std::printf("[trace] %zu requests, %zu cold starts, %zu pods, %zu functions%s\n\n",
              result.store.requests().size(), result.store.cold_starts().size(),
              result.store.pods().size(), result.store.functions().size(),
              result.from_cache ? " (from cache)" : " (fresh simulation)");
  return result;
}

// A reduced scenario for the policy ablations (policies cannot reuse the cache).
inline core::ScenarioConfig AblationScenario() {
  core::ScenarioConfig config;
  config.days = 10;
  config.scale = 0.5;
  config.record_requests = false;  // Ablation metrics come from cold starts + pods.
  return config;
}

inline void PrintHeader(const std::string& experiment_id, const std::string& title,
                        const std::string& paper_claim) {
  std::printf("=== %s: %s ===\n", experiment_id.c_str(), title.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

// Total pod-seconds (resource cost proxy) per region over the trace.
inline double PodSeconds(const trace::TraceStore& store, int region) {
  double total = 0;
  for (const auto& p : store.pods()) {
    if (region >= 0 && static_cast<int>(p.region) != region) {
      continue;
    }
    total += ToSeconds(p.death_time - p.cold_start_begin);
  }
  return total;
}

}  // namespace coldstart::bench

#endif  // COLDSTART_BENCH_BENCH_UTIL_H_
