// Figure 1: number of requests, functions, and pods for all five regions.
#include <cmath>

#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 1", "region sizes (requests vs functions vs pods)",
      "functions 1e2..1e4; requests spanning several orders of magnitude with R1 "
      "largest; more functions does not imply more requests or pods");
  const auto result = bench::LoadPaperTrace();

  TextTable t({"region", "functions", "requests", "pods", "users",
               "log10(requests)", "requests/function"});
  const auto sizes = analysis::ComputeRegionSizes(result.store);
  for (const auto& s : sizes) {
    t.Row()
        .Cell(trace::RegionName(s.region))
        .Cell(s.functions)
        .Cell(s.requests)
        .Cell(s.pods)
        .Cell(s.users)
        .Cell(std::log10(static_cast<double>(std::max<uint64_t>(1, s.requests))), 2)
        .Cell(static_cast<double>(s.requests) /
                  static_cast<double>(std::max<uint64_t>(1, s.functions)),
              1);
  }
  std::printf("%s\n", t.Render().c_str());

  // Shape checks the paper makes in prose.
  const bool r1_most_requests =
      sizes[0].requests > sizes[1].requests && sizes[0].requests > sizes[2].requests &&
      sizes[0].requests > sizes[3].requests && sizes[0].requests > sizes[4].requests;
  const bool r4_more_functions_fewer_requests =
      sizes[3].functions > sizes[0].functions && sizes[3].requests < sizes[0].requests;
  std::printf("check: R1 has the most requests: %s\n", r1_most_requests ? "yes" : "NO");
  std::printf("check: more functions !=> more requests (R4 vs R1): %s\n",
              r4_more_functions_fewer_requests ? "yes" : "NO");
  return 0;
}
