// Figure 10: cold-start time CDFs with a LogNormal fit, and cold-start inter-arrival
// CDFs with a Weibull fit.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 10", "cold-start time and inter-arrival distributions + fits",
      "per-region cold-start medians 0.1-2s with long tails; pooled times ~ LogNormal "
      "(mean 3.24, sd 7.10); pooled inter-arrival ~ Weibull (mean 1.25, sd 3.66); IAT "
      "medians from ~0.1s (R1) to seconds (R3) -- our IATs scale with trace volume");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  TextTable a(analysis::QuantileHeaders("cold start time (s)"));
  const auto cs_cdfs = analysis::ColdStartTimeCdfs(store);
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(a, trace::RegionName(static_cast<trace::RegionId>(r)),
                             cs_cdfs[static_cast<size_t>(r)]);
  }
  analysis::AddQuantileRow(a, "all", cs_cdfs.back());
  std::printf("(a) cold start times per region\n%s\n", a.Render().c_str());

  TextTable c(analysis::QuantileHeaders("inter-arrival time (s)"));
  const auto iat_cdfs = analysis::ColdStartInterArrivalCdfs(store);
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(c, trace::RegionName(static_cast<trace::RegionId>(r)),
                             iat_cdfs[static_cast<size_t>(r)]);
  }
  analysis::AddQuantileRow(c, "all", iat_cdfs.back());
  std::printf("(c) cold start inter-arrival times per region\n%s\n", c.Render().c_str());

  const auto fits = analysis::FitColdStartDistributions(store);
  std::printf("(b) LogNormal fit over pooled cold-start times:\n");
  std::printf("    mu=%.3f sigma=%.3f -> fitted mean=%.2fs sd=%.2fs (paper: 3.24 / 7.10)\n",
              fits.cold_start_lognormal.mu, fits.cold_start_lognormal.sigma,
              fits.cold_start_mean, fits.cold_start_stddev);
  std::printf("    K-S distance: %.4f\n\n", fits.cold_start_quality.ks_distance);

  std::printf("(d) Weibull fit over pooled inter-arrival times:\n");
  std::printf("    shape=%.3f scale=%.3f -> fitted mean=%.2fs sd=%.2fs (paper: 1.25 / 3.66)\n",
              fits.iat_weibull.shape, fits.iat_weibull.scale, fits.iat_mean,
              fits.iat_stddev);
  std::printf("    K-S distance: %.4f\n\n", fits.iat_quality.ks_distance);

  // Fit-vs-empirical curves at a few probe points.
  TextTable probe({"x (s)", "empirical CDF (times)", "LogNormal fit", "empirical CDF (IAT)",
                   "Weibull fit"});
  for (const double x : {0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 100.0}) {
    probe.Row()
        .Cell(x, 2)
        .Cell(cs_cdfs.back().CdfAt(x), 4)
        .Cell(fits.cold_start_lognormal.Cdf(x), 4)
        .Cell(iat_cdfs.back().CdfAt(x), 4)
        .Cell(fits.iat_weibull.Cdf(x), 4);
  }
  std::printf("%s", probe.Render().c_str());
  return 0;
}
