// Shared reporting + parallel execution for the policy ablation benches.
#ifndef COLDSTART_BENCH_ABL_UTIL_H_
#define COLDSTART_BENCH_ABL_UTIL_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <numeric>
#include <string>

#include "bench/bench_util.h"

namespace coldstart::bench {

struct AblationRow {
  std::string name;
  int64_t cold_starts = 0;
  double p50_cold_start_s = 0;
  double p99_cold_start_s = 0;
  int64_t prewarm_spawns = 0;
  int64_t delayed = 0;
  int64_t scratch = 0;
  double pod_hours = 0;
};

inline AblationRow Summarize(const std::string& name,
                             const core::ExperimentResult& result) {
  AblationRow row;
  row.name = name;
  row.cold_starts = std::accumulate(result.visible_cold_starts.begin(),
                                    result.visible_cold_starts.end(), int64_t{0});
  row.prewarm_spawns = std::accumulate(result.prewarm_spawns.begin(),
                                       result.prewarm_spawns.end(), int64_t{0});
  row.delayed = std::accumulate(result.delayed_allocations.begin(),
                                result.delayed_allocations.end(), int64_t{0});
  row.scratch = std::accumulate(result.scratch_allocations.begin(),
                                result.scratch_allocations.end(), int64_t{0});
  const auto cdfs = analysis::ColdStartTimeCdfs(result.store);
  row.p50_cold_start_s = cdfs.back().Quantile(0.5);
  row.p99_cold_start_s = cdfs.back().Quantile(0.99);
  row.pod_hours = PodSeconds(result.store, -1) / 3600.0;
  return row;
}

// One scenario evaluation of an ablation sweep: the job builds its own policy (so
// each runs isolated on its worker thread), and `inspect` — called on the worker
// after the run — extracts any extra metric from the result or the policy's
// counters before the row is summarized.
struct AblationJob {
  std::string name;
  // nullptr-returning (or empty) factory = baseline run without a policy.
  std::function<std::unique_ptr<platform::PlatformPolicy>()> make_policy;
  std::function<void(const core::ExperimentResult&, platform::PlatformPolicy*)> inspect;
};

// Runs every job on one ParallelSweep work queue: idle workers claim the next
// unclaimed scenario, and each experiment is handed a fixed thread budget
// (pool size / job count, computed up front) for its own region shards. The
// split is static — threads freed by early-finishing jobs are not redistributed
// to still-running experiments.
inline std::vector<AblationRow> RunAblationSweep(const core::ScenarioConfig& config,
                                                 const std::vector<AblationJob>& jobs) {
  std::vector<AblationRow> rows(jobs.size());
  core::ParallelSweep sweep;
  const int inner_threads =
      std::max(1, sweep.num_threads() / static_cast<int>(jobs.size()));
  for (size_t i = 0; i < jobs.size(); ++i) {
    sweep.Add([&config, &jobs, &rows, inner_threads, i] {
      const AblationJob& job = jobs[i];
      std::unique_ptr<platform::PlatformPolicy> policy =
          job.make_policy ? job.make_policy() : nullptr;
      core::Experiment experiment(config);
      const core::ExperimentResult result = experiment.Run(policy.get(), inner_threads);
      if (job.inspect) {
        job.inspect(result, policy.get());
      }
      rows[i] = Summarize(job.name, result);
    });
  }
  sweep.Run();
  return rows;
}

inline void PrintRows(const std::vector<AblationRow>& rows) {
  TextTable t({"policy", "user-visible cold starts", "p50 (s)", "p99 (s)",
               "prewarm spawns", "delayed reqs", "pool misses", "pod-hours"});
  for (const auto& r : rows) {
    t.Row()
        .Cell(r.name)
        .Cell(r.cold_starts)
        .Cell(r.p50_cold_start_s, 3)
        .Cell(r.p99_cold_start_s, 3)
        .Cell(r.prewarm_spawns)
        .Cell(r.delayed)
        .Cell(r.scratch)
        .Cell(r.pod_hours, 1);
  }
  std::printf("%s", t.Render().c_str());
}

}  // namespace coldstart::bench

#endif  // COLDSTART_BENCH_ABL_UTIL_H_
