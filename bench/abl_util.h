// Shared reporting for the policy ablation benches.
#ifndef COLDSTART_BENCH_ABL_UTIL_H_
#define COLDSTART_BENCH_ABL_UTIL_H_

#include <numeric>
#include <string>

#include "bench/bench_util.h"

namespace coldstart::bench {

struct AblationRow {
  std::string name;
  int64_t cold_starts = 0;
  double p50_cold_start_s = 0;
  double p99_cold_start_s = 0;
  int64_t prewarm_spawns = 0;
  int64_t delayed = 0;
  int64_t scratch = 0;
  double pod_hours = 0;
};

inline AblationRow Summarize(const std::string& name,
                             const core::ExperimentResult& result) {
  AblationRow row;
  row.name = name;
  row.cold_starts = std::accumulate(result.visible_cold_starts.begin(),
                                    result.visible_cold_starts.end(), int64_t{0});
  row.prewarm_spawns = std::accumulate(result.prewarm_spawns.begin(),
                                       result.prewarm_spawns.end(), int64_t{0});
  row.delayed = std::accumulate(result.delayed_allocations.begin(),
                                result.delayed_allocations.end(), int64_t{0});
  row.scratch = std::accumulate(result.scratch_allocations.begin(),
                                result.scratch_allocations.end(), int64_t{0});
  const auto cdfs = analysis::ColdStartTimeCdfs(result.store);
  row.p50_cold_start_s = cdfs.back().Quantile(0.5);
  row.p99_cold_start_s = cdfs.back().Quantile(0.99);
  row.pod_hours = PodSeconds(result.store, -1) / 3600.0;
  return row;
}

inline void PrintRows(const std::vector<AblationRow>& rows) {
  TextTable t({"policy", "user-visible cold starts", "p50 (s)", "p99 (s)",
               "prewarm spawns", "delayed reqs", "pool misses", "pod-hours"});
  for (const auto& r : rows) {
    t.Row()
        .Cell(r.name)
        .Cell(r.cold_starts)
        .Cell(r.p50_cold_start_s, 3)
        .Cell(r.p99_cold_start_s, 3)
        .Cell(r.prewarm_spawns)
        .Cell(r.delayed)
        .Cell(r.scratch)
        .Cell(r.pod_hours, 1);
  }
  std::printf("%s", t.Render().c_str());
}

}  // namespace coldstart::bench

#endif  // COLDSTART_BENCH_ABL_UTIL_H_
