// Figure 4: functions per user and requests per user, per region.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 4", "per-user CDFs",
      "60-90% of users own a single function (almost all < 20); request volume is more "
      "concentrated in fewer users in smaller regions (R1: ~30% of users above 1000 "
      "requests; R4: <5%)");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  TextTable a(analysis::QuantileHeaders("functions per user"));
  TextTable single({"region", "frac users with 1 function", "frac users < 20 functions"});
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto ecdf = analysis::FunctionsPerUser(store, r);
    analysis::AddQuantileRow(a, trace::RegionName(static_cast<trace::RegionId>(r)), ecdf);
    single.Row()
        .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
        .Cell(ecdf.CdfAt(1.0), 4)
        .Cell(ecdf.CdfAt(19.0), 4);
  }
  std::printf("(a) functions per user\n%s\n%s\n", a.Render().c_str(),
              single.Render().c_str());

  TextTable b(analysis::QuantileHeaders("requests per user"));
  TextTable conc({"region", "frac users > 1000 requests"});
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto ecdf = analysis::RequestsPerUser(store, r);
    analysis::AddQuantileRow(b, trace::RegionName(static_cast<trace::RegionId>(r)), ecdf);
    conc.Row()
        .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
        .Cell(1.0 - ecdf.CdfAt(1000.0), 4);
  }
  std::printf("(b) requests per user\n%s\n%s", b.Render().c_str(), conc.Render().c_str());
  return 0;
}
