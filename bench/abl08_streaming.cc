// ABL08 — Streaming vs full-trace recording: what the TraceSink split buys.
//
// Runs the identical scenario twice — once folding records into
// StreamingAggregates (TraceMode::kStreaming), once materializing the exact
// TraceStore (kFull) — and quantifies the cost of full materialization: trace
// memory that grows linearly with simulated time vs a fixed ~100s-of-KB sink,
// and the wall-clock overhead of appending/sealing hundreds of MB of records.
// The paper's month of 85B requests (and anything longer) only fits the
// streaming side; the statistics agree to the last bit (pinned by sink_test).
//
// Usage: bench_abl08_streaming [days] [scale]
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/rusage.h"
#include "trace/streaming_aggregates.h"

using namespace coldstart;

namespace {

size_t StoreBytes(const trace::TraceStore& store) {
  return store.requests().capacity() * sizeof(trace::RequestRecord) +
         store.cold_starts().capacity() * sizeof(trace::ColdStartRecord) +
         store.pods().capacity() * sizeof(trace::PodLifetimeRecord) +
         store.functions().capacity() * sizeof(trace::FunctionRecord);
}

}  // namespace

int main(int argc, char** argv) {
  // Strict parsing: this binary gates CI (nonzero exit on a streaming-vs-full
  // mismatch), and a typo'd argument degrading to a 0-day run would pass vacuously.
  int days = 31;
  double scale = 0.3;
  if (argc > 1) {
    const std::optional<int64_t> parsed = ParseInt(argv[1]);
    if (!parsed.has_value() || *parsed < 1 || *parsed > 36500) {
      std::fprintf(stderr, "abl08: bad days \"%s\" (want 1..36500)\n", argv[1]);
      return 2;
    }
    days = static_cast<int>(*parsed);
  }
  if (argc > 2) {
    const std::optional<double> parsed = ParseDouble(argv[2]);
    if (!parsed.has_value() || !(*parsed > 0.0)) {
      std::fprintf(stderr, "abl08: bad scale \"%s\" (want > 0)\n", argv[2]);
      return 2;
    }
    scale = *parsed;
  }

  bench::PrintHeader(
      "ABL08", "streaming trace sink vs full trace materialization",
      "analyses over a month of 85B requests assume bounded-memory telemetry; a "
      "post-hoc full-trace pass cannot scale to it");

  core::ScenarioConfig config;
  config.days = days;
  config.scale = scale;
  std::printf("scenario: %d days at %.2fx scale\n\n", days, scale);

  // Streaming first: peak RSS is process-monotonic, so the smaller run must be
  // measured before the full-trace run inflates the high-water mark.
  config.trace_mode = core::TraceMode::kStreaming;
  const core::ExperimentResult streaming = core::Experiment(config).Run();
  const double streaming_rss = PeakRssMb();

  config.trace_mode = core::TraceMode::kFull;
  const core::ExperimentResult full = core::Experiment(config).Run();
  const double full_rss = PeakRssMb();

  TextTable t({"mode", "wall (s)", "Mevents/s", "trace memory (MB)",
               "peak RSS (MB)"});
  t.Row()
      .Cell("streaming")
      .Cell(streaming.sim_wall_seconds, 2)
      .Cell(static_cast<double>(streaming.events_processed) / 1e6 /
                streaming.sim_wall_seconds,
            2)
      .Cell(static_cast<double>(streaming.streaming.ApproxBytes()) / 1e6, 3)
      .Cell(streaming_rss, 1);
  t.Row()
      .Cell("full")
      .Cell(full.sim_wall_seconds, 2)
      .Cell(static_cast<double>(full.events_processed) / 1e6 /
                full.sim_wall_seconds,
            2)
      .Cell(static_cast<double>(StoreBytes(full.store)) / 1e6, 3)
      .Cell(full_rss, 1);
  std::printf("%s\n", t.Render().c_str());

  // The two modes are the same simulation; cross-check a few invariants here
  // (sink_test pins the full field-wise equality).
  const trace::StreamingAggregates derived = trace::AggregatesFromStore(full.store);
  const trace::StreamCounters a = streaming.streaming.Totals();
  const trace::StreamCounters b = derived.Totals();
  const bool identical = a.requests == b.requests &&
                         a.cold_starts == b.cold_starts &&
                         a.cold_start_latency_sum_us == b.cold_start_latency_sum_us;
  std::printf("cross-check: requests %llu/%llu, cold starts %llu/%llu, "
              "latency sum %llu/%llu us %s\n",
              static_cast<unsigned long long>(a.requests),
              static_cast<unsigned long long>(b.requests),
              static_cast<unsigned long long>(a.cold_starts),
              static_cast<unsigned long long>(b.cold_starts),
              static_cast<unsigned long long>(a.cold_start_latency_sum_us),
              static_cast<unsigned long long>(b.cold_start_latency_sum_us),
              identical ? "(identical)" : "(MISMATCH)");
  std::printf("trace memory ratio full/streaming: %.0fx; full-trace memory grows "
              "linearly with days, the streaming sink does not.\n",
              static_cast<double>(StoreBytes(full.store)) /
                  static_cast<double>(streaming.streaming.ApproxBytes()));
  // CI runs this as a smoke step: a divergence must fail the step, not just print.
  return identical ? 0 : 1;
}
