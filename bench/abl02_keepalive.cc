// Ablation A2: dynamic keep-alive vs the fixed 60s production default.
//
// §5: "for functions running on timers less frequent than 1 minute, a keep alive time
// of 1 minute is unnecessary and wasteful. Cloud providers may consider a dynamic
// keep-alive time". The trade is cold starts vs pod-hours.
#include "bench/abl_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Ablation A2", "dynamic keep-alive",
                     "extend keep-alive for functions returning just outside 60s; "
                     "release pods early for functions with much longer gaps");
  const core::ScenarioConfig config = bench::AblationScenario();
  std::vector<bench::AblationRow> rows;

  {
    core::Experiment experiment(config);
    rows.push_back(bench::Summarize("fixed 60s keep-alive", experiment.Run()));
  }
  {
    policy::DynamicKeepAlivePolicy dynamic;
    core::Experiment experiment(config);
    rows.push_back(bench::Summarize("dynamic keep-alive", experiment.Run(&dynamic)));
  }
  {
    policy::DynamicKeepAlivePolicy::Options aggressive;
    aggressive.max_keep_alive = 3 * kMinute;
    aggressive.headroom = 1.1;
    policy::DynamicKeepAlivePolicy dynamic(aggressive);
    core::Experiment experiment(config);
    rows.push_back(bench::Summarize("dynamic (tight cap 3min)", experiment.Run(&dynamic)));
  }

  bench::PrintRows(rows);
  const double cs_delta = 1.0 - static_cast<double>(rows[1].cold_starts) /
                                    static_cast<double>(rows[0].cold_starts);
  const double pod_delta =
      rows[1].pod_hours / rows[0].pod_hours - 1.0;
  std::printf("\ndynamic keep-alive: cold starts %+.1f%%, pod-hours %+.1f%%\n",
              -100.0 * cs_delta, 100.0 * pod_delta);
  return 0;
}
