// Ablation A2: dynamic keep-alive vs the fixed 60s production default.
//
// §5: "for functions running on timers less frequent than 1 minute, a keep alive time
// of 1 minute is unnecessary and wasteful. Cloud providers may consider a dynamic
// keep-alive time". The trade is cold starts vs pod-hours. The three scenario
// evaluations run concurrently on the ParallelSweep work queue.
#include "bench/abl_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Ablation A2", "dynamic keep-alive",
                     "extend keep-alive for functions returning just outside 60s; "
                     "release pods early for functions with much longer gaps");
  const core::ScenarioConfig config = bench::AblationScenario();

  const std::vector<bench::AblationJob> jobs = {
      {"fixed 60s keep-alive", nullptr, nullptr},
      {"dynamic keep-alive",
       [] { return std::make_unique<policy::DynamicKeepAlivePolicy>(); }, nullptr},
      {"dynamic (tight cap 3min)",
       [] {
         policy::DynamicKeepAlivePolicy::Options aggressive;
         aggressive.max_keep_alive = 3 * kMinute;
         aggressive.headroom = 1.1;
         return std::make_unique<policy::DynamicKeepAlivePolicy>(aggressive);
       },
       nullptr},
  };
  const std::vector<bench::AblationRow> rows = bench::RunAblationSweep(config, jobs);

  bench::PrintRows(rows);
  const double cs_delta = 1.0 - static_cast<double>(rows[1].cold_starts) /
                                    static_cast<double>(rows[0].cold_starts);
  const double pod_delta =
      rows[1].pod_hours / rows[0].pod_hours - 1.0;
  std::printf("\ndynamic keep-alive: cold starts %+.1f%%, pod-hours %+.1f%%\n",
              -100.0 * cs_delta, 100.0 * pod_delta);
  return 0;
}
