// Figure 9: trigger-type mix per runtime in Region 2.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 9", "trigger types by runtime (R2)",
      "Python3/PHP7.3/Node.js mostly timer-triggered; Java and http lean APIG-S; "
      "async triggers beyond OBS/timers are most visible in Python2; Custom images "
      "are mostly OBS-triggered");
  const auto result = bench::LoadPaperTrace();

  const auto mix = analysis::TriggerMixByRuntime(result.store, /*region=*/1);
  std::vector<std::string> headers = {"runtime"};
  for (int g = 0; g < trace::kNumTriggerGroups; ++g) {
    headers.push_back(trace::TriggerGroupName(static_cast<trace::TriggerGroup>(g)));
  }
  TextTable t(headers);
  for (int r = 0; r < trace::kNumRuntimes; ++r) {
    t.Row().Cell(trace::RuntimeName(static_cast<trace::Runtime>(r)));
    for (int g = 0; g < trace::kNumTriggerGroups; ++g) {
      t.Cell(mix[static_cast<size_t>(r)][static_cast<size_t>(g)], 3);
    }
  }
  std::printf("%s\n", t.Render().c_str());

  const auto timer_of = [&](trace::Runtime r) {
    return mix[static_cast<size_t>(r)][static_cast<size_t>(trace::TriggerGroup::kTimerA)];
  };
  const auto apig_of = [&](trace::Runtime r) {
    return mix[static_cast<size_t>(r)][static_cast<size_t>(trace::TriggerGroup::kApigS)];
  };
  const auto obs_of = [&](trace::Runtime r) {
    return mix[static_cast<size_t>(r)][static_cast<size_t>(trace::TriggerGroup::kObsA)];
  };
  std::printf("checks: Python3 timer share %.2f (>0.5 expected); Java APIG-S %.2f "
              "(largest for Java); http APIG-S %.2f; Custom OBS %.2f (dominant)\n",
              timer_of(trace::Runtime::kPython3), apig_of(trace::Runtime::kJava),
              apig_of(trace::Runtime::kHttp), obs_of(trace::Runtime::kCustom));
  return 0;
}
