// Figure 17: pod utility ratio CDFs by runtime and by trigger type (Region 2).
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 17", "pod utility ratio (useful lifetime / cold-start time, R2)",
      "~20% of pods below ratio 1; median ~4; Node.js ~40% below 1; PHP7.3/Java >=70% "
      "below 10; Go1.x ~35% above 100; Custom/http beat several default runtimes; "
      "timers have the lowest ratios among triggers, workflow-S among the highest");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  TextTable a({"runtime", "pods", "frac<1", "frac<10", "frac>100", "median"});
  for (int rt = -1; rt < trace::kNumRuntimes; ++rt) {
    const auto ecdf = analysis::UtilityByRuntime(store, /*region=*/1, rt);
    if (ecdf.empty()) {
      continue;
    }
    a.Row()
        .Cell(rt < 0 ? "all" : trace::RuntimeName(static_cast<trace::Runtime>(rt)))
        .Cell(static_cast<uint64_t>(ecdf.size()))
        .Cell(ecdf.CdfAt(1.0), 3)
        .Cell(ecdf.CdfAt(10.0), 3)
        .Cell(1.0 - ecdf.CdfAt(100.0), 3)
        .Cell(ecdf.Quantile(0.5), 2);
  }
  std::printf("(a) utility ratio by runtime\n%s\n", a.Render().c_str());

  TextTable b({"trigger", "pods", "frac<1", "frac<10", "frac>100", "median"});
  for (int g = -1; g < trace::kNumTriggerGroups; ++g) {
    const auto ecdf = analysis::UtilityByTrigger(store, /*region=*/1, g);
    if (ecdf.empty()) {
      continue;
    }
    b.Row()
        .Cell(g < 0 ? "all" : trace::TriggerGroupName(static_cast<trace::TriggerGroup>(g)))
        .Cell(static_cast<uint64_t>(ecdf.size()))
        .Cell(ecdf.CdfAt(1.0), 3)
        .Cell(ecdf.CdfAt(10.0), 3)
        .Cell(1.0 - ecdf.CdfAt(100.0), 3)
        .Cell(ecdf.Quantile(0.5), 2);
  }
  std::printf("(b) utility ratio by trigger type\n%s", b.Render().c_str());
  return 0;
}
