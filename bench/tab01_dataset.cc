// Table 1: dataset schema and volumes.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Table 1", "dataset fields and volumes",
                     "request/pod/function streams; 85e9 requests, 11.9e6 cold starts, "
                     "5 regions, 31 days (we run a ~1e-4 volume-scaled month)");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  std::printf("Request level table (%zu rows, 5 regions, %d days)\n",
              store.requests().size(), static_cast<int>(store.horizon() / kDay));
  std::printf("  timestamp(us) | pod ID | cluster | function | user | request ID | "
              "execution time(us) | CPU(millicores) | memory(bytes)\n\n");

  std::printf("Pod level table: cold starts (%zu rows)\n", store.cold_starts().size());
  std::printf("  timestamp(us) | pod ID | cluster | function | user | cold start(us) | "
              "pod alloc(us) | deploy code(us) | deploy dep(us) | scheduling(us)\n\n");

  std::printf("Function level table (%zu rows)\n", store.functions().size());
  std::printf("  function | user | region | runtime | trigger type | CPU-MEM config\n\n");

  std::printf("Pod lifetime table (%zu rows, simulator-side reconstruction aid)\n\n",
              store.pods().size());

  TextTable per_region({"region", "requests", "cold starts", "pods", "functions"});
  for (const auto& s : analysis::ComputeRegionSizes(store)) {
    per_region.Row()
        .Cell(trace::RegionName(s.region))
        .Cell(s.requests)
        .Cell(s.cold_starts)
        .Cell(s.pods)
        .Cell(s.functions);
  }
  std::printf("%s", per_region.Render().c_str());
  return 0;
}
