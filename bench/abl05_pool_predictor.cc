// Ablation A5: predictive resource-pool sizing.
//
// §5 "Resource pool prediction": pools too small force from-scratch creations (slow);
// pools too large waste reserved capacity. Compare the static baseline against the
// three forecasters on pool misses and allocation latency.
#include "bench/abl_util.h"

using namespace coldstart;

namespace {

double MeanAllocSeconds(const trace::TraceStore& store) {
  double sum = 0;
  size_t n = 0;
  for (const auto& c : store.cold_starts()) {
    sum += ToSeconds(c.pod_alloc_us);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation A5", "resource pool prediction",
                     "predictable per-config pod demand allows maintaining just enough "
                     "reserved pods without overallocation");
  const core::ScenarioConfig config = bench::AblationScenario();

  std::vector<bench::AblationRow> rows;
  std::vector<double> alloc_means;
  {
    core::Experiment experiment(config);
    auto result = experiment.Run();
    alloc_means.push_back(MeanAllocSeconds(result.store));
    rows.push_back(bench::Summarize("static pools (baseline)", std::move(result)));
  }
  for (const char* kind : {"moving-average", "seasonal-naive", "holt-winters"}) {
    policy::PoolPredictionPolicy::Options opts;
    opts.predictor = kind;
    policy::PoolPredictionPolicy predictor(opts);
    core::Experiment experiment(config);
    auto result = experiment.Run(&predictor);
    alloc_means.push_back(MeanAllocSeconds(result.store));
    rows.push_back(bench::Summarize(kind, std::move(result)));
  }

  bench::PrintRows(rows);
  std::printf("\nmean pod allocation time (s):");
  for (size_t i = 0; i < alloc_means.size(); ++i) {
    std::printf(" %s=%.3f", rows[i].name.c_str(), alloc_means[i]);
  }
  std::printf("\n");
  return 0;
}
