// Ablation A5: predictive resource-pool sizing.
//
// §5 "Resource pool prediction": pools too small force from-scratch creations (slow);
// pools too large waste reserved capacity. Compare the static baseline against the
// three forecasters on pool misses and allocation latency. The four scenario
// evaluations run concurrently on the ParallelSweep work queue.
#include "bench/abl_util.h"

using namespace coldstart;

namespace {

double MeanAllocSeconds(const trace::TraceStore& store) {
  double sum = 0;
  size_t n = 0;
  for (const auto& c : store.cold_starts()) {
    sum += ToSeconds(c.pod_alloc_us);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation A5", "resource pool prediction",
                     "predictable per-config pod demand allows maintaining just enough "
                     "reserved pods without overallocation");
  const core::ScenarioConfig config = bench::AblationScenario();
  const char* kinds[] = {"moving-average", "seasonal-naive", "holt-winters"};

  std::vector<double> alloc_means(4, 0.0);
  std::vector<bench::AblationJob> jobs;
  jobs.push_back({"static pools (baseline)", nullptr,
                  [&alloc_means](const core::ExperimentResult& result,
                                 platform::PlatformPolicy*) {
                    alloc_means[0] = MeanAllocSeconds(result.store);
                  }});
  for (size_t i = 0; i < 3; ++i) {
    const char* kind = kinds[i];
    jobs.push_back({kind,
                    [kind] {
                      policy::PoolPredictionPolicy::Options opts;
                      opts.predictor = kind;
                      return std::make_unique<policy::PoolPredictionPolicy>(opts);
                    },
                    [&alloc_means, i](const core::ExperimentResult& result,
                                      platform::PlatformPolicy*) {
                      alloc_means[i + 1] = MeanAllocSeconds(result.store);
                    }});
  }
  const std::vector<bench::AblationRow> rows = bench::RunAblationSweep(config, jobs);

  bench::PrintRows(rows);
  std::printf("\nmean pod allocation time (s):");
  for (size_t i = 0; i < alloc_means.size(); ++i) {
    std::printf(" %s=%.3f", rows[i].name.c_str(), alloc_means[i]);
  }
  std::printf("\n");
  return 0;
}
