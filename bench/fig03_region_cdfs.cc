// Figure 3: CDFs of requests/day per function, mean execution time per minute, and
// mean CPU usage per minute, for each region.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 3", "per-region workload CDFs",
      "most functions have few requests/day; R1 has ~20% of functions above 1/min vs "
      "~1% in R4 (we report the 1-per-10-min threshold at our 1:10 rate scale); median "
      "exec time 4ms (R5) .. 100ms (R1); median CPU 0.1-0.3 cores");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  TextTable a(analysis::QuantileHeaders("requests/day per function"));
  TextTable thresholds({"region", "frac >= 144/day (1 per 10min)", "frac >= 1440/day"});
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto ecdf = analysis::RequestsPerDayPerFunction(store, r);
    analysis::AddQuantileRow(a, trace::RegionName(static_cast<trace::RegionId>(r)), ecdf);
    thresholds.Row()
        .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
        .Cell(1.0 - ecdf.CdfAt(144.0), 4)
        .Cell(1.0 - ecdf.CdfAt(1440.0), 4);
  }
  std::printf("(a) requests per day per function\n%s\n%s\n", a.Render().c_str(),
              thresholds.Render().c_str());

  TextTable b(analysis::QuantileHeaders("mean exec time/min (s)"));
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(b, trace::RegionName(static_cast<trace::RegionId>(r)),
                             analysis::MeanExecutionTimePerMinute(store, r));
  }
  std::printf("(b) mean execution time per minute\n%s\n", b.Render().c_str());

  TextTable c(analysis::QuantileHeaders("mean CPU usage/min (cores)"));
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(c, trace::RegionName(static_cast<trace::RegionId>(r)),
                             analysis::MeanCpuUsagePerMinute(store, r));
  }
  std::printf("(c) mean CPU usage per minute\n%s", c.Render().c_str());
  return 0;
}
