// ABL09 — Chunked vs materialized arrival generation: the last O(days) term.
//
// The streaming trace sink made *recording* O(1) in simulated time; this
// ablation quantifies what removing the other linear term — the materialized
// exogenous arrival vector (~16 B/request) — buys at 30/90/365-day horizons.
// For each horizon the identical arrival stream is produced twice: drained into
// one eager vector (what WorkloadSource::Arrivals and every pre-stream run
// held for the whole simulation) and pulled as day-batched chunks (what
// Platform::AttachArrivalStream holds now: one day at a time). Both paths draw
// the same RNG sequence, so counts must match exactly; the difference is the
// bytes held and — at long horizons — allocator pressure on the wall clock.
//
// Usage: bench_abl09_chunked_arrivals [scale] [days ...]
//   default: 0.05x scale (the year_scale operating point), horizons 30 90 365.
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/rusage.h"

using namespace coldstart;

namespace {

struct CaseResult {
  int days = 0;
  int64_t arrivals = 0;
  double wall_s = 0;
  size_t held_bytes = 0;    // Vector capacity (eager) or max chunk capacity (chunked).
  double rss_after_mb = 0;  // Process high-water mark after the case ran.
};

CaseResult RunCase(const core::ScenarioConfig& config, bool chunked) {
  CaseResult r;
  r.days = config.days;
  const workload::Calendar calendar = config.MakeCalendar();
  const auto profiles = config.ScaledProfiles();
  const workload::Population pop =
      workload::GeneratePopulation(profiles, config.seed);
  const auto start = std::chrono::steady_clock::now();
  auto stream = config.workload_source().OpenStream(pop, profiles, calendar,
                                                    config.seed);
  if (chunked) {
    workload::ArrivalChunk chunk;
    size_t max_chunk_capacity = 0;
    while (stream->NextChunk(&chunk)) {
      r.arrivals += static_cast<int64_t>(chunk.events.size());
      max_chunk_capacity = std::max(max_chunk_capacity, chunk.events.capacity());
    }
    r.held_bytes = max_chunk_capacity * sizeof(workload::ArrivalEvent);
  } else {
    const auto eager = workload::DrainArrivalStream(*stream);
    r.arrivals = static_cast<int64_t>(eager.size());
    r.held_bytes = eager.capacity() * sizeof(workload::ArrivalEvent);
  }
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                 .count();
  r.rss_after_mb = PeakRssMb();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Strict parsing: this binary gates CI (nonzero exit on a chunked-vs-eager
  // count mismatch), and a typo'd argument degrading to a 0-day run would pass
  // vacuously.
  double scale = 0.05;
  std::vector<int> horizons;
  if (argc > 1) {
    const std::optional<double> parsed = ParseDouble(argv[1]);
    if (!parsed.has_value() || !(*parsed > 0.0)) {
      std::fprintf(stderr, "abl09: bad scale \"%s\" (want > 0)\n", argv[1]);
      return 2;
    }
    scale = *parsed;
  }
  for (int i = 2; i < argc; ++i) {
    const std::optional<int64_t> parsed = ParseInt(argv[i]);
    if (!parsed.has_value() || *parsed < 1 || *parsed > 36500) {
      std::fprintf(stderr, "abl09: bad days \"%s\" (want 1..36500)\n", argv[i]);
      return 2;
    }
    horizons.push_back(static_cast<int>(*parsed));
  }
  if (horizons.empty()) {
    horizons = {30, 90, 365};
  }

  bench::PrintHeader(
      "ABL09", "chunked vs materialized arrival generation",
      "the dataset is a month of 85B requests; sweeping SPES-style mitigation "
      "policies over longer horizons needs arrival memory that does not grow "
      "with the horizon");

  std::printf("scale %.2fx; horizons:", scale);
  for (const int d : horizons) {
    std::printf(" %dd", d);
  }
  std::printf("\n\n");

  // Peak RSS is process-monotonic, so every chunked case (tiny, ~constant) runs
  // before the first materialized case, and materialized cases run in increasing
  // horizon order — each case's reported high-water mark is then its own.
  core::ScenarioConfig config;
  config.scale = scale;
  std::vector<CaseResult> chunked;
  std::vector<CaseResult> eager;
  for (const int days : horizons) {
    config.days = days;
    chunked.push_back(RunCase(config, /*chunked=*/true));
  }
  for (const int days : horizons) {
    config.days = days;
    eager.push_back(RunCase(config, /*chunked=*/false));
  }

  TextTable t({"days", "arrivals", "mode", "held memory (MB)", "wall (s)",
               "Marrivals/s", "peak RSS so far (MB)"});
  bool counts_match = true;
  for (size_t i = 0; i < horizons.size(); ++i) {
    counts_match = counts_match && chunked[i].arrivals == eager[i].arrivals;
    for (const auto* r : {&chunked[i], &eager[i]}) {
      t.Row()
          .Cell(r->days)
          .Cell(r->arrivals)
          .Cell(r == &chunked[i] ? "chunked" : "materialized")
          .Cell(static_cast<double>(r->held_bytes) / 1e6, 3)
          .Cell(r->wall_s, 2)
          .Cell(static_cast<double>(r->arrivals) / 1e6 / r->wall_s, 2)
          .Cell(r->rss_after_mb, 1);
    }
  }
  std::printf("%s\n", t.Render().c_str());

  const auto& big_c = chunked.back();
  const auto& big_e = eager.back();
  std::printf("held-memory ratio at %dd: %.0fx (%.3f MB chunked vs %.1f MB "
              "materialized); chunked holds one day regardless of horizon.\n",
              big_c.days,
              static_cast<double>(big_e.held_bytes) /
                  static_cast<double>(std::max<size_t>(big_c.held_bytes, 1)),
              static_cast<double>(big_c.held_bytes) / 1e6,
              static_cast<double>(big_e.held_bytes) / 1e6);
  std::printf("chunked-vs-materialized arrival counts %s.\n",
              counts_match ? "identical (same RNG stream)" : "MISMATCH");
  // CI runs this as a smoke step: a divergence must fail the step, not just print.
  return counts_match ? 0 : 1;
}
