// Figure 15: cold-start time and component CDFs by runtime language (Region 2).
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 15", "cold starts by runtime (R2)",
      "http cold starts dominated by pod allocation, Node.js by scheduling, Go by "
      "code+dependency deploys; scheduling is the largest component on average; most "
      "runtimes have sub-second medians with long tails, but Custom and http have "
      "medians > 10s");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  const char* letters = "abcde";
  for (int c = 0; c < analysis::kNumColdStartComponents; ++c) {
    const auto component = static_cast<analysis::ColdStartComponent>(c);
    TextTable t(analysis::QuantileHeaders(std::string(analysis::ComponentName(component)) +
                                          " (s)"));
    for (int rt = 0; rt < trace::kNumRuntimes; ++rt) {
      const auto ecdf = analysis::ComponentCdfByRuntime(store, /*region=*/1, rt, component);
      if (ecdf.empty()) {
        continue;
      }
      analysis::AddQuantileRow(t, trace::RuntimeName(static_cast<trace::Runtime>(rt)), ecdf);
    }
    analysis::AddQuantileRow(t, "all",
                             analysis::ComponentCdfByRuntime(store, 1, -1, component));
    std::printf("(%c) %s\n%s\n", letters[c], analysis::ComponentName(component),
                t.Render().c_str());
  }

  // Per-runtime dominant component (medians).
  TextTable dom({"runtime", "median alloc", "median code", "median dep", "median sched",
                 "dominant"});
  for (int rt = 0; rt < trace::kNumRuntimes; ++rt) {
    const double alloc =
        analysis::ComponentCdfByRuntime(store, 1, rt, analysis::ColdStartComponent::kPodAlloc)
            .Quantile(0.5);
    const double code =
        analysis::ComponentCdfByRuntime(store, 1, rt, analysis::ColdStartComponent::kDeployCode)
            .Quantile(0.5);
    const double dep =
        analysis::ComponentCdfByRuntime(store, 1, rt, analysis::ColdStartComponent::kDeployDep)
            .Quantile(0.5);
    const double sched =
        analysis::ComponentCdfByRuntime(store, 1, rt, analysis::ColdStartComponent::kScheduling)
            .Quantile(0.5);
    if (alloc + code + dep + sched <= 0) {
      continue;
    }
    const double values[4] = {alloc, code, dep, sched};
    const char* names[4] = {"alloc", "code", "dep", "sched"};
    int best = 0;
    for (int i = 1; i < 4; ++i) {
      if (values[i] > values[best]) {
        best = i;
      }
    }
    dom.Row()
        .Cell(trace::RuntimeName(static_cast<trace::Runtime>(rt)))
        .Cell(alloc, 4)
        .Cell(code, 4)
        .Cell(dep, 4)
        .Cell(sched, 4)
        .Cell(std::string(names[best]));
  }
  std::printf("%s", dom.Render().c_str());
  return 0;
}
