// Ablation A3: asynchronous peak shaving.
//
// §3.3: "Given the narrow peak widths, even a short delay could significantly reduce
// peak pod allocations." Metric: the peak of the per-minute cold-start series (the
// paper's pod-allocation peak), against the number of delayed admissions. The three
// scenario evaluations run concurrently on the ParallelSweep work queue.
#include <algorithm>

#include "bench/abl_util.h"
#include "trace/aggregate.h"

using namespace coldstart;

namespace {

double PeakPerMinuteColdStarts(const trace::TraceStore& store) {
  const auto series = trace::ColdStartCountSeries(store, -1, kMinute);
  return *std::max_element(series.begin(), series.end());
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation A3", "async peak shaving",
                     "delaying non-latency-critical async allocations flattens the "
                     "peak without touching synchronous traffic");
  const core::ScenarioConfig config = bench::AblationScenario();
  const SimDuration delays[] = {30 * kSecond, 2 * kMinute};

  std::vector<double> peaks(3, 0.0);
  std::vector<bench::AblationJob> jobs;
  jobs.push_back({"baseline", nullptr,
                  [&peaks](const core::ExperimentResult& result,
                           platform::PlatformPolicy*) {
                    peaks[0] = PeakPerMinuteColdStarts(result.store);
                  }});
  for (size_t i = 0; i < 2; ++i) {
    const SimDuration max_delay = delays[i];
    char name[64];
    std::snprintf(name, sizeof(name), "peak shaving (max %llds)",
                  static_cast<long long>(max_delay / kSecond));
    jobs.push_back({name,
                    [max_delay] {
                      policy::PeakShavingPolicy::Options opts;
                      opts.max_delay = max_delay;
                      return std::make_unique<policy::PeakShavingPolicy>(opts);
                    },
                    [&peaks, i](const core::ExperimentResult& result,
                                platform::PlatformPolicy*) {
                      peaks[i + 1] = PeakPerMinuteColdStarts(result.store);
                    }});
  }
  const std::vector<bench::AblationRow> rows = bench::RunAblationSweep(config, jobs);

  bench::PrintRows(rows);
  std::printf("\npeak cold starts per minute: baseline %.0f", peaks[0]);
  for (size_t i = 1; i < peaks.size(); ++i) {
    std::printf(", shaved[%zu] %.0f (%+.1f%%)", i, peaks[i],
                100.0 * (peaks[i] / peaks[0] - 1.0));
  }
  std::printf("\n");
  return 0;
}
