// Figure 12: Spearman correlation matrices between per-minute cold-start component
// means and the per-minute cold-start count, per region.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 12", "component correlation matrices (per-minute, Spearman)",
      "total vs count positive everywhere; R1: total~sched ~0.9, total~dep ~0.8; "
      "R2: total~alloc ~0.9; R3: total~sched ~0.8; R4: total~alloc ~0.8; R5: "
      "total~dep ~0.8 with dep~sched ~0.7; * marks p<0.05");
  const auto result = bench::LoadPaperTrace();

  std::vector<std::string> names(analysis::CorrelationVarNames().begin(),
                                 analysis::CorrelationVarNames().end());
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto m = analysis::ComponentCorrelationMatrix(result.store, r);
    std::printf("%s\n%s\n", trace::RegionName(static_cast<trace::RegionId>(r)).c_str(),
                analysis::CorrelationTable(names, m).Render().c_str());
  }

  // Key checks: the paper's strongest per-region couplings.
  auto rho = [&](int region, int i, int j) {
    return analysis::ComponentCorrelationMatrix(result.store, region)[static_cast<size_t>(i)]
        [static_cast<size_t>(j)].rho;
  };
  // Variable order: 0 total, 1 code, 2 dep, 3 sched, 4 alloc, 5 count.
  std::printf("checks:\n");
  std::printf("  R1 total~sched: %.2f (paper 0.9)   R1 total~dep: %.2f (paper 0.8)\n",
              rho(0, 0, 3), rho(0, 0, 2));
  std::printf("  R2 total~alloc: %.2f (paper 0.9)\n", rho(1, 0, 4));
  std::printf("  R4 total~alloc: %.2f (paper 0.8)\n", rho(3, 0, 4));
  std::printf("  R5 total~dep:   %.2f (paper 0.8)   R5 dep~sched:  %.2f (paper 0.7)\n",
              rho(4, 0, 2), rho(4, 2, 3));
  return 0;
}
