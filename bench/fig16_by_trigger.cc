// Figure 16: cold-start time and component CDFs by trigger type (Region 2).
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 16", "cold starts by trigger type (R2)",
      "OBS-triggered functions have a median cold start of ~10s -- driven by Custom "
      "runtimes (no reserved pool), not by the trigger itself; other trigger groups "
      "have medians below 1s");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  const char* letters = "abcde";
  for (int c = 0; c < analysis::kNumColdStartComponents; ++c) {
    const auto component = static_cast<analysis::ColdStartComponent>(c);
    TextTable t(analysis::QuantileHeaders(std::string(analysis::ComponentName(component)) +
                                          " (s)"));
    for (int g = 0; g < trace::kNumTriggerGroups; ++g) {
      const auto ecdf = analysis::ComponentCdfByTrigger(store, /*region=*/1, g, component);
      if (ecdf.empty()) {
        continue;
      }
      analysis::AddQuantileRow(
          t, trace::TriggerGroupName(static_cast<trace::TriggerGroup>(g)), ecdf);
    }
    analysis::AddQuantileRow(t, "all",
                             analysis::ComponentCdfByTrigger(store, 1, -1, component));
    std::printf("(%c) %s\n%s\n", letters[c], analysis::ComponentName(component),
                t.Render().c_str());
  }

  const double obs_median =
      analysis::ComponentCdfByTrigger(store, 1,
                                      static_cast<int>(trace::TriggerGroup::kObsA),
                                      analysis::ColdStartComponent::kTotal)
          .Quantile(0.5);
  const double apig_median =
      analysis::ComponentCdfByTrigger(store, 1,
                                      static_cast<int>(trace::TriggerGroup::kApigS),
                                      analysis::ColdStartComponent::kTotal)
          .Quantile(0.5);
  std::printf("check: OBS median %.2fs vs APIG-S median %.2fs (paper: ~10s vs <1s)\n",
              obs_median, apig_median);
  return 0;
}
