// Ablation A1: prewarming policies vs the production baseline.
//
// The paper (§4.3, §5) argues that timer-triggered functions -- which cold-start on
// every fire when their period exceeds the keep-alive -- and periodically popular
// functions can be prewarmed. This harness quantifies how many user-visible cold
// starts each policy removes and what it costs in extra pods. All four scenario
// evaluations run concurrently on the ParallelSweep work queue.
#include "bench/abl_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Ablation A1", "prewarming",
                     "pre-warming pods for timer functions could alleviate their cold "
                     "starts (timers cause ~30% of R2 cold starts)");
  const core::ScenarioConfig config = bench::AblationScenario();

  const std::vector<bench::AblationJob> jobs = {
      {"baseline (no prewarm)", nullptr, nullptr},
      {"timer-aware prewarm",
       [] { return std::make_unique<policy::TimerAwarePrewarmPolicy>(); }, nullptr},
      {"profile prewarm",
       [] { return std::make_unique<policy::ProfilePrewarmPolicy>(); }, nullptr},
      {"timer + profile",
       []() -> std::unique_ptr<platform::PlatformPolicy> {
         auto combo = std::make_unique<policy::CompositePolicy>();
         combo->Add(std::make_unique<policy::TimerAwarePrewarmPolicy>())
             .Add(std::make_unique<policy::ProfilePrewarmPolicy>());
         return combo;
       },
       nullptr},
  };
  const std::vector<bench::AblationRow> rows = bench::RunAblationSweep(config, jobs);

  bench::PrintRows(rows);
  const double reduction =
      1.0 - static_cast<double>(rows[1].cold_starts) / static_cast<double>(rows[0].cold_starts);
  std::printf("\ntimer-aware prewarm removes %.1f%% of user-visible cold starts\n",
              100.0 * reduction);
  return 0;
}
