// Ablation A7: policy evaluation on replayed vs synthetic load.
//
// Trace-driven evaluation is the standard methodology for cold-start mitigation
// (SPES and the systematic reviews all replay recorded invocation logs), but a
// *request log* is a subtly biased stand-in for the true arrival process: logged
// timestamps are execution starts (shifted by queueing and cold-start latency)
// and workflow children appear as exogenous rows on top of the platform's own
// runtime fan-out. A7 runs the same policy ladder under (1) the synthetic
// arrival process and (2) a replay of the baseline run's request log, and
// reports how far each policy's measured benefit shifts between the two drives.
#include <cinttypes>
#include <filesystem>

#include "bench/abl_util.h"
#include "trace/csv.h"

using namespace coldstart;

namespace {

std::vector<bench::AblationJob> PolicyLadder() {
  return {
      {"baseline", nullptr, nullptr},
      {"timer-aware prewarm",
       [] { return std::make_unique<policy::TimerAwarePrewarmPolicy>(); }, nullptr},
      {"dynamic keep-alive",
       [] { return std::make_unique<policy::DynamicKeepAlivePolicy>(); }, nullptr},
      {"prewarm + keep-alive",
       []() -> std::unique_ptr<platform::PlatformPolicy> {
         auto combo = std::make_unique<policy::CompositePolicy>();
         combo->Add(std::make_unique<policy::TimerAwarePrewarmPolicy>())
             .Add(std::make_unique<policy::DynamicKeepAlivePolicy>());
         return combo;
       },
       nullptr},
  };
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation A7", "replayed vs synthetic load",
                     "mitigation studies replay recorded traces; a request log "
                     "shifts timestamps to execution starts and double-counts "
                     "workflow fan-out, which can distort a policy's measured win");

  core::ScenarioConfig config = bench::AblationScenario();

  // Record the baseline's request log (the artifact an operator would replay).
  core::ScenarioConfig record_config = config;
  record_config.record_requests = true;
  std::printf("[record] simulating the baseline request log (%d days, %.2fx)...\n",
              config.days, config.scale);
  const core::ExperimentResult baseline = core::Experiment(record_config).Run();
  const auto log_dir = std::filesystem::temp_directory_path() / "coldstart_abl07";
  std::filesystem::create_directories(log_dir);
  const std::string log_path = (log_dir / "requests.csv").string();
  if (!trace::WriteRequestsCsv(baseline.store, log_path)) {
    std::fprintf(stderr, "failed to write %s\n", log_path.c_str());
    return 1;
  }

  trace::CsvError error;
  core::ScenarioConfig replay_config = config;
  replay_config.workload =
      workload::ReplaySource::FromRequestsCsv(log_path, {}, &error);
  if (replay_config.workload == nullptr) {
    std::fprintf(stderr, "%s:%" PRId64 ": %s\n", log_path.c_str(), error.line,
                 error.message.c_str());
    return 1;
  }
  std::printf("[record] %zu logged requests become the replay drive\n\n",
              baseline.store.requests().size());

  std::printf("--- synthetic arrival process ---\n");
  const auto synthetic_rows = bench::RunAblationSweep(config, PolicyLadder());
  bench::PrintRows(synthetic_rows);

  std::printf("\n--- request-log replay ---\n");
  const auto replay_rows = bench::RunAblationSweep(replay_config, PolicyLadder());
  bench::PrintRows(replay_rows);

  std::printf("\npolicy win (cold starts removed vs that drive's baseline):\n");
  for (size_t i = 1; i < synthetic_rows.size(); ++i) {
    const double syn = 1.0 - static_cast<double>(synthetic_rows[i].cold_starts) /
                                 static_cast<double>(synthetic_rows[0].cold_starts);
    const double rep = 1.0 - static_cast<double>(replay_rows[i].cold_starts) /
                                 static_cast<double>(replay_rows[0].cold_starts);
    std::printf("  %-22s synthetic %6.1f%%   replay %6.1f%%   bias %+.1f pp\n",
                synthetic_rows[i].name.c_str(), 100.0 * syn, 100.0 * rep,
                100.0 * (rep - syn));
  }
  std::filesystem::remove_all(log_dir);
  return 0;
}
