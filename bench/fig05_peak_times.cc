// Figure 5: normalized request series with daily peaks; peaks occur at different
// times of day per region.
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader("Figure 5", "daily peak times per region",
                     "clear periodic behaviour in all regions; the largest daily peak "
                     "occurs at a different time of day in every region");
  const auto result = bench::LoadPaperTrace();

  const auto peaks = analysis::ComputeRegionPeaks(result.store);

  // Peak hour of each day, per region (first 7 days shown + modal hour over trace).
  TextTable t({"region", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "modal peak hour"});
  std::vector<double> modal_hours;
  for (const auto& p : peaks) {
    t.Row().Cell(trace::RegionName(p.region));
    std::vector<int> hour_votes(24, 0);
    for (size_t d = 0; d < p.daily_peaks.size(); ++d) {
      const double hour = static_cast<double>(p.daily_peaks[d].index % 1440) / 60.0;
      if (d < 7) {
        t.Cell(hour, 1);
      }
      ++hour_votes[static_cast<size_t>(hour)];
    }
    int modal = 0;
    for (int h = 0; h < 24; ++h) {
      if (hour_votes[static_cast<size_t>(h)] > hour_votes[static_cast<size_t>(modal)]) {
        modal = h;
      }
    }
    modal_hours.push_back(modal);
    t.Cell(static_cast<int64_t>(modal));
  }
  std::printf("%s\n", t.Render().c_str());

  // Normalized smoothed series for a 3-day window, 2-hour resolution (the figure's
  // visual content in numeric form).
  TextTable series({"hour", "R1", "R2", "R3", "R4", "R5"});
  for (size_t h = 0; h < 72; h += 2) {
    auto row = series.Row();
    series.Cell(static_cast<int64_t>(h));
    for (const auto& p : peaks) {
      const size_t idx = h * 60 + 30;
      series.Cell(idx < p.smoothed.size() ? p.smoothed[idx] : 0.0, 3);
    }
  }
  std::printf("normalized smoothed requests, days 0-2:\n%s\n", series.Render().c_str());

  // Check: not all regions peak at the same hour.
  std::sort(modal_hours.begin(), modal_hours.end());
  const bool distinct = modal_hours.front() != modal_hours.back();
  std::printf("check: regions peak at different hours: %s\n", distinct ? "yes" : "NO");
  return 0;
}
