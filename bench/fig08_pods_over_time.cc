// Figure 8a-c: running pods per hour in Region 2, grouped by trigger type, runtime,
// and resource configuration.
#include <cmath>

#include "bench/bench_util.h"

using namespace coldstart;

namespace {

// Prints per-day means of an hourly [key][hour] matrix plus periodicity diagnostics.
void PrintGroup(const trace::TraceStore& store, analysis::GroupAxis axis,
                const char* title) {
  const auto series = analysis::RunningPodsByGroup(store, /*region=*/1, axis);
  const int keys = analysis::NumKeys(axis);
  const size_t hours = series.empty() ? 0 : series[0].size();
  const size_t days = hours / 24;

  std::vector<std::string> headers = {"day"};
  for (int k = 0; k < keys; ++k) {
    headers.push_back(analysis::KeyName(axis, k));
  }
  TextTable t(headers);
  for (size_t d = 0; d < days; d += 2) {  // Every other day keeps the table readable.
    t.Row().Cell(static_cast<int64_t>(d));
    for (int k = 0; k < keys; ++k) {
      double sum = 0;
      for (size_t h = d * 24; h < (d + 1) * 24; ++h) {
        sum += series[static_cast<size_t>(k)][h];
      }
      t.Cell(sum / 24.0, 1);
    }
  }
  std::printf("%s (mean running pods per day, R2)\n%s\n", title, t.Render().c_str());

  // Diurnality: autocorrelation at lag 24h of each group's hourly series.
  TextTable ac({"group", "autocorr @24h", "weekday/weekend pods"});
  for (int k = 0; k < keys; ++k) {
    const auto& s = series[static_cast<size_t>(k)];
    double wk = 0, we = 0;
    int wk_n = 0, we_n = 0;
    for (size_t h = 0; h < hours; ++h) {
      const int64_t day = static_cast<int64_t>(h / 24);
      const int dow = static_cast<int>((day + 1) % 7);  // Day 0 is a Tuesday.
      // Days 14-23 are the holiday; exclude them from the weekly contrast.
      if (day >= 14 && day <= 23) {
        continue;
      }
      if (dow == 5 || dow == 6) {
        we += s[h];
        ++we_n;
      } else {
        wk += s[h];
        ++wk_n;
      }
    }
    const double ratio = (we_n > 0 && we / we_n > 0) ? (wk / wk_n) / (we / we_n) : 0.0;
    ac.Row()
        .Cell(analysis::KeyName(axis, k))
        .Cell(stats::Autocorrelation(s, 24), 3)
        .Cell(ratio, 3);
  }
  std::printf("%s\n", ac.Render().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 8a-c", "running pods per hour by group (R2)",
      "timers have a flat pod count (~5% of pods) despite ~60% of functions; "
      "workflow-S/APIG-S/OBS pods oscillate daily; ~30% more pods on weekdays; Java "
      "pods gain diurnality at day 18; config groups contribute unevenly");
  const auto result = bench::LoadPaperTrace();

  PrintGroup(result.store, analysis::GroupAxis::kTrigger, "(a) by trigger type");
  PrintGroup(result.store, analysis::GroupAxis::kRuntime, "(b) by runtime");
  PrintGroup(result.store, analysis::GroupAxis::kConfig, "(c) by resource allocation");

  // Java regime change: diurnal amplitude before vs after day 18.
  const auto by_runtime =
      analysis::RunningPodsByGroup(result.store, 1, analysis::GroupAxis::kRuntime);
  const auto& java = by_runtime[static_cast<size_t>(trace::Runtime::kJava)];
  auto amplitude = [&](size_t from_day, size_t to_day) {
    double mn = 1e300, mx = 0;
    for (size_t h = from_day * 24; h < to_day * 24 && h < java.size(); ++h) {
      mn = std::min(mn, java[h]);
      mx = std::max(mx, java[h]);
    }
    return mx > 0 && mn < 1e300 ? (mx - mn) / std::max(1.0, mx) : 0.0;
  };
  std::printf("Java relative daily swing before day 18: %.3f, after: %.3f (paper: "
              "periodicity begins at day 18)\n",
              amplitude(2, 13), amplitude(24, 30));
  return 0;
}
