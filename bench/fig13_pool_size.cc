// Figure 13: cold-start time and components by pool size class (small vs large pods).
#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 13", "small vs large resource pools",
      "larger pools have longer median cold starts (ratio ~1:1 in R5 up to ~5:1 in "
      "R3); pod allocation is multimodal from the staged search, expanding more for "
      "large pools; code/dep deploys longer in large pods; scheduling small<large in "
      "R1/R3/R4 but reversed in R2/R5");
  const auto result = bench::LoadPaperTrace();
  const auto& store = result.store;

  for (int c = 0; c < analysis::kNumColdStartComponents; ++c) {
    const auto component = static_cast<analysis::ColdStartComponent>(c);
    TextTable t({"region", "class", "count", "p25", "p50", "p75", "p95", "mean"});
    for (int r = 0; r < trace::kNumRegions; ++r) {
      for (int sc = 0; sc < 2; ++sc) {
        const auto ecdf = analysis::PoolSizeDistribution(
            store, r, static_cast<trace::PoolSizeClass>(sc), component);
        t.Row()
            .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
            .Cell(std::string(trace::PoolSizeClassName(static_cast<trace::PoolSizeClass>(sc))))
            .Cell(static_cast<uint64_t>(ecdf.size()))
            .Cell(ecdf.Quantile(0.25), 4)
            .Cell(ecdf.Quantile(0.50), 4)
            .Cell(ecdf.Quantile(0.75), 4)
            .Cell(ecdf.Quantile(0.95), 4)
            .Cell(ecdf.Mean(), 4);
      }
    }
    std::printf("(%c) %s (s)\n%s\n", 'a' + c, analysis::ComponentName(component),
                t.Render().c_str());
  }

  TextTable ratio({"region", "large/small median cold-start ratio"});
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const double small = analysis::PoolSizeDistribution(
                             store, r, trace::PoolSizeClass::kSmall,
                             analysis::ColdStartComponent::kTotal)
                             .Quantile(0.5);
    const double large = analysis::PoolSizeDistribution(
                             store, r, trace::PoolSizeClass::kLarge,
                             analysis::ColdStartComponent::kTotal)
                             .Quantile(0.5);
    ratio.Row()
        .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
        .Cell(small > 0 ? large / small : 0.0, 2);
  }
  std::printf("%s(paper: between ~1:1 and ~5:1)\n", ratio.Render().c_str());
  return 0;
}
