// Figure 8d-f: proportions of running pods, cold starts, and functions in Region 2,
// grouped by trigger type, runtime, and resource configuration.
#include "bench/bench_util.h"

using namespace coldstart;

namespace {

void PrintShares(const trace::TraceStore& store, analysis::GroupAxis axis,
                 const char* title) {
  const auto shares = analysis::ComputeGroupShares(store, /*region=*/1, axis);
  TextTable t({"group", "pods", "cold starts", "functions"});
  for (int k = 0; k < analysis::NumKeys(axis); ++k) {
    t.Row()
        .Cell(analysis::KeyName(axis, k))
        .Cell(shares.pods[static_cast<size_t>(k)], 3)
        .Cell(shares.cold_starts[static_cast<size_t>(k)], 3)
        .Cell(shares.functions[static_cast<size_t>(k)], 3);
  }
  std::printf("%s\n%s\n", title, t.Render().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 8d-f", "group proportions (R2)",
      "timers: ~60% of functions, ~30% of cold starts, ~5% of pods; OBS ~30% of pods; "
      "Python3 ~50% of cold starts; small CPU-memory configs >60% of cold starts");
  const auto result = bench::LoadPaperTrace();

  PrintShares(result.store, analysis::GroupAxis::kTrigger, "(d) by trigger type");
  PrintShares(result.store, analysis::GroupAxis::kRuntime, "(e) by runtime");
  PrintShares(result.store, analysis::GroupAxis::kConfig, "(f) by resource allocation");

  const auto trig = analysis::ComputeGroupShares(result.store, 1, analysis::GroupAxis::kTrigger);
  const auto rt = analysis::ComputeGroupShares(result.store, 1, analysis::GroupAxis::kRuntime);
  const auto cfg = analysis::ComputeGroupShares(result.store, 1, analysis::GroupAxis::kConfig);
  const double small_cs =
      cfg.cold_starts[static_cast<size_t>(trace::ConfigGroup::k300m128)] +
      cfg.cold_starts[static_cast<size_t>(trace::ConfigGroup::k400m256)];
  std::printf("checks (R2):\n");
  std::printf("  timer functions share:    %.2f (paper ~0.6)\n",
              trig.functions[static_cast<size_t>(trace::TriggerGroup::kTimerA)]);
  std::printf("  timer pod share:          %.2f (paper ~0.05)\n",
              trig.pods[static_cast<size_t>(trace::TriggerGroup::kTimerA)]);
  std::printf("  timer cold-start share:   %.2f (paper ~0.3)\n",
              trig.cold_starts[static_cast<size_t>(trace::TriggerGroup::kTimerA)]);
  std::printf("  OBS pod share:            %.2f (paper ~0.3)\n",
              trig.pods[static_cast<size_t>(trace::TriggerGroup::kObsA)]);
  std::printf("  Python3 cold-start share: %.2f (paper ~0.5)\n",
              rt.cold_starts[static_cast<size_t>(trace::Runtime::kPython3)]);
  std::printf("  small-config cold starts: %.2f (paper >0.6)\n", small_cs);
  return 0;
}
