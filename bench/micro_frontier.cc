// Micro-benchmarks of the frontier configuration path (google-benchmark):
// the InterArrivalForecaster observe/predict hot loop that
// ForecastPrewarmPolicy runs on every arrival, the policy's keep-alive
// decision, and the ParetoFrontier computation over large candidate sets.
#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/pareto.h"
#include "common/rng.h"
#include "policy/forecast.h"

using namespace coldstart;

namespace {

// Deterministic jittered-timer arrival times: period +- 5% uniform.
std::vector<SimTime> JitteredTimerArrivals(size_t n, SimDuration period,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<SimTime> arrivals(n);
  SimTime t = 0;
  for (auto& a : arrivals) {
    t += static_cast<SimDuration>(static_cast<double>(period) *
                                  rng.Uniform(0.95, 1.05));
    a = t;
  }
  return arrivals;
}

}  // namespace

static void BM_ForecasterObserve(benchmark::State& state) {
  const auto arrivals =
      JitteredTimerArrivals(static_cast<size_t>(state.range(0)), 5 * kMinute, 11);
  for (auto _ : state) {
    policy::InterArrivalForecaster forecaster;
    for (const SimTime t : arrivals) {
      forecaster.ObserveArrival(t);
    }
    benchmark::DoNotOptimize(forecaster.sample_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ForecasterObserve)->Arg(256)->Arg(16384);

static void BM_ForecasterPredict(benchmark::State& state) {
  policy::InterArrivalForecaster forecaster;
  for (const SimTime t : JitteredTimerArrivals(256, 5 * kMinute, 13)) {
    forecaster.ObserveArrival(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(forecaster.Confidence());
    benchmark::DoNotOptimize(forecaster.PredictedIat());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForecasterPredict);

static void BM_ForecastKeepAliveDecision(benchmark::State& state) {
  policy::ForecastPrewarmPolicy policy;
  workload::FunctionSpec spec;
  spec.id = 1;
  spec.region = 0;
  SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    policy.OnArrival(spec, t);
    t += 30 * kSecond;  // Short-IAT path: the headroom keep-alive branch.
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.KeepAliveFor(spec, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForecastKeepAliveDecision);

static void BM_ParetoFrontierCompute(benchmark::State& state) {
  Rng rng(17);
  std::vector<analysis::ParetoPoint> points(static_cast<size_t>(state.range(0)));
  for (auto& p : points) {
    p.cost = rng.Uniform(1e3, 1e6);
    p.latency = rng.Uniform(0.1, 30.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::ParetoFrontier(points).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParetoFrontierCompute)->Arg(64)->Arg(4096);

BENCHMARK_MAIN();
