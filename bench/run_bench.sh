#!/usr/bin/env bash
# Runs the simulator-core microbenchmarks and records BENCH_simcore.json for the
# perf trajectory (timer wheel vs. heap baseline, arrival injection, slab churn,
# chunked-vs-materialized arrival generation — BM_ArrivalGeneration/1 vs /0 —
# and the sharded-vs-serial experiment runner: compare BM_ShardedExperiment/1 —
# the serial path — against /2 and /4). BM_PaperScaleMonth is the end-to-end
# down-scaled paper-month driver: /1/1 is the legacy serial run, /1/4 serial
# with cells=4, /5/4 region-sharded (K=1), /16/4 sub-region-sharded (K=4).
#
# Usage: bench/run_bench.sh [build_dir] [output_json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_simcore.json}"

if [ ! -x "$BUILD_DIR/bench_micro_simcore" ]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCOLDSTART_BUILD_BENCH=ON
  cmake --build "$BUILD_DIR" -j --target bench_micro_simcore
fi

# The sharded-experiment benchmark sizes its own worker pools per argument; a
# stray COLDSTART_THREADS would not change results (runs are bit-identical at any
# thread count) but would distort the serial-vs-sharded wall-clock comparison.
unset COLDSTART_THREADS

"$BUILD_DIR/bench_micro_simcore" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "Wrote $OUT"
