#!/usr/bin/env bash
# Runs the simulator-core microbenchmarks and records BENCH_simcore.json for the
# perf trajectory (timer wheel vs. heap baseline, arrival injection, slab churn).
#
# Usage: bench/run_bench.sh [build_dir] [output_json]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_simcore.json}"

if [ ! -x "$BUILD_DIR/bench_micro_simcore" ]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCOLDSTART_BUILD_BENCH=ON
  cmake --build "$BUILD_DIR" -j --target bench_micro_simcore
fi

"$BUILD_DIR/bench_micro_simcore" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo "Wrote $OUT"
