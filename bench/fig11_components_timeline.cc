// Figure 11: hourly mean cold-start time split into components, plus cold-start
// counts, for each region.
#include <algorithm>

#include "bench/bench_util.h"

using namespace coldstart;

int main() {
  bench::PrintHeader(
      "Figure 11", "cold-start components over time, per region",
      "R1 means reach ~7s dominated by dependency deploy + scheduling; R2 <= ~3s "
      "dominated by pod allocation, in phase with the cold-start count; R3 < 0.3s; "
      "all regions spike on the first post-holiday workday (day 24)");
  const auto result = bench::LoadPaperTrace();

  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto s = analysis::HourlyComponents(result.store, r);
    TextTable t({"day", "mean total (s)", "alloc", "code", "dep", "sched", "cold starts/h"});
    const size_t days = s.total.size() / 24;
    for (size_t d = 0; d < days; d += 2) {
      double tot = 0, alloc = 0, code = 0, dep = 0, sched = 0, count = 0;
      int n = 0;
      for (size_t h = d * 24; h < (d + 1) * 24; ++h) {
        if (s.count[h] <= 0) {
          continue;
        }
        tot += s.total[h];
        alloc += s.pod_alloc[h];
        code += s.deploy_code[h];
        dep += s.deploy_dep[h];
        sched += s.scheduling[h];
        count += s.count[h];
        ++n;
      }
      if (n == 0) {
        continue;
      }
      t.Row()
          .Cell(static_cast<int64_t>(d))
          .Cell(tot / n, 3)
          .Cell(alloc / n, 3)
          .Cell(code / n, 3)
          .Cell(dep / n, 3)
          .Cell(sched / n, 3)
          .Cell(count / 24.0, 1);
    }
    std::printf("%s mean cold-start components per hour (2-day stride)\n%s\n",
                trace::RegionName(static_cast<trace::RegionId>(r)).c_str(),
                t.Render().c_str());

    // Dominant component overall and peak hourly mean.
    double sums[4] = {0, 0, 0, 0};
    double peak_total = 0;
    int hours_with_cs = 0;
    for (size_t h = 0; h < s.total.size(); ++h) {
      if (s.count[h] <= 0) {
        continue;
      }
      sums[0] += s.pod_alloc[h];
      sums[1] += s.deploy_code[h];
      sums[2] += s.deploy_dep[h];
      sums[3] += s.scheduling[h];
      peak_total = std::max(peak_total, s.total[h]);
      ++hours_with_cs;
    }
    const char* names[4] = {"pod alloc", "deploy code", "deploy dep", "scheduling"};
    const int dominant =
        static_cast<int>(std::max_element(sums, sums + 4) - sums);
    std::printf("  dominant mean component: %s; peak hourly mean total: %.2fs\n\n",
                names[dominant], peak_total);
  }
  return 0;
}
