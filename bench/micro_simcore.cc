// Micro-benchmarks of the simulator hot paths (google-benchmark): event queue
// throughput (timer wheel vs. the seed's priority-queue baseline), mixed-horizon
// scheduling, streaming arrival injection, pod slab churn, staged pool
// acquisition, the cold-start pipeline, the end-to-end sharded-vs-serial
// experiment runner, and the paper-scale month driver (serial vs region-sharded
// vs sub-region-sharded).
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "platform/coldstart_pipeline.h"
#include "platform/platform.h"
#include "platform/pod_slab.h"
#include "platform/resource_pool.h"
#include "sim/simulator.h"
#include "workload/arrivals.h"
#include "workload/population.h"

using namespace coldstart;

namespace {

// The seed event core (std::priority_queue of std::function closures), kept here
// as the measured baseline for the timer-wheel scheduler.
class HeapBaselineSim {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  void ScheduleAt(SimTime t, Handler fn) {
    queue_.push(Event{t, next_seq_++, std::move(fn)});
  }

  uint64_t RunToCompletion() {
    uint64_t processed = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      Handler fn = std::move(const_cast<Event&>(top).fn);
      now_ = top.time;
      queue_.pop();
      fn();
      ++processed;
    }
    return processed;
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Handler fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
};

// Mixed-horizon delay: mimics the platform's scheduling mix. Roughly half the
// events land within milliseconds (executions), a third within seconds (long
// executions), the rest at the keep-alive minute or hours out (far timers).
SimDuration MixedHorizonDelay(Rng& rng) {
  const double p = rng.NextDouble();
  if (p < 0.50) {
    return 1 + static_cast<SimDuration>(rng.NextBounded(20 * kMillisecond));
  }
  if (p < 0.80) {
    return 1 + static_cast<SimDuration>(rng.NextBounded(5 * kSecond));
  }
  if (p < 0.95) {
    return kMinute;
  }
  return 1 + static_cast<SimDuration>(rng.NextBounded(4 * kHour));
}

}  // namespace

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int64_t counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(i * 10, [&counter] { ++counter; });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

static void BM_EventQueueScheduleRunHeapBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    HeapBaselineSim sim;
    int64_t counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(i * 10, [&counter] { ++counter; });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRunHeapBaseline)->Arg(1024)->Arg(65536);

// Steady-state scheduling at mixed horizons: self-rescheduling chains each hop
// MixedHorizonDelay forward until the total event budget is consumed. This
// exercises L0/L1 cascades and the overflow heap, not just the near wheel. The
// chain count is the in-flight queue size: 64 models a small scenario, 4096 the
// dense queues of month-scale runs.
static void BM_EventQueueMixedHorizons(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  const int total = static_cast<int>(state.range(1));
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng(99);
    int64_t remaining = total;
    std::function<void()> hop = [&] {
      if (--remaining > 0) {
        sim.ScheduleAfter(MixedHorizonDelay(rng), [&hop] { hop(); });
      }
    };
    for (int c = 0; c < chains; ++c) {
      sim.ScheduleAt(MixedHorizonDelay(rng), [&hop] { hop(); });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_EventQueueMixedHorizons)->Args({64, 65536})->Args({4096, 65536});

static void BM_EventQueueMixedHorizonsHeapBaseline(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  const int total = static_cast<int>(state.range(1));
  for (auto _ : state) {
    HeapBaselineSim sim;
    Rng rng(99);
    int64_t remaining = total;
    std::function<void()> hop = [&] {
      if (--remaining > 0) {
        sim.ScheduleAt(sim.now() + MixedHorizonDelay(rng), [&hop] { hop(); });
      }
    };
    for (int c = 0; c < chains; ++c) {
      sim.ScheduleAt(MixedHorizonDelay(rng), [&hop] { hop(); });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_EventQueueMixedHorizonsHeapBaseline)
    ->Args({64, 65536})
    ->Args({4096, 65536});

// End-to-end arrival injection: one synchronous function, `n` arrivals across a
// day, streamed through the platform's arrival cursor. Items = arrivals.
static void BM_ArrivalInjection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  workload::Calendar::Options copts;
  copts.trace_days = 1;
  const workload::Calendar calendar(copts);
  const auto profiles =
      std::vector<workload::RegionProfile>{workload::DefaultRegionProfiles()[0]};

  workload::FunctionSpec f;
  f.id = 0;
  f.user = 0;
  f.region = 0;
  f.runtime = trace::Runtime::kPython3;
  f.primary_trigger = trace::Trigger::kApigSync;
  f.exec_median_us = 5e3;
  f.exec_sigma = 0.3;
  f.pod_concurrency = 8;
  f.code_size_kb = 100;
  f.dep_size_kb = 0;

  std::vector<workload::ArrivalEvent> arrivals;
  arrivals.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    arrivals.push_back(
        {static_cast<SimTime>(i) * (kDay / n), 0});
  }

  for (auto _ : state) {
    workload::Population pop;
    pop.functions = {f};
    pop.num_users = 1;
    pop.region_begin = {0, 1};
    sim::Simulator sim;
    trace::TraceStore store;
    platform::Platform::Options opts;
    opts.seed = 7;
    opts.record_requests = false;
    platform::Platform platform(pop, profiles, calendar, sim, store, opts);
    platform.InjectArrivals(arrivals);
    sim.RunUntil(calendar.horizon());
    platform.Finalize();
    benchmark::DoNotOptimize(platform.total_cold_starts());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArrivalInjection)->Arg(100000);

// Pod slab churn: allocate a working set, then cycle free+allocate with handle
// resolution, the steady-state pattern of OnRequestComplete/ArmKeepAlive/KillPod.
static void BM_PodSlabChurn(benchmark::State& state) {
  platform::Slab<platform::Pod> slab;
  std::vector<platform::SlabHandle> handles;
  for (int i = 0; i < 1024; ++i) {
    handles.push_back(slab.Allocate().second);
  }
  size_t next = 0;
  for (auto _ : state) {
    platform::Pod* pod = slab.Resolve(handles[next]);
    benchmark::DoNotOptimize(pod->served);
    slab.Free(handles[next]);
    handles[next] = slab.Allocate().second;
    next = (next + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PodSlabChurn);

static void BM_PodSlabChurnMapBaseline(benchmark::State& state) {
  // The seed's storage: id-keyed unordered_map of heap-allocated pods.
  std::unordered_map<uint64_t, std::unique_ptr<platform::Pod>> pods;
  std::vector<uint64_t> ids;
  uint64_t next_id = 0;
  for (int i = 0; i < 1024; ++i) {
    pods.emplace(next_id, std::make_unique<platform::Pod>());
    ids.push_back(next_id++);
  }
  size_t next = 0;
  for (auto _ : state) {
    const auto it = pods.find(ids[next]);
    benchmark::DoNotOptimize(it->second->served);
    pods.erase(it);
    pods.emplace(next_id, std::make_unique<platform::Pod>());
    ids[next] = next_id++;
    next = (next + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PodSlabChurnMapBaseline);

static void BM_PoolAcquireRelease(benchmark::State& state) {
  platform::ResourcePool pool(32, 4.0);
  Rng rng(7);
  SimTime now = 0;
  for (auto _ : state) {
    now += kSecond;
    const auto acq = pool.Acquire(now, rng);
    benchmark::DoNotOptimize(acq.stage);
    pool.Release(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease);

static void BM_ColdStartPipeline(benchmark::State& state) {
  const auto& profiles = workload::DefaultRegionProfiles();
  const workload::Calendar calendar;
  platform::YuanRongModel pipeline(profiles[0], calendar);
  platform::ResourcePool pool(32, 4.0);
  platform::RegionLoadState load;
  load.active_cold_starts = 5;
  load.active_code_deploys = 5;
  load.active_dep_deploys = 2;
  workload::FunctionSpec spec;
  spec.code_size_kb = 2048;
  spec.dep_size_kb = 8192;
  Rng rng(11);
  SimTime now = 0;
  for (auto _ : state) {
    now += kSecond;
    const auto comp = pipeline.Compute(spec, pool, load, now, rng);
    benchmark::DoNotOptimize(comp.total());
    pool.Release(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdStartPipeline);

// Same hot path driven through the ColdStartModel vtable, the way Platform
// dispatches it since the model layer landed. The delta against
// BM_ColdStartPipeline is the virtual-dispatch cost of the refactor — the
// acceptance bar is <2%, which an indirect call against a compute kernel of
// ~10 RNG draws and several exp() calls clears easily.
static void BM_ColdStartModel(benchmark::State& state) {
  const auto& profiles = workload::DefaultRegionProfiles();
  const workload::Calendar calendar;
  std::unique_ptr<platform::ColdStartModel> model =
      std::make_unique<platform::YuanRongModel>(profiles[0], calendar);
  platform::ResourcePool pool(32, 4.0);
  platform::RegionLoadState load;
  load.active_cold_starts = 5;
  load.active_code_deploys = 5;
  load.active_dep_deploys = 2;
  workload::FunctionSpec spec;
  spec.code_size_kb = 2048;
  spec.dep_size_kb = 8192;
  Rng rng(11);
  SimTime now = 0;
  for (auto _ : state) {
    now += kSecond;
    const auto comp = model->Compute(spec, pool, load, now, rng);
    benchmark::DoNotOptimize(comp.total());
    pool.Release(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdStartModel);

static void BM_PopulationGeneration(benchmark::State& state) {
  const auto& profiles = workload::DefaultRegionProfiles();
  for (auto _ : state) {
    const auto pop = workload::GeneratePopulation(profiles, 42);
    benchmark::DoNotOptimize(pop.functions.size());
  }
}
BENCHMARK(BM_PopulationGeneration);

// End-to-end experiment wall clock, serial vs region-sharded. The argument is the
// worker-thread cap handed to Experiment::Run (1 = the serial path); results are
// bit-identical across arguments, so this measures pure scheduling gain. On a
// >=4-core host the 5-region scenario shards to ~the slowest region's share, giving
// the >=2x speedup the BENCH_simcore.json trajectory tracks; on fewer cores the
// sharded entries degenerate gracefully toward serial.
static void BM_ShardedExperiment(benchmark::State& state) {
  core::ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.record_requests = false;  // Wall clock should measure simulation, not logging.
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::Experiment experiment(config);
    const auto result = experiment.Run(nullptr, threads);
    benchmark::DoNotOptimize(result.store.cold_starts().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedExperiment)
    ->Arg(1)   // Serial baseline.
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Paper-scale month driver: the PaperScenario geometry (5 regions, 31 days)
// down-scaled in load so the benchmark stays runnable in CI, in kStreaming mode
// so trace memory stays O(1) at month scale. The argument pair is
// (threads, cells_per_region):
//   {1, 4}  — serial baseline on the cells=4 scenario,
//   {5, 4}  — region sharding only (planner yields K=1: 5 shards, one/region),
//   {16, 4} — sub-region sharding (K=4: up to 20 (region, cell-group) shards).
// All three rows simulate the *same* scenario and produce bit-identical
// aggregates (the determinism suite pins this), so the wall-clock deltas are
// pure scheduling gain; on hosts with fewer cores than shards the rows
// degenerate gracefully toward serial. {1, 1} is the legacy cells=1 scenario
// for reference — a different scenario by design (per-cell pools), not
// comparable bit-for-bit with the cells=4 rows.
static void BM_PaperScaleMonth(benchmark::State& state) {
  core::ScenarioConfig config = core::PaperScenario();
  config.scale = 0.05;  // CI-sized month: full calendar, ~5% of the functions.
  config.trace_mode = core::TraceMode::kStreaming;
  config.record_requests = false;
  const int threads = static_cast<int>(state.range(0));
  config.cells_per_region = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    core::Experiment experiment(config);
    const auto result = experiment.Run(nullptr, threads);
    benchmark::DoNotOptimize(result.events_processed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PaperScaleMonth)
    ->Args({1, 1})   // Legacy serial (cells=1 scenario).
    ->Args({1, 4})   // Serial baseline, cells=4 scenario.
    ->Args({5, 4})   // Region-sharded (K=1).
    ->Args({16, 4})  // Sub-region-sharded (K=4).
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Iterations(1);

// Full-trace vs streaming-sink recording on the identical serial simulation: the
// argument is the TraceMode (0 = kFull materializes every record in a TraceStore,
// 1 = kStreaming folds records into StreamingAggregates). The delta is the pure
// record-append/seal overhead of full materialization; the memory story (O(days)
// vs O(1)) is quantified by bench_abl08_streaming and the year_scale example.
static void BM_TraceModeExperiment(benchmark::State& state) {
  core::ScenarioConfig config = core::SmallScenario();
  config.days = 3;
  config.trace_mode =
      state.range(0) == 0 ? core::TraceMode::kFull : core::TraceMode::kStreaming;
  for (auto _ : state) {
    core::Experiment experiment(config);
    const auto result = experiment.Run(nullptr, /*num_threads=*/1);
    benchmark::DoNotOptimize(result.events_processed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Chunked vs materialized arrival generation on the identical stream: the
// argument is the delivery mode (0 = drain into one eager vector, 1 = pull day
// chunks and discard). Both perform the same RNG work — the wall-clock delta is
// the pure cost of growing/holding the O(days) vector; the memory story (max
// one-day chunk vs whole horizon) is quantified by bench_abl09_chunked_arrivals.
static void BM_ArrivalGeneration(benchmark::State& state) {
  core::ScenarioConfig config = core::SmallScenario();
  config.days = 7;
  const workload::Calendar calendar = config.MakeCalendar();
  const auto profiles = config.ScaledProfiles();
  const workload::Population pop =
      workload::GeneratePopulation(profiles, config.seed);
  const bool chunked = state.range(0) == 1;
  int64_t arrivals = 0;
  for (auto _ : state) {
    auto stream = config.workload_source().OpenStream(pop, profiles, calendar,
                                                      config.seed);
    if (chunked) {
      workload::ArrivalChunk chunk;
      while (stream->NextChunk(&chunk)) {
        arrivals += static_cast<int64_t>(chunk.events.size());
      }
    } else {
      const auto eager = workload::DrainArrivalStream(*stream);
      arrivals += static_cast<int64_t>(eager.size());
    }
  }
  benchmark::DoNotOptimize(arrivals);
  state.SetItemsProcessed(arrivals);
}
BENCHMARK(BM_ArrivalGeneration)
    ->Arg(0)   // Materialized vector.
    ->Arg(1)   // Day-chunked pull.
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TraceModeExperiment)
    ->Arg(0)   // kFull.
    ->Arg(1)   // kStreaming.
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
