// Micro-benchmarks of the simulator hot paths (google-benchmark): event queue
// throughput, staged pool acquisition, and the cold-start pipeline.
#include <benchmark/benchmark.h>

#include "platform/coldstart_pipeline.h"
#include "platform/resource_pool.h"
#include "sim/simulator.h"
#include "workload/population.h"

using namespace coldstart;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int64_t counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(i * 10, [&counter] { ++counter; });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

static void BM_PoolAcquireRelease(benchmark::State& state) {
  platform::ResourcePool pool(32, 4.0);
  Rng rng(7);
  SimTime now = 0;
  for (auto _ : state) {
    now += kSecond;
    const auto acq = pool.Acquire(now, rng);
    benchmark::DoNotOptimize(acq.stage);
    pool.Release(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAcquireRelease);

static void BM_ColdStartPipeline(benchmark::State& state) {
  const auto& profiles = workload::DefaultRegionProfiles();
  const workload::Calendar calendar;
  platform::ColdStartPipeline pipeline(profiles[0], calendar);
  platform::ResourcePool pool(32, 4.0);
  platform::RegionLoadState load;
  load.active_cold_starts = 5;
  load.active_code_deploys = 5;
  load.active_dep_deploys = 2;
  workload::FunctionSpec spec;
  spec.code_size_kb = 2048;
  spec.dep_size_kb = 8192;
  Rng rng(11);
  SimTime now = 0;
  for (auto _ : state) {
    now += kSecond;
    const auto comp = pipeline.Compute(spec, pool, load, now, rng);
    benchmark::DoNotOptimize(comp.total());
    pool.Release(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdStartPipeline);

static void BM_PopulationGeneration(benchmark::State& state) {
  const auto& profiles = workload::DefaultRegionProfiles();
  for (auto _ : state) {
    const auto pop = workload::GeneratePopulation(profiles, 42);
    benchmark::DoNotOptimize(pop.functions.size());
  }
}
BENCHMARK(BM_PopulationGeneration);

BENCHMARK_MAIN();
