// Quickstart: simulate a small multi-region scenario and print the basic cold-start
// picture. This is the 5-minute tour of the public API: configure a scenario, run the
// experiment, and query the analysis layer.
//
// Usage: quickstart [days] [scale]
#include <cstdio>
#include <cstdlib>

#include "core/coldstart_lab.h"

using namespace coldstart;

int main(int argc, char** argv) {
  core::ScenarioConfig config = core::SmallScenario();
  if (argc > 1) {
    config.days = std::atoi(argv[1]);
  }
  if (argc > 2) {
    config.scale = std::atof(argv[2]);
  }

  std::printf("Simulating %d days at %.2fx scale (seed %llu)...\n", config.days,
              config.scale, static_cast<unsigned long long>(config.seed));
  core::Experiment experiment(config);
  const core::ExperimentResult result = experiment.Run();

  std::printf("Done: %llu events in %.2fs wall time.\n\n",
              static_cast<unsigned long long>(result.events_processed),
              result.sim_wall_seconds);

  // Region overview (Figure 1's axes).
  TextTable overview({"region", "functions", "users", "requests", "pods", "cold starts"});
  for (const auto& s : analysis::ComputeRegionSizes(result.store)) {
    overview.Row()
        .Cell(trace::RegionName(s.region))
        .Cell(s.functions)
        .Cell(s.users)
        .Cell(s.requests)
        .Cell(s.pods)
        .Cell(s.cold_starts);
  }
  std::printf("%s\n", overview.Render().c_str());

  // Cold-start time distributions per region (Figure 10a).
  TextTable cs(analysis::QuantileHeaders("cold start time (s)"));
  const auto cdfs = analysis::ColdStartTimeCdfs(result.store);
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(cs, trace::RegionName(static_cast<trace::RegionId>(r)),
                             cdfs[static_cast<size_t>(r)]);
  }
  analysis::AddQuantileRow(cs, "all", cdfs.back());
  std::printf("%s\n", cs.Render().c_str());

  // Where do cold starts come from? (Figure 8e, region 2.)
  const auto shares =
      analysis::ComputeGroupShares(result.store, /*region=*/1, analysis::GroupAxis::kRuntime);
  TextTable rt({"runtime (R2)", "share of pods", "share of cold starts", "share of functions"});
  for (int k = 0; k < trace::kNumRuntimes; ++k) {
    rt.Row()
        .Cell(analysis::KeyName(analysis::GroupAxis::kRuntime, k))
        .Cell(shares.pods[static_cast<size_t>(k)], 3)
        .Cell(shares.cold_starts[static_cast<size_t>(k)], 3)
        .Cell(shares.functions[static_cast<size_t>(k)], 3);
  }
  std::printf("%s", rt.Render().c_str());
  return 0;
}
