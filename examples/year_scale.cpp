// Year-scale run: the streaming trace sink's reason to exist.
//
// Simulates N months (default 12 — ~12x the paper's dataset span) and reports the
// cold-start picture from StreamingAggregates: per-region counters and
// histogram-quantile tables produced in O(1) memory, where a full-trace run of the
// same scenario materializes hundreds of MB of record tables and blows the RSS
// budget (the CI smoke test runs this binary under a ulimit that only the
// streaming mode fits; pass --full to watch the other mode exceed it).
//
// With --checkpoint DIR the run is crash-safe: state snapshots into DIR at
// every day boundary, SIGINT/SIGTERM trigger a final checkpoint instead of
// losing the run, and re-invoking with the same DIR resumes where it stopped
// (final results bit-identical to an uninterrupted run).
//
// Usage: year_scale [months] [scale] [--full] [--checkpoint DIR]
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "checkpoint/checkpoint.h"
#include "common/env.h"
#include "common/rusage.h"
#include "core/coldstart_lab.h"
#include "trace/streaming_aggregates.h"

using namespace coldstart;

namespace {

// Signal handlers may only touch lock-free state; the simulation loop polls
// this at day boundaries and shuts down through the normal checkpoint path.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

void PrintReport(const trace::StreamingAggregates& agg) {
  TextTable overview({"region", "functions", "requests", "cold starts", "pods",
                      "pod-hours"});
  for (size_t r = 0; r < agg.num_regions(); ++r) {
    const auto region = static_cast<trace::RegionId>(r);
    const trace::StreamCounters& c = agg.region(region);
    overview.Row()
        .Cell(trace::RegionName(region))
        .Cell(agg.functions_in_region(region))
        .Cell(c.requests)
        .Cell(c.cold_starts)
        .Cell(c.pods)
        .Cell(static_cast<double>(c.pod_lifetime_sum_us) / 3.6e9, 1);
  }
  std::printf("%s\n", overview.Render().c_str());

  TextTable cs(analysis::QuantileHeaders("cold start time (s)"));
  for (size_t r = 0; r < agg.num_regions(); ++r) {
    const auto region = static_cast<trace::RegionId>(r);
    analysis::AddQuantileRow(cs, trace::RegionName(region),
                             agg.cold_start_hist(region));
  }
  analysis::AddQuantileRow(cs, "all", agg.MergedColdStartHist());
  std::printf("%s\n", cs.Render().c_str());

  TextTable groups(analysis::QuantileHeaders("trigger group, cold starts (s)"));
  for (int g = 0; g < trace::kNumTriggerGroups; ++g) {
    const auto group = static_cast<trace::TriggerGroup>(g);
    analysis::AddQuantileRow(groups, trace::TriggerGroupName(group),
                             agg.GroupColdStartHist(group));
  }
  std::printf("%s\n", groups.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int months = 12;
  double scale = 0.05;
  bool full = false;
  std::string checkpoint_dir;
  int positional = 0;
  // Strict parsing: this binary backs the ulimit-enforced memory-contract test,
  // where a typo'd argument degrading to a 0-day no-op run would pass vacuously.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "year_scale: --checkpoint needs a directory\n");
        return 2;
      }
      checkpoint_dir = argv[++i];
    } else if (positional == 0) {
      const std::optional<int64_t> parsed = ParseInt(argv[i]);
      if (!parsed.has_value() || *parsed < 1 || *parsed > 1200) {
        std::fprintf(stderr, "year_scale: bad months \"%s\" (want 1..1200)\n", argv[i]);
        return 2;
      }
      months = static_cast<int>(*parsed);
      ++positional;
    } else {
      const std::optional<double> parsed = ParseDouble(argv[i]);
      if (!parsed.has_value() || !(*parsed > 0.0)) {
        std::fprintf(stderr, "year_scale: bad scale \"%s\" (want > 0)\n", argv[i]);
        return 2;
      }
      scale = *parsed;
      ++positional;
    }
  }

  core::ScenarioConfig config;
  config.days = (months * 365) / 12;
  config.scale = scale;
  config.trace_mode = full ? core::TraceMode::kFull : core::TraceMode::kStreaming;

  std::printf("Simulating %d months (%d days) at %.2fx scale, %s trace mode...\n",
              months, config.days, scale, full ? "FULL" : "STREAMING");
  core::Experiment experiment(config);

  core::CheckpointPolicy ckpt;
  core::ExperimentResult result;
  if (!checkpoint_dir.empty()) {
    ckpt.every_n_days = 1;
    ckpt.dir = checkpoint_dir;
    ckpt.stop = &g_stop;
    // SIGINT/SIGTERM now mean "checkpoint and stop at the next day boundary",
    // not "lose the run"; one simulated day completes in well under a second
    // at any sane scale, so the shutdown is prompt.
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    checkpoint::Manifest manifest;
    if (checkpoint::ReadManifest(checkpoint_dir, &manifest)) {
      std::printf("Resuming from checkpoints in %s...\n", checkpoint_dir.c_str());
      result = experiment.ResumeFrom(checkpoint_dir, nullptr, 0, &ckpt);
    } else {
      result = experiment.Run(nullptr, 0, &ckpt);
    }
  } else {
    result = experiment.Run();
  }

  if (result.interrupted_at_day >= 0) {
    std::printf("Interrupted: checkpointed through day %lld in %s. "
                "Re-run with the same --checkpoint dir to resume.\n",
                static_cast<long long>(result.interrupted_at_day),
                checkpoint_dir.c_str());
    return 130;
  }

  std::printf("Done: %llu events in %.2fs wall (%.1f Mevents/s), peak RSS %.1f MB, "
              "peak VM %.1f MB.\n\n",
              static_cast<unsigned long long>(result.events_processed),
              result.sim_wall_seconds,
              static_cast<double>(result.events_processed) / 1e6 /
                  (result.sim_wall_seconds > 0 ? result.sim_wall_seconds : 1.0),
              PeakRssMb(), PeakVmMb());

  // Both modes render the identical report: a full-trace run folds its store
  // through the same sink the streaming run filled on the fly.
  const trace::StreamingAggregates derived =
      full ? trace::AggregatesFromStore(result.store) : trace::StreamingAggregates();
  const trace::StreamingAggregates& agg = full ? derived : result.streaming;
  PrintReport(agg);

  std::printf("streaming sink footprint: %.1f KB%s\n",
              static_cast<double>(agg.ApproxBytes()) / 1024.0,
              full ? " (derived post-hoc from the full store)" : "");
  return 0;
}
