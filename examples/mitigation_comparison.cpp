// Mitigation comparison: evaluates the paper's §5 optimization directions against the
// production baseline on one scenario, combining several policies via CompositePolicy.
// The five policy evaluations run concurrently on the ParallelSweep work queue, and
// each experiment additionally shards its regions across its share of the pool
// (COLDSTART_THREADS overrides the pool size).
//
// Usage: mitigation_comparison [days] [scale]
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <numeric>

#include "core/coldstart_lab.h"

using namespace coldstart;

namespace {

struct Row {
  std::string name;
  int64_t cold_starts = 0;
  double p50 = 0, p99 = 0;
  int64_t prewarms = 0;
  double pod_hours = 0;
};

Row Evaluate(const std::string& name, const core::ScenarioConfig& config,
             platform::PlatformPolicy* policy, int num_threads) {
  core::Experiment experiment(config);
  const auto result = experiment.Run(policy, num_threads);
  Row row;
  row.name = name;
  row.cold_starts = std::accumulate(result.visible_cold_starts.begin(),
                                    result.visible_cold_starts.end(), int64_t{0});
  row.prewarms = std::accumulate(result.prewarm_spawns.begin(),
                                 result.prewarm_spawns.end(), int64_t{0});
  const auto cdfs = analysis::ColdStartTimeCdfs(result.store);
  row.p50 = cdfs.back().Quantile(0.5);
  row.p99 = cdfs.back().Quantile(0.99);
  for (const auto& p : result.store.pods()) {
    row.pod_hours += ToSeconds(p.death_time - p.cold_start_begin) / 3600.0;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioConfig config;
  config.days = argc > 1 ? std::atoi(argv[1]) : 7;
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.4;
  config.record_requests = false;
  std::printf("Comparing mitigation policies on %d days at %.2fx scale (%d threads)...\n\n",
              config.days, config.scale, core::ParallelSweep::DefaultThreads());

  // Policy factories rather than policy objects: each sweep job builds its own
  // instance on its worker thread, so the evaluations are fully independent.
  using PolicyFactory = std::function<std::unique_ptr<platform::PlatformPolicy>()>;
  const std::pair<std::string, PolicyFactory> cases[] = {
      {"baseline (production defaults)", nullptr},
      {"timer-aware prewarm",
       [] { return std::make_unique<policy::TimerAwarePrewarmPolicy>(); }},
      {"dynamic keep-alive",
       [] { return std::make_unique<policy::DynamicKeepAlivePolicy>(); }},
      {"pool prediction (seasonal)",
       [] { return std::make_unique<policy::PoolPredictionPolicy>(); }},
      {"composite (all of the above)",
       []() -> std::unique_ptr<platform::PlatformPolicy> {
         auto combo = std::make_unique<policy::CompositePolicy>();
         combo->Add(std::make_unique<policy::TimerAwarePrewarmPolicy>())
             .Add(std::make_unique<policy::DynamicKeepAlivePolicy>())
             .Add(std::make_unique<policy::WorkflowPrewarmPolicy>())
             .Add(std::make_unique<policy::PeakShavingPolicy>());
         return combo;
       }},
  };
  constexpr size_t kNumCases = std::size(cases);

  std::vector<Row> rows(kNumCases);
  core::ParallelSweep sweep;
  const int inner_threads =
      std::max(1, sweep.num_threads() / static_cast<int>(kNumCases));
  for (size_t i = 0; i < kNumCases; ++i) {
    sweep.Add([&, i] {
      const auto policy = cases[i].second ? cases[i].second() : nullptr;
      rows[i] = Evaluate(cases[i].first, config, policy.get(), inner_threads);
    });
  }
  sweep.Run();

  TextTable t({"policy", "cold starts", "p50 (s)", "p99 (s)", "prewarms", "pod-hours",
               "cold starts vs baseline"});
  const double baseline = static_cast<double>(rows[0].cold_starts);
  for (const auto& r : rows) {
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%",
                  100.0 * (static_cast<double>(r.cold_starts) / baseline - 1.0));
    t.Row()
        .Cell(r.name)
        .Cell(r.cold_starts)
        .Cell(r.p50, 3)
        .Cell(r.p99, 2)
        .Cell(r.prewarms)
        .Cell(r.pod_hours, 1)
        .Cell(std::string(delta));
  }
  std::printf("%s", t.Render().c_str());
  return 0;
}
