// Cost-vs-latency Pareto frontier over the full mitigation policy family —
// fig17's utility ratio turned into the complete trade-off study. Every
// candidate (baseline, each §5 mitigation, composites, and the SPES-style
// forecaster at several confidence/horizon settings) runs over the same
// scenario on a ParallelSweep; each becomes one point with cost = the
// resource-cost ledger's pod-seconds + warm-idle-seconds and latency = p99
// cold-start from the streaming histogram. The non-dominated frontier is
// rendered as a table and the full point set written as CSV.
//
// Every evaluation is a deterministic Experiment::Run: the table, frontier,
// and CSV are bit-identical at any thread count (serial == K=4 sharded).
//
// Usage: pareto_frontier [days] [scale] [cache_dir]
//   cache_dir (optional) persists per-point evaluations keyed by
//   (scenario, policy config) fingerprints — see core/frontier.h.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/env.h"
#include "core/coldstart_lab.h"
#include "core/frontier.h"
#include "policy/forecast.h"

using namespace coldstart;

namespace {

core::FrontierCandidate Forecast(const std::string& name,
                                 double min_confidence, SimDuration horizon) {
  policy::ForecastPrewarmPolicy::Options options;
  options.forecaster.min_confidence = min_confidence;
  options.max_horizon = horizon;
  return {name,
          [options] { return std::make_unique<policy::ForecastPrewarmPolicy>(options); },
          options.Fingerprint()};
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioConfig config;
  config.days = 3;
  config.scale = 0.2;
  if (argc > 1) {
    const auto days = ParseInt(argv[1]);
    if (!days || *days < 1) {
      std::fprintf(stderr, "pareto_frontier: bad days '%s'\n", argv[1]);
      return 2;
    }
    config.days = static_cast<int>(*days);
  }
  if (argc > 2) {
    const auto scale = ParseDouble(argv[2]);
    if (!scale || *scale <= 0) {
      std::fprintf(stderr, "pareto_frontier: bad scale '%s'\n", argv[2]);
      return 2;
    }
    config.scale = *scale;
  }
  const std::string cache_dir = argc > 3 ? argv[3] : std::string();

  std::vector<core::FrontierCandidate> candidates;
  candidates.push_back({"baseline", nullptr, 0});
  candidates.push_back({"keepalive-dynamic",
                        [] { return std::make_unique<policy::DynamicKeepAlivePolicy>(); },
                        HashString("keepalive-dynamic")});
  candidates.push_back({"prewarm-timer",
                        [] { return std::make_unique<policy::TimerAwarePrewarmPolicy>(); },
                        HashString("prewarm-timer")});
  candidates.push_back({"prewarm-profile",
                        [] { return std::make_unique<policy::ProfilePrewarmPolicy>(); },
                        HashString("prewarm-profile")});
  candidates.push_back({"workflow-prewarm",
                        [] { return std::make_unique<policy::WorkflowPrewarmPolicy>(); },
                        HashString("workflow-prewarm")});
  candidates.push_back({"provisioned",
                        [] { return std::make_unique<policy::ProvisionedConcurrencyPolicy>(); },
                        HashString("provisioned")});
  candidates.push_back({"peak-shaving",
                        [] { return std::make_unique<policy::PeakShavingPolicy>(); },
                        HashString("peak-shaving")});
  candidates.push_back({"pool-prediction",
                        [] { return std::make_unique<policy::PoolPredictionPolicy>(); },
                        HashString("pool-prediction")});
  candidates.push_back({"composite-classic",
                        [] {
                          auto combo = std::make_unique<policy::CompositePolicy>();
                          combo->Add(std::make_unique<policy::TimerAwarePrewarmPolicy>())
                              .Add(std::make_unique<policy::DynamicKeepAlivePolicy>())
                              .Add(std::make_unique<policy::WorkflowPrewarmPolicy>())
                              .Add(std::make_unique<policy::PeakShavingPolicy>());
                          return combo;
                        },
                        HashString("composite-classic")});
  candidates.push_back(Forecast("forecast-c50-h6h", 0.5, 6 * kHour));
  candidates.push_back(Forecast("forecast-c70-h12h", 0.7, 12 * kHour));
  candidates.push_back(Forecast("forecast-c90-h24h", 0.9, 24 * kHour));
  {
    policy::ForecastPrewarmPolicy::Options options;
    candidates.push_back(
        {"forecast+workflow",
         [options] {
           auto combo = std::make_unique<policy::CompositePolicy>();
           combo->Add(std::make_unique<policy::ForecastPrewarmPolicy>(options))
               .Add(std::make_unique<policy::WorkflowPrewarmPolicy>());
           return combo;
         },
         MixHash(options.Fingerprint(), HashString("forecast+workflow"))});
  }

  std::printf(
      "Sweeping %zu policy candidates over %d days at %.2fx scale "
      "(%d threads)...\n\n",
      candidates.size(), config.days, config.scale,
      core::ParallelSweep::DefaultThreads());

  const core::FrontierResult result =
      core::RunFrontier(config, candidates, /*num_threads=*/0, cache_dir);

  TextTable all({"policy", "cold starts", "p50 (s)", "p99 (s)", "pod-hours",
                 "idle-hours", "cost (pod+idle h)", "frontier"});
  for (const core::FrontierPoint& p : result.points) {
    all.Row()
        .Cell(p.name)
        .Cell(p.cold_starts)
        .Cell(p.p50_cold_start_s, 3)
        .Cell(p.p99_cold_start_s, 2)
        .Cell(p.pod_seconds / 3600.0, 1)
        .Cell(p.warm_idle_seconds / 3600.0, 1)
        .Cell(p.cost() / 3600.0, 1)
        .Cell(std::string(p.on_frontier ? "*" : ""));
  }
  std::printf("%s\n", all.Render().c_str());

  std::printf("Non-dominated frontier (cost ascending, p99 descending):\n");
  TextTable frontier({"policy", "cost (pod+idle h)", "p99 (s)", "cold starts"});
  for (const size_t idx : result.frontier) {
    const core::FrontierPoint& p = result.points[idx];
    frontier.Row()
        .Cell(p.name)
        .Cell(p.cost() / 3600.0, 1)
        .Cell(p.p99_cold_start_s, 2)
        .Cell(p.cold_starts);
  }
  std::printf("%s\n", frontier.Render().c_str());

  const std::string csv_path = "pareto_frontier.csv";
  const std::string csv = core::FrontierCsv(result);
  AtomicFile csv_file(csv_path);
  if (csv_file.ok() && csv_file.Write(csv.data(), csv.size()) &&
      csv_file.Commit()) {
    std::printf("Wrote %zu points to %s\n", result.points.size(),
                csv_path.c_str());
  } else {
    std::fprintf(stderr, "pareto_frontier: failed to write %s\n",
                 csv_path.c_str());
    return 1;
  }
  return 0;
}
