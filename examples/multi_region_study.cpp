// Multi-region cold-start study: the paper's §4 analysis pipeline end to end.
//
// Runs the full 5-region scenario (cached; a cache miss simulates the regions in
// parallel on the sharded experiment runner), then walks through the cross-region
// comparison: cold-start distributions, dominant components, component correlations,
// and the small/large pool contrast. The per-region analysis passes themselves run
// concurrently on the ParallelSweep work queue — regions are independent for every
// statistic below, the same property the sharded simulator exploits.
//
// Usage: multi_region_study [cache_dir]
#include <array>
#include <cstdio>

#include "core/coldstart_lab.h"

using namespace coldstart;

namespace {

struct RegionAnalysis {
  double component_means[4] = {0, 0, 0, 0};  // alloc, code, dep, sched.
  size_t cold_start_count = 0;
  int strongest_coupling_var = 1;
  double strongest_coupling_rho = 0;
  double pool_ratio = 0;  // Large/small median cold-start ratio.
};

}  // namespace

int main(int argc, char** argv) {
  const std::string cache_dir =
      argc > 1 ? argv[1] : core::Experiment::DefaultCacheDir();
  core::Experiment experiment(core::PaperScenario());
  const core::ExperimentResult result = experiment.RunCached(cache_dir);
  const auto& store = result.store;
  std::printf("Loaded %zu cold starts across %d regions%s.\n\n",
              store.cold_starts().size(), trace::kNumRegions,
              result.from_cache ? " (cached)" : "");

  // Each region's full analysis block is independent: compute all of them
  // concurrently, then print in region order.
  std::array<RegionAnalysis, trace::kNumRegions> regions;
  const auto cdfs = analysis::ColdStartTimeCdfs(store);
  core::ParallelFor(trace::kNumRegions, [&store, &regions](size_t ri) {
    const int r = static_cast<int>(ri);
    RegionAnalysis& out = regions[ri];
    for (const auto& c : store.cold_starts()) {
      if (c.region != r) {
        continue;
      }
      out.component_means[0] += ToSeconds(c.pod_alloc_us);
      out.component_means[1] += ToSeconds(c.deploy_code_us);
      out.component_means[2] += ToSeconds(c.deploy_dep_us);
      out.component_means[3] += ToSeconds(c.scheduling_us);
      ++out.cold_start_count;
    }
    for (double& m : out.component_means) {
      m = out.cold_start_count > 0 ? m / static_cast<double>(out.cold_start_count) : 0;
    }
    const auto m = analysis::ComponentCorrelationMatrix(store, r);
    for (int j = 2; j <= 4; ++j) {
      if (m[0][static_cast<size_t>(j)].rho >
          m[0][static_cast<size_t>(out.strongest_coupling_var)].rho) {
        out.strongest_coupling_var = j;
      }
    }
    out.strongest_coupling_rho =
        m[0][static_cast<size_t>(out.strongest_coupling_var)].rho;
    const double small = analysis::PoolSizeDistribution(
                             store, r, trace::PoolSizeClass::kSmall,
                             analysis::ColdStartComponent::kTotal)
                             .Quantile(0.5);
    const double large = analysis::PoolSizeDistribution(
                             store, r, trace::PoolSizeClass::kLarge,
                             analysis::ColdStartComponent::kTotal)
                             .Quantile(0.5);
    out.pool_ratio = small > 0 ? large / small : 0.0;
  });

  // 1. Cold-start time distributions by region (Fig. 10a).
  TextTable dist(analysis::QuantileHeaders("cold start (s)"));
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(dist, trace::RegionName(static_cast<trace::RegionId>(r)),
                             cdfs[static_cast<size_t>(r)]);
  }
  std::printf("Cold-start time by region:\n%s\n", dist.Render().c_str());

  // 2. Dominant components (Fig. 11's cross-region contrast).
  TextTable comp({"region", "mean alloc (s)", "mean code", "mean dep", "mean sched",
                  "dominant component"});
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const RegionAnalysis& a = regions[static_cast<size_t>(r)];
    if (a.cold_start_count == 0) {
      continue;
    }
    const char* names[4] = {"pod allocation", "code deploy", "dependency deploy",
                            "scheduling"};
    int best = 0;
    for (int i = 1; i < 4; ++i) {
      if (a.component_means[i] > a.component_means[best]) {
        best = i;
      }
    }
    comp.Row()
        .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
        .Cell(a.component_means[0], 3)
        .Cell(a.component_means[1], 3)
        .Cell(a.component_means[2], 3)
        .Cell(a.component_means[3], 3)
        .Cell(std::string(names[best]));
  }
  std::printf("Component means by region:\n%s\n", comp.Render().c_str());

  // 3. Which component tracks demand? (Fig. 12's strongest couplings.)
  std::printf("Strongest total<->component coupling per region (Spearman):\n");
  const auto& names = analysis::CorrelationVarNames();
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const RegionAnalysis& a = regions[static_cast<size_t>(r)];
    std::printf("  %s: %s (rho=%.2f)\n",
                trace::RegionName(static_cast<trace::RegionId>(r)).c_str(),
                names[static_cast<size_t>(a.strongest_coupling_var)].c_str(),
                a.strongest_coupling_rho);
  }

  // 4. Small vs large pools (Fig. 13).
  std::printf("\nLarge/small median cold-start ratio per region:\n");
  for (int r = 0; r < trace::kNumRegions; ++r) {
    std::printf("  %s: %.2f\n", trace::RegionName(static_cast<trace::RegionId>(r)).c_str(),
                regions[static_cast<size_t>(r)].pool_ratio);
  }
  return 0;
}
