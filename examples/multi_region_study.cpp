// Multi-region cold-start study: the paper's §4 analysis pipeline end to end.
//
// Runs the full 5-region scenario (cached), then walks through the cross-region
// comparison: cold-start distributions, dominant components, component correlations,
// and the small/large pool contrast.
//
// Usage: multi_region_study [cache_dir]
#include <cstdio>

#include "core/coldstart_lab.h"

using namespace coldstart;

int main(int argc, char** argv) {
  const std::string cache_dir =
      argc > 1 ? argv[1] : core::Experiment::DefaultCacheDir();
  core::Experiment experiment(core::PaperScenario());
  const core::ExperimentResult result = experiment.RunCached(cache_dir);
  const auto& store = result.store;
  std::printf("Loaded %zu cold starts across %d regions%s.\n\n",
              store.cold_starts().size(), trace::kNumRegions,
              result.from_cache ? " (cached)" : "");

  // 1. Cold-start time distributions by region (Fig. 10a).
  TextTable dist(analysis::QuantileHeaders("cold start (s)"));
  const auto cdfs = analysis::ColdStartTimeCdfs(store);
  for (int r = 0; r < trace::kNumRegions; ++r) {
    analysis::AddQuantileRow(dist, trace::RegionName(static_cast<trace::RegionId>(r)),
                             cdfs[static_cast<size_t>(r)]);
  }
  std::printf("Cold-start time by region:\n%s\n", dist.Render().c_str());

  // 2. Dominant components (Fig. 11's cross-region contrast).
  TextTable comp({"region", "mean alloc (s)", "mean code", "mean dep", "mean sched",
                  "dominant component"});
  for (int r = 0; r < trace::kNumRegions; ++r) {
    double alloc = 0, code = 0, dep = 0, sched = 0;
    size_t n = 0;
    for (const auto& c : store.cold_starts()) {
      if (c.region != r) {
        continue;
      }
      alloc += ToSeconds(c.pod_alloc_us);
      code += ToSeconds(c.deploy_code_us);
      dep += ToSeconds(c.deploy_dep_us);
      sched += ToSeconds(c.scheduling_us);
      ++n;
    }
    if (n == 0) {
      continue;
    }
    const double vals[4] = {alloc / n, code / n, dep / n, sched / n};
    const char* names[4] = {"pod allocation", "code deploy", "dependency deploy",
                            "scheduling"};
    int best = 0;
    for (int i = 1; i < 4; ++i) {
      if (vals[i] > vals[best]) {
        best = i;
      }
    }
    comp.Row()
        .Cell(trace::RegionName(static_cast<trace::RegionId>(r)))
        .Cell(vals[0], 3)
        .Cell(vals[1], 3)
        .Cell(vals[2], 3)
        .Cell(vals[3], 3)
        .Cell(std::string(names[best]));
  }
  std::printf("Component means by region:\n%s\n", comp.Render().c_str());

  // 3. Which component tracks demand? (Fig. 12's strongest couplings.)
  std::printf("Strongest total<->component coupling per region (Spearman):\n");
  const auto& names = analysis::CorrelationVarNames();
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const auto m = analysis::ComponentCorrelationMatrix(store, r);
    int best = 1;
    for (int j = 2; j <= 4; ++j) {
      if (m[0][static_cast<size_t>(j)].rho > m[0][static_cast<size_t>(best)].rho) {
        best = j;
      }
    }
    std::printf("  %s: %s (rho=%.2f)\n",
                trace::RegionName(static_cast<trace::RegionId>(r)).c_str(),
                names[static_cast<size_t>(best)].c_str(),
                m[0][static_cast<size_t>(best)].rho);
  }

  // 4. Small vs large pools (Fig. 13).
  std::printf("\nLarge/small median cold-start ratio per region:\n");
  for (int r = 0; r < trace::kNumRegions; ++r) {
    const double small = analysis::PoolSizeDistribution(
                             store, r, trace::PoolSizeClass::kSmall,
                             analysis::ColdStartComponent::kTotal)
                             .Quantile(0.5);
    const double large = analysis::PoolSizeDistribution(
                             store, r, trace::PoolSizeClass::kLarge,
                             analysis::ColdStartComponent::kTotal)
                             .Quantile(0.5);
    std::printf("  %s: %.2f\n", trace::RegionName(static_cast<trace::RegionId>(r)).c_str(),
                small > 0 ? large / small : 0.0);
  }
  return 0;
}
