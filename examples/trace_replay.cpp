// Trace replay driver: record a run's arrival stream, replay it, and verify the
// round trip — or drive the simulator from an external invocation trace.
//
// Usage:
//   trace_replay [out_dir] [days] [scale]
//       Simulates a scenario, exports its arrival stream to
//       <out_dir>/arrivals.csv, replays it exactly (expect bit-identity) and at
//       0.5x rate, and prints the comparison.
//   trace_replay --external <trace.csv> [days] [scale] [timestamp_scale]
//       Replays an external "timestamp,function,region,duration" CSV remapped
//       onto the scenario's population (timestamp_scale converts the trace's
//       clock to microseconds, e.g. 1e6 for seconds).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/coldstart_lab.h"

using namespace coldstart;

namespace {

int64_t TotalColdStarts(const core::ExperimentResult& r) {
  int64_t total = 0;
  for (const int64_t v : r.visible_cold_starts) {
    total += v;
  }
  return total;
}

void PrintSummary(const char* name, const core::ExperimentResult& r) {
  std::printf("%-20s %10zu requests %8" PRId64 " cold starts   digest %016" PRIx64 "\n",
              name, r.store.requests().size(), TotalColdStarts(r),
              static_cast<uint64_t>(trace::Digest(r.store)));
}

int FailOnCsvError(const std::string& path, const trace::CsvError& error) {
  std::fprintf(stderr, "%s:%" PRId64 ": %s\n", path.c_str(), error.line,
               error.message.c_str());
  return 1;
}

int RunExternal(int argc, char** argv) {
  const std::string path = argv[2];
  core::ScenarioConfig config;
  config.days = argc > 3 ? std::atoi(argv[3]) : 7;
  config.scale = argc > 4 ? std::atof(argv[4]) : 0.3;
  workload::ReplayOptions options;
  options.timestamp_scale = argc > 5 ? std::atof(argv[5]) : 1.0;

  trace::CsvError error;
  std::shared_ptr<workload::ReplaySource> source =
      workload::ReplaySource::FromExternalCsv(path, options, &error);
  if (source == nullptr) {
    return FailOnCsvError(path, error);
  }
  std::printf("Replaying %zu recorded invocations from %s...\n",
              source->raw_event_count(), path.c_str());
  config.workload = source;
  const auto result = core::Experiment(config).Run();
  PrintSummary("external replay", result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::strcmp(argv[1], "--external") == 0) {
    return RunExternal(argc, argv);
  }

  const std::string out_dir = argc > 1 ? argv[1] : "replay_out";
  core::ScenarioConfig config;
  config.days = argc > 2 ? std::atoi(argv[2]) : 3;
  config.scale = argc > 3 ? std::atof(argv[3]) : 0.2;

  std::printf("Simulating %d days at %.2fx scale (synthetic workload)...\n",
              config.days, config.scale);
  const auto original = core::Experiment(config).Run();
  PrintSummary("synthetic", original);

  // Export the arrival stream the run consumed (regenerated deterministically
  // from the config — arrivals are a pure function of it), drained day by day
  // through the chunked stream rather than materialized.
  core::WorkloadStream workload_stream = core::OpenWorkloadStream(config);
  std::filesystem::create_directories(out_dir);
  const std::string csv = (std::filesystem::path(out_dir) / "arrivals.csv").string();
  size_t arrival_count = 0;
  if (!workload::WriteArrivalsCsv(*workload_stream.arrivals, csv, &arrival_count)) {
    std::fprintf(stderr, "failed to write %s\n", csv.c_str());
    return 1;
  }
  std::printf("Exported %zu arrivals to %s\n", arrival_count, csv.c_str());

  // Exact replay: must reproduce the run bit for bit.
  trace::CsvError error;
  core::ScenarioConfig replay_config = config;
  replay_config.workload = workload::ReplaySource::FromArrivalsCsv(csv, {}, &error);
  if (replay_config.workload == nullptr) {
    return FailOnCsvError(csv, error);
  }
  const auto replayed = core::Experiment(replay_config).Run();
  PrintSummary("replay (exact)", replayed);
  const bool identical = trace::Digest(replayed.store) == trace::Digest(original.store);
  std::printf("round trip bit-identical: %s\n", identical ? "yes" : "NO — BUG");

  // Rate-scaled replay: the same recorded day at half the load.
  workload::ReplayOptions half;
  half.rate_scale = 0.5;
  core::ScenarioConfig half_config = config;
  half_config.workload = workload::ReplaySource::FromArrivalsCsv(csv, half, &error);
  if (half_config.workload == nullptr) {
    return FailOnCsvError(csv, error);
  }
  PrintSummary("replay (0.5x rate)", core::Experiment(half_config).Run());

  return identical ? 0 : 1;
}
