// Dataset export: writes a simulated month in the released dataset's format (hashed
// IDs, Table 1 column layout) so external analysis tooling can consume it — plus
// the run's arrival stream in numeric form (arrivals.csv), which trace_replay /
// ReplaySource can stream back in to reproduce the run exactly.
//
// Usage: trace_export [output_dir] [days] [scale]
#include <cstdio>
#include <filesystem>

#include "core/coldstart_lab.h"
#include "trace/csv.h"

using namespace coldstart;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "exported_trace";
  core::ScenarioConfig config;
  config.days = argc > 2 ? std::atoi(argv[2]) : 7;
  config.scale = argc > 3 ? std::atof(argv[3]) : 0.3;

  std::printf("Simulating %d days at %.2fx scale for export...\n", config.days,
              config.scale);
  core::Experiment experiment(config);
  const auto result = experiment.Run();

  std::filesystem::create_directories(out_dir);
  trace::CsvExportOptions opts;
  opts.hash_ids = true;  // Release format: privacy-hashed identifiers.
  const auto path = [&](const char* name) {
    return (std::filesystem::path(out_dir) / name).string();
  };
  const bool ok = trace::WriteRequestsCsv(result.store, path("requests.csv"), opts) &&
                  trace::WriteColdStartsCsv(result.store, path("cold_starts.csv"), opts) &&
                  trace::WriteFunctionsCsv(result.store, path("functions.csv"), opts) &&
                  trace::WritePodsCsv(result.store, path("pods.csv"), opts);
  if (!ok) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  // The arrival stream is numeric (never hashed): it addresses this config's
  // population directly, which is what makes the replay round trip exact. It is
  // drained chunk by chunk straight into the CSV — the run's arrivals are never
  // materialized, so export works at horizons where the vector would not fit.
  core::WorkloadStream workload_stream = core::OpenWorkloadStream(config);
  size_t arrival_count = 0;
  if (!workload::WriteArrivalsCsv(*workload_stream.arrivals, path("arrivals.csv"),
                                  &arrival_count)) {
    std::fprintf(stderr, "arrival export failed\n");
    return 1;
  }
  std::printf("Wrote %s/{requests,cold_starts,functions,pods,arrivals}.csv:\n",
              out_dir.c_str());
  std::printf("  %zu requests, %zu cold starts, %zu functions, %zu pod lifetimes, "
              "%zu arrivals\n",
              result.store.requests().size(), result.store.cold_starts().size(),
              result.store.functions().size(), result.store.pods().size(),
              arrival_count);
  return 0;
}
