// Provider comparison: prices the same workload on different cold-start
// architectures (YuanRong baseline, AWS-like, GCP-like, Azure-like presets) and
// crosses each with the mitigation axis — none, provisioned concurrency,
// snapshot/restore, timer-aware prewarm. The resource-cost ledger supplies the
// other side of every trade: pod-hours, warm-idle share, and the snapshot
// memory bill that a pure latency table would hide.
//
// Runs in streaming mode (quantiles from the merged cold-start histograms), all
// provider x mitigation cells concurrently on the ParallelSweep work queue.
//
// Usage: provider_comparison [days] [scale]
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/coldstart_lab.h"

using namespace coldstart;

namespace {

struct Row {
  std::string provider;
  std::string mitigation;
  int64_t cold_starts = 0;
  double p50 = 0, p99 = 0;
  trace::RegionCostRecord cost;  // Ledger totals across regions.
};

enum class Mitigation { kNone, kProvisioned, kSnapshot, kPrewarm };

const char* MitigationName(Mitigation m) {
  switch (m) {
    case Mitigation::kNone:
      return "baseline";
    case Mitigation::kProvisioned:
      return "provisioned";
    case Mitigation::kSnapshot:
      return "snapshot";
    case Mitigation::kPrewarm:
      return "prewarm";
  }
  return "?";
}

Row Evaluate(const core::ScenarioConfig& base, workload::ColdStartModelKind kind,
             const char* provider_name, Mitigation mitigation, int num_threads) {
  core::ScenarioConfig config = base;
  for (auto& profile : config.profiles) {
    profile.model.kind = kind;
    // Snapshot/restore is a model property, not a policy: the platform pages a
    // pre-initialized image back in instead of deploying code + dependencies.
    profile.model.snapshot_restore = (mitigation == Mitigation::kSnapshot);
  }
  std::unique_ptr<platform::PlatformPolicy> policy;
  if (mitigation == Mitigation::kProvisioned) {
    policy = std::make_unique<policy::ProvisionedConcurrencyPolicy>();
  } else if (mitigation == Mitigation::kPrewarm) {
    policy = std::make_unique<policy::TimerAwarePrewarmPolicy>();
  }

  const core::Experiment experiment(config);
  const auto result = experiment.Run(policy.get(), num_threads);

  Row row;
  row.provider = provider_name;
  row.mitigation = MitigationName(mitigation);
  row.cold_starts = std::accumulate(result.visible_cold_starts.begin(),
                                    result.visible_cold_starts.end(), int64_t{0});
  const LogHistogram hist = result.streaming.MergedColdStartHist();
  if (hist.total_count() > 0) {
    row.p50 = hist.Quantile(0.5);
    row.p99 = hist.Quantile(0.99);
  }
  row.cost = result.cost_ledger.TotalRecord();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  core::ScenarioConfig config;
  config.days = argc > 1 ? std::atoi(argv[1]) : 3;
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.2;
  config.record_requests = false;
  config.trace_mode = core::TraceMode::kStreaming;

  const struct {
    workload::ColdStartModelKind kind;
    const char* name;
  } kProviders[] = {
      {workload::ColdStartModelKind::kYuanRong, "yuanrong"},
      {workload::ColdStartModelKind::kAwsLike, "aws-like"},
      {workload::ColdStartModelKind::kGcpLike, "gcp-like"},
      {workload::ColdStartModelKind::kAzureLike, "azure-like"},
  };
  const Mitigation kMitigations[] = {Mitigation::kNone, Mitigation::kProvisioned,
                                     Mitigation::kSnapshot, Mitigation::kPrewarm};
  constexpr size_t kNumCells = std::size(kProviders) * std::size(kMitigations);

  std::printf(
      "Pricing %zu provider x mitigation cells on %d days at %.2fx scale "
      "(%d threads)...\n\n",
      kNumCells, config.days, config.scale, core::ParallelSweep::DefaultThreads());

  std::vector<Row> rows(kNumCells);
  core::ParallelSweep sweep;
  const int inner_threads =
      std::max(1, sweep.num_threads() / static_cast<int>(kNumCells));
  size_t cell = 0;
  for (const auto& provider : kProviders) {
    for (const Mitigation mitigation : kMitigations) {
      const size_t i = cell++;
      sweep.Add([&, i, provider, mitigation] {
        rows[i] = Evaluate(config, provider.kind, provider.name, mitigation,
                           inner_threads);
      });
    }
  }
  sweep.Run();

  // One table: latency picture on the left, the ledger's cost columns on the
  // right. Baseline for the delta column is each provider's own unmitigated run.
  std::vector<std::string> headers = {"provider", "mitigation", "cold starts",
                                      "p50 (s)", "p99 (s)", "vs baseline"};
  for (const std::string& h : analysis::CostHeaders("x")) {
    if (h != "x") {
      headers.push_back(h);
    }
  }
  TextTable t(headers);
  for (size_t i = 0; i < kNumCells; ++i) {
    const Row& r = rows[i];
    const Row& base = rows[i - i % std::size(kMitigations)];
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%",
                  100.0 * (static_cast<double>(r.cold_starts) /
                               static_cast<double>(std::max<int64_t>(1, base.cold_starts)) -
                           1.0));
    const double pod_hours = r.cost.pod_seconds() / 3600.0;
    const double idle_hours = r.cost.warm_idle_seconds() / 3600.0;
    t.Row()
        .Cell(r.provider)
        .Cell(r.mitigation)
        .Cell(r.cold_starts)
        .Cell(r.p50, 3)
        .Cell(r.p99, 2)
        .Cell(std::string(delta))
        .Cell(pod_hours, 1)
        .Cell(idle_hours, 1)
        .Cell(pod_hours > 0 ? idle_hours / pod_hours : 0.0, 3)
        .Cell(r.cost.snapshot_mb_seconds() / (1024.0 * 3600.0), 2)
        .Cell(static_cast<uint64_t>(r.cost.scratch_creations));
  }
  std::printf("%s\n", t.Render().c_str());

  // Per-region ledger breakdown for the least and most expensive architectures'
  // snapshot runs, through the shared report helpers.
  for (size_t i = 0; i < kNumCells; ++i) {
    if (rows[i].mitigation != std::string("snapshot") ||
        rows[i].provider != std::string("yuanrong")) {
      continue;
    }
    std::printf("yuanrong + snapshot, total resource cost:\n");
    TextTable cost_table(analysis::CostHeaders("scope"));
    analysis::AddCostRow(cost_table, "all regions", rows[i].cost);
    std::printf("%s", cost_table.Render().c_str());
  }
  return 0;
}
