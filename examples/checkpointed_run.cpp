// Checkpointed runner: the smallest complete driver for the crash-safe path,
// and the knob the kill-and-resume smoke tests drive from the outside.
//
// Runs the synthetic scenario with day-boundary checkpoints in DIR. If DIR
// already holds a manifest, the run resumes from it instead of starting over;
// repeating the same command line until it prints "completed" therefore
// finishes the run no matter how many times it is killed in between.
//
//   checkpointed_run DIR [days] [scale] [--every N] [--halt D] [--streaming]
//
// --every N   checkpoint every N days (default 1).
// --halt D    arm the stop flag once day D's checkpoint commits; the run then
//             stops (with a final committed checkpoint) at the next day
//             boundary — deterministic fault injection: the run ends exactly
//             as if it had been killed there, so a driver can script
//             kill/resume cycles without racing a real signal against the
//             simulator.
// --streaming use the O(1)-memory streaming trace sink instead of kFull.
//
// Exit status: 0 completed, 3 halted at a checkpoint (resume to continue),
// 2 usage error.
#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "checkpoint/checkpoint.h"
#include "common/env.h"
#include "core/coldstart_lab.h"

using namespace coldstart;

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: checkpointed_run DIR [days] [scale] [--every N] "
                 "[--halt D] [--streaming]\n");
    return 2;
  }
  const std::string dir = argv[1];
  int days = 30;
  double scale = 0.05;
  int every = 1;
  int64_t halt_day = -1;
  bool streaming = false;
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--every") == 0 && i + 1 < argc) {
      const std::optional<int64_t> parsed = ParseInt(argv[++i]);
      if (!parsed.has_value() || *parsed < 1) {
        std::fprintf(stderr, "checkpointed_run: bad --every \"%s\"\n", argv[i]);
        return 2;
      }
      every = static_cast<int>(*parsed);
    } else if (std::strcmp(argv[i], "--halt") == 0 && i + 1 < argc) {
      const std::optional<int64_t> parsed = ParseInt(argv[++i]);
      if (!parsed.has_value() || *parsed < 0) {
        std::fprintf(stderr, "checkpointed_run: bad --halt \"%s\"\n", argv[i]);
        return 2;
      }
      halt_day = *parsed;
    } else if (positional == 0) {
      const std::optional<int64_t> parsed = ParseInt(argv[i]);
      if (!parsed.has_value() || *parsed < 1 || *parsed > 36500) {
        std::fprintf(stderr, "checkpointed_run: bad days \"%s\"\n", argv[i]);
        return 2;
      }
      days = static_cast<int>(*parsed);
      ++positional;
    } else {
      const std::optional<double> parsed = ParseDouble(argv[i]);
      if (!parsed.has_value() || !(*parsed > 0.0)) {
        std::fprintf(stderr, "checkpointed_run: bad scale \"%s\"\n", argv[i]);
        return 2;
      }
      scale = *parsed;
      ++positional;
    }
  }

  core::ScenarioConfig config;
  config.days = days;
  config.scale = scale;
  config.trace_mode =
      streaming ? core::TraceMode::kStreaming : core::TraceMode::kFull;

  core::CheckpointPolicy ckpt;
  ckpt.every_n_days = every;
  ckpt.dir = dir;
  ckpt.stop = &g_stop;
  if (halt_day >= 0) {
    // Deterministic kill: arm the stop flag the moment the target day's
    // checkpoint commits, so the run ends at that exact boundary.
    ckpt.on_checkpoint = [halt_day](int64_t day, uint32_t) {
      if (day >= halt_day) {
        g_stop.store(true, std::memory_order_relaxed);
      }
    };
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  core::Experiment experiment(config);
  checkpoint::Manifest manifest;
  const bool resuming = checkpoint::ReadManifest(dir, &manifest);
  if (resuming) {
    std::printf("resuming from %s\n", checkpoint::ManifestPath(dir).c_str());
  }
  const core::ExperimentResult result =
      resuming ? experiment.ResumeFrom(dir, nullptr, 0, &ckpt)
               : experiment.Run(nullptr, 0, &ckpt);

  if (result.interrupted_at_day >= 0) {
    std::printf("halted at day %" PRId64 " (checkpoint committed); rerun to resume\n",
                result.interrupted_at_day);
    return 3;
  }
  if (streaming) {
    const trace::StreamCounters& c =
        result.streaming.region(static_cast<trace::RegionId>(0));
    std::printf("completed: %d days, region0 requests=%" PRIu64
                " cold_starts=%" PRIu64 "\n",
                days, c.requests, c.cold_starts);
  } else {
    std::printf("completed: %d days, %zu requests, %zu cold starts, digest %016" PRIx64
                "\n",
                days, result.store.requests().size(),
                result.store.cold_starts().size(), trace::Digest(result.store));
  }
  return 0;
}
