#!/usr/bin/env bash
# Docs integrity gate (run by CI and by the `docs_check` ctest):
#   1. every relative markdown link in README.md and docs/*.md resolves to a file
#      that exists in the repo;
#   2. every driver source under bench/ and every example under examples/
#      appears in docs/paper-map.md, so the paper map cannot silently rot as
#      drivers are added or renamed;
#   3. every `lint:<rule>` reference in the docs names a rule that coldstart_lint
#      actually implements (checked against `--list-rules` when a binary is
#      available — $COLDSTART_LINT_BIN or build*/coldstart_lint — else against
#      the rule registry in tools/lint/lint.cc).
# Exits nonzero with a per-violation report.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

fail=0
report() {
  echo "docs-check: $*" >&2
  fail=1
}

# --- 1. Relative links resolve. ---
# Matches inline links/images `](target)`; ignores absolute URLs and pure
# in-page anchors; strips `#fragment` suffixes before the existence check.
docs=(README.md docs/*.md)
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || { report "expected doc file '$doc' is missing"; continue; }
  dir="$(dirname "$doc")"
  # One target per line; tolerate several links on one line.
  targets="$(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')"
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      report "$doc: broken relative link '$target'"
    fi
  done <<< "$targets"
done

# --- 2. Every bench driver is on the paper map. ---
map=docs/paper-map.md
if [ ! -f "$map" ]; then
  report "missing $map"
else
  for src in bench/*.cc bench/*.h; do
    [ -e "$src" ] || continue
    name="$(basename "$src")"
    if ! grep -qF "$name" "$map"; then
      report "$map: bench driver '$src' is not mentioned — add its row"
    fi
  done
  for src in examples/*.cpp; do
    [ -e "$src" ] || continue
    name="$(basename "$src")"
    if ! grep -qF "$name" "$map"; then
      report "$map: example '$src' is not mentioned — add its row"
    fi
  done
fi

# --- 3. Every lint rule named in the docs exists. ---
# Docs reference rules as `lint:<rule>` (inline code). The source of truth is
# the tool itself; the CI docs job has no build, so fall back to the registry
# literal in tools/lint/lint.cc when no binary is around.
lint_bin="${COLDSTART_LINT_BIN:-}"
if [ -z "$lint_bin" ]; then
  for cand in build/coldstart_lint build-*/coldstart_lint; do
    if [ -x "$cand" ]; then
      lint_bin="$cand"
      break
    fi
  done
fi
if [ -n "$lint_bin" ] && [ -x "$lint_bin" ]; then
  known_rules="$("$lint_bin" --list-rules | awk '{print $1}')"
else
  known_rules="$(grep -oE '^\s*\{"[a-z-]+",' tools/lint/lint.cc |
    sed -E 's/^\s*\{"//; s/",$//')"
fi
if [ -z "$known_rules" ]; then
  report "could not determine the lint rule registry (no binary, no parse)"
fi
doc_rules="$(grep -ohE '`lint:[a-z-]+`' README.md docs/*.md | sed -E 's/`lint:([a-z-]+)`/\1/' | sort -u)"
while IFS= read -r rule; do
  [ -n "$rule" ] || continue
  if ! printf '%s\n' "$known_rules" | grep -qx "$rule"; then
    report "docs reference lint rule 'lint:$rule' which coldstart_lint does not implement"
  fi
done <<< "$doc_rules"

if [ "$fail" -ne 0 ]; then
  echo "docs-check: FAILED" >&2
  exit 1
fi
echo "docs-check: OK (${#docs[@]} docs link-checked; every bench/ driver and example mapped; lint-rule refs valid)"
