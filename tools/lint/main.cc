// coldstart_lint CLI. Exit codes: 0 = clean, 1 = diagnostics, 2 = usage/IO.
//
//   coldstart_lint --root DIR    lint DIR/src (the ctest invocation)
//   coldstart_lint --list-rules  print "name  description" per rule
#include <cstdio>
#include <string>

#include "lint/lint.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: coldstart_lint --root DIR | --list-rules\n"
               "  --root DIR    lint every .h/.cc under DIR/src\n"
               "  --list-rules  print the rule registry and exit\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using coldstart::lint::Result;
  if (argc == 2 && std::string(argv[1]) == "--list-rules") {
    for (const auto& rule : coldstart::lint::Rules()) {
      std::printf("%s  %s\n", rule.name.c_str(), rule.description.c_str());
    }
    return 0;
  }
  if (argc != 3 || std::string(argv[1]) != "--root") {
    return Usage();
  }
  Result result;
  if (!coldstart::lint::LintTree(argv[2], &result)) {
    std::fprintf(stderr, "coldstart_lint: cannot read %s/src\n", argv[2]);
    return 2;
  }
  for (const auto& d : result.diagnostics) {
    std::printf("%s\n", coldstart::lint::FormatDiagnostic(d).c_str());
  }
  if (!result.allowed.empty()) {
    std::printf("-- %zu LINT-ALLOW suppression(s) in effect:\n",
                result.allowed.size());
    for (const auto& a : result.allowed) {
      std::printf("   %s:%d: [%s] %s\n", a.file.c_str(), a.line, a.rule.c_str(),
                  a.reason.c_str());
    }
  }
  if (result.diagnostics.empty()) {
    std::printf("coldstart_lint: clean (%zu suppression(s))\n",
                result.allowed.size());
    return 0;
  }
  std::fprintf(stderr, "coldstart_lint: %zu diagnostic(s)\n",
               result.diagnostics.size());
  return 1;
}
