// coldstart_lint — static analysis for the repo's determinism contracts.
//
// The contracts in docs/determinism.md (bit-identical traces across
// serial/sharded/chunked/checkpointed runs) are enforced at runtime by
// golden_trace_test and the equivalence tests, but a runtime test only catches
// a violation on the scenarios it happens to run, long after the offending
// line was written. This linter moves the common violation classes to a red
// line on the introducing PR:
//
//   wall-clock      wall-clock reads (time(), std::chrono::system_clock, ...)
//                   anywhere in src/ — simulations must consume SimTime only.
//   ambient-rng     ambient randomness (std::rand, std::random_device,
//                   standard engines) outside src/common/rng — all draws must
//                   flow through the seeded substream tree.
//   unordered-iter  iteration over std::unordered_{map,set} in
//                   output-affecting code (src/platform, src/policy,
//                   src/analysis, src/trace, src/checkpoint) — hash-iteration
//                   order must never reach a trace, aggregate, or blob.
//   serde-pair      asymmetric Save*/Restore* (and Write*/Read*)
//                   ByteWriter/ByteReader pairs — the "added a field to Save,
//                   forgot Restore" checkpoint-corruption bug class.
//   policy-hooks    PlatformPolicy subclasses with mutable state but no
//                   CloneForShard or SavePolicyState/RestorePolicyState —
//                   state that silently vanishes in sharded or checkpointed
//                   runs.
//   stale-allow     a LINT-ALLOW annotation whose rule no longer fires on
//                   that line (or that is malformed / names an unknown rule).
//
// A diagnostic is suppressed by an inline annotation on the flagged line or
// the line directly above it:
//
//   // LINT-ALLOW(rule-name): why this site is provably order/clock-safe
//
// Suppressions are recorded and reported (they double as documentation of why
// a site is safe); an annotation that stops matching anything turns into a
// stale-allow diagnostic so allows cannot rot.
//
// The analysis is deliberately lexical (comments and string literals are
// stripped; scopes are tracked by brace matching) — it needs no compiler,
// runs on the whole tree in milliseconds as a tier-1 ctest, and is precise
// enough for this codebase's house style. Known limitations are documented
// next to each rule in lint.cc.
#ifndef COLDSTART_TOOLS_LINT_LINT_H_
#define COLDSTART_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace coldstart::lint {

struct RuleInfo {
  std::string name;         // e.g. "wall-clock"; stable, referenced from docs.
  std::string description;  // One line, shown by --list-rules.
};

// The rule registry, in reporting order. check_docs.sh cross-checks every
// `lint:<rule>` reference in docs/ against this list.
const std::vector<RuleInfo>& Rules();

struct Diagnostic {
  std::string file;  // As given in FileInput::path.
  int line = 0;      // 1-based.
  std::string rule;
  std::string message;
};

// A suppressed diagnostic: the LINT-ALLOW annotation that matched plus the
// reason its author gave.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rule;
  std::string reason;
};

struct FileInput {
  // Repo-relative path; directory components decide which rules apply
  // (e.g. unordered-iter only fires under the output-affecting src/ dirs).
  std::string path;
  std::string content;
};

struct Result {
  std::vector<Diagnostic> diagnostics;  // Empty means the tree is clean.
  std::vector<Suppression> allowed;     // Recorded LINT-ALLOW uses.
};

// Lints a set of files as one unit. Cross-file context is limited to the
// paired header: rules linting "x.cc" also read declarations from "x.h" when
// both are in the set (member containers, serde counterparts).
Result LintFiles(const std::vector<FileInput>& files);

// Reads every .h/.cc under `root`/src (sorted, so output order is stable) and
// lints them. Returns false when the directory cannot be read.
bool LintTree(const std::string& root, Result* result);

// Formats one diagnostic as "path:line: [rule] message".
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace coldstart::lint

#endif  // COLDSTART_TOOLS_LINT_LINT_H_
