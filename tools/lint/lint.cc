#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

namespace coldstart::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule registry.
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"wall-clock",
     "wall-clock reads (time(), gettimeofday, std::chrono::*_clock) in simulation "
     "code; simulations consume SimTime only"},
    {"ambient-rng",
     "ambient randomness (std::rand, std::random_device, standard engines) outside "
     "src/common/rng; all draws flow through the seeded substream tree"},
    {"unordered-iter",
     "iteration over std::unordered_{map,set} in output-affecting code "
     "(src/{platform,policy,analysis,trace,checkpoint}); hash order must not reach "
     "traces, aggregates, or serialized blobs"},
    {"serde-pair",
     "asymmetric Save*/Restore* or Write*/Read* ByteWriter/ByteReader pair; the "
     "write and read call sequences must match in count and type"},
    {"policy-hooks",
     "PlatformPolicy subclass with mutable state but no CloneForShard or "
     "SavePolicyState/RestorePolicyState override (likewise ColdStartModel "
     "subclasses and Clone/SaveModelState/RestoreModelState); state would "
     "silently vanish in sharded or checkpointed runs"},
    {"stale-allow",
     "LINT-ALLOW annotation that is malformed, names an unknown rule, or no longer "
     "matches a diagnostic on its line"},
};

bool IsKnownRule(const std::string& name) {
  for (const RuleInfo& r : kRules) {
    if (r.name == name) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Comment/string stripping + LINT-ALLOW collection.
// ---------------------------------------------------------------------------

struct Allow {
  std::string rule;
  std::string reason;
  bool used = false;
  bool malformed = false;  // LINT-ALLOW present but not of the required form.
};

struct Stripped {
  // Same length as the input; comments, string/char literal contents, and
  // preprocessor directives are blanked so lexical rules cannot match inside
  // them. Newlines are preserved, so line numbers survive.
  std::string code;
  std::map<int, std::vector<Allow>> allows;  // line (1-based) -> annotations.
  std::vector<size_t> line_starts;           // offset of each line's first char.
};

// Parses "LINT-ALLOW(rule): reason" occurrences out of one comment's text.
void ParseAllows(const std::string& comment, int line, Stripped* out) {
  static const std::regex kAllowRe(
      R"(LINT-ALLOW\(([A-Za-z0-9-]+)\)\s*:\s*(\S[^\n]*))");
  size_t searched = 0;
  while (true) {
    const size_t at = comment.find("LINT-ALLOW", searched);
    if (at == std::string::npos) {
      return;
    }
    std::smatch m;
    const std::string tail = comment.substr(at);
    if (std::regex_search(tail, m, kAllowRe) && m.position(0) == 0) {
      Allow a;
      a.rule = m[1];
      a.reason = m[2];
      out->allows[line].push_back(std::move(a));
      searched = at + static_cast<size_t>(m.length(0));
    } else {
      Allow a;
      a.malformed = true;
      out->allows[line].push_back(std::move(a));
      searched = at + 10;
    }
  }
}

Stripped Strip(const std::string& content) {
  Stripped out;
  out.code.assign(content.size(), ' ');
  out.line_starts.push_back(0);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string comment_text;
  int comment_line = 1;
  int line = 1;
  bool line_is_preprocessor = false;
  bool line_seen_nonspace = false;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        ParseAllows(comment_text, comment_line, &out);
        comment_text.clear();
        state = State::kCode;
      }
      out.code[i] = '\n';
      ++line;
      out.line_starts.push_back(i + 1);
      line_is_preprocessor = false;
      line_seen_nonspace = false;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (!line_seen_nonspace && !std::isspace(static_cast<unsigned char>(c))) {
          line_seen_nonspace = true;
          if (c == '#') {
            line_is_preprocessor = true;
          }
        }
        if (line_is_preprocessor) {
          break;  // Blank the whole directive (keeps #if braces out of scopes).
        }
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_line = line;
          ++i;  // Skip the second slash.
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        comment_text.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
    }
  }
  if (state == State::kLineComment) {
    ParseAllows(comment_text, comment_line, &out);
  }
  return out;
}

int LineOf(const Stripped& s, size_t pos) {
  const auto it =
      std::upper_bound(s.line_starts.begin(), s.line_starts.end(), pos);
  return static_cast<int>(it - s.line_starts.begin());
}

// ---------------------------------------------------------------------------
// Scope scanning: class bodies and Save*/Restore*/Write*/Read* definitions.
// ---------------------------------------------------------------------------

struct ClassScope {
  std::string name;
  std::string base_clause;  // Text between ':' and '{', empty if none.
  int decl_line = 0;
  size_t body_begin = 0;  // Just after '{'.
  size_t body_end = 0;    // At the matching '}'.
};

struct SerdeFn {
  std::string qualifier;  // "Platform" for Platform::SaveX or enclosing class.
  std::string prefix;     // Save | Restore | Write | Read.
  std::string suffix;     // Rest of the name ("PolicyState", "Framed", ...).
  std::string head;       // Signature text (return type through params).
  int line = 0;
  size_t body_begin = 0;
  size_t body_end = 0;
};

struct Scopes {
  std::vector<ClassScope> classes;
  std::vector<SerdeFn> serde_fns;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// The identifier (plus optional "Qualifier::") immediately preceding the first
// top-level '(' of a scope head; empty when the head has no call-ish shape.
struct HeadName {
  std::string qualifier;
  std::string name;
};
HeadName FunctionNameOf(std::string_view head) {
  const size_t paren = head.find('(');
  if (paren == std::string_view::npos) {
    return {};
  }
  size_t e = paren;
  while (e > 0 && std::isspace(static_cast<unsigned char>(head[e - 1]))) {
    --e;
  }
  size_t b = e;
  while (b > 0 && IsIdentChar(head[b - 1])) {
    --b;
  }
  HeadName hn;
  hn.name = std::string(head.substr(b, e - b));
  // Optional qualifier chain; keep the last component.
  if (b >= 2 && head[b - 1] == ':' && head[b - 2] == ':') {
    size_t qe = b - 2;
    size_t qb = qe;
    while (qb > 0 && IsIdentChar(head[qb - 1])) {
      --qb;
    }
    hn.qualifier = std::string(head.substr(qb, qe - qb));
  }
  return hn;
}

bool ContainsWord(std::string_view text, std::string_view word) {
  size_t at = 0;
  while ((at = text.find(word, at)) != std::string_view::npos) {
    const bool left_ok = at == 0 || !IsIdentChar(text[at - 1]);
    const size_t end = at + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) {
      return true;
    }
    at = end;
  }
  return false;
}

// One forward pass over the stripped code classifying every brace scope. A
// serde-named function counts as a *definition* only when no enclosing scope
// is itself a function body — that is what separates `void SaveX(...) {` from
// a `SaveX(...)` call (or a RestoreEvent(...) lambda) inside another function.
Scopes ScanScopes(const Stripped& s) {
  Scopes out;
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  struct Open {
    Kind kind;
    size_t class_index = 0;  // Valid when kind == kClass.
  };
  std::vector<Open> stack;
  const std::string& code = s.code;
  size_t head_start = 0;
  int functions_open = 0;
  for (size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == ';' || c == '}') {
      head_start = i + 1;
      if (c == '}' && !stack.empty()) {
        const Open top = stack.back();
        stack.pop_back();
        if (top.kind == Kind::kClass) {
          out.classes[top.class_index].body_end = i;
        } else if (top.kind == Kind::kFunction) {
          --functions_open;
          if (functions_open == 0 && !out.serde_fns.empty() &&
              out.serde_fns.back().body_end == 0) {
            out.serde_fns.back().body_end = i;
          }
        }
      }
      continue;
    }
    if (c != '{') {
      continue;
    }
    const std::string_view head(code.data() + head_start, i - head_start);
    Open open{Kind::kBlock, 0};
    static const std::regex kClassRe(R"((class|struct)\s+([A-Za-z_]\w*))");
    std::cmatch m;
    if (ContainsWord(head, "namespace")) {
      open.kind = Kind::kNamespace;
    } else if (!ContainsWord(head, "enum") &&
               std::regex_search(head.begin(), head.end(), m, kClassRe)) {
      open.kind = Kind::kClass;
      ClassScope cls;
      cls.name = m[2];
      cls.decl_line = LineOf(s, head_start + static_cast<size_t>(m.position(2)));
      const size_t colon = head.find(':', static_cast<size_t>(m.position(2)));
      if (colon != std::string_view::npos &&
          (colon + 1 >= head.size() || head[colon + 1] != ':')) {
        cls.base_clause = std::string(head.substr(colon + 1));
      }
      cls.body_begin = i + 1;
      open.class_index = out.classes.size();
      out.classes.push_back(std::move(cls));
    } else if (head.find('(') != std::string_view::npos) {
      open.kind = Kind::kFunction;
      if (functions_open == 0) {
        const HeadName hn = FunctionNameOf(head);
        static const std::regex kSerdeName(
            R"(^(Save|Restore|Write|Read)([A-Za-z0-9_]*)$)");
        std::smatch nm;
        if (std::regex_match(hn.name, nm, kSerdeName)) {
          SerdeFn fn;
          fn.prefix = nm[1];
          fn.suffix = nm[2];
          fn.qualifier = hn.qualifier;
          if (fn.qualifier.empty()) {
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
              if (it->kind == Kind::kClass) {
                fn.qualifier = out.classes[it->class_index].name;
                break;
              }
            }
          }
          fn.head = std::string(head);
          fn.line = LineOf(s, head_start);
          // Skip leading blank lines of multi-line heads for the report line.
          const size_t first_char = head.find_first_not_of(" \t\n");
          if (first_char != std::string_view::npos) {
            fn.line = LineOf(s, head_start + first_char);
          }
          fn.body_begin = i + 1;
          fn.body_end = 0;  // Filled when the scope pops.
          out.serde_fns.push_back(std::move(fn));
        }
      }
      ++functions_open;
    }
    stack.push_back(open);
    head_start = i + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-file state assembled before rules run.
// ---------------------------------------------------------------------------

struct FileState {
  std::string path;
  Stripped stripped;
  Scopes scopes;
  std::vector<std::string> unordered_names;  // Declared unordered containers.
};

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

// Collects names declared with an unordered container type, e.g.
// `std::unordered_map<K, V> counts;` or `const std::unordered_set<T>& live`.
std::vector<std::string> CollectUnorderedNames(const std::string& code) {
  std::vector<std::string> names;
  static const char* kTypes[] = {"unordered_map<", "unordered_set<",
                                 "unordered_multimap<", "unordered_multiset<"};
  for (const char* type : kTypes) {
    size_t at = 0;
    const size_t type_len = std::char_traits<char>::length(type);
    while ((at = code.find(type, at)) != std::string::npos) {
      size_t i = at + type_len;  // Just past '<'.
      int depth = 1;
      while (i < code.size() && depth > 0) {
        if (code[i] == '<') {
          ++depth;
        } else if (code[i] == '>') {
          --depth;
        }
        ++i;
      }
      // Skip cv/ref/ptr decoration, then read the declared identifier.
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) ||
              code[i] == '&' || code[i] == '*')) {
        ++i;
      }
      size_t b = i;
      while (i < code.size() && IsIdentChar(code[i])) {
        ++i;
      }
      if (i > b) {
        names.emplace_back(code, b, i - b);
      }
      at += type_len;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

void AddDiag(std::vector<Diagnostic>* diags, const std::string& file, int line,
             const char* rule, std::string message) {
  diags->push_back(Diagnostic{file, line, rule, std::move(message)});
}

// Rule: wall-clock + ambient-rng. Pure token scan over the stripped code.
void CheckBannedConstructs(const FileState& f, std::vector<Diagnostic>* diags) {
  static const std::regex kWallClock(
      R"(\b(time|clock)\s*\(|\b(gettimeofday|clock_gettime|timespec_get|mktime|localtime|gmtime|strftime|system_clock|steady_clock|high_resolution_clock)\b)");
  static const std::regex kAmbientRng(
      R"(\bsrand\b|\brand\s*\(|\b(random_device|mt19937|mt19937_64|minstd_rand|minstd_rand0|default_random_engine|ranlux24|ranlux48|knuth_b|random_shuffle|rand_r|drand48|lrand48)\b)");
  const bool rng_exempt = PathContains(f.path, "common/rng");
  std::istringstream lines(f.stripped.code);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    std::smatch m;
    if (std::regex_search(line, m, kWallClock)) {
      const std::string tok = m[1].matched ? m[1].str() : m[2].str();
      AddDiag(diags, f.path, n, "wall-clock",
              "wall-clock call '" + tok +
                  "' — deterministic code consumes SimTime only "
                  "(docs/determinism.md)");
    }
    if (!rng_exempt && std::regex_search(line, m, kAmbientRng)) {
      AddDiag(diags, f.path, n, "ambient-rng",
              "ambient randomness '" + m.str() +
                  "' — all draws must flow through the seeded coldstart::Rng "
                  "substream tree (src/common/rng)");
    }
  }
}

// Rule: unordered-iter. Flags range-for over (and begin()/end() access to) any
// name declared as an unordered container in this file or its paired header.
void CheckUnorderedIteration(const FileState& f,
                             const std::vector<std::string>& names,
                             std::vector<Diagnostic>* diags) {
  static const char* kScopedDirs[] = {"src/platform", "src/policy",
                                      "src/analysis", "src/trace",
                                      "src/checkpoint"};
  bool in_scope = false;
  for (const char* dir : kScopedDirs) {
    in_scope = in_scope || PathContains(f.path, dir);
  }
  if (!in_scope || names.empty()) {
    return;
  }
  std::vector<std::pair<std::regex, std::string>> patterns;
  patterns.reserve(names.size() * 2);
  for (const std::string& name : names) {
    patterns.emplace_back(
        std::regex("\\bfor\\s*\\([^;()]*:\\s*" + name + "\\s*\\)"), name);
    // begin() starts an iteration; a bare end() (the `it != m.end()` half of a
    // find-result check) does not, so only the begin family is flagged.
    patterns.emplace_back(
        std::regex("\\b" + name + "\\s*\\.\\s*(c?r?begin)\\s*\\("), name);
  }
  std::istringstream lines(f.stripped.code);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    for (const auto& [re, name] : patterns) {
      if (std::regex_search(line, re)) {
        AddDiag(diags, f.path, n, "unordered-iter",
                "iteration over unordered container '" + name +
                    "' in output-affecting code — hash order can leak into "
                    "results; sort first or use an ordered container");
        break;  // One diagnostic per line is enough.
      }
    }
  }
}

// Rule: serde-pair. Extracts ByteWriter/ByteReader call sequences from every
// Save*/Restore* (and Write*/Read*) definition and compares pairs.
struct SerdeSide {
  const SerdeFn* fn = nullptr;
  const FileState* file = nullptr;
  std::vector<std::string> ops;     // Call types in source order.
  std::vector<int> op_lines;        // Parallel to ops.
};

std::vector<std::string> SerdeVarNames(const SerdeFn& fn, const std::string& code,
                                       const char* type) {
  std::vector<std::string> vars;
  const std::regex re(std::string("\\b") + type + R"(\s*&?\s+([A-Za-z_]\w*))");
  const std::string text =
      fn.head + code.substr(fn.body_begin, fn.body_end - fn.body_begin);
  for (std::sregex_iterator it(text.begin(), text.end(), re), end; it != end;
       ++it) {
    vars.push_back((*it)[1]);
  }
  return vars;
}

void CollectOps(const FileState& f, const SerdeFn& fn, const char* var_type,
                SerdeSide* side) {
  const std::vector<std::string> vars =
      SerdeVarNames(fn, f.stripped.code, var_type);
  if (vars.empty()) {
    return;
  }
  static const std::regex kOp(
      R"(\b([A-Za-z_]\w*)\s*\.\s*(U8|U32|U64|I64|F64|Str|Raw)\s*\()");
  const char* begin = f.stripped.code.data() + fn.body_begin;
  const char* end = f.stripped.code.data() + fn.body_end;
  for (std::cregex_iterator it(begin, end, kOp), last; it != last; ++it) {
    const std::string receiver = (*it)[1];
    if (std::find(vars.begin(), vars.end(), receiver) != vars.end()) {
      side->ops.push_back((*it)[2]);
      side->op_lines.push_back(LineOf(
          f.stripped, fn.body_begin + static_cast<size_t>(it->position(0))));
    }
  }
}

std::string JoinOps(const std::vector<std::string>& ops) {
  std::string out;
  for (size_t i = 0; i < ops.size(); ++i) {
    out += (i > 0 ? "," : "") + ops[i];
  }
  return out;
}

void CheckSerdePairs(const std::vector<const FileState*>& unit,
                     std::vector<Diagnostic>* diags) {
  // Key: qualifier + "::" + suffix. Write pairs with Read, Save with Restore.
  std::map<std::string, SerdeSide> writers;
  std::map<std::string, SerdeSide> readers;
  for (const FileState* f : unit) {
    for (const SerdeFn& fn : f->scopes.serde_fns) {
      const bool is_writer = fn.prefix == "Save" || fn.prefix == "Write";
      const std::string key = fn.qualifier + "::" + fn.suffix;
      SerdeSide side;
      side.fn = &fn;
      side.file = f;
      CollectOps(*f, fn, is_writer ? "ByteWriter" : "ByteReader", &side);
      auto& table = is_writer ? writers : readers;
      // First definition wins; duplicate suffixes in one unit are rare
      // (template specializations) and collapse to the first occurrence.
      table.emplace(key, std::move(side));
    }
  }
  for (const auto& [key, save] : writers) {
    const auto restore_it = readers.find(key);
    if (restore_it == readers.end()) {
      if (!save.ops.empty()) {
        AddDiag(diags, save.file->path, save.fn->line, "serde-pair",
                save.fn->prefix + save.fn->suffix + " writes " +
                    std::to_string(save.ops.size()) +
                    " fields but has no matching " +
                    (save.fn->prefix == "Save" ? "Restore" : "Read") +
                    save.fn->suffix + " in this file — restore-side fields are "
                    "silently dropped");
      }
      continue;
    }
    const SerdeSide& restore = restore_it->second;
    if (save.ops == restore.ops) {
      continue;
    }
    size_t k = 0;
    while (k < save.ops.size() && k < restore.ops.size() &&
           save.ops[k] == restore.ops[k]) {
      ++k;
    }
    std::string detail;
    if (k < save.ops.size() && k < restore.ops.size()) {
      detail = "op #" + std::to_string(k + 1) + " writes " + save.ops[k] +
               " (line " + std::to_string(save.op_lines[k]) + ") but reads " +
               restore.ops[k] + " (" + restore.file->path + ":" +
               std::to_string(restore.op_lines[k]) + ")";
    } else if (k < save.ops.size()) {
      detail = "write side has " +
               std::to_string(save.ops.size() - restore.ops.size()) +
               " extra op(s) starting with " + save.ops[k] + " at line " +
               std::to_string(save.op_lines[k]);
    } else {
      detail = "read side has " +
               std::to_string(restore.ops.size() - save.ops.size()) +
               " extra op(s) starting with " + restore.ops[k] + " at " +
               restore.file->path + ":" + std::to_string(restore.op_lines[k]);
    }
    AddDiag(diags, save.file->path, save.fn->line, "serde-pair",
            save.fn->prefix + save.fn->suffix + " writes [" + JoinOps(save.ops) +
                "] but " + restore.fn->prefix + restore.fn->suffix + " reads [" +
                JoinOps(restore.ops) + "]: " + detail);
  }
}

// Rule: policy-hooks. A PlatformPolicy subclass that accumulates state must
// say how that state shards (CloneForShard) and checkpoints (SavePolicyState/
// RestorePolicyState) — or carry a LINT-ALLOW explaining why it cannot. The
// same contract binds ColdStartModel subclasses (one mutable instance per
// (region, cell)): Clone for shard/cell replication plus SaveModelState/
// RestoreModelState for checkpoints. A model whose members are all
// construction-time configuration declares explicit no-op overrides rather
// than a suppression, so the intent is visible at the class.
void CheckPolicyHooks(const FileState& f, std::vector<Diagnostic>* diags) {
  static const std::regex kMember(R"(\b([A-Za-z_]\w*_)\s*(;|\{|=[^=]))");
  struct HookContract {
    const char* base;          // Base class naming the contract.
    const char* kind;          // Diagnostic noun.
    const char* clone_hook;
    const char* save_hook;
    const char* restore_hook;
    const char* doc;           // Header that states the contract.
  };
  static const HookContract kContracts[] = {
      {"PlatformPolicy", "policy", "CloneForShard", "SavePolicyState",
       "RestorePolicyState", "platform/policy_hooks.h"},
      {"ColdStartModel", "cold-start model", "Clone", "SaveModelState",
       "RestoreModelState", "platform/coldstart_model.h"},
  };
  for (const ClassScope& cls : f.scopes.classes) {
    for (const HookContract& c : kContracts) {
      if (!ContainsWord(cls.base_clause, c.base) || cls.name == c.base) {
        continue;
      }
      const std::string body = f.stripped.code.substr(
          cls.body_begin, cls.body_end - cls.body_begin);
      std::set<std::string> members;
      for (std::sregex_iterator it(body.begin(), body.end(), kMember), end;
           it != end; ++it) {
        const std::string name = (*it)[1];
        if (name != "options_" && name != "platform_") {
          members.insert(name);
        }
      }
      if (members.empty()) {
        continue;  // Config-only subclass: nothing to shard or checkpoint.
      }
      std::vector<std::string> missing;
      if (!ContainsWord(body, c.clone_hook)) {
        missing.emplace_back(c.clone_hook);
      }
      if (!ContainsWord(body, c.save_hook) ||
          !ContainsWord(body, c.restore_hook)) {
        missing.emplace_back(std::string(c.save_hook) + "/" + c.restore_hook);
      }
      if (missing.empty()) {
        continue;
      }
      std::string state;
      for (const std::string& m : members) {
        state += (state.empty() ? "" : ", ") + m;
      }
      std::string lacks;
      for (size_t i = 0; i < missing.size(); ++i) {
        lacks += (i > 0 ? " and " : "") + missing[i];
      }
      AddDiag(diags, f.path, cls.decl_line, "policy-hooks",
              std::string(c.kind) + " '" + cls.name + "' has mutable state (" +
                  state + ") but no " + lacks +
                  " — the state silently vanishes in sharded or checkpointed "
                  "runs (" + c.doc + ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression + assembly.
// ---------------------------------------------------------------------------

struct Unit {
  std::vector<FileState> files;
};

Result RunRules(Unit& unit) {
  Result result;
  std::map<std::string, FileState*> by_path;
  for (FileState& f : unit.files) {
    by_path[f.path] = &f;
  }
  std::vector<Diagnostic> raw;
  std::vector<const FileState*> all;
  all.reserve(unit.files.size());
  for (FileState& f : unit.files) {
    all.push_back(&f);
    CheckBannedConstructs(f, &raw);
    CheckPolicyHooks(f, &raw);
    // Unordered declarations are merged from the paired header ("x.cc" reads
    // "x.h") so member containers flag at their .cc iteration sites.
    std::vector<std::string> names = f.unordered_names;
    if (f.path.size() > 3 && f.path.rfind(".cc") == f.path.size() - 3) {
      const std::string header = f.path.substr(0, f.path.size() - 3) + ".h";
      const auto it = by_path.find(header);
      if (it != by_path.end()) {
        names.insert(names.end(), it->second->unordered_names.begin(),
                     it->second->unordered_names.end());
      }
    }
    CheckUnorderedIteration(f, names, &raw);
  }
  // Serde pairing is per translation unit: a file plus its paired header.
  for (FileState& f : unit.files) {
    std::vector<const FileState*> tu{&f};
    if (f.path.size() > 3 && f.path.rfind(".cc") == f.path.size() - 3) {
      const auto it =
          by_path.find(f.path.substr(0, f.path.size() - 3) + ".h");
      if (it != by_path.end()) {
        tu.push_back(it->second);
      }
    }
    // Headers paired with a .cc in the unit are checked within that unit only
    // when their serde functions pair across the two files; standalone header
    // pairs (inline definitions) are covered by the header's own pass.
    CheckSerdePairs(tu, &raw);
  }
  // Deduplicate (a header processed standalone and as part of a .cc unit can
  // produce the same serde diagnostic twice).
  std::sort(raw.begin(), raw.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            raw.end());

  // Apply LINT-ALLOW suppressions: same line or the line directly above.
  for (const Diagnostic& d : raw) {
    FileState* f = by_path[d.file];
    bool suppressed = false;
    for (const int line : {d.line, d.line - 1}) {
      const auto it = f->stripped.allows.find(line);
      if (it == f->stripped.allows.end()) {
        continue;
      }
      for (Allow& a : it->second) {
        if (!a.malformed && a.rule == d.rule) {
          a.used = true;
          result.allowed.push_back(Suppression{d.file, line, a.rule, a.reason});
          suppressed = true;
          break;
        }
      }
      if (suppressed) {
        break;
      }
    }
    if (!suppressed) {
      result.diagnostics.push_back(d);
    }
  }

  // Stale / malformed / unknown-rule allows.
  for (FileState& f : unit.files) {
    for (auto& [line, allows] : f.stripped.allows) {
      for (const Allow& a : allows) {
        if (a.malformed) {
          AddDiag(&result.diagnostics, f.path, line, "stale-allow",
                  "malformed LINT-ALLOW — expected "
                  "'LINT-ALLOW(rule): reason'");
        } else if (!IsKnownRule(a.rule)) {
          AddDiag(&result.diagnostics, f.path, line, "stale-allow",
                  "LINT-ALLOW names unknown rule '" + a.rule +
                      "' (see --list-rules)");
        } else if (!a.used) {
          AddDiag(&result.diagnostics, f.path, line, "stale-allow",
                  "stale LINT-ALLOW(" + a.rule +
                      ") — no such diagnostic fires here any more; delete the "
                      "annotation");
        }
      }
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::sort(result.allowed.begin(), result.allowed.end(),
            [](const Suppression& a, const Suppression& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return result;
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

Result LintFiles(const std::vector<FileInput>& files) {
  Unit unit;
  unit.files.reserve(files.size());
  for (const FileInput& in : files) {
    FileState f;
    f.path = in.path;
    f.stripped = Strip(in.content);
    f.scopes = ScanScopes(f.stripped);
    f.unordered_names = CollectUnorderedNames(f.stripped.code);
    unit.files.push_back(std::move(f));
  }
  return RunRules(unit);
}

bool LintTree(const std::string& root, Result* result) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return false;
  }
  std::vector<std::string> paths;
  for (auto it = fs::recursive_directory_iterator(src, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) {
      return false;
    }
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<FileInput> inputs;
  inputs.reserve(paths.size());
  const std::string prefix = (fs::path(root) / "").string();
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = p;
    if (rel.rfind(prefix, 0) == 0) {
      rel = rel.substr(prefix.size());
    }
    inputs.push_back(FileInput{rel, buf.str()});
  }
  *result = LintFiles(inputs);
  return true;
}

}  // namespace coldstart::lint
