#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every src/ translation unit using
# a CMake compile_commands.json. Usage:
#
#   tools/run_clang_tidy.sh [BUILD_DIR]
#
# BUILD_DIR defaults to build/. If it has no compile_commands.json yet, the
# script configures it (CMAKE_EXPORT_COMPILE_COMMANDS is always on in this
# project). Exit codes: 0 clean, 1 findings, 2 clang-tidy unavailable.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: no clang-tidy executable on PATH." >&2
  echo "Install clang-tidy (apt-get install clang-tidy) and re-run;" >&2
  echo "the coldstart_lint determinism checks (ctest -R lint) run without it." >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: configuring $BUILD_DIR for compile_commands.json"
  cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 2
fi

# Parallelism: one job per core. Each file's findings print as they complete.
JOBS="$(nproc 2>/dev/null || echo 1)"
echo "run_clang_tidy: $TIDY over src/*.cc with -p $BUILD_DIR ($JOBS job(s))"
find src -name '*.cc' -print0 | sort -z |
  xargs -0 -n 1 -P "$JOBS" "$TIDY" -p "$BUILD_DIR" --quiet 2>/dev/null
status=$?
if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings reported (see above)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
