#include "trace/trace_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>

#include "common/check.h"
#include "common/rng.h"

namespace coldstart::trace {

std::string HashedId(uint64_t raw) {
  // One extra mixing round so that sequential numeric ids do not leak ordering, matching
  // the spirit of the dataset's privacy hashing.
  uint64_t s = raw ^ 0xC0FFEE123456789Aull;
  const uint64_t h = SplitMix64(s);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

void TraceStore::AddFunction(const FunctionRecord& r) {
  COLDSTART_CHECK_EQ(static_cast<size_t>(r.function_id), functions_.size());
  functions_.push_back(r);
  sealed_ = false;
}

void TraceStore::AppendFrom(TraceStore&& other) {
  // Every shard of a scenario registers the identical dense function table, so the
  // merged store keeps its own copy and only the event-like tables are appended.
  COLDSTART_CHECK_EQ(functions_.size(), other.functions_.size());
  requests_.insert(requests_.end(), other.requests_.begin(), other.requests_.end());
  cold_starts_.insert(cold_starts_.end(), other.cold_starts_.begin(),
                      other.cold_starts_.end());
  pods_.insert(pods_.end(), other.pods_.begin(), other.pods_.end());
  horizon_ = std::max(horizon_, other.horizon_);
  sealed_ = false;
  other = TraceStore();
}

void TraceStore::Seal() {
  if (sealed_) {
    return;
  }
  // The keys form a total order: request ids are unique, and a pod id (which embeds
  // its region) names at most one cold-start and one lifetime record. A total order
  // is what guarantees that per-region shards merged in any order seal identically
  // to the serial run.
  std::sort(requests_.begin(), requests_.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return std::tie(a.timestamp, a.region, a.request_id, a.pod_id) <
                     std::tie(b.timestamp, b.region, b.request_id, b.pod_id);
            });
  std::sort(cold_starts_.begin(), cold_starts_.end(),
            [](const ColdStartRecord& a, const ColdStartRecord& b) {
              return std::tie(a.timestamp, a.region, a.pod_id) <
                     std::tie(b.timestamp, b.region, b.pod_id);
            });
  std::sort(pods_.begin(), pods_.end(),
            [](const PodLifetimeRecord& a, const PodLifetimeRecord& b) {
              return std::tie(a.cold_start_begin, a.region, a.pod_id) <
                     std::tie(b.cold_start_begin, b.region, b.pod_id);
            });
  sealed_ = true;
}

void TraceStore::RestoreTables(std::vector<RequestRecord> requests,
                               std::vector<ColdStartRecord> cold_starts,
                               std::vector<FunctionRecord> functions,
                               std::vector<PodLifetimeRecord> pods, SimTime horizon) {
  COLDSTART_CHECK(requests_.empty() && cold_starts_.empty() && functions_.empty() &&
                  pods_.empty());
  requests_ = std::move(requests);
  cold_starts_ = std::move(cold_starts);
  functions_ = std::move(functions);
  pods_ = std::move(pods);
  horizon_ = horizon;
  sealed_ = false;
}

void TraceStore::Reserve(size_t requests, size_t cold_starts, size_t pods) {
  requests_.reserve(requests);
  cold_starts_.reserve(cold_starts);
  pods_.reserve(pods);
}

uint64_t Digest(const TraceStore& store) {
  // Field-by-field (never memcmp over structs: padding bytes are unspecified).
  uint64_t h = HashString("trace-digest-v1");
  const auto mix = [&h](uint64_t v) { h = MixHash(h, v); };
  mix(static_cast<uint64_t>(store.horizon()));
  mix(store.functions().size());
  for (const auto& f : store.functions()) {
    mix(f.function_id);
    mix(f.user_id);
    mix(f.region);
    mix(static_cast<uint64_t>(f.runtime));
    mix(static_cast<uint64_t>(f.primary_trigger));
    mix(f.trigger_mask);
    mix(static_cast<uint64_t>(f.config));
  }
  mix(store.requests().size());
  for (const auto& r : store.requests()) {
    mix(static_cast<uint64_t>(r.timestamp));
    mix(r.request_id);
    mix(r.pod_id);
    mix(r.function_id);
    mix(r.user_id);
    mix(r.region);
    mix(r.cluster);
    mix(r.cpu_millicores);
    mix(r.execution_time_us);
    mix(r.memory_kb);
  }
  mix(store.cold_starts().size());
  for (const auto& c : store.cold_starts()) {
    mix(static_cast<uint64_t>(c.timestamp));
    mix(c.pod_id);
    mix(c.function_id);
    mix(c.user_id);
    mix(c.region);
    mix(c.cluster);
    mix(c.cold_start_us);
    mix(c.pod_alloc_us);
    mix(c.deploy_code_us);
    mix(c.deploy_dep_us);
    mix(c.scheduling_us);
  }
  mix(store.pods().size());
  for (const auto& p : store.pods()) {
    mix(p.pod_id);
    mix(p.function_id);
    mix(p.region);
    mix(p.cluster);
    mix(static_cast<uint64_t>(p.config));
    mix(static_cast<uint64_t>(p.cold_start_begin));
    mix(static_cast<uint64_t>(p.ready_time));
    mix(static_cast<uint64_t>(p.last_busy_end));
    mix(static_cast<uint64_t>(p.death_time));
    mix(p.cold_start_us);
    mix(p.requests_served);
  }
  return h;
}

}  // namespace coldstart::trace
