#include "trace/trace_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/check.h"
#include "common/rng.h"

namespace coldstart::trace {

std::string HashedId(uint64_t raw) {
  // One extra mixing round so that sequential numeric ids do not leak ordering, matching
  // the spirit of the dataset's privacy hashing.
  uint64_t s = raw ^ 0xC0FFEE123456789Aull;
  const uint64_t h = SplitMix64(s);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return buf;
}

void TraceStore::AddFunction(const FunctionRecord& r) {
  COLDSTART_CHECK_EQ(static_cast<size_t>(r.function_id), functions_.size());
  functions_.push_back(r);
  sealed_ = false;
}

void TraceStore::Seal() {
  if (sealed_) {
    return;
  }
  std::sort(requests_.begin(), requests_.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.timestamp < b.timestamp;
            });
  std::sort(cold_starts_.begin(), cold_starts_.end(),
            [](const ColdStartRecord& a, const ColdStartRecord& b) {
              return a.timestamp < b.timestamp;
            });
  std::sort(pods_.begin(), pods_.end(),
            [](const PodLifetimeRecord& a, const PodLifetimeRecord& b) {
              return a.cold_start_begin < b.cold_start_begin;
            });
  sealed_ = true;
}

void TraceStore::Reserve(size_t requests, size_t cold_starts, size_t pods) {
  requests_.reserve(requests);
  cold_starts_.reserve(cold_starts);
  pods_.reserve(pods);
}

}  // namespace coldstart::trace
