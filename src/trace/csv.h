// CSV import/export for the trace tables.
//
// Two modes:
//   * Release mode (hash_ids = true): column layout and hashed-ID form mirror the
//     public dataset release, for interoperability with external analysis scripts.
//   * Numeric mode (hash_ids = false): lossless round-trip of numeric ids, used for
//     checkpointing simulated traces.
#ifndef COLDSTART_TRACE_CSV_H_
#define COLDSTART_TRACE_CSV_H_

#include <string>

#include "trace/trace_store.h"

namespace coldstart::trace {

struct CsvExportOptions {
  bool hash_ids = false;
};

// Each writer returns false on I/O failure.
bool WriteRequestsCsv(const TraceStore& store, const std::string& path,
                      const CsvExportOptions& opts = {});
bool WriteColdStartsCsv(const TraceStore& store, const std::string& path,
                        const CsvExportOptions& opts = {});
bool WriteFunctionsCsv(const TraceStore& store, const std::string& path,
                       const CsvExportOptions& opts = {});
bool WritePodsCsv(const TraceStore& store, const std::string& path,
                  const CsvExportOptions& opts = {});

// Readers parse numeric-mode files back into `store` (appending). They return false on
// parse or I/O failure; hashed-id files are not readable (ids are one-way).
bool ReadRequestsCsv(const std::string& path, TraceStore& store);
bool ReadColdStartsCsv(const std::string& path, TraceStore& store);
bool ReadFunctionsCsv(const std::string& path, TraceStore& store);
bool ReadPodsCsv(const std::string& path, TraceStore& store);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_CSV_H_
