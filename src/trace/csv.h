// CSV import/export for the trace tables.
//
// Two modes:
//   * Release mode (hash_ids = true): column layout and hashed-ID form mirror the
//     public dataset release, for interoperability with external analysis scripts.
//   * Numeric mode (hash_ids = false): lossless round-trip of numeric ids, used for
//     checkpointing simulated traces and for trace replay (workload/replay_source.h).
#ifndef COLDSTART_TRACE_CSV_H_
#define COLDSTART_TRACE_CSV_H_

#include <string>

#include "trace/trace_store.h"

namespace coldstart::trace {

struct CsvExportOptions {
  bool hash_ids = false;
};

// Parse failure report: the 1-based line the reader rejected (0 for file-level
// failures such as a missing file) and a human-readable cause. Replay makes the
// parsers load-bearing, so failures must say *where* the input broke.
struct CsvError {
  int64_t line = 0;
  std::string message;
};

// Each writer returns false on I/O failure.
bool WriteRequestsCsv(const TraceStore& store, const std::string& path,
                      const CsvExportOptions& opts = {});
bool WriteColdStartsCsv(const TraceStore& store, const std::string& path,
                        const CsvExportOptions& opts = {});
bool WriteFunctionsCsv(const TraceStore& store, const std::string& path,
                       const CsvExportOptions& opts = {});
bool WritePodsCsv(const TraceStore& store, const std::string& path,
                  const CsvExportOptions& opts = {});

// Readers parse numeric-mode files back into `store` (appending). They return false
// on I/O or parse failure — truncated rows, non-numeric or out-of-range fields —
// and, when `error` is non-null, report the offending line. Hashed-id files are not
// readable (ids are one-way). When the store already holds a function table, record
// function ids are validated against it.
bool ReadRequestsCsv(const std::string& path, TraceStore& store,
                     CsvError* error = nullptr);
bool ReadColdStartsCsv(const std::string& path, TraceStore& store,
                       CsvError* error = nullptr);
bool ReadFunctionsCsv(const std::string& path, TraceStore& store,
                      CsvError* error = nullptr);
bool ReadPodsCsv(const std::string& path, TraceStore& store,
                 CsvError* error = nullptr);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_CSV_H_
