#include "trace/streaming_aggregates.h"

#include "common/check.h"
#include "trace/trace_store.h"

namespace coldstart::trace {

namespace {

// Histogram value ranges, in seconds. Fixed constants: every sink instance must
// share one bucket layout or shard merges could not add bucket counts.
constexpr double kColdStartMinS = 1e-3;
constexpr double kColdStartMaxS = 1e4;
constexpr double kRequestMinS = 1e-5;
constexpr double kRequestMaxS = 1e4;
constexpr double kPodLifetimeMinS = 1e-2;
constexpr double kPodLifetimeMaxS = 1e9;

constexpr double kMicrosToSeconds = 1e-6;

}  // namespace

void StreamCounters::MergeFrom(const StreamCounters& other) {
  requests += other.requests;
  cold_starts += other.cold_starts;
  pods += other.pods;
  cold_start_latency_sum_us += other.cold_start_latency_sum_us;
  execution_time_sum_us += other.execution_time_sum_us;
  pod_lifetime_sum_us += other.pod_lifetime_sum_us;
  pod_requests_served += other.pod_requests_served;
}

StreamingAggregates::RegionSlot::RegionSlot()
    : cold_start_hist(kColdStartMinS, kColdStartMaxS),
      request_hist(kRequestMinS, kRequestMaxS),
      pod_lifetime_hist(kPodLifetimeMinS, kPodLifetimeMaxS),
      group_cold_start_hists{
          LogHistogram(kColdStartMinS, kColdStartMaxS),
          LogHistogram(kColdStartMinS, kColdStartMaxS),
          LogHistogram(kColdStartMinS, kColdStartMaxS),
          LogHistogram(kColdStartMinS, kColdStartMaxS),
          LogHistogram(kColdStartMinS, kColdStartMaxS),
          LogHistogram(kColdStartMinS, kColdStartMaxS),
          LogHistogram(kColdStartMinS, kColdStartMaxS)} {
  static_assert(kNumTriggerGroups == 7, "group_cold_start_hists initializer count");
}

StreamingAggregates::RegionSlot& StreamingAggregates::Slot(RegionId region) {
  if (region >= regions_.size()) {
    regions_.resize(static_cast<size_t>(region) + 1);
  }
  return regions_[region];
}

const StreamingAggregates::RegionSlot& StreamingAggregates::SlotOrEmpty(
    RegionId region) const {
  static const RegionSlot kEmpty;
  return region < regions_.size() ? regions_[region] : kEmpty;
}

TriggerGroup StreamingAggregates::GroupOfFunction(FunctionId function) const {
  return function < function_groups_.size() ? function_groups_[function]
                                            : TriggerGroup::kUnknown;
}

void StreamingAggregates::OnFunction(const FunctionRecord& r) {
  // Dense ids, same contract as TraceStore::AddFunction: row i describes id i.
  COLDSTART_CHECK_EQ(static_cast<size_t>(r.function_id), function_groups_.size());
  function_groups_.push_back(GroupOf(r.primary_trigger));
  ++Slot(r.region).functions;
}

void StreamingAggregates::OnRequest(const RequestRecord& r) {
  RegionSlot& slot = Slot(r.region);
  const double exec_s = r.execution_time_us * kMicrosToSeconds;
  slot.counters.requests += 1;
  slot.counters.execution_time_sum_us += r.execution_time_us;
  slot.request_hist.Add(exec_s);
  StreamCounters& group = slot.group_counters[static_cast<size_t>(
      GroupOfFunction(r.function_id))];
  group.requests += 1;
  group.execution_time_sum_us += r.execution_time_us;
}

void StreamingAggregates::OnColdStart(const ColdStartRecord& r) {
  RegionSlot& slot = Slot(r.region);
  const double latency_s = r.cold_start_us * kMicrosToSeconds;
  slot.counters.cold_starts += 1;
  slot.counters.cold_start_latency_sum_us += r.cold_start_us;
  slot.cold_start_hist.Add(latency_s);
  const size_t g = static_cast<size_t>(GroupOfFunction(r.function_id));
  StreamCounters& group = slot.group_counters[g];
  group.cold_starts += 1;
  group.cold_start_latency_sum_us += r.cold_start_us;
  slot.group_cold_start_hists[g].Add(latency_s);
}

void StreamingAggregates::OnPodLifetime(const PodLifetimeRecord& r) {
  RegionSlot& slot = Slot(r.region);
  const uint64_t lifetime_us =
      static_cast<uint64_t>(r.death_time - r.cold_start_begin);
  slot.counters.pods += 1;
  slot.counters.pod_lifetime_sum_us += lifetime_us;
  slot.counters.pod_requests_served += r.requests_served;
  slot.pod_lifetime_hist.Add(lifetime_us * kMicrosToSeconds);
  StreamCounters& group = slot.group_counters[static_cast<size_t>(
      GroupOfFunction(r.function_id))];
  group.pods += 1;
  group.pod_lifetime_sum_us += lifetime_us;
  group.pod_requests_served += r.requests_served;
}

void StreamingAggregates::OnHorizon(SimTime horizon) {
  horizon_ = std::max(horizon_, horizon);
}

void StreamingAggregates::OnRegionCost(const RegionCostRecord& r) {
  RegionCostRecord& cost = Slot(r.region).cost;
  cost.pod_us += r.pod_us;
  cost.warm_idle_us += r.warm_idle_us;
  cost.snapshot_mb_us_fp += r.snapshot_mb_us_fp;
  cost.scratch_creations += r.scratch_creations;
}

void StreamingAggregates::MergeFrom(const StreamingAggregates& other) {
  // Function tables are replicated per shard, never concatenated: either side may
  // be empty (a sink that saw no function records), otherwise they must agree —
  // content-wise, or per-group rollups would silently sum mismatched groups.
  if (function_groups_.empty()) {
    function_groups_ = other.function_groups_;
  } else if (!other.function_groups_.empty()) {
    COLDSTART_CHECK(function_groups_ == other.function_groups_);
  }
  if (other.regions_.size() > regions_.size()) {
    regions_.resize(other.regions_.size());
  }
  for (size_t r = 0; r < other.regions_.size(); ++r) {
    RegionSlot& dst = regions_[r];
    const RegionSlot& src = other.regions_[r];
    dst.counters.MergeFrom(src.counters);
    dst.cold_start_hist.Merge(src.cold_start_hist);
    dst.request_hist.Merge(src.request_hist);
    dst.pod_lifetime_hist.Merge(src.pod_lifetime_hist);
    for (size_t g = 0; g < kNumTriggerGroups; ++g) {
      dst.group_counters[g].MergeFrom(src.group_counters[g]);
      dst.group_cold_start_hists[g].Merge(src.group_cold_start_hists[g]);
    }
    // Shards register the full population each: keep the max, don't add.
    dst.functions = std::max(dst.functions, src.functions);
    dst.cost.pod_us += src.cost.pod_us;
    dst.cost.warm_idle_us += src.cost.warm_idle_us;
    dst.cost.snapshot_mb_us_fp += src.cost.snapshot_mb_us_fp;
    dst.cost.scratch_creations += src.cost.scratch_creations;
  }
  horizon_ = std::max(horizon_, other.horizon_);
}

namespace {

void SaveCounters(ByteWriter& w, const StreamCounters& c) {
  w.U64(c.requests);
  w.U64(c.cold_starts);
  w.U64(c.pods);
  w.U64(c.cold_start_latency_sum_us);
  w.U64(c.execution_time_sum_us);
  w.U64(c.pod_lifetime_sum_us);
  w.U64(c.pod_requests_served);
}

void RestoreCounters(ByteReader& r, StreamCounters& c) {
  c.requests = r.U64();
  c.cold_starts = r.U64();
  c.pods = r.U64();
  c.cold_start_latency_sum_us = r.U64();
  c.execution_time_sum_us = r.U64();
  c.pod_lifetime_sum_us = r.U64();
  c.pod_requests_served = r.U64();
}

// 128-bit cost sums travel as two U64 words (lo, hi), the histogram-sum idiom.
void WriteI128(ByteWriter& w, __int128 v) {
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(v)));
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(v) >> 64));
}

__int128 ReadI128(ByteReader& r) {
  const uint64_t lo = r.U64();
  const uint64_t hi = r.U64();
  return static_cast<__int128>((static_cast<unsigned __int128>(hi) << 64) |
                               static_cast<unsigned __int128>(lo));
}

void SaveCost(ByteWriter& w, const RegionCostRecord& c) {
  WriteI128(w, c.pod_us);
  WriteI128(w, c.warm_idle_us);
  WriteI128(w, c.snapshot_mb_us_fp);
  w.I64(c.scratch_creations);
}

void RestoreCost(ByteReader& r, RegionCostRecord& c) {
  c.pod_us = ReadI128(r);
  c.warm_idle_us = ReadI128(r);
  c.snapshot_mb_us_fp = ReadI128(r);
  c.scratch_creations = r.I64();
}

}  // namespace

void StreamingAggregates::SaveState(ByteWriter& w) const {
  w.I64(horizon_);
  w.U64(function_groups_.size());
  for (const TriggerGroup g : function_groups_) {
    w.U8(static_cast<uint8_t>(g));
  }
  w.U64(regions_.size());
  for (const RegionSlot& slot : regions_) {
    SaveCounters(w, slot.counters);
    SaveCost(w, slot.cost);
    w.U64(slot.functions);
    slot.cold_start_hist.SaveState(w);
    slot.request_hist.SaveState(w);
    slot.pod_lifetime_hist.SaveState(w);
    for (size_t g = 0; g < kNumTriggerGroups; ++g) {
      SaveCounters(w, slot.group_counters[g]);
      slot.group_cold_start_hists[g].SaveState(w);
    }
  }
}

void StreamingAggregates::RestoreState(ByteReader& r) {
  COLDSTART_CHECK(regions_.empty() && function_groups_.empty());
  horizon_ = r.I64();
  const uint64_t num_functions = r.U64();
  function_groups_.reserve(num_functions);
  for (uint64_t i = 0; i < num_functions; ++i) {
    function_groups_.push_back(static_cast<TriggerGroup>(r.U8()));
  }
  regions_.resize(r.U64());
  for (RegionSlot& slot : regions_) {
    RestoreCounters(r, slot.counters);
    RestoreCost(r, slot.cost);
    slot.functions = r.U64();
    slot.cold_start_hist.RestoreState(r);
    slot.request_hist.RestoreState(r);
    slot.pod_lifetime_hist.RestoreState(r);
    for (size_t g = 0; g < kNumTriggerGroups; ++g) {
      RestoreCounters(r, slot.group_counters[g]);
      slot.group_cold_start_hists[g].RestoreState(r);
    }
  }
}

uint64_t StreamingAggregates::functions_in_region(RegionId region) const {
  return SlotOrEmpty(region).functions;
}

const StreamCounters& StreamingAggregates::region(RegionId region) const {
  return SlotOrEmpty(region).counters;
}

const StreamCounters& StreamingAggregates::group(RegionId region,
                                                 TriggerGroup group) const {
  return SlotOrEmpty(region).group_counters[static_cast<size_t>(group)];
}

RegionCostRecord StreamingAggregates::region_cost(RegionId region) const {
  RegionCostRecord out = SlotOrEmpty(region).cost;
  out.region = region;
  return out;
}

RegionCostRecord StreamingAggregates::TotalCost() const {
  RegionCostRecord total;
  for (const RegionSlot& slot : regions_) {
    total.pod_us += slot.cost.pod_us;
    total.warm_idle_us += slot.cost.warm_idle_us;
    total.snapshot_mb_us_fp += slot.cost.snapshot_mb_us_fp;
    total.scratch_creations += slot.cost.scratch_creations;
  }
  return total;
}

StreamCounters StreamingAggregates::Totals() const {
  StreamCounters total;
  for (const RegionSlot& slot : regions_) {
    total.MergeFrom(slot.counters);
  }
  return total;
}

StreamCounters StreamingAggregates::GroupTotals(TriggerGroup group) const {
  StreamCounters total;
  for (const RegionSlot& slot : regions_) {
    total.MergeFrom(slot.group_counters[static_cast<size_t>(group)]);
  }
  return total;
}

const LogHistogram& StreamingAggregates::cold_start_hist(RegionId region) const {
  return SlotOrEmpty(region).cold_start_hist;
}

const LogHistogram& StreamingAggregates::request_hist(RegionId region) const {
  return SlotOrEmpty(region).request_hist;
}

const LogHistogram& StreamingAggregates::pod_lifetime_hist(RegionId region) const {
  return SlotOrEmpty(region).pod_lifetime_hist;
}

const LogHistogram& StreamingAggregates::group_cold_start_hist(
    RegionId region, TriggerGroup group) const {
  return SlotOrEmpty(region).group_cold_start_hists[static_cast<size_t>(group)];
}

LogHistogram StreamingAggregates::MergedColdStartHist() const {
  LogHistogram merged(kColdStartMinS, kColdStartMaxS);
  for (const RegionSlot& slot : regions_) {
    merged.Merge(slot.cold_start_hist);
  }
  return merged;
}

LogHistogram StreamingAggregates::MergedRequestHist() const {
  LogHistogram merged(kRequestMinS, kRequestMaxS);
  for (const RegionSlot& slot : regions_) {
    merged.Merge(slot.request_hist);
  }
  return merged;
}

LogHistogram StreamingAggregates::MergedPodLifetimeHist() const {
  LogHistogram merged(kPodLifetimeMinS, kPodLifetimeMaxS);
  for (const RegionSlot& slot : regions_) {
    merged.Merge(slot.pod_lifetime_hist);
  }
  return merged;
}

LogHistogram StreamingAggregates::GroupColdStartHist(TriggerGroup group) const {
  LogHistogram merged(kColdStartMinS, kColdStartMaxS);
  for (const RegionSlot& slot : regions_) {
    merged.Merge(slot.group_cold_start_hists[static_cast<size_t>(group)]);
  }
  return merged;
}

size_t StreamingAggregates::ApproxBytes() const {
  size_t bytes = sizeof(*this) + function_groups_.capacity() * sizeof(TriggerGroup);
  for (const RegionSlot& slot : regions_) {
    bytes += sizeof(RegionSlot);
    bytes += static_cast<size_t>(slot.cold_start_hist.num_buckets() +
                                 slot.request_hist.num_buckets() +
                                 slot.pod_lifetime_hist.num_buckets()) *
             sizeof(uint64_t);
    for (const LogHistogram& h : slot.group_cold_start_hists) {
      bytes += static_cast<size_t>(h.num_buckets()) * sizeof(uint64_t);
    }
  }
  return bytes;
}

StreamingAggregates AggregatesFromStore(const TraceStore& store) {
  StreamingAggregates aggregates;
  for (const FunctionRecord& r : store.functions()) {
    aggregates.OnFunction(r);
  }
  for (const RequestRecord& r : store.requests()) {
    aggregates.OnRequest(r);
  }
  for (const ColdStartRecord& r : store.cold_starts()) {
    aggregates.OnColdStart(r);
  }
  for (const PodLifetimeRecord& r : store.pods()) {
    aggregates.OnPodLifetime(r);
  }
  aggregates.OnHorizon(store.horizon());
  return aggregates;
}

}  // namespace coldstart::trace
