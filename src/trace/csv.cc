#include "trace/csv.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/csv_util.h"

namespace coldstart::trace {

namespace {

using csv_internal::FilePtr;
using csv_internal::IsBlankLine;
using csv_internal::OpenRead;
using csv_internal::OpenWrite;
using csv_internal::ParseI64;
using csv_internal::ParseU64;
using csv_internal::SetError;
using csv_internal::SplitCsvLine;

std::string IdField(uint64_t raw, bool hash) {
  if (hash) {
    return HashedId(raw);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, raw);
  return buf;
}

}  // namespace

bool WriteRequestsCsv(const TraceStore& store, const std::string& path,
                      const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(),
               "timestamp_us,pod_id,cluster,function,user,request_id,"
               "execution_time_us,cpu_millicores,memory_bytes\n");
  for (const auto& r : store.requests()) {
    std::fprintf(f.get(), "%" PRId64 ",%s,%s-c%d,%s,%s,%s,%u,%u,%" PRIu64 "\n",
                 r.timestamp, IdField(r.pod_id, opts.hash_ids).c_str(),
                 RegionName(r.region).c_str(), static_cast<int>(r.cluster),
                 IdField(r.function_id, opts.hash_ids).c_str(),
                 IdField(r.user_id, opts.hash_ids).c_str(),
                 IdField(r.request_id, opts.hash_ids).c_str(), r.execution_time_us,
                 r.cpu_millicores, static_cast<uint64_t>(r.memory_kb) * 1024);
  }
  return std::ferror(f.get()) == 0;
}

bool WriteColdStartsCsv(const TraceStore& store, const std::string& path,
                        const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(),
               "timestamp_us,pod_id,cluster,function,user,cold_start_us,"
               "pod_alloc_us,deploy_code_us,deploy_dep_us,scheduling_us\n");
  for (const auto& c : store.cold_starts()) {
    std::fprintf(f.get(), "%" PRId64 ",%s,%s-c%d,%s,%s,%u,%u,%u,%u,%u\n", c.timestamp,
                 IdField(c.pod_id, opts.hash_ids).c_str(), RegionName(c.region).c_str(),
                 static_cast<int>(c.cluster), IdField(c.function_id, opts.hash_ids).c_str(),
                 IdField(c.user_id, opts.hash_ids).c_str(), c.cold_start_us, c.pod_alloc_us,
                 c.deploy_code_us, c.deploy_dep_us, c.scheduling_us);
  }
  return std::ferror(f.get()) == 0;
}

bool WriteFunctionsCsv(const TraceStore& store, const std::string& path,
                       const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(), "function,user,region,runtime,trigger_type,trigger_mask,cpu_mem\n");
  for (const auto& fn : store.functions()) {
    std::fprintf(f.get(), "%s,%s,%s,%s,%s,%u,%s\n",
                 IdField(fn.function_id, opts.hash_ids).c_str(),
                 IdField(fn.user_id, opts.hash_ids).c_str(), RegionName(fn.region).c_str(),
                 RuntimeName(fn.runtime), TriggerName(fn.primary_trigger),
                 static_cast<unsigned>(fn.trigger_mask), ResourceConfigName(fn.config));
  }
  return std::ferror(f.get()) == 0;
}

bool WritePodsCsv(const TraceStore& store, const std::string& path,
                  const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(),
               "pod_id,function,region,cluster,cpu_mem,cold_start_begin_us,ready_us,"
               "last_busy_end_us,death_us,cold_start_us,requests_served\n");
  for (const auto& p : store.pods()) {
    std::fprintf(f.get(),
                 "%s,%s,%s,%d,%s,%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%u,%u\n",
                 IdField(p.pod_id, opts.hash_ids).c_str(),
                 IdField(p.function_id, opts.hash_ids).c_str(), RegionName(p.region).c_str(),
                 static_cast<int>(p.cluster), ResourceConfigName(p.config),
                 p.cold_start_begin, p.ready_time, p.last_busy_end, p.death_time,
                 p.cold_start_us, p.requests_served);
  }
  return std::ferror(f.get()) == 0;
}

namespace {

// Shared state for one reader pass: tracks the line number so every rejection
// can say exactly where the input broke, and carries the (optional) function
// table size for id validation.
struct RowReader {
  explicit RowReader(const TraceStore& store, CsvError* err)
      : num_functions(store.functions().size()), error(err) {}

  size_t num_functions;
  CsvError* error;
  int64_t lineno = 0;
  std::vector<std::string> fields;

  bool Fail(const std::string& message) const {
    SetError(error, lineno, message);
    return false;
  }

  // Row shape: exactly `expected` comma-separated fields.
  bool Shape(size_t expected) const {
    if (fields.size() == expected) {
      return true;
    }
    return Fail("truncated row: expected " + std::to_string(expected) +
                " fields, got " + std::to_string(fields.size()));
  }

  bool U64(size_t idx, const char* what, uint64_t max, uint64_t& out) const {
    if (ParseU64(fields[idx], max, out)) {
      return true;
    }
    return Fail(std::string(what) + " '" + fields[idx] +
                "' is not an unsigned integer <= " + std::to_string(max));
  }

  bool I64(size_t idx, const char* what, int64_t& out) const {
    if (ParseI64(fields[idx], out)) {
      return true;
    }
    return Fail(std::string(what) + " '" + fields[idx] + "' is not an integer");
  }

  // Function ids must index the function table when one is loaded (readers
  // append, so round trips read functions.csv first).
  bool FunctionInRange(FunctionId id) const {
    if (num_functions == 0 || id < num_functions) {
      return true;
    }
    return Fail("function id " + std::to_string(id) + " out of range (table has " +
                std::to_string(num_functions) + " functions)");
  }

  // Parses "R3-c2" into region/cluster, validating both ranges.
  bool Cluster(size_t idx, RegionId& region, ClusterId& cluster) const {
    int r = 0, c = 0;
    char tail = '\0';
    if (std::sscanf(fields[idx].c_str(), "R%d-c%d%c", &r, &c, &tail) != 2 || r < 1 ||
        r > kNumRegions || c < 0 || c >= kClustersPerRegion) {
      return Fail("cluster '" + fields[idx] + "' is not R<1.." +
                  std::to_string(kNumRegions) + ">-c<0.." +
                  std::to_string(kClustersPerRegion - 1) + ">");
    }
    region = static_cast<RegionId>(r - 1);
    cluster = static_cast<ClusterId>(c);
    return true;
  }

  bool Region(size_t idx, RegionId& region) const {
    int r = 0;
    char tail = '\0';
    if (std::sscanf(fields[idx].c_str(), "R%d%c", &r, &tail) != 1 || r < 1 ||
        r > kNumRegions) {
      return Fail("region '" + fields[idx] + "' is not R<1.." +
                  std::to_string(kNumRegions) + ">");
    }
    region = static_cast<RegionId>(r - 1);
    return true;
  }
};

bool RuntimeFromName(const std::string& s, Runtime& out) {
  for (int i = 0; i < kNumRuntimes; ++i) {
    if (s == RuntimeName(static_cast<Runtime>(i))) {
      out = static_cast<Runtime>(i);
      return true;
    }
  }
  return false;
}

bool TriggerFromName(const std::string& s, Trigger& out) {
  for (int i = 0; i < kNumTriggers; ++i) {
    if (s == TriggerName(static_cast<Trigger>(i))) {
      out = static_cast<Trigger>(i);
      return true;
    }
  }
  return false;
}

bool ConfigFromName(const std::string& s, ResourceConfig& out) {
  for (int i = 0; i < kNumResourceConfigs; ++i) {
    if (s == ResourceConfigName(static_cast<ResourceConfig>(i))) {
      out = static_cast<ResourceConfig>(i);
      return true;
    }
  }
  return false;
}

// Drives one reader pass: opens the file, skips the header, splits each
// non-blank line into row.fields, and hands it to `parse_row`.
template <typename ParseRow>
bool ReadCsvRows(const std::string& path, RowReader& row, ParseRow parse_row) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    SetError(row.error, 0, "cannot open '" + path + "'");
    return false;
  }
  char line[1024];
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++row.lineno;
    if (first) {  // Header.
      first = false;
      continue;
    }
    if (IsBlankLine(line)) {
      continue;
    }
    if (std::strchr(line, '\n') == nullptr && !std::feof(f.get())) {
      return row.Fail("line exceeds " + std::to_string(sizeof(line) - 2) +
                      " characters");
    }
    row.fields = SplitCsvLine(line);
    if (!parse_row(row)) {
      return false;
    }
  }
  if (std::ferror(f.get()) != 0) {
    return row.Fail("read error");
  }
  return true;
}

}  // namespace

bool ReadRequestsCsv(const std::string& path, TraceStore& store, CsvError* error) {
  RowReader row(store, error);
  return ReadCsvRows(path, row, [&store](const RowReader& r) {
    if (!r.Shape(9)) {
      return false;
    }
    RequestRecord rec;
    uint64_t v = 0;
    if (!r.I64(0, "timestamp_us", rec.timestamp)) {
      return false;
    }
    if (!r.U64(1, "pod_id", UINT32_MAX, v)) {
      return false;
    }
    rec.pod_id = static_cast<PodId>(v);
    if (!r.Cluster(2, rec.region, rec.cluster)) {
      return false;
    }
    if (!r.U64(3, "function", UINT32_MAX, v)) {
      return false;
    }
    rec.function_id = static_cast<FunctionId>(v);
    if (!r.FunctionInRange(rec.function_id)) {
      return false;
    }
    if (!r.U64(4, "user", UINT32_MAX, v)) {
      return false;
    }
    rec.user_id = static_cast<UserId>(v);
    if (!r.U64(5, "request_id", UINT64_MAX, rec.request_id)) {
      return false;
    }
    if (!r.U64(6, "execution_time_us", UINT32_MAX, v)) {
      return false;
    }
    rec.execution_time_us = static_cast<uint32_t>(v);
    if (!r.U64(7, "cpu_millicores", UINT16_MAX, v)) {
      return false;
    }
    rec.cpu_millicores = static_cast<uint16_t>(v);
    if (!r.U64(8, "memory_bytes", uint64_t{UINT32_MAX} * 1024, v)) {
      return false;
    }
    rec.memory_kb = static_cast<uint32_t>(v / 1024);
    store.AddRequest(rec);
    return true;
  });
}

bool ReadColdStartsCsv(const std::string& path, TraceStore& store, CsvError* error) {
  RowReader row(store, error);
  return ReadCsvRows(path, row, [&store](const RowReader& r) {
    if (!r.Shape(10)) {
      return false;
    }
    ColdStartRecord rec;
    uint64_t v = 0;
    if (!r.I64(0, "timestamp_us", rec.timestamp)) {
      return false;
    }
    if (!r.U64(1, "pod_id", UINT32_MAX, v)) {
      return false;
    }
    rec.pod_id = static_cast<PodId>(v);
    if (!r.Cluster(2, rec.region, rec.cluster)) {
      return false;
    }
    if (!r.U64(3, "function", UINT32_MAX, v)) {
      return false;
    }
    rec.function_id = static_cast<FunctionId>(v);
    if (!r.FunctionInRange(rec.function_id)) {
      return false;
    }
    if (!r.U64(4, "user", UINT32_MAX, v)) {
      return false;
    }
    rec.user_id = static_cast<UserId>(v);
    static constexpr const char* kComponents[] = {
        "cold_start_us", "pod_alloc_us", "deploy_code_us", "deploy_dep_us",
        "scheduling_us"};
    uint32_t* const fields[] = {&rec.cold_start_us, &rec.pod_alloc_us,
                                &rec.deploy_code_us, &rec.deploy_dep_us,
                                &rec.scheduling_us};
    for (size_t i = 0; i < 5; ++i) {
      if (!r.U64(5 + i, kComponents[i], UINT32_MAX, v)) {
        return false;
      }
      *fields[i] = static_cast<uint32_t>(v);
    }
    store.AddColdStart(rec);
    return true;
  });
}

bool ReadFunctionsCsv(const std::string& path, TraceStore& store, CsvError* error) {
  RowReader row(store, error);
  return ReadCsvRows(path, row, [&store](const RowReader& r) {
    if (!r.Shape(7)) {
      return false;
    }
    FunctionRecord rec;
    uint64_t v = 0;
    if (!r.U64(0, "function", UINT32_MAX, v)) {
      return false;
    }
    rec.function_id = static_cast<FunctionId>(v);
    if (!r.U64(1, "user", UINT32_MAX, v)) {
      return false;
    }
    rec.user_id = static_cast<UserId>(v);
    if (!r.Region(2, rec.region)) {
      return false;
    }
    if (!RuntimeFromName(r.fields[3], rec.runtime)) {
      return r.Fail("unknown runtime '" + r.fields[3] + "'");
    }
    if (!TriggerFromName(r.fields[4], rec.primary_trigger)) {
      return r.Fail("unknown trigger '" + r.fields[4] + "'");
    }
    if (!r.U64(5, "trigger_mask", UINT16_MAX, v)) {
      return false;
    }
    rec.trigger_mask = static_cast<uint16_t>(v);
    if (!ConfigFromName(r.fields[6], rec.config)) {
      return r.Fail("unknown cpu_mem config '" + r.fields[6] + "'");
    }
    if (rec.function_id != store.functions().size()) {
      return r.Fail("function id " + std::to_string(rec.function_id) +
                    " breaks the dense id sequence (expected " +
                    std::to_string(store.functions().size()) + ")");
    }
    store.AddFunction(rec);
    return true;
  });
}

bool ReadPodsCsv(const std::string& path, TraceStore& store, CsvError* error) {
  RowReader row(store, error);
  return ReadCsvRows(path, row, [&store](const RowReader& r) {
    if (!r.Shape(11)) {
      return false;
    }
    PodLifetimeRecord rec;
    uint64_t v = 0;
    if (!r.U64(0, "pod_id", UINT32_MAX, v)) {
      return false;
    }
    rec.pod_id = static_cast<PodId>(v);
    if (!r.U64(1, "function", UINT32_MAX, v)) {
      return false;
    }
    rec.function_id = static_cast<FunctionId>(v);
    if (!r.FunctionInRange(rec.function_id)) {
      return false;
    }
    if (!r.Region(2, rec.region)) {
      return false;
    }
    if (!r.U64(3, "cluster", kClustersPerRegion - 1, v)) {
      return false;
    }
    rec.cluster = static_cast<ClusterId>(v);
    if (!ConfigFromName(r.fields[4], rec.config)) {
      return r.Fail("unknown cpu_mem config '" + r.fields[4] + "'");
    }
    if (!r.I64(5, "cold_start_begin_us", rec.cold_start_begin) ||
        !r.I64(6, "ready_us", rec.ready_time) ||
        !r.I64(7, "last_busy_end_us", rec.last_busy_end) ||
        !r.I64(8, "death_us", rec.death_time)) {
      return false;
    }
    if (!r.U64(9, "cold_start_us", UINT32_MAX, v)) {
      return false;
    }
    rec.cold_start_us = static_cast<uint32_t>(v);
    if (!r.U64(10, "requests_served", UINT32_MAX, v)) {
      return false;
    }
    rec.requests_served = static_cast<uint32_t>(v);
    store.AddPodLifetime(rec);
    return true;
  });
}

}  // namespace coldstart::trace
