#include "trace/csv.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace coldstart::trace {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr OpenWrite(const std::string& path) { return FilePtr(std::fopen(path.c_str(), "w")); }
FilePtr OpenRead(const std::string& path) { return FilePtr(std::fopen(path.c_str(), "r")); }

std::string IdField(uint64_t raw, bool hash) {
  if (hash) {
    return HashedId(raw);
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, raw);
  return buf;
}

// Splits one CSV line (no quoting in our files) into fields.
std::vector<std::string> SplitCsvLine(const char* line) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char* p = line; *p != '\0' && *p != '\n' && *p != '\r'; ++p) {
    if (*p == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

bool WriteRequestsCsv(const TraceStore& store, const std::string& path,
                      const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(),
               "timestamp_us,pod_id,cluster,function,user,request_id,"
               "execution_time_us,cpu_millicores,memory_bytes\n");
  for (const auto& r : store.requests()) {
    std::fprintf(f.get(), "%" PRId64 ",%s,%s-c%d,%s,%s,%s,%u,%u,%" PRIu64 "\n",
                 r.timestamp, IdField(r.pod_id, opts.hash_ids).c_str(),
                 RegionName(r.region).c_str(), static_cast<int>(r.cluster),
                 IdField(r.function_id, opts.hash_ids).c_str(),
                 IdField(r.user_id, opts.hash_ids).c_str(),
                 IdField(r.request_id, opts.hash_ids).c_str(), r.execution_time_us,
                 r.cpu_millicores, static_cast<uint64_t>(r.memory_kb) * 1024);
  }
  return std::ferror(f.get()) == 0;
}

bool WriteColdStartsCsv(const TraceStore& store, const std::string& path,
                        const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(),
               "timestamp_us,pod_id,cluster,function,user,cold_start_us,"
               "pod_alloc_us,deploy_code_us,deploy_dep_us,scheduling_us\n");
  for (const auto& c : store.cold_starts()) {
    std::fprintf(f.get(), "%" PRId64 ",%s,%s-c%d,%s,%s,%u,%u,%u,%u,%u\n", c.timestamp,
                 IdField(c.pod_id, opts.hash_ids).c_str(), RegionName(c.region).c_str(),
                 static_cast<int>(c.cluster), IdField(c.function_id, opts.hash_ids).c_str(),
                 IdField(c.user_id, opts.hash_ids).c_str(), c.cold_start_us, c.pod_alloc_us,
                 c.deploy_code_us, c.deploy_dep_us, c.scheduling_us);
  }
  return std::ferror(f.get()) == 0;
}

bool WriteFunctionsCsv(const TraceStore& store, const std::string& path,
                       const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(), "function,user,region,runtime,trigger_type,trigger_mask,cpu_mem\n");
  for (const auto& fn : store.functions()) {
    std::fprintf(f.get(), "%s,%s,%s,%s,%s,%u,%s\n",
                 IdField(fn.function_id, opts.hash_ids).c_str(),
                 IdField(fn.user_id, opts.hash_ids).c_str(), RegionName(fn.region).c_str(),
                 RuntimeName(fn.runtime), TriggerName(fn.primary_trigger),
                 static_cast<unsigned>(fn.trigger_mask), ResourceConfigName(fn.config));
  }
  return std::ferror(f.get()) == 0;
}

bool WritePodsCsv(const TraceStore& store, const std::string& path,
                  const CsvExportOptions& opts) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(),
               "pod_id,function,region,cluster,cpu_mem,cold_start_begin_us,ready_us,"
               "last_busy_end_us,death_us,cold_start_us,requests_served\n");
  for (const auto& p : store.pods()) {
    std::fprintf(f.get(),
                 "%s,%s,%s,%d,%s,%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%u,%u\n",
                 IdField(p.pod_id, opts.hash_ids).c_str(),
                 IdField(p.function_id, opts.hash_ids).c_str(), RegionName(p.region).c_str(),
                 static_cast<int>(p.cluster), ResourceConfigName(p.config),
                 p.cold_start_begin, p.ready_time, p.last_busy_end, p.death_time,
                 p.cold_start_us, p.requests_served);
  }
  return std::ferror(f.get()) == 0;
}

namespace {

// Parses "R3-c2" into region/cluster. Returns false on malformed input.
bool ParseCluster(const std::string& s, RegionId& region, ClusterId& cluster) {
  int r = 0, c = 0;
  if (std::sscanf(s.c_str(), "R%d-c%d", &r, &c) != 2) {
    return false;
  }
  if (r < 1 || r > kNumRegions || c < 0 || c >= kClustersPerRegion) {
    return false;
  }
  region = static_cast<RegionId>(r - 1);
  cluster = static_cast<ClusterId>(c);
  return true;
}

bool ParseRegion(const std::string& s, RegionId& region) {
  int r = 0;
  if (std::sscanf(s.c_str(), "R%d", &r) != 1 || r < 1 || r > kNumRegions) {
    return false;
  }
  region = static_cast<RegionId>(r - 1);
  return true;
}

Runtime RuntimeFromName(const std::string& s) {
  for (int i = 0; i < kNumRuntimes; ++i) {
    if (s == RuntimeName(static_cast<Runtime>(i))) {
      return static_cast<Runtime>(i);
    }
  }
  return Runtime::kUnknown;
}

Trigger TriggerFromName(const std::string& s) {
  for (int i = 0; i < kNumTriggers; ++i) {
    if (s == TriggerName(static_cast<Trigger>(i))) {
      return static_cast<Trigger>(i);
    }
  }
  return Trigger::kUnknown;
}

ResourceConfig ConfigFromName(const std::string& s) {
  for (int i = 0; i < kNumResourceConfigs; ++i) {
    if (s == ResourceConfigName(static_cast<ResourceConfig>(i))) {
      return static_cast<ResourceConfig>(i);
    }
  }
  return ResourceConfig::k300m128;
}

}  // namespace

bool ReadRequestsCsv(const std::string& path, TraceStore& store) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    return false;
  }
  char line[1024];
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (first) {  // Header.
      first = false;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 9) {
      return false;
    }
    RequestRecord r;
    r.timestamp = std::strtoll(fields[0].c_str(), nullptr, 10);
    r.pod_id = static_cast<PodId>(std::strtoul(fields[1].c_str(), nullptr, 10));
    if (!ParseCluster(fields[2], r.region, r.cluster)) {
      return false;
    }
    r.function_id = static_cast<FunctionId>(std::strtoul(fields[3].c_str(), nullptr, 10));
    r.user_id = static_cast<UserId>(std::strtoul(fields[4].c_str(), nullptr, 10));
    r.request_id = std::strtoull(fields[5].c_str(), nullptr, 10);
    r.execution_time_us = static_cast<uint32_t>(std::strtoul(fields[6].c_str(), nullptr, 10));
    r.cpu_millicores = static_cast<uint16_t>(std::strtoul(fields[7].c_str(), nullptr, 10));
    r.memory_kb = static_cast<uint32_t>(std::strtoull(fields[8].c_str(), nullptr, 10) / 1024);
    store.AddRequest(r);
  }
  return true;
}

bool ReadColdStartsCsv(const std::string& path, TraceStore& store) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    return false;
  }
  char line[1024];
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (first) {
      first = false;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 10) {
      return false;
    }
    ColdStartRecord c;
    c.timestamp = std::strtoll(fields[0].c_str(), nullptr, 10);
    c.pod_id = static_cast<PodId>(std::strtoul(fields[1].c_str(), nullptr, 10));
    if (!ParseCluster(fields[2], c.region, c.cluster)) {
      return false;
    }
    c.function_id = static_cast<FunctionId>(std::strtoul(fields[3].c_str(), nullptr, 10));
    c.user_id = static_cast<UserId>(std::strtoul(fields[4].c_str(), nullptr, 10));
    c.cold_start_us = static_cast<uint32_t>(std::strtoul(fields[5].c_str(), nullptr, 10));
    c.pod_alloc_us = static_cast<uint32_t>(std::strtoul(fields[6].c_str(), nullptr, 10));
    c.deploy_code_us = static_cast<uint32_t>(std::strtoul(fields[7].c_str(), nullptr, 10));
    c.deploy_dep_us = static_cast<uint32_t>(std::strtoul(fields[8].c_str(), nullptr, 10));
    c.scheduling_us = static_cast<uint32_t>(std::strtoul(fields[9].c_str(), nullptr, 10));
    store.AddColdStart(c);
  }
  return true;
}

bool ReadFunctionsCsv(const std::string& path, TraceStore& store) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    return false;
  }
  char line[1024];
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (first) {
      first = false;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 7) {
      return false;
    }
    FunctionRecord fn;
    fn.function_id = static_cast<FunctionId>(std::strtoul(fields[0].c_str(), nullptr, 10));
    fn.user_id = static_cast<UserId>(std::strtoul(fields[1].c_str(), nullptr, 10));
    if (!ParseRegion(fields[2], fn.region)) {
      return false;
    }
    fn.runtime = RuntimeFromName(fields[3]);
    fn.primary_trigger = TriggerFromName(fields[4]);
    fn.trigger_mask = static_cast<uint16_t>(std::strtoul(fields[5].c_str(), nullptr, 10));
    fn.config = ConfigFromName(fields[6]);
    store.AddFunction(fn);
  }
  return true;
}

bool ReadPodsCsv(const std::string& path, TraceStore& store) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    return false;
  }
  char line[1024];
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (first) {
      first = false;
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 11) {
      return false;
    }
    PodLifetimeRecord p;
    p.pod_id = static_cast<PodId>(std::strtoul(fields[0].c_str(), nullptr, 10));
    p.function_id = static_cast<FunctionId>(std::strtoul(fields[1].c_str(), nullptr, 10));
    if (!ParseRegion(fields[2], p.region)) {
      return false;
    }
    p.cluster = static_cast<ClusterId>(std::strtoul(fields[3].c_str(), nullptr, 10));
    p.config = ConfigFromName(fields[4]);
    p.cold_start_begin = std::strtoll(fields[5].c_str(), nullptr, 10);
    p.ready_time = std::strtoll(fields[6].c_str(), nullptr, 10);
    p.last_busy_end = std::strtoll(fields[7].c_str(), nullptr, 10);
    p.death_time = std::strtoll(fields[8].c_str(), nullptr, 10);
    p.cold_start_us = static_cast<uint32_t>(std::strtoul(fields[9].c_str(), nullptr, 10));
    p.requests_served = static_cast<uint32_t>(std::strtoul(fields[10].c_str(), nullptr, 10));
    store.AddPodLifetime(p);
  }
  return true;
}

}  // namespace coldstart::trace
