// The record-emission interface that decouples *recording* a trace from *storing* one.
//
// The platform emits one callback per Table 1 record as simulation time advances; what
// happens to the record is the sink's business. TraceStore (the in-memory columnar
// store every post-hoc analysis runs over) is one sink; StreamingAggregates folds each
// record into O(1)-memory counters and histograms on the fly, which is what makes
// month- and year-scale runs possible without materializing hundreds of MB of tables.
//
// Contract: OnFunction is called once per function, before any event-stream callback
// that references it (the platform writes the whole function table at construction).
// OnRequest/OnColdStart/OnPodLifetime arrive in simulation emission order, which for
// any single region is identical between a serial run and that region's shard — the
// invariant that lets per-region streaming accumulators merge deterministically.
// OnHorizon is called once per run, at Finalize(). OnRegionCost arrives after it,
// once per region in region-index order, carrying the resource-cost ledger totals;
// the default no-op keeps sinks that only care about Table 1 records unchanged.
#ifndef COLDSTART_TRACE_TRACE_SINK_H_
#define COLDSTART_TRACE_TRACE_SINK_H_

#include "trace/records.h"

namespace coldstart::trace {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void OnFunction(const FunctionRecord& r) = 0;
  virtual void OnRequest(const RequestRecord& r) = 0;
  virtual void OnColdStart(const ColdStartRecord& r) = 0;
  virtual void OnPodLifetime(const PodLifetimeRecord& r) = 0;
  virtual void OnHorizon(SimTime horizon) = 0;
  // Cost totals are additive across shards; a shard emits its own partial sums
  // and the merge is integer addition (see RegionCostRecord).
  virtual void OnRegionCost(const RegionCostRecord& r) { (void)r; }
};

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_TRACE_SINK_H_
