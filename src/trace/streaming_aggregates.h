// O(1)-memory streaming trace sink.
//
// Folds every emitted record into per-region and per-trigger-group counters and
// log-bucketed histograms (cold-start latency, request durations, pod lifetimes)
// as the simulation runs, so a month- or year-scale experiment needs memory
// proportional to regions x trigger groups — not to the number of requests. This is
// the "always-on telemetry" half of the trace layer; TraceStore is the exact
// post-hoc half.
//
// Determinism: all accumulators are indexed by (region[, group]), and a region's
// records arrive in the same order whether the run was serial or region-sharded, so
// per-region state — including floating-point histogram sums — is bit-identical
// across thread counts. MergeFrom folds shards in region-index order, which keeps
// every cross-region rollup deterministic too. Sums that feed exact-equality
// contracts (latency, execution time, lifetimes) are integer microseconds.
#ifndef COLDSTART_TRACE_STREAMING_AGGREGATES_H_
#define COLDSTART_TRACE_STREAMING_AGGREGATES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "trace/trace_sink.h"
#include "trace/types.h"

namespace coldstart::trace {

class TraceStore;

// Additive event counters. Integer sums, so merge order can never change a bit.
struct StreamCounters {
  uint64_t requests = 0;
  uint64_t cold_starts = 0;
  uint64_t pods = 0;
  uint64_t cold_start_latency_sum_us = 0;
  uint64_t execution_time_sum_us = 0;
  uint64_t pod_lifetime_sum_us = 0;
  uint64_t pod_requests_served = 0;

  void MergeFrom(const StreamCounters& other);
};

class StreamingAggregates final : public TraceSink {
 public:
  StreamingAggregates() = default;

  // TraceSink: each record folds into its region's (and trigger group's) state.
  void OnFunction(const FunctionRecord& r) override;
  void OnRequest(const RequestRecord& r) override;
  void OnColdStart(const ColdStartRecord& r) override;
  void OnPodLifetime(const PodLifetimeRecord& r) override;
  void OnHorizon(SimTime horizon) override;
  // Cost-ledger totals (one record per region at Finalize); shard partials add.
  void OnRegionCost(const RegionCostRecord& r) override;

  // Merges another shard of the same scenario. Shards carry identical function
  // tables (every shard's platform registers the full population); event state is
  // added region-wise. Call in region-index order for deterministic rollups.
  void MergeFrom(const StreamingAggregates& other);

  // --- Queries. ---
  // Highest region seen + 1 (regions with no records still count if a function
  // table row named them).
  size_t num_regions() const { return regions_.size(); }
  SimTime horizon() const { return horizon_; }
  size_t num_functions() const { return function_groups_.size(); }
  uint64_t functions_in_region(RegionId region) const;

  const StreamCounters& region(RegionId region) const;
  const StreamCounters& group(RegionId region, TriggerGroup group) const;
  // Cross-region rollups, folded in region-index order.
  StreamCounters Totals() const;
  StreamCounters GroupTotals(TriggerGroup group) const;

  // Resource-cost totals (platform/cost_ledger.h) as delivered via OnRegionCost.
  // Zero-valued for runs that never finalized a platform into this sink.
  RegionCostRecord region_cost(RegionId region) const;
  RegionCostRecord TotalCost() const;

  // Histograms record seconds. Cold-start latency spans 1ms..10^4s, request
  // execution 10us..10^4s, pod lifetime 10ms..10^9s (decades beyond a year).
  const LogHistogram& cold_start_hist(RegionId region) const;
  const LogHistogram& request_hist(RegionId region) const;
  const LogHistogram& pod_lifetime_hist(RegionId region) const;
  const LogHistogram& group_cold_start_hist(RegionId region, TriggerGroup group) const;
  LogHistogram MergedColdStartHist() const;
  LogHistogram MergedRequestHist() const;
  LogHistogram MergedPodLifetimeHist() const;
  LogHistogram GroupColdStartHist(TriggerGroup group) const;

  // Rough live-memory footprint of this sink (for the memory-budget benches).
  size_t ApproxBytes() const;

  // Checkpoint support (src/checkpoint/): full accumulator state — counters,
  // histograms (doubles by bit pattern), function-group table, horizon. A
  // save/restore round trip is bit-exact, so a resumed run's final aggregates
  // equal the uninterrupted run's.
  void SaveState(ByteWriter& w) const;
  void RestoreState(ByteReader& r);

 private:
  struct RegionSlot {
    RegionSlot();
    StreamCounters counters;
    std::array<StreamCounters, kNumTriggerGroups> group_counters;
    LogHistogram cold_start_hist;
    LogHistogram request_hist;
    LogHistogram pod_lifetime_hist;
    std::array<LogHistogram, kNumTriggerGroups> group_cold_start_hists;
    uint64_t functions = 0;
    // Order-invariant 128-bit cost sums (see RegionCostRecord); plain addition
    // on merge, so shard partials fold exactly.
    RegionCostRecord cost;
  };

  RegionSlot& Slot(RegionId region);
  const RegionSlot& SlotOrEmpty(RegionId region) const;
  TriggerGroup GroupOfFunction(FunctionId function) const;

  std::vector<RegionSlot> regions_;
  // Trigger group per function id (dense, from the function table); metadata, not
  // additive — MergeFrom requires shards to agree.
  std::vector<TriggerGroup> function_groups_;
  SimTime horizon_ = 0;
};

// Folds a (sealed or unsealed) exact store through the streaming sink — the
// reference the streaming path is tested against, and the upgrade path for code
// that has a TraceStore but wants the histogram-based report renderers.
StreamingAggregates AggregatesFromStore(const TraceStore& store);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_STREAMING_AGGREGATES_H_
