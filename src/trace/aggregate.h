// Time-bucketed rollups over trace tables.
//
// Every temporal figure in the paper is a per-minute or per-hour aggregate of one of
// the Table 1 streams; this module provides those rollups once so analysis modules and
// benches share one implementation.
#ifndef COLDSTART_TRACE_AGGREGATE_H_
#define COLDSTART_TRACE_AGGREGATE_H_

#include <functional>
#include <vector>

#include "trace/trace_store.h"

namespace coldstart::trace {

// Number of buckets of `bucket` duration needed to cover [0, horizon).
size_t NumBuckets(SimTime horizon, SimDuration bucket);

// Requests per bucket for one region (pass region = -1 for all regions).
std::vector<double> RequestCountSeries(const TraceStore& store, int region,
                                       SimDuration bucket);

// Mean over per-bucket request execution times, in seconds. Buckets with no requests
// hold 0.
std::vector<double> MeanExecutionTimeSeries(const TraceStore& store, int region,
                                            SimDuration bucket);

// Mean request CPU usage per bucket, in cores.
std::vector<double> MeanCpuUsageSeries(const TraceStore& store, int region,
                                       SimDuration bucket);

// Cold starts per bucket for one region (-1 for all).
std::vector<double> ColdStartCountSeries(const TraceStore& store, int region,
                                         SimDuration bucket);

// Per-bucket means of the cold-start total and its four components (seconds).
struct ComponentSeries {
  std::vector<double> total;
  std::vector<double> pod_alloc;
  std::vector<double> deploy_code;
  std::vector<double> deploy_dep;
  std::vector<double> scheduling;
  std::vector<double> count;  // Cold starts per bucket (not a mean).
};
ComponentSeries ColdStartComponentSeries(const TraceStore& store, int region,
                                         SimDuration bucket);

// Number of distinct pods alive during each bucket, per group key. `key_of` maps a pod
// record to a key in [0, num_keys) or -1 to skip. Result is [key][bucket].
std::vector<std::vector<double>> RunningPodsSeries(
    const TraceStore& store, int region, SimDuration bucket, int num_keys,
    const std::function<int(const PodLifetimeRecord&)>& key_of);

// Total requests per function over the whole trace (indexed by FunctionId).
std::vector<uint64_t> RequestsPerFunction(const TraceStore& store);

// Total cold starts per function over the whole trace.
std::vector<uint64_t> ColdStartsPerFunction(const TraceStore& store);

// Per-function requests-per-minute series (sparse input -> dense series); used by the
// peak-to-trough analysis. Only functions with ids in [0, store.functions().size()).
// Returns [function][bucket] as a vector of vectors; memory is ~functions x buckets, so
// callers pass hour buckets for month-long traces.
std::vector<std::vector<double>> PerFunctionRequestSeries(const TraceStore& store,
                                                          SimDuration bucket);

// Sum of pod-seconds per bucket, grouped like RunningPodsSeries but weighting by the
// fraction of the bucket each pod is alive (used for allocated-CPU series in Fig. 7).
std::vector<double> AllocatedCpuCoreSeries(const TraceStore& store, int region,
                                           SimDuration bucket);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_AGGREGATE_H_
