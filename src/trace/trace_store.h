// In-memory columnar store for one scenario's traces: the exact-record TraceSink.
//
// One TraceStore holds all five regions' tables, exactly as a month of the released
// dataset would. Append during simulation, Seal() once, then run analyses. Records are
// stored in flat vectors; Seal() sorts into a canonical (timestamp, region, id) total
// order so analyses can assume time order and so a store assembled from per-region
// shards (AppendFrom) seals to exactly the same byte sequence as a serial run.
// Runs that cannot afford full materialization emit into a StreamingAggregates sink
// instead (TraceMode::kStreaming).
#ifndef COLDSTART_TRACE_TRACE_STORE_H_
#define COLDSTART_TRACE_TRACE_STORE_H_

#include <vector>

#include "trace/records.h"
#include "trace/trace_sink.h"

namespace coldstart::trace {

class TraceStore final : public TraceSink {
 public:
  TraceStore() = default;

  // Move-only: stores can be hundreds of MB.
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;
  TraceStore(TraceStore&&) = default;
  TraceStore& operator=(TraceStore&&) = default;

  void AddRequest(const RequestRecord& r) { requests_.push_back(r); }
  void AddColdStart(const ColdStartRecord& r) { cold_starts_.push_back(r); }
  void AddPodLifetime(const PodLifetimeRecord& r) { pods_.push_back(r); }

  // Registers a function; function_id must equal the current table size (dense ids).
  void AddFunction(const FunctionRecord& r);

  // TraceSink: emission appends to the tables.
  void OnRequest(const RequestRecord& r) override { AddRequest(r); }
  void OnColdStart(const ColdStartRecord& r) override { AddColdStart(r); }
  void OnPodLifetime(const PodLifetimeRecord& r) override { AddPodLifetime(r); }
  void OnFunction(const FunctionRecord& r) override { AddFunction(r); }
  void OnHorizon(SimTime horizon) override { set_horizon(horizon); }

  // Merges another shard of the same scenario into this store: request, cold-start,
  // and pod tables are appended (consumed from `other`); the function table — which
  // every shard emits identically — must already match and is left untouched. The
  // horizon becomes the max of the two. Seal() afterwards restores the canonical
  // order, which is what makes a per-region sharded run byte-identical to serial.
  void AppendFrom(TraceStore&& other);

  // Sorts request/cold-start/pod tables into the canonical total order
  // (timestamp, region, record id). Deterministic in the record *multiset* — the
  // insertion order never shows through — and idempotent.
  void Seal();
  bool sealed() const { return sealed_; }

  const std::vector<RequestRecord>& requests() const { return requests_; }
  const std::vector<ColdStartRecord>& cold_starts() const { return cold_starts_; }
  const std::vector<FunctionRecord>& functions() const { return functions_; }
  const std::vector<PodLifetimeRecord>& pods() const { return pods_; }

  const FunctionRecord& function(FunctionId id) const { return functions_.at(id); }

  // Trace horizon: duration covered by the store, set by the simulator.
  void set_horizon(SimTime end) { horizon_ = end; }
  SimTime horizon() const { return horizon_; }

  void Reserve(size_t requests, size_t cold_starts, size_t pods);

  // Checkpoint support (src/checkpoint/): bulk-installs the tables of a partial,
  // unsealed store captured mid-run, exactly as saved. This store must be empty.
  void RestoreTables(std::vector<RequestRecord> requests,
                     std::vector<ColdStartRecord> cold_starts,
                     std::vector<FunctionRecord> functions,
                     std::vector<PodLifetimeRecord> pods, SimTime horizon);

 private:
  std::vector<RequestRecord> requests_;
  std::vector<ColdStartRecord> cold_starts_;
  std::vector<FunctionRecord> functions_;
  std::vector<PodLifetimeRecord> pods_;
  SimTime horizon_ = 0;
  bool sealed_ = false;
};

// Order-sensitive 64-bit digest over every field of every record table plus the
// horizon. Two sealed stores digest equal iff they are field-wise identical, so a
// single number pins a whole run: the golden-trace regression test and the replay
// round-trip check both compare digests instead of multi-GB tables.
uint64_t Digest(const TraceStore& store);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_TRACE_STORE_H_
