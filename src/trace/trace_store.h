// In-memory columnar store for one scenario's traces.
//
// One TraceStore holds all five regions' tables, exactly as a month of the released
// dataset would. Append during simulation, Seal() once, then run analyses. Records are
// stored in flat vectors; Seal() sorts by timestamp so analyses can assume time order.
#ifndef COLDSTART_TRACE_TRACE_STORE_H_
#define COLDSTART_TRACE_TRACE_STORE_H_

#include <vector>

#include "trace/records.h"

namespace coldstart::trace {

class TraceStore {
 public:
  TraceStore() = default;

  // Move-only: stores can be hundreds of MB.
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;
  TraceStore(TraceStore&&) = default;
  TraceStore& operator=(TraceStore&&) = default;

  void AddRequest(const RequestRecord& r) { requests_.push_back(r); }
  void AddColdStart(const ColdStartRecord& r) { cold_starts_.push_back(r); }
  void AddPodLifetime(const PodLifetimeRecord& r) { pods_.push_back(r); }

  // Registers a function; function_id must equal the current table size (dense ids).
  void AddFunction(const FunctionRecord& r);

  // Sorts request/cold-start tables by timestamp. Idempotent.
  void Seal();
  bool sealed() const { return sealed_; }

  const std::vector<RequestRecord>& requests() const { return requests_; }
  const std::vector<ColdStartRecord>& cold_starts() const { return cold_starts_; }
  const std::vector<FunctionRecord>& functions() const { return functions_; }
  const std::vector<PodLifetimeRecord>& pods() const { return pods_; }

  const FunctionRecord& function(FunctionId id) const { return functions_.at(id); }

  // Trace horizon: duration covered by the store, set by the simulator.
  void set_horizon(SimTime end) { horizon_ = end; }
  SimTime horizon() const { return horizon_; }

  void Reserve(size_t requests, size_t cold_starts, size_t pods);

 private:
  std::vector<RequestRecord> requests_;
  std::vector<ColdStartRecord> cold_starts_;
  std::vector<FunctionRecord> functions_;
  std::vector<PodLifetimeRecord> pods_;
  SimTime horizon_ = 0;
  bool sealed_ = false;
};

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_TRACE_STORE_H_
