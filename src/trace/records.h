// The dataset schema: one record type per monitoring stream of Table 1.
//
// Field names and units follow the paper: timestamps and durations in microseconds,
// CPU usage in millicores, memory in bytes (stored as KB to keep records compact).
// IDs are numeric; HashedId() reproduces the released dataset's hashed string form.
#ifndef COLDSTART_TRACE_RECORDS_H_
#define COLDSTART_TRACE_RECORDS_H_

#include <string>

#include "common/sim_time.h"
#include "trace/types.h"

namespace coldstart::trace {

// Request-level monitoring (one row per request).
struct RequestRecord {
  SimTime timestamp = 0;        // At the worker, µs.
  uint64_t request_id = 0;      // Hashed request ID.
  PodId pod_id = 0;
  FunctionId function_id = 0;
  UserId user_id = 0;
  RegionId region = 0;
  ClusterId cluster = 0;
  uint16_t cpu_millicores = 0;  // CPU usage of the request.
  uint32_t execution_time_us = 0;
  uint32_t memory_kb = 0;       // Memory usage (Table 1 reports bytes; we store KB).
};

// Pod-level monitoring (one row per cold-start event).
struct ColdStartRecord {
  SimTime timestamp = 0;  // When the cold start began, µs.
  PodId pod_id = 0;
  FunctionId function_id = 0;
  UserId user_id = 0;
  RegionId region = 0;
  ClusterId cluster = 0;
  uint32_t cold_start_us = 0;    // Total; equals the sum of the four components.
  uint32_t pod_alloc_us = 0;     // Time to get a pod from the pool (or from scratch).
  uint32_t deploy_code_us = 0;   // Download + extract + deploy the function package.
  uint32_t deploy_dep_us = 0;    // Fetch + load dependency layers (0 = no layers).
  uint32_t scheduling_us = 0;    // Networking, routing, scheduling overheads.
};

// Function-level monitoring (one row per function).
struct FunctionRecord {
  FunctionId function_id = 0;
  UserId user_id = 0;
  RegionId region = 0;
  Runtime runtime = Runtime::kUnknown;
  Trigger primary_trigger = Trigger::kUnknown;
  uint16_t trigger_mask = 0;  // Bit i set <=> function has Trigger(i) attached.
  ResourceConfig config = ResourceConfig::k300m128;
};

// Pod lifecycle (simulator-internal convenience table; the paper reconstructs the same
// information from the request table + the 60 s keep-alive constant). Analysis code
// uses it for utility ratios, and tests cross-check it against reconstruction.
struct PodLifetimeRecord {
  PodId pod_id = 0;
  FunctionId function_id = 0;
  RegionId region = 0;
  ClusterId cluster = 0;
  ResourceConfig config = ResourceConfig::k300m128;
  SimTime cold_start_begin = 0;
  SimTime ready_time = 0;       // cold_start_begin + cold_start_us.
  SimTime last_busy_end = 0;    // End of the last request served.
  SimTime death_time = 0;       // last_busy_end + keep-alive (or horizon end).
  uint32_t cold_start_us = 0;
  uint32_t requests_served = 0;
};

// Resource-cost totals for one region, emitted once per region at Finalize by
// the platform's ResourceCostLedger (simulator-internal; not part of the paper's
// dataset schema). The accumulators are order-invariant integer sums — exact
// microsecond counts plus one 2^-20 fixed-point MB·s sum — carried as 128-bit
// values so shard merges are plain additions that commute bit for bit.
struct RegionCostRecord {
  RegionId region = 0;
  __int128 pod_us = 0;             // Σ pod lifetime (cold-start begin → death), µs.
  __int128 warm_idle_us = 0;       // Σ time pods sat warm with zero requests, µs.
  __int128 snapshot_mb_us_fp = 0;  // Σ snapshot MB × lifetime µs, in 2^-20 units.
  int64_t scratch_creations = 0;   // From-scratch pod creations (incl. custom images).

  double pod_seconds() const { return static_cast<double>(pod_us) * 1e-6; }
  double warm_idle_seconds() const { return static_cast<double>(warm_idle_us) * 1e-6; }
  double snapshot_mb_seconds() const {
    return static_cast<double>(snapshot_mb_us_fp) / (1048576.0 * 1e6);
  }
};

// Reproduces the dataset's hashed-ID form for CSV export ("a3f9..." style, 16 hex chars).
std::string HashedId(uint64_t raw);

inline bool HasTrigger(const FunctionRecord& f, Trigger t) {
  return (f.trigger_mask >> static_cast<int>(t)) & 1u;
}

inline uint16_t TriggerBit(Trigger t) { return static_cast<uint16_t>(1u << static_cast<int>(t)); }

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_RECORDS_H_
