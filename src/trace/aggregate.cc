#include "trace/aggregate.h"

#include <algorithm>

#include "common/check.h"

namespace coldstart::trace {

namespace {

// True when the record's region matches the filter (-1 = all regions).
inline bool RegionMatches(int filter, RegionId region) {
  return filter < 0 || static_cast<int>(region) == filter;
}

inline size_t BucketOf(SimTime t, SimDuration bucket) {
  return static_cast<size_t>(t / bucket);
}

}  // namespace

size_t NumBuckets(SimTime horizon, SimDuration bucket) {
  COLDSTART_CHECK_GT(bucket, 0);
  return static_cast<size_t>((horizon + bucket - 1) / bucket);
}

std::vector<double> RequestCountSeries(const TraceStore& store, int region,
                                       SimDuration bucket) {
  std::vector<double> out(NumBuckets(store.horizon(), bucket), 0.0);
  for (const auto& r : store.requests()) {
    if (!RegionMatches(region, r.region)) {
      continue;
    }
    const size_t b = BucketOf(r.timestamp, bucket);
    if (b < out.size()) {
      out[b] += 1.0;
    }
  }
  return out;
}

std::vector<double> MeanExecutionTimeSeries(const TraceStore& store, int region,
                                            SimDuration bucket) {
  const size_t n = NumBuckets(store.horizon(), bucket);
  std::vector<double> sum(n, 0.0);
  std::vector<double> cnt(n, 0.0);
  for (const auto& r : store.requests()) {
    if (!RegionMatches(region, r.region)) {
      continue;
    }
    const size_t b = BucketOf(r.timestamp, bucket);
    if (b < n) {
      sum[b] += static_cast<double>(r.execution_time_us) / kSecond;
      cnt[b] += 1.0;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    sum[i] = cnt[i] > 0 ? sum[i] / cnt[i] : 0.0;
  }
  return sum;
}

std::vector<double> MeanCpuUsageSeries(const TraceStore& store, int region,
                                       SimDuration bucket) {
  const size_t n = NumBuckets(store.horizon(), bucket);
  std::vector<double> sum(n, 0.0);
  std::vector<double> cnt(n, 0.0);
  for (const auto& r : store.requests()) {
    if (!RegionMatches(region, r.region)) {
      continue;
    }
    const size_t b = BucketOf(r.timestamp, bucket);
    if (b < n) {
      sum[b] += static_cast<double>(r.cpu_millicores) / 1000.0;
      cnt[b] += 1.0;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    sum[i] = cnt[i] > 0 ? sum[i] / cnt[i] : 0.0;
  }
  return sum;
}

std::vector<double> ColdStartCountSeries(const TraceStore& store, int region,
                                         SimDuration bucket) {
  std::vector<double> out(NumBuckets(store.horizon(), bucket), 0.0);
  for (const auto& c : store.cold_starts()) {
    if (!RegionMatches(region, c.region)) {
      continue;
    }
    const size_t b = BucketOf(c.timestamp, bucket);
    if (b < out.size()) {
      out[b] += 1.0;
    }
  }
  return out;
}

ComponentSeries ColdStartComponentSeries(const TraceStore& store, int region,
                                         SimDuration bucket) {
  const size_t n = NumBuckets(store.horizon(), bucket);
  ComponentSeries s;
  s.total.assign(n, 0.0);
  s.pod_alloc.assign(n, 0.0);
  s.deploy_code.assign(n, 0.0);
  s.deploy_dep.assign(n, 0.0);
  s.scheduling.assign(n, 0.0);
  s.count.assign(n, 0.0);
  for (const auto& c : store.cold_starts()) {
    if (!RegionMatches(region, c.region)) {
      continue;
    }
    const size_t b = BucketOf(c.timestamp, bucket);
    if (b >= n) {
      continue;
    }
    s.total[b] += ToSeconds(c.cold_start_us);
    s.pod_alloc[b] += ToSeconds(c.pod_alloc_us);
    s.deploy_code[b] += ToSeconds(c.deploy_code_us);
    s.deploy_dep[b] += ToSeconds(c.deploy_dep_us);
    s.scheduling[b] += ToSeconds(c.scheduling_us);
    s.count[b] += 1.0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (s.count[i] > 0) {
      s.total[i] /= s.count[i];
      s.pod_alloc[i] /= s.count[i];
      s.deploy_code[i] /= s.count[i];
      s.deploy_dep[i] /= s.count[i];
      s.scheduling[i] /= s.count[i];
    }
  }
  return s;
}

std::vector<std::vector<double>> RunningPodsSeries(
    const TraceStore& store, int region, SimDuration bucket, int num_keys,
    const std::function<int(const PodLifetimeRecord&)>& key_of) {
  const size_t n = NumBuckets(store.horizon(), bucket);
  std::vector<std::vector<double>> diff(static_cast<size_t>(num_keys),
                                        std::vector<double>(n + 1, 0.0));
  for (const auto& p : store.pods()) {
    if (!RegionMatches(region, p.region)) {
      continue;
    }
    const int key = key_of(p);
    if (key < 0) {
      continue;
    }
    COLDSTART_CHECK_LT(key, num_keys);
    const size_t b0 = std::min(BucketOf(p.cold_start_begin, bucket), n);
    const size_t b1 = std::min(BucketOf(std::max(p.death_time, p.cold_start_begin), bucket), n - 1);
    if (b0 >= n) {
      continue;
    }
    diff[static_cast<size_t>(key)][b0] += 1.0;
    diff[static_cast<size_t>(key)][b1 + 1] -= 1.0;
  }
  for (auto& row : diff) {
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      acc += row[i];
      row[i] = acc;
    }
    row.resize(n);
  }
  return diff;
}

std::vector<uint64_t> RequestsPerFunction(const TraceStore& store) {
  std::vector<uint64_t> out(store.functions().size(), 0);
  for (const auto& r : store.requests()) {
    if (r.function_id < out.size()) {
      ++out[r.function_id];
    }
  }
  return out;
}

std::vector<uint64_t> ColdStartsPerFunction(const TraceStore& store) {
  std::vector<uint64_t> out(store.functions().size(), 0);
  for (const auto& c : store.cold_starts()) {
    if (c.function_id < out.size()) {
      ++out[c.function_id];
    }
  }
  return out;
}

std::vector<std::vector<double>> PerFunctionRequestSeries(const TraceStore& store,
                                                          SimDuration bucket) {
  const size_t n = NumBuckets(store.horizon(), bucket);
  std::vector<std::vector<double>> out(store.functions().size());
  for (auto& row : out) {
    row.assign(n, 0.0);
  }
  for (const auto& r : store.requests()) {
    const size_t b = BucketOf(r.timestamp, bucket);
    if (r.function_id < out.size() && b < n) {
      out[r.function_id][b] += 1.0;
    }
  }
  return out;
}

std::vector<double> AllocatedCpuCoreSeries(const TraceStore& store, int region,
                                           SimDuration bucket) {
  const size_t n = NumBuckets(store.horizon(), bucket);
  std::vector<double> out(n, 0.0);
  for (const auto& p : store.pods()) {
    if (!RegionMatches(region, p.region)) {
      continue;
    }
    const double cores = static_cast<double>(CpuMillicoresOf(p.config)) / 1000.0;
    const SimTime begin = p.cold_start_begin;
    const SimTime end = std::max(p.death_time, begin);
    size_t b = BucketOf(begin, bucket);
    while (b < n) {
      const SimTime bucket_start = static_cast<SimTime>(b) * bucket;
      const SimTime bucket_end = bucket_start + bucket;
      const SimTime lo = std::max(begin, bucket_start);
      const SimTime hi = std::min(end, bucket_end);
      if (hi <= lo) {
        break;
      }
      out[b] += cores * static_cast<double>(hi - lo) / static_cast<double>(bucket);
      if (end <= bucket_end) {
        break;
      }
      ++b;
    }
  }
  return out;
}

}  // namespace coldstart::trace
