// Binary trace serialization: the fast path for the scenario cache.
//
// One file holds all four tables as length-prefixed arrays of packed records. The
// format is local to a build (records are written with memcpy semantics and guarded
// by size fields in the header); cross-toolchain interchange should use csv.h.
#ifndef COLDSTART_TRACE_BINARY_IO_H_
#define COLDSTART_TRACE_BINARY_IO_H_

#include <string>

#include "trace/trace_store.h"

namespace coldstart::trace {

// Writes the whole store; returns false on I/O failure.
bool WriteBinaryTrace(const TraceStore& store, const std::string& path);

// Reads into an empty store; returns false on I/O failure, bad magic, or a record
// layout mismatch (e.g. cache written by a different build).
bool ReadBinaryTrace(const std::string& path, TraceStore& store);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_BINARY_IO_H_
