// Binary trace serialization: the fast path for the scenario cache.
//
// One file holds all four tables as length-prefixed arrays of packed records, plus an
// optional per-region aggregate block (the platform counters an ExperimentResult
// carries) so a cache hit restores exactly what a fresh run would have produced. The
// format is local to a build (records are written with memcpy semantics and guarded
// by size fields in the header); cross-toolchain interchange should use csv.h.
#ifndef COLDSTART_TRACE_BINARY_IO_H_
#define COLDSTART_TRACE_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_store.h"

namespace coldstart::trace {

// Per-region platform counters persisted alongside the trace. All five vectors have
// one entry per region; `events_processed` is the simulator's total event count.
struct TraceAggregates {
  std::vector<int64_t> visible_cold_starts;
  std::vector<int64_t> prewarm_spawns;
  std::vector<int64_t> delayed_allocations;
  std::vector<int64_t> scratch_allocations;
  std::vector<int64_t> cold_start_latency_sum_us;
  uint64_t events_processed = 0;
  // Opaque resource-cost ledger state (platform::ResourceCostLedger::SaveState
  // bytes). The trace layer cannot depend on platform/, so it round-trips the
  // blob verbatim; empty = the file predates cost tracking or carried none.
  std::string cost_ledger;
};

// Writes the whole store (and, when given, the aggregate block); returns false on
// I/O failure. The write is atomic (tmp + fsync + rename): a crash mid-write
// leaves the previous file, never a truncated one, at `path`.
bool WriteBinaryTrace(const TraceStore& store, const std::string& path,
                      const TraceAggregates* aggregates = nullptr);

// Reads into an empty store; returns false on I/O failure, bad magic, a record layout
// mismatch (e.g. cache written by a different build), a header whose table counts
// do not match the actual file size (truncated or corrupt files are rejected before
// any allocation is sized from them), or a payload CRC mismatch (bit rot — reported
// on stderr naming the file). When `aggregates` is non-null and the file
// carries an aggregate block, it is filled in; a file without one leaves it empty.
bool ReadBinaryTrace(const std::string& path, TraceStore& store,
                     TraceAggregates* aggregates = nullptr);

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_BINARY_IO_H_
