#include "trace/types.h"

#include "common/check.h"

namespace coldstart::trace {

const char* RuntimeName(Runtime r) {
  switch (r) {
    case Runtime::kCSharp:
      return "C#";
    case Runtime::kCustom:
      return "Custom";
    case Runtime::kGo1x:
      return "Go1.x";
    case Runtime::kJava:
      return "Java";
    case Runtime::kNodeJs:
      return "Node.js";
    case Runtime::kPhp73:
      return "PHP7.3";
    case Runtime::kPython2:
      return "Python2";
    case Runtime::kPython3:
      return "Python3";
    case Runtime::kHttp:
      return "http";
    case Runtime::kUnknown:
      return "unknown";
  }
  return "invalid";
}

const char* TriggerName(Trigger t) {
  switch (t) {
    case Trigger::kApigSync:
      return "APIG-S";
    case Trigger::kApigAsync:
      return "APIG-A";
    case Trigger::kTimer:
      return "TIMER-A";
    case Trigger::kCts:
      return "CTS-A";
    case Trigger::kDis:
      return "DIS-A";
    case Trigger::kLts:
      return "LTS-A";
    case Trigger::kObs:
      return "OBS-A";
    case Trigger::kSmn:
      return "SMN-A";
    case Trigger::kKafka:
      return "KAFKA-A";
    case Trigger::kKafkaSync:
      return "KAFKA-S";
    case Trigger::kWorkflowSync:
      return "workflow-S";
    case Trigger::kWorkflowAsync:
      return "workflow-A";
    case Trigger::kUnknown:
      return "unknown";
  }
  return "invalid";
}

bool IsSynchronous(Trigger t) {
  switch (t) {
    case Trigger::kApigSync:
    case Trigger::kKafkaSync:
    case Trigger::kWorkflowSync:
      return true;
    default:
      return false;
  }
}

const char* TriggerGroupName(TriggerGroup g) {
  switch (g) {
    case TriggerGroup::kApigS:
      return "APIG-S";
    case TriggerGroup::kObsA:
      return "OBS-A";
    case TriggerGroup::kTimerA:
      return "TIMER-A";
    case TriggerGroup::kOtherA:
      return "other A";
    case TriggerGroup::kOtherS:
      return "other S";
    case TriggerGroup::kUnknown:
      return "unknown";
    case TriggerGroup::kWorkflowS:
      return "workflow-S";
  }
  return "invalid";
}

TriggerGroup GroupOf(Trigger t) {
  switch (t) {
    case Trigger::kApigSync:
      return TriggerGroup::kApigS;
    case Trigger::kObs:
      return TriggerGroup::kObsA;
    case Trigger::kTimer:
      return TriggerGroup::kTimerA;
    case Trigger::kWorkflowSync:
      return TriggerGroup::kWorkflowS;
    case Trigger::kUnknown:
      return TriggerGroup::kUnknown;
    default:
      return IsSynchronous(t) ? TriggerGroup::kOtherS : TriggerGroup::kOtherA;
  }
}

const char* ResourceConfigName(ResourceConfig c) {
  switch (c) {
    case ResourceConfig::k300m128:
      return "300-128";
    case ResourceConfig::k400m256:
      return "400-256";
    case ResourceConfig::k600m512:
      return "600-512";
    case ResourceConfig::k1000m1024:
      return "1000-1024";
    case ResourceConfig::k2000m2048:
      return "2000-2048";
    case ResourceConfig::k4000m8192:
      return "4000-8192";
    case ResourceConfig::k26000m32768:
      return "26000-32768";
  }
  return "invalid";
}

int32_t CpuMillicoresOf(ResourceConfig c) {
  switch (c) {
    case ResourceConfig::k300m128:
      return 300;
    case ResourceConfig::k400m256:
      return 400;
    case ResourceConfig::k600m512:
      return 600;
    case ResourceConfig::k1000m1024:
      return 1000;
    case ResourceConfig::k2000m2048:
      return 2000;
    case ResourceConfig::k4000m8192:
      return 4000;
    case ResourceConfig::k26000m32768:
      return 26000;
  }
  return 0;
}

int32_t MemoryMbOf(ResourceConfig c) {
  switch (c) {
    case ResourceConfig::k300m128:
      return 128;
    case ResourceConfig::k400m256:
      return 256;
    case ResourceConfig::k600m512:
      return 512;
    case ResourceConfig::k1000m1024:
      return 1024;
    case ResourceConfig::k2000m2048:
      return 2048;
    case ResourceConfig::k4000m8192:
      return 8192;
    case ResourceConfig::k26000m32768:
      return 32768;
  }
  return 0;
}

PoolSizeClass SizeClassOf(ResourceConfig c) {
  return (CpuMillicoresOf(c) <= 400 && MemoryMbOf(c) <= 256) ? PoolSizeClass::kSmall
                                                             : PoolSizeClass::kLarge;
}

const char* PoolSizeClassName(PoolSizeClass c) {
  return c == PoolSizeClass::kSmall ? "small" : "large";
}

const char* ConfigGroupName(ConfigGroup g) {
  switch (g) {
    case ConfigGroup::k300m128:
      return "300CPU,128MB";
    case ConfigGroup::k400m256:
      return "400CPU,256MB";
    case ConfigGroup::k600m512:
      return "600CPU,512MB";
    case ConfigGroup::k1000m1024:
      return "1000CPU,1024MB";
    case ConfigGroup::kOther:
      return "other";
  }
  return "invalid";
}

ConfigGroup ConfigGroupOf(ResourceConfig c) {
  switch (c) {
    case ResourceConfig::k300m128:
      return ConfigGroup::k300m128;
    case ResourceConfig::k400m256:
      return ConfigGroup::k400m256;
    case ResourceConfig::k600m512:
      return ConfigGroup::k600m512;
    case ResourceConfig::k1000m1024:
      return ConfigGroup::k1000m1024;
    default:
      return ConfigGroup::kOther;
  }
}

std::string RegionName(RegionId r) {
  COLDSTART_CHECK_LT(r, kNumRegions);
  return "R" + std::to_string(static_cast<int>(r) + 1);
}

}  // namespace coldstart::trace
