#include "trace/binary_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace coldstart::trace {

namespace {

constexpr uint64_t kMagic = 0x434C5342'00000003ull;  // "CSLB" + format version.

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct Header {
  uint64_t magic = kMagic;
  uint64_t horizon = 0;
  uint64_t request_count = 0;
  uint64_t cold_start_count = 0;
  uint64_t function_count = 0;
  uint64_t pod_count = 0;
  uint32_t request_size = sizeof(RequestRecord);
  uint32_t cold_start_size = sizeof(ColdStartRecord);
  uint32_t function_size = sizeof(FunctionRecord);
  uint32_t pod_size = sizeof(PodLifetimeRecord);
};

template <typename T>
bool WriteArray(std::FILE* f, const std::vector<T>& v) {
  if (v.empty()) {
    return true;
  }
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadArray(std::FILE* f, uint64_t count, std::vector<T>& v) {
  v.resize(count);
  if (count == 0) {
    return true;
  }
  return std::fread(v.data(), sizeof(T), count, f) == count;
}

}  // namespace

bool WriteBinaryTrace(const TraceStore& store, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  Header h;
  h.horizon = static_cast<uint64_t>(store.horizon());
  h.request_count = store.requests().size();
  h.cold_start_count = store.cold_starts().size();
  h.function_count = store.functions().size();
  h.pod_count = store.pods().size();
  if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1) {
    return false;
  }
  return WriteArray(f.get(), store.requests()) && WriteArray(f.get(), store.cold_starts()) &&
         WriteArray(f.get(), store.functions()) && WriteArray(f.get(), store.pods());
}

bool ReadBinaryTrace(const std::string& path, TraceStore& store) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return false;
  }
  Header h;
  if (std::fread(&h, sizeof(h), 1, f.get()) != 1 || h.magic != kMagic ||
      h.request_size != sizeof(RequestRecord) || h.cold_start_size != sizeof(ColdStartRecord) ||
      h.function_size != sizeof(FunctionRecord) || h.pod_size != sizeof(PodLifetimeRecord)) {
    return false;
  }
  std::vector<RequestRecord> requests;
  std::vector<ColdStartRecord> cold_starts;
  std::vector<FunctionRecord> functions;
  std::vector<PodLifetimeRecord> pods;
  if (!ReadArray(f.get(), h.request_count, requests) ||
      !ReadArray(f.get(), h.cold_start_count, cold_starts) ||
      !ReadArray(f.get(), h.function_count, functions) ||
      !ReadArray(f.get(), h.pod_count, pods)) {
    return false;
  }
  for (const auto& fn : functions) {
    store.AddFunction(fn);
  }
  for (const auto& r : requests) {
    store.AddRequest(r);
  }
  for (const auto& c : cold_starts) {
    store.AddColdStart(c);
  }
  for (const auto& p : pods) {
    store.AddPodLifetime(p);
  }
  store.set_horizon(static_cast<SimTime>(h.horizon));
  return true;
}

}  // namespace coldstart::trace
