#include "trace/binary_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <system_error>

#include "common/atomic_file.h"
#include "common/crc32.h"

namespace coldstart::trace {

namespace {

// v4 added the per-region aggregate block and whole-file size validation.
// v5 adds a CRC32 over every post-header byte (in reserved0) and atomic
// (tmp + fsync + rename) writes, so a torn or bit-flipped cache file is
// rejected loudly instead of feeding corrupt records into an analysis.
// v6 appends the resource-cost ledger as an opaque length-prefixed blob
// (cost_blob_size in the header) so cache hits restore cost data too.
constexpr uint64_t kMagic = 0x434C5342'00000006ull;  // "CSLB" + format version.

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct Header {
  uint64_t magic = kMagic;
  uint64_t horizon = 0;
  uint64_t request_count = 0;
  uint64_t cold_start_count = 0;
  uint64_t function_count = 0;
  uint64_t pod_count = 0;
  // Regions covered by the aggregate block; 0 = no block present.
  uint64_t aggregate_region_count = 0;
  // Bytes of the opaque cost-ledger blob trailing the aggregate block (v6);
  // 0 = no blob.
  uint64_t cost_blob_size = 0;
  uint32_t request_size = sizeof(RequestRecord);
  uint32_t cold_start_size = sizeof(ColdStartRecord);
  uint32_t function_size = sizeof(FunctionRecord);
  uint32_t pod_size = sizeof(PodLifetimeRecord);
  // CRC32 over every byte after the header, in file order (v5). The second
  // word stays reserved and keeps sizeof(Header) == 88 with no trailing
  // padding, so fwrite of the whole struct never emits indeterminate bytes.
  uint32_t payload_crc = 0;
  uint32_t reserved1 = 0;
};
static_assert(sizeof(Header) == 8 * sizeof(uint64_t) + 6 * sizeof(uint32_t),
              "Header must be padding-free: it is written raw to disk");

// The aggregate block is kNumAggregateSeries int64 arrays of aggregate_region_count
// entries each, followed by the uint64 event count.
constexpr uint64_t kNumAggregateSeries = 5;

// total += count * size, rejecting any intermediate uint64 overflow (a corrupt
// header must fail the size check, not wrap around it).
bool AccumulateArrayBytes(uint64_t* total, uint64_t count, uint64_t size) {
  if (count != 0 && size > UINT64_MAX / count) {
    return false;
  }
  const uint64_t part = count * size;
  if (part > UINT64_MAX - *total) {
    return false;
  }
  *total += part;
  return true;
}

// Exact on-disk size implied by a header; used to reject truncated or corrupt files
// before any table count is turned into an allocation.
bool ExpectedFileSize(const Header& h, uint64_t* size) {
  uint64_t total = sizeof(Header);
  if (!AccumulateArrayBytes(&total, h.request_count, sizeof(RequestRecord)) ||
      !AccumulateArrayBytes(&total, h.cold_start_count, sizeof(ColdStartRecord)) ||
      !AccumulateArrayBytes(&total, h.function_count, sizeof(FunctionRecord)) ||
      !AccumulateArrayBytes(&total, h.pod_count, sizeof(PodLifetimeRecord))) {
    return false;
  }
  if (h.aggregate_region_count > 0) {
    if (!AccumulateArrayBytes(&total, h.aggregate_region_count,
                              kNumAggregateSeries * sizeof(int64_t)) ||
        !AccumulateArrayBytes(&total, 1, sizeof(uint64_t))) {
      return false;
    }
  }
  if (!AccumulateArrayBytes(&total, h.cost_blob_size, 1)) {
    return false;
  }
  *size = total;
  return true;
}

template <typename T>
bool WriteArray(AtomicFile& f, const std::vector<T>& v) {
  if (v.empty()) {
    return true;
  }
  return f.Write(v.data(), v.size() * sizeof(T));
}

// Extends `crc` over the bytes WriteArray would emit.
template <typename T>
uint32_t CrcArray(const std::vector<T>& v, uint32_t crc) {
  return v.empty() ? crc : Crc32(v.data(), v.size() * sizeof(T), crc);
}

template <typename T>
bool ReadArray(std::FILE* f, uint64_t count, std::vector<T>& v) {
  v.resize(count);
  if (count == 0) {
    return true;
  }
  return std::fread(v.data(), sizeof(T), count, f) == count;
}

}  // namespace

bool WriteBinaryTrace(const TraceStore& store, const std::string& path,
                      const TraceAggregates* aggregates) {
  Header h;
  h.horizon = static_cast<uint64_t>(store.horizon());
  h.request_count = store.requests().size();
  h.cold_start_count = store.cold_starts().size();
  h.function_count = store.functions().size();
  h.pod_count = store.pods().size();
  h.aggregate_region_count =
      aggregates != nullptr ? aggregates->visible_cold_starts.size() : 0;
  h.cost_blob_size = aggregates != nullptr ? aggregates->cost_ledger.size() : 0;
  if (h.aggregate_region_count > 0) {
    const size_t n = aggregates->visible_cold_starts.size();
    if (aggregates->prewarm_spawns.size() != n ||
        aggregates->delayed_allocations.size() != n ||
        aggregates->scratch_allocations.size() != n ||
        aggregates->cold_start_latency_sum_us.size() != n) {
      return false;
    }
  }
  // Every payload span is in memory, so the CRC chains over them before a
  // single byte hits disk — same order the spans are written below.
  uint32_t crc = CrcArray(store.requests(), 0);
  crc = CrcArray(store.cold_starts(), crc);
  crc = CrcArray(store.functions(), crc);
  crc = CrcArray(store.pods(), crc);
  if (h.aggregate_region_count > 0) {
    crc = CrcArray(aggregates->visible_cold_starts, crc);
    crc = CrcArray(aggregates->prewarm_spawns, crc);
    crc = CrcArray(aggregates->delayed_allocations, crc);
    crc = CrcArray(aggregates->scratch_allocations, crc);
    crc = CrcArray(aggregates->cold_start_latency_sum_us, crc);
    crc = Crc32(&aggregates->events_processed, sizeof(uint64_t), crc);
  }
  if (h.cost_blob_size > 0) {
    crc = Crc32(aggregates->cost_ledger.data(), aggregates->cost_ledger.size(), crc);
  }
  h.payload_crc = crc;

  // Atomic replacement: a crash mid-write leaves the previous cache file (or
  // nothing), never a truncated one at the final path.
  AtomicFile f(path);
  if (!f.ok() || !f.Write(&h, sizeof(h))) {
    return false;
  }
  if (!WriteArray(f, store.requests()) || !WriteArray(f, store.cold_starts()) ||
      !WriteArray(f, store.functions()) || !WriteArray(f, store.pods())) {
    return false;
  }
  if (h.aggregate_region_count > 0) {
    if (!WriteArray(f, aggregates->visible_cold_starts) ||
        !WriteArray(f, aggregates->prewarm_spawns) ||
        !WriteArray(f, aggregates->delayed_allocations) ||
        !WriteArray(f, aggregates->scratch_allocations) ||
        !WriteArray(f, aggregates->cold_start_latency_sum_us) ||
        !f.Write(&aggregates->events_processed, sizeof(uint64_t))) {
      return false;
    }
  }
  if (h.cost_blob_size > 0 &&
      !f.Write(aggregates->cost_ledger.data(), aggregates->cost_ledger.size())) {
    return false;
  }
  return f.Commit();
}

bool ReadBinaryTrace(const std::string& path, TraceStore& store,
                     TraceAggregates* aggregates) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return false;
  }
  Header h;
  if (std::fread(&h, sizeof(h), 1, f.get()) != 1 || h.magic != kMagic ||
      h.request_size != sizeof(RequestRecord) || h.cold_start_size != sizeof(ColdStartRecord) ||
      h.function_size != sizeof(FunctionRecord) || h.pod_size != sizeof(PodLifetimeRecord)) {
    return false;
  }
  // Validate the header-supplied counts against the actual file size before sizing
  // a single allocation from them: a corrupt count would otherwise demand a
  // multi-gigabyte resize, and a truncated file would fail only mid-read.
  uint64_t expected = 0;
  if (!ExpectedFileSize(h, &expected)) {
    return false;
  }
  // std::filesystem::file_size rather than ftell: long is 32-bit on some ABIs and
  // a full-scale request table easily exceeds 2 GiB.
  std::error_code ec;
  const uint64_t actual = std::filesystem::file_size(path, ec);
  if (ec || actual != expected) {
    return false;  // Truncated, or trailing bytes the header does not account for.
  }
  std::vector<RequestRecord> requests;
  std::vector<ColdStartRecord> cold_starts;
  std::vector<FunctionRecord> functions;
  std::vector<PodLifetimeRecord> pods;
  if (!ReadArray(f.get(), h.request_count, requests) ||
      !ReadArray(f.get(), h.cold_start_count, cold_starts) ||
      !ReadArray(f.get(), h.function_count, functions) ||
      !ReadArray(f.get(), h.pod_count, pods)) {
    return false;
  }
  TraceAggregates agg;
  if (h.aggregate_region_count > 0) {
    const uint64_t n = h.aggregate_region_count;
    if (!ReadArray(f.get(), n, agg.visible_cold_starts) ||
        !ReadArray(f.get(), n, agg.prewarm_spawns) ||
        !ReadArray(f.get(), n, agg.delayed_allocations) ||
        !ReadArray(f.get(), n, agg.scratch_allocations) ||
        !ReadArray(f.get(), n, agg.cold_start_latency_sum_us) ||
        std::fread(&agg.events_processed, sizeof(uint64_t), 1, f.get()) != 1) {
      return false;
    }
  }
  if (h.cost_blob_size > 0) {
    agg.cost_ledger.resize(h.cost_blob_size);
    if (std::fread(agg.cost_ledger.data(), 1, h.cost_blob_size, f.get()) !=
        h.cost_blob_size) {
      return false;
    }
  }
  // The size check above already pinned the payload length; confirm we are exactly
  // at EOF so a short read cannot slip through.
  if (std::fgetc(f.get()) != EOF) {
    return false;
  }
  // Validate the payload CRC (v5) over the spans just read, in file order. A
  // mismatch means storage corruption — reject loudly, naming the file, and
  // let the caller fall back to a fresh run.
  uint32_t crc = CrcArray(requests, 0);
  crc = CrcArray(cold_starts, crc);
  crc = CrcArray(functions, crc);
  crc = CrcArray(pods, crc);
  if (h.aggregate_region_count > 0) {
    crc = CrcArray(agg.visible_cold_starts, crc);
    crc = CrcArray(agg.prewarm_spawns, crc);
    crc = CrcArray(agg.delayed_allocations, crc);
    crc = CrcArray(agg.scratch_allocations, crc);
    crc = CrcArray(agg.cold_start_latency_sum_us, crc);
    crc = Crc32(&agg.events_processed, sizeof(uint64_t), crc);
  }
  if (h.cost_blob_size > 0) {
    crc = Crc32(agg.cost_ledger.data(), agg.cost_ledger.size(), crc);
  }
  if (crc != h.payload_crc) {
    std::fprintf(stderr,
                 "binary trace %s: payload CRC mismatch (file corrupt), "
                 "ignoring cached trace\n",
                 path.c_str());
    return false;
  }
  for (const auto& fn : functions) {
    store.AddFunction(fn);
  }
  for (const auto& r : requests) {
    store.AddRequest(r);
  }
  for (const auto& c : cold_starts) {
    store.AddColdStart(c);
  }
  for (const auto& p : pods) {
    store.AddPodLifetime(p);
  }
  store.set_horizon(static_cast<SimTime>(h.horizon));
  if (aggregates != nullptr) {
    *aggregates = std::move(agg);
  }
  return true;
}

}  // namespace coldstart::trace
