#include "trace/binary_io.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <system_error>

namespace coldstart::trace {

namespace {

// v4: adds the per-region aggregate block and whole-file size validation.
constexpr uint64_t kMagic = 0x434C5342'00000004ull;  // "CSLB" + format version.

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

struct Header {
  uint64_t magic = kMagic;
  uint64_t horizon = 0;
  uint64_t request_count = 0;
  uint64_t cold_start_count = 0;
  uint64_t function_count = 0;
  uint64_t pod_count = 0;
  // Regions covered by the aggregate block; 0 = no block present.
  uint64_t aggregate_region_count = 0;
  uint32_t request_size = sizeof(RequestRecord);
  uint32_t cold_start_size = sizeof(ColdStartRecord);
  uint32_t function_size = sizeof(FunctionRecord);
  uint32_t pod_size = sizeof(PodLifetimeRecord);
  // Two reserved words keep sizeof(Header) == 80 with no trailing padding, so
  // fwrite of the whole struct never emits indeterminate bytes.
  uint32_t reserved0 = 0;
  uint32_t reserved1 = 0;
};
static_assert(sizeof(Header) == 7 * sizeof(uint64_t) + 6 * sizeof(uint32_t),
              "Header must be padding-free: it is written raw to disk");

// The aggregate block is kNumAggregateSeries int64 arrays of aggregate_region_count
// entries each, followed by the uint64 event count.
constexpr uint64_t kNumAggregateSeries = 5;

// total += count * size, rejecting any intermediate uint64 overflow (a corrupt
// header must fail the size check, not wrap around it).
bool AccumulateArrayBytes(uint64_t* total, uint64_t count, uint64_t size) {
  if (count != 0 && size > UINT64_MAX / count) {
    return false;
  }
  const uint64_t part = count * size;
  if (part > UINT64_MAX - *total) {
    return false;
  }
  *total += part;
  return true;
}

// Exact on-disk size implied by a header; used to reject truncated or corrupt files
// before any table count is turned into an allocation.
bool ExpectedFileSize(const Header& h, uint64_t* size) {
  uint64_t total = sizeof(Header);
  if (!AccumulateArrayBytes(&total, h.request_count, sizeof(RequestRecord)) ||
      !AccumulateArrayBytes(&total, h.cold_start_count, sizeof(ColdStartRecord)) ||
      !AccumulateArrayBytes(&total, h.function_count, sizeof(FunctionRecord)) ||
      !AccumulateArrayBytes(&total, h.pod_count, sizeof(PodLifetimeRecord))) {
    return false;
  }
  if (h.aggregate_region_count > 0) {
    if (!AccumulateArrayBytes(&total, h.aggregate_region_count,
                              kNumAggregateSeries * sizeof(int64_t)) ||
        !AccumulateArrayBytes(&total, 1, sizeof(uint64_t))) {
      return false;
    }
  }
  *size = total;
  return true;
}

template <typename T>
bool WriteArray(std::FILE* f, const std::vector<T>& v) {
  if (v.empty()) {
    return true;
  }
  return std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadArray(std::FILE* f, uint64_t count, std::vector<T>& v) {
  v.resize(count);
  if (count == 0) {
    return true;
  }
  return std::fread(v.data(), sizeof(T), count, f) == count;
}

}  // namespace

bool WriteBinaryTrace(const TraceStore& store, const std::string& path,
                      const TraceAggregates* aggregates) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return false;
  }
  Header h;
  h.horizon = static_cast<uint64_t>(store.horizon());
  h.request_count = store.requests().size();
  h.cold_start_count = store.cold_starts().size();
  h.function_count = store.functions().size();
  h.pod_count = store.pods().size();
  h.aggregate_region_count =
      aggregates != nullptr ? aggregates->visible_cold_starts.size() : 0;
  if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1) {
    return false;
  }
  if (!WriteArray(f.get(), store.requests()) || !WriteArray(f.get(), store.cold_starts()) ||
      !WriteArray(f.get(), store.functions()) || !WriteArray(f.get(), store.pods())) {
    return false;
  }
  if (h.aggregate_region_count > 0) {
    const size_t n = aggregates->visible_cold_starts.size();
    if (aggregates->prewarm_spawns.size() != n ||
        aggregates->delayed_allocations.size() != n ||
        aggregates->scratch_allocations.size() != n ||
        aggregates->cold_start_latency_sum_us.size() != n) {
      return false;
    }
    if (!WriteArray(f.get(), aggregates->visible_cold_starts) ||
        !WriteArray(f.get(), aggregates->prewarm_spawns) ||
        !WriteArray(f.get(), aggregates->delayed_allocations) ||
        !WriteArray(f.get(), aggregates->scratch_allocations) ||
        !WriteArray(f.get(), aggregates->cold_start_latency_sum_us)) {
      return false;
    }
    if (std::fwrite(&aggregates->events_processed, sizeof(uint64_t), 1, f.get()) != 1) {
      return false;
    }
  }
  return true;
}

bool ReadBinaryTrace(const std::string& path, TraceStore& store,
                     TraceAggregates* aggregates) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return false;
  }
  Header h;
  if (std::fread(&h, sizeof(h), 1, f.get()) != 1 || h.magic != kMagic ||
      h.request_size != sizeof(RequestRecord) || h.cold_start_size != sizeof(ColdStartRecord) ||
      h.function_size != sizeof(FunctionRecord) || h.pod_size != sizeof(PodLifetimeRecord)) {
    return false;
  }
  // Validate the header-supplied counts against the actual file size before sizing
  // a single allocation from them: a corrupt count would otherwise demand a
  // multi-gigabyte resize, and a truncated file would fail only mid-read.
  uint64_t expected = 0;
  if (!ExpectedFileSize(h, &expected)) {
    return false;
  }
  // std::filesystem::file_size rather than ftell: long is 32-bit on some ABIs and
  // a full-scale request table easily exceeds 2 GiB.
  std::error_code ec;
  const uint64_t actual = std::filesystem::file_size(path, ec);
  if (ec || actual != expected) {
    return false;  // Truncated, or trailing bytes the header does not account for.
  }
  std::vector<RequestRecord> requests;
  std::vector<ColdStartRecord> cold_starts;
  std::vector<FunctionRecord> functions;
  std::vector<PodLifetimeRecord> pods;
  if (!ReadArray(f.get(), h.request_count, requests) ||
      !ReadArray(f.get(), h.cold_start_count, cold_starts) ||
      !ReadArray(f.get(), h.function_count, functions) ||
      !ReadArray(f.get(), h.pod_count, pods)) {
    return false;
  }
  TraceAggregates agg;
  if (h.aggregate_region_count > 0) {
    const uint64_t n = h.aggregate_region_count;
    if (!ReadArray(f.get(), n, agg.visible_cold_starts) ||
        !ReadArray(f.get(), n, agg.prewarm_spawns) ||
        !ReadArray(f.get(), n, agg.delayed_allocations) ||
        !ReadArray(f.get(), n, agg.scratch_allocations) ||
        !ReadArray(f.get(), n, agg.cold_start_latency_sum_us) ||
        std::fread(&agg.events_processed, sizeof(uint64_t), 1, f.get()) != 1) {
      return false;
    }
  }
  // The size check above already pinned the payload length; confirm we are exactly
  // at EOF so a short read cannot slip through.
  if (std::fgetc(f.get()) != EOF) {
    return false;
  }
  for (const auto& fn : functions) {
    store.AddFunction(fn);
  }
  for (const auto& r : requests) {
    store.AddRequest(r);
  }
  for (const auto& c : cold_starts) {
    store.AddColdStart(c);
  }
  for (const auto& p : pods) {
    store.AddPodLifetime(p);
  }
  store.set_horizon(static_cast<SimTime>(h.horizon));
  if (aggregates != nullptr) {
    *aggregates = std::move(agg);
  }
  return true;
}

}  // namespace coldstart::trace
