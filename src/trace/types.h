// Domain enums shared by the trace schema, the workload generator, and the platform.
//
// These mirror the categorical fields of the paper's dataset (Table 1, §3.3): runtime
// languages, trigger types (with synchronicity), and CPU-memory resource
// configurations. The aggregated 7-way trigger grouping (timers, OBS-A, APIG-S,
// workflow-S, other S, other A, unknown) matches the grouping the paper uses in all
// per-trigger figures.
#ifndef COLDSTART_TRACE_TYPES_H_
#define COLDSTART_TRACE_TYPES_H_

#include <array>
#include <cstdint>
#include <string>

namespace coldstart::trace {

// Preinstalled runtimes (§3.3) plus Custom images and the 'unknown' bucket the paper
// notes for unlogged functions.
enum class Runtime : uint8_t {
  kCSharp = 0,
  kCustom,
  kGo1x,
  kJava,
  kNodeJs,
  kPhp73,
  kPython2,
  kPython3,
  kHttp,
  kUnknown,
};
inline constexpr int kNumRuntimes = 10;
const char* RuntimeName(Runtime r);

// Raw trigger types supported by the platform (§3.3 list of nine).
enum class Trigger : uint8_t {
  kApigSync = 0,   // API gateway, synchronous.
  kApigAsync,      // API gateway, asynchronous.
  kTimer,          // Cron-style timer (async).
  kCts,            // Cloud Trace Service (async only).
  kDis,            // Data Ingestion Service (async only).
  kLts,            // Log Tank Service (async only).
  kObs,            // Object Storage Service (async only).
  kSmn,            // Simple Message Notification (async only).
  kKafka,          // Kafka queue, asynchronous consumption.
  kKafkaSync,      // Kafka queue, synchronous (request/reply over a topic).
  kWorkflowSync,   // Function-to-function, synchronous.
  kWorkflowAsync,  // Function-to-function, asynchronous.
  kUnknown,
};
inline constexpr int kNumTriggers = 13;
const char* TriggerName(Trigger t);

// True when the invoking program waits for the response.
bool IsSynchronous(Trigger t);

// The paper's aggregated trigger groups used in Figures 8, 9, 14, 16, 17.
enum class TriggerGroup : uint8_t {
  kApigS = 0,
  kObsA,
  kTimerA,
  kOtherA,
  kOtherS,
  kUnknown,
  kWorkflowS,
};
inline constexpr int kNumTriggerGroups = 7;
const char* TriggerGroupName(TriggerGroup g);
TriggerGroup GroupOf(Trigger t);

// CPU-memory configurations. The platform maintains pools from 300m/128MB up to
// 26 cores/32GB (§4.2); the paper's Figure 8c/f breaks out the four popular configs.
enum class ResourceConfig : uint8_t {
  k300m128 = 0,   // 300 millicores, 128 MB.
  k400m256,       // 400 millicores, 256 MB.
  k600m512,       // 600 millicores, 512 MB.
  k1000m1024,     // 1000 millicores, 1 GB.
  k2000m2048,     // 2 cores, 2 GB   ("other" bucket).
  k4000m8192,     // 4 cores, 8 GB   ("other" bucket).
  k26000m32768,   // 26 cores, 32 GB ("other" bucket).
};
inline constexpr int kNumResourceConfigs = 7;
const char* ResourceConfigName(ResourceConfig c);
int32_t CpuMillicoresOf(ResourceConfig c);
int32_t MemoryMbOf(ResourceConfig c);

// The paper's small/large pool split (§4.2): small is at most 400 millicores and 256 MB.
enum class PoolSizeClass : uint8_t { kSmall = 0, kLarge = 1 };
PoolSizeClass SizeClassOf(ResourceConfig c);
const char* PoolSizeClassName(PoolSizeClass c);

// The Figure 8c/f display buckets: the four popular configs plus "other".
enum class ConfigGroup : uint8_t {
  k300m128 = 0,
  k400m256,
  k600m512,
  k1000m1024,
  kOther,
};
inline constexpr int kNumConfigGroups = 5;
const char* ConfigGroupName(ConfigGroup g);
ConfigGroup ConfigGroupOf(ResourceConfig c);

// Region identifiers R1..R5.
using RegionId = uint8_t;
inline constexpr int kNumRegions = 5;
std::string RegionName(RegionId r);

// Cluster index within a region; every region has four clusters (§2.1).
using ClusterId = uint8_t;
inline constexpr int kClustersPerRegion = 4;

using FunctionId = uint32_t;
using UserId = uint32_t;
using PodId = uint32_t;
inline constexpr PodId kInvalidPod = UINT32_MAX;

}  // namespace coldstart::trace

#endif  // COLDSTART_TRACE_TYPES_H_
