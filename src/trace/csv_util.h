// Internal helpers shared by the CSV readers (trace/csv.cc and
// workload/replay_source.cc): RAII file handles, line splitting, and strict
// field parsers. Strict means the *whole* field must parse and fit the target
// range — "12x", "", "-3" for an unsigned column, and overflowing values are all
// rejected so a malformed trace fails with a line number instead of feeding
// half-parsed garbage into a simulation.
#ifndef COLDSTART_TRACE_CSV_UTIL_H_
#define COLDSTART_TRACE_CSV_UTIL_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "trace/csv.h"

namespace coldstart::trace::csv_internal {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline FilePtr OpenWrite(const std::string& path) {
  return FilePtr(std::fopen(path.c_str(), "w"));
}
inline FilePtr OpenRead(const std::string& path) {
  return FilePtr(std::fopen(path.c_str(), "r"));
}

// Splits one CSV line (no quoting in our files) into fields.
inline std::vector<std::string> SplitCsvLine(const char* line) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char* p = line; *p != '\0' && *p != '\n' && *p != '\r'; ++p) {
    if (*p == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  fields.push_back(cur);
  return fields;
}

// True when the line holds nothing but a newline (tolerated between records).
inline bool IsBlankLine(const char* line) {
  for (const char* p = line; *p != '\0'; ++p) {
    if (*p != '\n' && *p != '\r') {
      return false;
    }
  }
  return true;
}

inline void SetError(CsvError* error, int64_t line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
}

// Unsigned decimal in [0, max]; digits only.
inline bool ParseU64(const std::string& field, uint64_t max, uint64_t& out) {
  if (field.empty()) {
    return false;
  }
  for (const char c : field) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno == ERANGE || end != field.c_str() + field.size() || v > max) {
    return false;
  }
  out = v;
  return true;
}

// Signed decimal (optional leading '-'); one strict parser for the whole repo —
// delegates to coldstart::ParseInt so CSV fields and env vars can never drift.
inline bool ParseI64(const std::string& field, int64_t& out) {
  const std::optional<int64_t> v = ParseInt(field);
  if (!v.has_value()) {
    return false;
  }
  out = *v;
  return true;
}

// Finite floating-point number covering the whole field.
inline bool ParseDouble(const std::string& field, double& out) {
  if (field.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (errno == ERANGE || end != field.c_str() + field.size()) {
    return false;
  }
  out = v;
  return true;
}

}  // namespace coldstart::trace::csv_internal

#endif  // COLDSTART_TRACE_CSV_UTIL_H_
