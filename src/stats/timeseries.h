// Time-series utilities for the peak/periodicity analyses (Figs. 5, 6, 8).
//
// Series are plain std::vector<double> with a fixed bucket duration implied by the
// caller (per-minute or per-hour everywhere in this codebase).
#ifndef COLDSTART_STATS_TIMESERIES_H_
#define COLDSTART_STATS_TIMESERIES_H_

#include <cstddef>
#include <vector>

namespace coldstart::stats {

// Centered moving average with the given (odd) window; edges use the available
// partial window, so the output length equals the input length.
std::vector<double> MovingAverage(const std::vector<double>& series, int window);

// Scales a series into [0, 1] by its min/max; a constant series maps to all zeros.
std::vector<double> MinMaxNormalize(const std::vector<double>& series);

struct Peak {
  size_t index = 0;
  double value = 0;
};

// Largest value in each consecutive chunk of `period` buckets (the paper's "largest
// peak in 24 hours", applied to the smoothed signal).
std::vector<Peak> LargestPeakPerPeriod(const std::vector<double>& series, size_t period);

// Peak-to-trough ratio of a (smoothed) series: max / min over the series. Troughs at
// zero are clamped to `floor` to keep the ratio finite; a series with < 2 samples or
// no identifiable oscillation returns 1.
double PeakToTroughRatio(const std::vector<double>& series, double floor = 1.0);

// Sample autocorrelation at the given lag (mean-removed, biased normalization).
double Autocorrelation(const std::vector<double>& series, size_t lag);

// Sums consecutive groups of `factor` buckets (e.g. minute series -> hour series with
// factor 60). The trailing partial group, if any, is dropped.
std::vector<double> Downsample(const std::vector<double>& series, size_t factor);

// Element-wise mean of the same bucket across periods, e.g. the average day profile of
// a minute series with period = 1440. Ignores trailing partial periods.
std::vector<double> PeriodicProfile(const std::vector<double>& series, size_t period);

}  // namespace coldstart::stats

#endif  // COLDSTART_STATS_TIMESERIES_H_
