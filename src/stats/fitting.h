// Maximum-likelihood distribution fitting and goodness-of-fit, for Figure 10.
//
// The paper fits a LogNormal to pooled cold-start times and a Weibull to cold-start
// inter-arrival times and reports the fitted distributions' moments.
#ifndef COLDSTART_STATS_FITTING_H_
#define COLDSTART_STATS_FITTING_H_

#include <vector>

#include "stats/distributions.h"

namespace coldstart::stats {

struct FitQuality {
  double ks_distance = 1.0;  // Kolmogorov-Smirnov sup |F_emp - F_fit|.
  double log_likelihood = 0.0;
};

// Closed-form MLE: mu/sigma are the mean/std of log(x). Non-positive samples are
// rejected via CHECK (cold-start times are strictly positive).
LogNormalParams FitLogNormalMle(const std::vector<double>& samples);

// Weibull MLE via Newton-Raphson on the profile likelihood for the shape; falls back to
// bisection if Newton leaves (0, inf). Requires positive samples.
WeibullParams FitWeibullMle(const std::vector<double>& samples);

// K-S distance between sorted samples and an analytic CDF.
template <typename Dist>
double KsDistance(const std::vector<double>& sorted_samples, const Dist& dist) {
  const size_t n = sorted_samples.size();
  double d = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double f = dist.Cdf(sorted_samples[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max(d, std::max(f - lo, hi - f));
  }
  return d;
}

FitQuality EvaluateLogNormalFit(const std::vector<double>& sorted_samples,
                                const LogNormalParams& p);
FitQuality EvaluateWeibullFit(const std::vector<double>& sorted_samples,
                              const WeibullParams& p);

}  // namespace coldstart::stats

#endif  // COLDSTART_STATS_FITTING_H_
