#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace coldstart::stats {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), sealed_(false) {
  Seal();
}

void Ecdf::Add(double sample) {
  samples_.push_back(sample);
  sealed_ = false;
}

void Ecdf::Seal() {
  if (!sealed_) {
    std::sort(samples_.begin(), samples_.end());
    sealed_ = true;
  }
}

const std::vector<double>& Ecdf::sorted_samples() const {
  COLDSTART_CHECK(sealed_);
  return samples_;
}

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

double Ecdf::Quantile(double q) const {
  COLDSTART_CHECK(sealed_);
  if (samples_.empty()) {
    return kNan;  // An empty sample set has no quantiles; renderers show "n/a".
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Ecdf::CdfAt(double x) const {
  COLDSTART_CHECK(sealed_);
  if (samples_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::Mean() const {
  if (samples_.empty()) {
    return kNan;
  }
  double s = 0;
  for (const double v : samples_) {
    s += v;
  }
  return s / static_cast<double>(samples_.size());
}

double Ecdf::StdDev() const {
  if (samples_.empty()) {
    return kNan;
  }
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = Mean();
  double s = 0;
  for (const double v : samples_) {
    s += (v - m) * (v - m);
  }
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

SummaryStats Ecdf::Summary() const {
  COLDSTART_CHECK(sealed_);
  SummaryStats s;
  s.count = samples_.size();
  if (samples_.empty()) {
    // No fabricated zeros: every statistic of an empty set is NaN ("n/a" in
    // tables), so an empty group can never masquerade as an all-zero one.
    s.mean = s.stddev = s.min = s.p25 = s.median = s.p75 = s.p99 = s.max = kNan;
    return s;
  }
  s.mean = Mean();
  s.stddev = StdDev();
  s.min = samples_.front();
  s.p25 = Quantile(0.25);
  s.median = Quantile(0.5);
  s.p75 = Quantile(0.75);
  s.p99 = Quantile(0.99);
  s.max = samples_.back();
  return s;
}

std::vector<std::pair<double, double>> Ecdf::CurveLogX(int n) const {
  COLDSTART_CHECK(sealed_);
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || n <= 0) {
    return curve;
  }
  // Log spacing needs positive endpoints; clamp the low end to a tiny positive value.
  const double lo = std::max(samples_.front(), 1e-9);
  const double hi = std::max(samples_.back(), lo * (1.0 + 1e-12));
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  curve.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x =
        std::pow(10.0, llo + (lhi - llo) * static_cast<double>(i) / std::max(1, n - 1));
    curve.emplace_back(x, CdfAt(x));
  }
  return curve;
}

}  // namespace coldstart::stats
