// Probability distributions used for workload modelling and for the Figure 10 fits.
//
// Each distribution exposes parameters, moment conversions, sampling (via Rng), and the
// analytic pdf/cdf needed for fit-quality checks. Parameterizations follow the usual
// conventions: LogNormal(mu, sigma) on the log scale, Weibull(shape k, scale lambda).
#ifndef COLDSTART_STATS_DISTRIBUTIONS_H_
#define COLDSTART_STATS_DISTRIBUTIONS_H_

#include <vector>

#include "common/rng.h"

namespace coldstart::stats {

// ---------------------------------------------------------------------------
// LogNormal. The paper fits cold-start times with LogNormal(mean 3.24, sd 7.10)
// (moments of the distribution itself, not of the logs).
struct LogNormalParams {
  double mu = 0.0;     // Mean of log(X).
  double sigma = 1.0;  // Std dev of log(X), > 0.

  double Mean() const;
  double StdDev() const;
  double Median() const;

  // Recovers (mu, sigma) from the distribution's mean and standard deviation.
  static LogNormalParams FromMoments(double mean, double stddev);

  double Sample(Rng& rng) const;
  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double q) const;
};

// ---------------------------------------------------------------------------
// Weibull. The paper fits cold-start inter-arrival times with Weibull(mean 1.25, sd 3.66).
struct WeibullParams {
  double shape = 1.0;  // k > 0.
  double scale = 1.0;  // lambda > 0.

  double Mean() const;
  double StdDev() const;

  // Solves for (k, lambda) matching the given moments; uses bisection on the coefficient
  // of variation, which is monotone in k.
  static WeibullParams FromMoments(double mean, double stddev);

  double Sample(Rng& rng) const;
  double Pdf(double x) const;
  double Cdf(double x) const;
  double Quantile(double q) const;
};

// ---------------------------------------------------------------------------
// Bounded Pareto on [lo, hi] with tail index alpha; heavy-tailed function popularity.
struct BoundedParetoParams {
  double alpha = 1.0;
  double lo = 1.0;
  double hi = 1e6;

  double Sample(Rng& rng) const;
  double Cdf(double x) const;
};

// ---------------------------------------------------------------------------
// Zipf over {0, ..., n-1} with exponent s (rank popularity). O(1) sampling via
// precomputed cumulative weights (n is at most tens of thousands here).
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);
  int Sample(Rng& rng) const;
  double ProbabilityOfRank(int rank) const;

 private:
  std::vector<double> cumulative_;
};

// ---------------------------------------------------------------------------
// Categorical distribution over arbitrary weights.
class CategoricalSampler {
 public:
  explicit CategoricalSampler(std::vector<double> weights);
  int Sample(Rng& rng) const;
  double Probability(int index) const;
  int size() const { return static_cast<int>(cumulative_.size()); }

 private:
  std::vector<double> cumulative_;
  std::vector<double> probabilities_;
};

// Standard normal CDF (used by LogNormal and by p-value computation).
double StdNormalCdf(double z);

// Poisson sample with the given mean: Knuth's product method for small lambda, a
// clamped normal approximation above 64 (workload synthesis does not need exact tail
// behaviour there).
int SamplePoisson(Rng& rng, double lambda);

}  // namespace coldstart::stats

#endif  // COLDSTART_STATS_DISTRIBUTIONS_H_
