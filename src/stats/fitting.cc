#include "stats/fitting.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::stats {

LogNormalParams FitLogNormalMle(const std::vector<double>& samples) {
  COLDSTART_CHECK_GE(samples.size(), 2u);
  double sum = 0;
  for (const double x : samples) {
    COLDSTART_CHECK_GT(x, 0.0);
    sum += std::log(x);
  }
  const double n = static_cast<double>(samples.size());
  const double mu = sum / n;
  double ss = 0;
  for (const double x : samples) {
    const double d = std::log(x) - mu;
    ss += d * d;
  }
  LogNormalParams p;
  p.mu = mu;
  p.sigma = std::sqrt(ss / n);
  if (p.sigma <= 0) {
    p.sigma = 1e-12;  // Degenerate (all samples equal): keep the params valid.
  }
  return p;
}

WeibullParams FitWeibullMle(const std::vector<double>& samples) {
  COLDSTART_CHECK_GE(samples.size(), 2u);
  const double n = static_cast<double>(samples.size());
  double sum_log = 0;
  for (const double x : samples) {
    COLDSTART_CHECK_GT(x, 0.0);
    sum_log += std::log(x);
  }
  const double mean_log = sum_log / n;

  // Profile likelihood equation in k:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
  // g is increasing in k on (0, inf); solve by Newton with bisection safeguard.
  auto g_and_gprime = [&](double k, double& g, double& gp) {
    double swk = 0, swklog = 0, swklog2 = 0;
    for (const double x : samples) {
      const double lx = std::log(x);
      const double w = std::pow(x, k);
      swk += w;
      swklog += w * lx;
      swklog2 += w * lx * lx;
    }
    const double r = swklog / swk;
    g = r - 1.0 / k - mean_log;
    gp = (swklog2 / swk) - r * r + 1.0 / (k * k);
  };

  double lo = 1e-3, hi = 50.0;
  double k = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    double g, gp;
    g_and_gprime(k, g, gp);
    if (std::fabs(g) < 1e-12) {
      break;
    }
    if (g > 0) {
      hi = std::min(hi, k);
    } else {
      lo = std::max(lo, k);
    }
    double next = k - g / gp;
    if (!(next > lo && next < hi)) {
      next = 0.5 * (lo + hi);  // Newton left the bracket; bisect.
    }
    if (std::fabs(next - k) < 1e-14) {
      k = next;
      break;
    }
    k = next;
  }

  double swk = 0;
  for (const double x : samples) {
    swk += std::pow(x, k);
  }
  WeibullParams p;
  p.shape = k;
  p.scale = std::pow(swk / n, 1.0 / k);
  return p;
}

FitQuality EvaluateLogNormalFit(const std::vector<double>& sorted_samples,
                                const LogNormalParams& p) {
  FitQuality q;
  q.ks_distance = KsDistance(sorted_samples, p);
  double ll = 0;
  for (const double x : sorted_samples) {
    ll += std::log(std::max(p.Pdf(x), 1e-300));
  }
  q.log_likelihood = ll;
  return q;
}

FitQuality EvaluateWeibullFit(const std::vector<double>& sorted_samples,
                              const WeibullParams& p) {
  FitQuality q;
  q.ks_distance = KsDistance(sorted_samples, p);
  double ll = 0;
  for (const double x : sorted_samples) {
    ll += std::log(std::max(p.Pdf(x), 1e-300));
  }
  q.log_likelihood = ll;
  return q;
}

}  // namespace coldstart::stats
