// Rank correlation for Figure 12's component-correlation matrices.
//
// Spearman's rho with midrank tie handling; significance via the standard
// t-approximation (t = r * sqrt((n-2)/(1-r^2)) with n-2 dof), which is what the paper's
// "* marks p < 0.05" asterisks correspond to at these sample sizes.
#ifndef COLDSTART_STATS_CORRELATION_H_
#define COLDSTART_STATS_CORRELATION_H_

#include <vector>

namespace coldstart::stats {

struct CorrelationResult {
  double rho = 0.0;      // Spearman rank correlation in [-1, 1].
  double p_value = 1.0;  // Two-sided.
  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

// Midranks of `values` (average rank for ties), 1-based as in the textbook definition.
std::vector<double> MidRanks(const std::vector<double>& values);

// Pearson correlation of two equal-length vectors.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

// Spearman correlation with two-sided p-value. Requires x.size() == y.size() >= 3.
CorrelationResult SpearmanCorrelation(const std::vector<double>& x,
                                      const std::vector<double>& y);

// Symmetric matrix of pairwise Spearman correlations between columns of `series`
// (series[i] is column i; all columns must have equal length).
std::vector<std::vector<CorrelationResult>> SpearmanMatrix(
    const std::vector<std::vector<double>>& series);

// Two-sided p-value of a Student-t statistic with `dof` degrees of freedom.
double StudentTTwoSidedPValue(double t, double dof);

}  // namespace coldstart::stats

#endif  // COLDSTART_STATS_CORRELATION_H_
