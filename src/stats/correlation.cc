#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace coldstart::stats {

namespace {

// Regularized incomplete beta function I_x(a, b) via the continued-fraction expansion
// (Numerical Recipes style); used for the Student-t CDF.
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double ln_bt = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                       a * std::log(x) + b * std::log1p(-x);
  const double bt = std::exp(ln_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - bt * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTTwoSidedPValue(double t, double dof) {
  COLDSTART_CHECK_GT(dof, 0.0);
  if (!std::isfinite(t)) {
    return 0.0;
  }
  const double x = dof / (dof + t * t);
  return RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
}

std::vector<double> MidRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Ties [i, j] all get the average of ranks i+1 .. j+1.
    const double rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = rank;
    }
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  COLDSTART_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) {
    return 0.0;
  }
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) {
    return 0.0;  // A constant series has no defined correlation; report 0.
  }
  return sxy / std::sqrt(sxx * syy);
}

CorrelationResult SpearmanCorrelation(const std::vector<double>& x,
                                      const std::vector<double>& y) {
  COLDSTART_CHECK_EQ(x.size(), y.size());
  CorrelationResult r;
  const size_t n = x.size();
  if (n < 3) {
    return r;
  }
  const std::vector<double> rx = MidRanks(x);
  const std::vector<double> ry = MidRanks(y);
  r.rho = PearsonCorrelation(rx, ry);
  const double dof = static_cast<double>(n) - 2.0;
  const double denom = 1.0 - r.rho * r.rho;
  if (denom <= 0) {
    r.p_value = 0.0;
  } else {
    const double t = r.rho * std::sqrt(dof / denom);
    r.p_value = StudentTTwoSidedPValue(t, dof);
  }
  return r;
}

std::vector<std::vector<CorrelationResult>> SpearmanMatrix(
    const std::vector<std::vector<double>>& series) {
  const size_t k = series.size();
  std::vector<std::vector<CorrelationResult>> m(k, std::vector<CorrelationResult>(k));
  for (size_t i = 0; i < k; ++i) {
    m[i][i].rho = 1.0;
    m[i][i].p_value = 0.0;
    for (size_t j = i + 1; j < k; ++j) {
      const CorrelationResult r = SpearmanCorrelation(series[i], series[j]);
      m[i][j] = r;
      m[j][i] = r;
    }
  }
  return m;
}

}  // namespace coldstart::stats
