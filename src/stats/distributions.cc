#include "stats/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::stats {

namespace {
constexpr double kSqrt2 = 1.4142135623730950488;
constexpr double kSqrt2Pi = 2.5066282746310005024;
}  // namespace

double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

int SamplePoisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) {
    return 0;
  }
  if (lambda > 64.0) {
    const double v = lambda + std::sqrt(lambda) * rng.NextGaussian();
    return v <= 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-lambda);
  int k = 0;
  double product = rng.NextDouble();
  while (product > limit) {
    ++k;
    product *= rng.NextDouble();
  }
  return k;
}

// Inverse standard normal CDF: Acklam's rational approximation (|error| < 1.15e-9),
// good enough for sampling and quantile reporting.
static double StdNormalQuantile(double p) {
  COLDSTART_CHECK_GT(p, 0.0);
  COLDSTART_CHECK_LT(p, 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

// ---------------------------------------------------------------------------
// LogNormal.

double LogNormalParams::Mean() const { return std::exp(mu + 0.5 * sigma * sigma); }

double LogNormalParams::StdDev() const {
  const double s2 = sigma * sigma;
  return std::exp(mu + 0.5 * s2) * std::sqrt(std::exp(s2) - 1.0);
}

double LogNormalParams::Median() const { return std::exp(mu); }

LogNormalParams LogNormalParams::FromMoments(double mean, double stddev) {
  COLDSTART_CHECK_GT(mean, 0.0);
  COLDSTART_CHECK_GT(stddev, 0.0);
  const double cv2 = (stddev / mean) * (stddev / mean);
  LogNormalParams p;
  p.sigma = std::sqrt(std::log1p(cv2));
  p.mu = std::log(mean) - 0.5 * p.sigma * p.sigma;
  return p;
}

double LogNormalParams::Sample(Rng& rng) const {
  return std::exp(mu + sigma * rng.NextGaussian());
}

double LogNormalParams::Pdf(double x) const {
  if (x <= 0) {
    return 0.0;
  }
  const double z = (std::log(x) - mu) / sigma;
  return std::exp(-0.5 * z * z) / (x * sigma * kSqrt2Pi);
}

double LogNormalParams::Cdf(double x) const {
  if (x <= 0) {
    return 0.0;
  }
  return StdNormalCdf((std::log(x) - mu) / sigma);
}

double LogNormalParams::Quantile(double q) const {
  return std::exp(mu + sigma * StdNormalQuantile(q));
}

// ---------------------------------------------------------------------------
// Weibull.

double WeibullParams::Mean() const { return scale * std::tgamma(1.0 + 1.0 / shape); }

double WeibullParams::StdDev() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape);
  const double g2 = std::tgamma(1.0 + 2.0 / shape);
  return scale * std::sqrt(std::max(0.0, g2 - g1 * g1));
}

WeibullParams WeibullParams::FromMoments(double mean, double stddev) {
  COLDSTART_CHECK_GT(mean, 0.0);
  COLDSTART_CHECK_GT(stddev, 0.0);
  const double target_cv = stddev / mean;
  // CV(k) = sqrt(G2/G1^2 - 1) is strictly decreasing in k; bisection on log k.
  auto cv_of = [](double k) {
    const double g1 = std::lgamma(1.0 + 1.0 / k);
    const double g2 = std::lgamma(1.0 + 2.0 / k);
    return std::sqrt(std::max(0.0, std::exp(g2 - 2.0 * g1) - 1.0));
  };
  double lo = 0.05, hi = 20.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cv_of(mid) > target_cv) {
      lo = mid;  // CV too high -> raise k.
    } else {
      hi = mid;
    }
  }
  WeibullParams p;
  p.shape = 0.5 * (lo + hi);
  p.scale = mean / std::tgamma(1.0 + 1.0 / p.shape);
  return p;
}

double WeibullParams::Sample(Rng& rng) const {
  // Inverse transform: lambda * (-ln U)^(1/k).
  return scale * std::pow(-std::log(rng.NextDoublePositive()), 1.0 / shape);
}

double WeibullParams::Pdf(double x) const {
  if (x < 0) {
    return 0.0;
  }
  if (x == 0) {
    return shape > 1 ? 0.0 : (shape == 1 ? 1.0 / scale : 0.0);
  }
  const double z = x / scale;
  return (shape / scale) * std::pow(z, shape - 1.0) * std::exp(-std::pow(z, shape));
}

double WeibullParams::Cdf(double x) const {
  if (x <= 0) {
    return 0.0;
  }
  return -std::expm1(-std::pow(x / scale, shape));
}

double WeibullParams::Quantile(double q) const {
  COLDSTART_CHECK_GE(q, 0.0);
  COLDSTART_CHECK_LT(q, 1.0);
  return scale * std::pow(-std::log1p(-q), 1.0 / shape);
}

// ---------------------------------------------------------------------------
// Bounded Pareto.

double BoundedParetoParams::Sample(Rng& rng) const {
  // Inverse transform on the truncated Pareto CDF.
  const double u = rng.NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double BoundedParetoParams::Cdf(double x) const {
  if (x <= lo) {
    return 0.0;
  }
  if (x >= hi) {
    return 1.0;
  }
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return (1.0 - la * std::pow(x, -alpha)) / (1.0 - la / ha);
}

// ---------------------------------------------------------------------------
// Zipf.

ZipfSampler::ZipfSampler(int n, double s) {
  COLDSTART_CHECK_GT(n, 0);
  cumulative_.resize(static_cast<size_t>(n));
  double total = 0;
  for (int i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cumulative_[static_cast<size_t>(i)] = total;
  }
  for (auto& c : cumulative_) {
    c /= total;
  }
}

int ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<int>(it - cumulative_.begin());
}

double ZipfSampler::ProbabilityOfRank(int rank) const {
  COLDSTART_CHECK_GE(rank, 0);
  COLDSTART_CHECK_LT(rank, static_cast<int>(cumulative_.size()));
  const double prev = rank == 0 ? 0.0 : cumulative_[static_cast<size_t>(rank - 1)];
  return cumulative_[static_cast<size_t>(rank)] - prev;
}

// ---------------------------------------------------------------------------
// Categorical.

CategoricalSampler::CategoricalSampler(std::vector<double> weights) {
  COLDSTART_CHECK(!weights.empty());
  double total = 0;
  for (const double w : weights) {
    COLDSTART_CHECK_GE(w, 0.0);
    total += w;
  }
  COLDSTART_CHECK_GT(total, 0.0);
  cumulative_.resize(weights.size());
  probabilities_.resize(weights.size());
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cumulative_[i] = acc;
    probabilities_[i] = weights[i] / total;
  }
  cumulative_.back() = 1.0;
}

int CategoricalSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<int>(it - cumulative_.begin());
}

double CategoricalSampler::Probability(int index) const {
  COLDSTART_CHECK_GE(index, 0);
  COLDSTART_CHECK_LT(index, size());
  return probabilities_[static_cast<size_t>(index)];
}

}  // namespace coldstart::stats
