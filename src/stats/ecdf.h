// Empirical CDFs and summary statistics.
//
// The paper reports nearly everything as CDFs (Figs. 3, 4, 10, 15, 16, 17); Ecdf is the
// shared representation. It stores sorted samples, so quantiles are exact.
#ifndef COLDSTART_STATS_ECDF_H_
#define COLDSTART_STATS_ECDF_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace coldstart::stats {

struct SummaryStats {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double p99 = 0;
  double max = 0;
};

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void Add(double sample);
  // Must be called after the last Add() and before any query; idempotent.
  void Seal();

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Exact sample quantile (linear interpolation between order statistics).
  // Empty sample set -> NaN (rendered as "n/a" by the table layer), never a
  // fabricated 0.
  double Quantile(double q) const;
  // P(X <= x). Empty sample set -> 0 (no sample is <= x).
  double CdfAt(double x) const;
  // NaN when empty.
  double Mean() const;
  // NaN when empty; 0 for a single sample.
  double StdDev() const;
  // count = 0 and every statistic NaN when empty.
  SummaryStats Summary() const;

  // Evaluates the ECDF at `n` log-spaced points spanning [min, max]; used by benches
  // to print CDF curves. Returns (x, F(x)) pairs.
  std::vector<std::pair<double, double>> CurveLogX(int n) const;

  const std::vector<double>& sorted_samples() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sealed_ = true;
};

}  // namespace coldstart::stats

#endif  // COLDSTART_STATS_ECDF_H_
