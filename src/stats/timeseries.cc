#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::stats {

std::vector<double> MovingAverage(const std::vector<double>& series, int window) {
  COLDSTART_CHECK_GT(window, 0);
  const int n = static_cast<int>(series.size());
  std::vector<double> out(series.size());
  const int half = window / 2;
  // Prefix sums make each window O(1).
  std::vector<double> prefix(series.size() + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i) + 1] = prefix[static_cast<size_t>(i)] + series[static_cast<size_t>(i)];
  }
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - half);
    const int hi = std::min(n - 1, i + half);
    const double sum = prefix[static_cast<size_t>(hi) + 1] - prefix[static_cast<size_t>(lo)];
    out[static_cast<size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> MinMaxNormalize(const std::vector<double>& series) {
  std::vector<double> out(series.size(), 0.0);
  if (series.empty()) {
    return out;
  }
  const auto [mn_it, mx_it] = std::minmax_element(series.begin(), series.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mx <= mn) {
    return out;
  }
  for (size_t i = 0; i < series.size(); ++i) {
    out[i] = (series[i] - mn) / (mx - mn);
  }
  return out;
}

std::vector<Peak> LargestPeakPerPeriod(const std::vector<double>& series, size_t period) {
  COLDSTART_CHECK_GT(period, 0u);
  std::vector<Peak> peaks;
  for (size_t start = 0; start + period <= series.size(); start += period) {
    Peak p;
    p.index = start;
    p.value = series[start];
    for (size_t i = start; i < start + period; ++i) {
      if (series[i] > p.value) {
        p.value = series[i];
        p.index = i;
      }
    }
    peaks.push_back(p);
  }
  return peaks;
}

double PeakToTroughRatio(const std::vector<double>& series, double floor) {
  if (series.size() < 2) {
    return 1.0;
  }
  const auto [mn_it, mx_it] = std::minmax_element(series.begin(), series.end());
  const double mx = *mx_it;
  if (mx <= 0) {
    return 1.0;
  }
  const double mn = std::max(*mn_it, floor);
  return std::max(1.0, mx / mn);
}

double Autocorrelation(const std::vector<double>& series, size_t lag) {
  const size_t n = series.size();
  if (n == 0 || lag >= n) {
    return 0.0;
  }
  double mean = 0;
  for (const double v : series) {
    mean += v;
  }
  mean /= static_cast<double>(n);
  double var = 0;
  for (const double v : series) {
    var += (v - mean) * (v - mean);
  }
  if (var <= 0) {
    return 0.0;
  }
  double acc = 0;
  for (size_t i = 0; i + lag < n; ++i) {
    acc += (series[i] - mean) * (series[i + lag] - mean);
  }
  return acc / var;
}

std::vector<double> Downsample(const std::vector<double>& series, size_t factor) {
  COLDSTART_CHECK_GT(factor, 0u);
  std::vector<double> out;
  out.reserve(series.size() / factor);
  for (size_t start = 0; start + factor <= series.size(); start += factor) {
    double sum = 0;
    for (size_t i = start; i < start + factor; ++i) {
      sum += series[i];
    }
    out.push_back(sum);
  }
  return out;
}

std::vector<double> PeriodicProfile(const std::vector<double>& series, size_t period) {
  COLDSTART_CHECK_GT(period, 0u);
  const size_t periods = series.size() / period;
  std::vector<double> out(period, 0.0);
  if (periods == 0) {
    return out;
  }
  for (size_t p = 0; p < periods; ++p) {
    for (size_t i = 0; i < period; ++i) {
      out[i] += series[p * period + i];
    }
  }
  for (auto& v : out) {
    v /= static_cast<double>(periods);
  }
  return out;
}

}  // namespace coldstart::stats
