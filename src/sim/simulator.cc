#include "sim/simulator.h"

#include <memory>

namespace coldstart::sim {

void Simulator::ScheduleAt(SimTime t, Handler fn) {
  COLDSTART_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

uint64_t Simulator::RunUntil(SimTime until) {
  stop_requested_ = false;
  uint64_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.time > until) {
      break;
    }
    // Move the handler out before popping: the handler may schedule new events, which
    // mutates the queue.
    Handler fn = std::move(const_cast<Event&>(top).fn);
    now_ = top.time;
    queue_.pop();
    fn();
    ++processed;
    ++events_processed_;
  }
  if (queue_.empty() || (!stop_requested_ && now_ < until)) {
    now_ = until;
  }
  return processed;
}

uint64_t Simulator::RunToCompletion() {
  stop_requested_ = false;
  uint64_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    Handler fn = std::move(const_cast<Event&>(top).fn);
    now_ = top.time;
    queue_.pop();
    fn();
    ++processed;
    ++events_processed_;
  }
  return processed;
}

void SchedulePeriodic(Simulator& sim, SimTime start, SimDuration period, SimTime end,
                      std::function<void(int64_t)> fn) {
  COLDSTART_CHECK_GT(period, 0);
  if (start >= end) {
    return;
  }
  // A small heap state carries the tick index through the self-rescheduling closure.
  struct State {
    Simulator* sim;
    SimDuration period;
    SimTime end;
    int64_t index;
    std::function<void(int64_t)> fn;
  };
  auto state = std::make_shared<State>(State{&sim, period, end, 0, std::move(fn)});
  // Self-rescheduling functor (a recursive lambda in struct form).
  struct Recur {
    std::shared_ptr<State> s;
    void operator()() const {
      s->fn(s->index);
      ++s->index;
      const SimTime next = s->sim->now() + s->period;
      if (next < s->end) {
        s->sim->ScheduleAt(next, Recur{s});
      }
    }
  };
  sim.ScheduleAt(start, Recur{state});
}

}  // namespace coldstart::sim
