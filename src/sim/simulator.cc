#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <memory>

namespace coldstart::sim {

uint64_t Simulator::RunLoop(SimTime until) {
  uint64_t processed = 0;
  while (!stop_requested_) {
    SimTime source_time = 0;
    uint64_t source_seq = 0;
    const bool have_source =
        source_ != nullptr && source_->Head(&source_time, &source_seq);
    // Cap the wheel's cursor scouting at the source head (and the run boundary):
    // everything a source-driven handler schedules lands at or after that time,
    // so it stays on the fast wheel path instead of the pre-cursor heap.
    const SimTime horizon =
        have_source ? std::min(source_time, until) : until;
    SimTime queue_time = 0;
    uint64_t queue_seq = 0;
    const bool have_queued = wheel_.Peek(&queue_time, &queue_seq, horizon);
    bool source_first = false;
    if (have_queued) {
      // queue_time <= horizon <= until here; ties break on reserved seq.
      source_first = have_source && (source_time < queue_time ||
                                     (source_time == queue_time &&
                                      source_seq < queue_seq));
    } else if (have_source && source_time <= until) {
      source_first = true;
    } else {
      break;
    }
    now_ = source_first ? source_time : queue_time;
    if (source_first) {
      source_->RunHead();
    } else {
      wheel_.RunNext();
    }
    ++processed;
    ++events_processed_;
  }
  return processed;
}

uint64_t Simulator::RunUntil(SimTime until) {
  stop_requested_ = false;
  const uint64_t processed = RunLoop(until);
  // A stopped run leaves the clock at the last processed event; otherwise the clock
  // advances to the requested horizon even when the queue drained early.
  if (!stop_requested_ && now_ < until) {
    now_ = until;
    wheel_.AdvanceTo(until);
  }
  return processed;
}

uint64_t Simulator::RunToCompletion() {
  stop_requested_ = false;
  return RunLoop(std::numeric_limits<SimTime>::max());
}

void SchedulePeriodic(Simulator& sim, SimTime start, SimDuration period, SimTime end,
                      std::function<void(int64_t)> fn) {
  COLDSTART_CHECK_GT(period, 0);
  if (start >= end) {
    return;
  }
  // A small heap state carries the tick index through the self-rescheduling closure.
  struct State {
    Simulator* sim;
    SimDuration period;
    SimTime end;
    int64_t index;
    std::function<void(int64_t)> fn;
  };
  auto state = std::make_shared<State>(State{&sim, period, end, 0, std::move(fn)});
  // Self-rescheduling functor (a recursive lambda in struct form); the shared_ptr
  // fits the handler's inline buffer.
  struct Recur {
    std::shared_ptr<State> s;
    void operator()() const {
      s->fn(s->index);
      ++s->index;
      const SimTime next = s->sim->now() + s->period;
      if (next < s->end) {
        s->sim->ScheduleAt(next, Recur{s});
      }
    }
  };
  sim.ScheduleAt(start, Recur{state});
}

}  // namespace coldstart::sim
