// Hierarchical timer wheel: the simulator's event queue.
//
// Two wheels plus an overflow heap, all ordered by the same deterministic
// (time, insertion sequence) key the old binary heap used:
//
//   L0: 1024 buckets x 1.024 ms  (~1.05 s window)  - request completions, arrivals
//   L1:  256 frames  x ~1.05 s   (~268 s window)   - keep-alives, minute ticks
//   overflow: sorted heap        (beyond ~268 s)   - day-batch cursors, far timers
//
// An L0 bucket separates ordering keys from handler payloads: keys are 24-byte
// PODs appended in O(1) and sorted once when the bucket becomes the ready bucket,
// so a handler is moved exactly twice (on Push, on Pop) and every comparison/swap
// on the hot path touches only flat key arrays. Cross-structure ordering is exact
// because a ready bucket's time window never overlaps another structure's earliest
// content: L1 frames are L0-bucket aligned, and overflow is drained into L0 before
// a bucket is declared ready. Scheduling and popping cost O(log bucket-size) on
// cache-resident vectors instead of O(log total-pending) on a global heap.
//
// The cursor is a lower bound on every queued event's time. Peek() takes an
// explicit horizon and never scouts the cursor past it, so in the integrated
// run loop handlers always schedule at or after the cursor. The tiny `pre_`
// heap is the defensive fallback for direct wheel users that push behind a
// scouted cursor; it always holds strictly earlier times than the wheels and
// is therefore checked first.
#ifndef COLDSTART_SIM_TIMER_WHEEL_H_
#define COLDSTART_SIM_TIMER_WHEEL_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_handler.h"
#include "common/sim_time.h"

namespace coldstart::sim {

class TimerWheel {
 public:
  static constexpr int kL0GranularityBits = 10;  // 1024 us buckets.
  static constexpr int kL0SlotBits = 10;
  static constexpr int kL0Slots = 1 << kL0SlotBits;
  static constexpr int kL1GranularityBits = kL0GranularityBits + kL0SlotBits;
  static constexpr int kL1SlotBits = 8;
  static constexpr int kL1Slots = 1 << kL1SlotBits;

  TimerWheel() = default;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // `t` must be >= the time of the last popped event (the simulator clock), and
  // `seq` strictly greater than every previously pushed seq.
  void Push(SimTime t, uint64_t seq, InlineHandler&& fn);

  // Fills (time, seq) of the earliest event when its time is <= `horizon`;
  // returns false when the wheel is empty or its earliest event lies beyond the
  // horizon. May cascade frames / drain overflow internally (the total order is
  // unaffected), but never scouts the cursor past the horizon — the run loop
  // passes the merged source head (or the run boundary) so that events scheduled
  // by source-driven handlers still land on the fast wheel path.
  bool Peek(SimTime* time, uint64_t* seq, SimTime horizon);

  // Removes the earliest event (the one Peek describes) and invokes its handler
  // in place — payload slots are stable, so the handler is never copied out even
  // if it schedules new events into the same bucket. The wheel must not be empty.
  void RunNext();

  // Informs the wheel that the clock advanced to `t` with no pending event before
  // it (e.g. after RunUntil jumps the clock to its horizon). Keeps future pushes
  // on the fast wheel path instead of the pre-cursor heap.
  void AdvanceTo(SimTime t);

 private:
  // Ordering key, kept separate from the handler so sorting moves PODs only.
  struct EventKey {
    SimTime time;
    uint64_t seq;
    uint32_t payload;  // Index into the bucket's chunked payload storage.
  };
  // Handlers live in fixed-size chunks drawn from a wheel-wide pool: a placed
  // handler never moves again (vector growth would otherwise relocate every
  // element through an indirect call — the old queue's dominant cost).
  static constexpr int kChunkBits = 6;
  static constexpr int kChunkSize = 1 << kChunkBits;
  struct PayloadChunk {
    InlineHandler slots[kChunkSize];
  };
  struct Bucket {
    std::vector<EventKey> keys;  // Descending (time, seq) once sorted; pop at back.
    std::vector<PayloadChunk*> chunks;
    uint32_t payload_count = 0;
    bool sorted = false;

    InlineHandler& slot(uint32_t index) {
      return chunks[index >> kChunkBits]->slots[index & (kChunkSize - 1)];
    }
  };
  // Far events (L1 frames, overflow, pre-cursor) keep key and handler together;
  // they are touched once per event, not per comparison.
  struct FarEvent {
    SimTime time;
    uint64_t seq;
    InlineHandler fn;
  };

  PayloadChunk* AcquireChunk();
  void ReleaseBucketStorage(Bucket& b);
  void PushL0(SimTime t, uint64_t seq, InlineHandler&& fn);
  void Place(SimTime t, uint64_t seq, InlineHandler&& fn);
  // Positions ready_slot_ at the bucket holding the earliest wheel event, or
  // returns false (advancing the cursor at most to `horizon`) when that event's
  // bucket starts beyond the horizon.
  bool PrepareReady(SimTime horizon);
  // Circular scan for the first set bit at or after `from`; returns the circular
  // distance in slots, or -1 when the bitmap is empty.
  static int ScanBits(const uint64_t* words, int nbits, int from);

  std::array<Bucket, kL0Slots> l0_;
  std::array<std::vector<FarEvent>, kL1Slots> l1_;
  uint64_t l0_bits_[kL0Slots / 64] = {};
  uint64_t l1_bits_[kL1Slots / 64] = {};
  std::vector<FarEvent> overflow_;  // Min-heap by (time, seq).
  std::vector<FarEvent> pre_;       // Min-heap; events scheduled behind the cursor.
  std::vector<std::unique_ptr<PayloadChunk>> chunk_storage_;
  std::vector<PayloadChunk*> chunk_pool_;
  SimTime cursor_ = 0;              // Lower bound on all wheel/overflow events.
  size_t size_ = 0;
  int ready_slot_ = -1;  // L0 slot whose sorted back is the proven minimum, or -1.
};

}  // namespace coldstart::sim

#endif  // COLDSTART_SIM_TIMER_WHEEL_H_
