#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.h"

namespace coldstart::sim {
namespace {

// Min-heap comparator for far events: "a fires after b".
struct FarAfter {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

// Descending key order: latest first, so the bucket minimum sits at the back.
struct KeyDescending {
  template <typename K>
  bool operator()(const K& a, const K& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

}  // namespace

int TimerWheel::ScanBits(const uint64_t* words, int nbits, int from) {
  const int nwords = nbits >> 6;
  int w = from >> 6;
  uint64_t cur = words[w] & (~0ull << (from & 63));
  // One masked partial word, then a full wrap-around (the revisit of the first word
  // only contributes bits below `from`, which map to wrapped distances).
  for (int i = 0; i <= nwords; ++i) {
    if (cur != 0) {
      const int bit = (w << 6) + std::countr_zero(cur);
      int dist = bit - from;
      if (dist < 0) {
        dist += nbits;
      }
      return dist;
    }
    w = (w + 1) & (nwords - 1);
    cur = words[w];
  }
  return -1;
}

TimerWheel::PayloadChunk* TimerWheel::AcquireChunk() {
  if (!chunk_pool_.empty()) {
    PayloadChunk* chunk = chunk_pool_.back();
    chunk_pool_.pop_back();
    return chunk;
  }
  chunk_storage_.push_back(std::make_unique<PayloadChunk>());
  return chunk_storage_.back().get();
}

void TimerWheel::ReleaseBucketStorage(Bucket& b) {
  // Slots hold moved-from shells by now; chunks go back to the pool intact.
  chunk_pool_.insert(chunk_pool_.end(), b.chunks.begin(), b.chunks.end());
  b.chunks.clear();
  b.payload_count = 0;
  b.sorted = false;
}

void TimerWheel::PushL0(SimTime t, uint64_t seq, InlineHandler&& fn) {
  const int slot = static_cast<int>(t >> kL0GranularityBits) & (kL0Slots - 1);
  Bucket& b = l0_[static_cast<size_t>(slot)];
  const uint32_t index = b.payload_count++;
  if ((index & (kChunkSize - 1)) == 0) {
    b.chunks.push_back(AcquireChunk());
  }
  b.slot(index) = std::move(fn);
  const EventKey key{t, seq, index};
  if (slot == ready_slot_) {
    // The ready bucket is sorted; keep it sorted so its back stays the minimum.
    b.keys.insert(
        std::lower_bound(b.keys.begin(), b.keys.end(), key, KeyDescending{}), key);
  } else {
    if (ready_slot_ >= 0 &&
        t < l0_[static_cast<size_t>(ready_slot_)].keys.back().time) {
      ready_slot_ = -1;  // The new event preempts the cached minimum.
    }
    b.keys.push_back(key);
    b.sorted = false;
  }
  l0_bits_[slot >> 6] |= 1ull << (slot & 63);
}

void TimerWheel::Place(SimTime t, uint64_t seq, InlineHandler&& fn) {
  const uint64_t d0 = static_cast<uint64_t>(t >> kL0GranularityBits) -
                      static_cast<uint64_t>(cursor_ >> kL0GranularityBits);
  if (d0 < kL0Slots) {
    PushL0(t, seq, std::move(fn));
    return;
  }
  const uint64_t d1 = static_cast<uint64_t>(t >> kL1GranularityBits) -
                      static_cast<uint64_t>(cursor_ >> kL1GranularityBits);
  if (d1 < kL1Slots) {
    const int slot = static_cast<int>(t >> kL1GranularityBits) & (kL1Slots - 1);
    // Frames are scattered wholesale into L0 on cascade; no per-frame order needed.
    l1_[static_cast<size_t>(slot)].push_back(FarEvent{t, seq, std::move(fn)});
    l1_bits_[slot >> 6] |= 1ull << (slot & 63);
    return;
  }
  overflow_.push_back(FarEvent{t, seq, std::move(fn)});
  std::push_heap(overflow_.begin(), overflow_.end(), FarAfter{});
}

void TimerWheel::Push(SimTime t, uint64_t seq, InlineHandler&& fn) {
  ++size_;
  if (t < cursor_) {
    // The cursor scouted ahead of the clock (idle peek); keep the event in the
    // pre-cursor heap, which is strictly earlier than all wheel content.
    pre_.push_back(FarEvent{t, seq, std::move(fn)});
    std::push_heap(pre_.begin(), pre_.end(), FarAfter{});
    return;
  }
  Place(t, seq, std::move(fn));
}

bool TimerWheel::PrepareReady(SimTime horizon) {
  for (;;) {
    // Pull overflow events that fit the near window (they may now precede or share
    // a bucket window with wheel content).
    while (!overflow_.empty() &&
           static_cast<uint64_t>(overflow_.front().time >> kL0GranularityBits) -
                   static_cast<uint64_t>(cursor_ >> kL0GranularityBits) <
               kL0Slots) {
      std::pop_heap(overflow_.begin(), overflow_.end(), FarAfter{});
      FarEvent e = std::move(overflow_.back());
      overflow_.pop_back();
      PushL0(e.time, e.seq, std::move(e.fn));
    }
    const int base0 = static_cast<int>(cursor_ >> kL0GranularityBits) & (kL0Slots - 1);
    const int d0 = ScanBits(l0_bits_, kL0Slots, base0);
    const int base1 = static_cast<int>(cursor_ >> kL1GranularityBits) & (kL1Slots - 1);
    const int d1 = ScanBits(l1_bits_, kL1Slots, base1);
    const SimTime s0 =
        d0 >= 0 ? ((cursor_ >> kL0GranularityBits) + d0) << kL0GranularityBits : 0;
    const SimTime s1 =
        d1 >= 0 ? ((cursor_ >> kL1GranularityBits) + d1) << kL1GranularityBits : 0;
    if (d0 >= 0 && (d1 < 0 || s0 < s1)) {
      // L1 frames are L0-bucket aligned, so s1 > s0 implies every L1 event lands
      // at or after this bucket's end; post-drain overflow lies beyond the L0
      // window. The bucket minimum is therefore the global minimum.
      if (s0 > horizon) {
        cursor_ = std::max(cursor_, horizon);
        return false;
      }
      cursor_ = std::max(cursor_, s0);
      ready_slot_ = (base0 + d0) & (kL0Slots - 1);
      Bucket& b = l0_[static_cast<size_t>(ready_slot_)];
      if (!b.sorted) {
        std::sort(b.keys.begin(), b.keys.end(), KeyDescending{});
        b.sorted = true;
      }
      return true;
    }
    if (d1 >= 0 && (overflow_.empty() || s1 <= overflow_.front().time)) {
      // Cascade the earliest frame into the near wheel. No queued event precedes
      // the frame start, so the cursor may advance to it.
      if (s1 > horizon) {
        cursor_ = std::max(cursor_, horizon);
        return false;
      }
      cursor_ = std::max(cursor_, s1);
      const int slot = (base1 + d1) & (kL1Slots - 1);
      std::vector<FarEvent> frame = std::move(l1_[static_cast<size_t>(slot)]);
      l1_[static_cast<size_t>(slot)].clear();
      l1_bits_[slot >> 6] &= ~(1ull << (slot & 63));
      for (FarEvent& e : frame) {
        PushL0(e.time, e.seq, std::move(e.fn));
      }
      continue;
    }
    // Overflow leads (or is all that remains): jump to it and re-place.
    COLDSTART_CHECK(!overflow_.empty());
    if (overflow_.front().time > horizon) {
      cursor_ = std::max(cursor_, horizon);
      return false;
    }
    cursor_ = overflow_.front().time;
  }
}

bool TimerWheel::Peek(SimTime* time, uint64_t* seq, SimTime horizon) {
  if (!pre_.empty()) {
    if (pre_.front().time > horizon) {
      return false;
    }
    *time = pre_.front().time;
    *seq = pre_.front().seq;
    return true;
  }
  if (size_ == 0) {
    return false;
  }
  if (ready_slot_ < 0 && !PrepareReady(horizon)) {
    return false;
  }
  const EventKey& key = l0_[static_cast<size_t>(ready_slot_)].keys.back();
  if (key.time > horizon) {
    return false;  // The ready cache stays valid for later, wider peeks.
  }
  *time = key.time;
  *seq = key.seq;
  return true;
}

void TimerWheel::RunNext() {
  if (!pre_.empty()) {
    std::pop_heap(pre_.begin(), pre_.end(), FarAfter{});
    // Move out before running: the handler may push into pre_, reallocating it.
    InlineHandler fn = std::move(pre_.back().fn);
    pre_.pop_back();
    --size_;
    fn();
    return;
  }
  COLDSTART_CHECK_GT(size_, 0u);
  if (ready_slot_ < 0) {
    COLDSTART_CHECK(PrepareReady(std::numeric_limits<SimTime>::max()));
  }
  const int slot_index = ready_slot_;
  Bucket& b = l0_[static_cast<size_t>(slot_index)];
  const EventKey key = b.keys.back();
  b.keys.pop_back();
  cursor_ = std::max(cursor_, key.time);
  --size_;
  if (b.keys.empty()) {
    // Drop the ready cache before running: the handler may schedule, and the
    // preemption check must never peek at an empty ready bucket.
    ready_slot_ = -1;
  }
  // Chunk slots are stable, so the handler runs in place even if it schedules
  // into this same bucket (appends to fresh slots, never relocates).
  InlineHandler& slot = b.slot(key.payload);
  slot();
  slot = InlineHandler();
  if (b.keys.empty()) {
    ReleaseBucketStorage(b);
    l0_bits_[slot_index >> 6] &= ~(1ull << (slot_index & 63));
    if (ready_slot_ == slot_index) {
      ready_slot_ = -1;
    }
  }
}

void TimerWheel::AdvanceTo(SimTime t) {
  if (pre_.empty() || t <= pre_.front().time) {
    cursor_ = std::max(cursor_, t);
  }
}

}  // namespace coldstart::sim
