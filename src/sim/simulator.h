// Discrete-event simulation core.
//
// A single-threaded event loop with a deterministic total order: events fire by
// (time, insertion sequence), so two events at the same timestamp run in the order
// they were scheduled. The queue is a hierarchical timer wheel (timer_wheel.h) and
// handlers are small-buffer-optimized InlineHandlers: scheduling a handler whose
// captures fit 48 bytes (every call site in src/sim and src/platform) performs no
// heap allocation. Components that need cancellation use generation counters rather
// than queue surgery.
//
// Besides the queue, the loop can merge one attached EventSource: a pull-based,
// time-ordered stream whose entries carry (time, seq) keys but are never
// materialized as queue entries. The platform's arrival injector uses this to
// stream a month of arrivals with one live cursor instead of one closure each.
#ifndef COLDSTART_SIM_SIMULATOR_H_
#define COLDSTART_SIM_SIMULATOR_H_

#include <functional>

#include "common/check.h"
#include "common/inline_handler.h"
#include "common/sim_time.h"
#include "sim/timer_wheel.h"

namespace coldstart::sim {

// A pull-based stream of time-ordered events merged into the run loop. Head()
// exposes the next entry's (time, seq) key; the simulator runs whichever of the
// queue minimum and the source head orders first. Sequence numbers come from
// Simulator::ReserveSeqRange so stream entries interleave with queued events
// exactly as if they had been scheduled individually.
class EventSource {
 public:
  virtual ~EventSource() = default;
  // Returns true and fills (time, seq) when a head event is available.
  virtual bool Head(SimTime* time, uint64_t* seq) = 0;
  // Runs and consumes the head event.
  virtual void RunHead() = 0;
};

class Simulator {
 public:
  using Handler = InlineHandler;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }
  // Queued events only; an attached EventSource's pending entries are not counted.
  size_t pending_events() const { return wheel_.size(); }

  // Schedules `fn` at absolute time `t` (>= now).
  void ScheduleAt(SimTime t, Handler fn) {
    COLDSTART_CHECK_GE(t, now_);
    wheel_.Push(t, next_seq_++, std::move(fn));
  }
  // Schedules `fn` after `dt` (>= 0) from now.
  void ScheduleAfter(SimDuration dt, Handler fn) {
    COLDSTART_CHECK_GE(dt, 0);
    ScheduleAt(now_ + dt, std::move(fn));
  }

  // Reserves `count` consecutive sequence numbers and returns the first, exactly
  // as if `count` events had been scheduled now. EventSource implementations use
  // this to give stream entries the same total-order keys that individually
  // scheduled closures would have received.
  uint64_t ReserveSeqRange(uint64_t count) {
    const uint64_t base = next_seq_;
    next_seq_ += count;
    return base;
  }

  // Credits `n` extra processed events. An EventSource whose RunHead drains a
  // run of entries in one dispatch calls this with (run length - 1) so
  // events_processed matches what per-entry dispatch would have counted.
  void AddProcessedEvents(uint64_t n) { events_processed_ += n; }

  // Attaches (or, with nullptr, detaches) the merged event source. One at a time.
  void AttachSource(EventSource* source) {
    COLDSTART_CHECK(source == nullptr || source_ == nullptr);
    source_ = source;
  }

  // --- Checkpoint support (src/checkpoint/) ---------------------------------
  // The next sequence number that ScheduleAt would consume. Checkpoint writers
  // record it (and bookkeep the seq of every pending event) so a restored run
  // reproduces the original (time, seq) total order exactly.
  uint64_t next_seq() const { return next_seq_; }

  // Restores the clock and counters of a checkpointed run. Must be called on a
  // fresh simulator before any RestoreEvent; the wheel cursor advances to `now`
  // so restored events sort correctly against it.
  void RestoreClock(SimTime now, uint64_t next_seq, uint64_t events_processed) {
    COLDSTART_CHECK_EQ(wheel_.size(), 0u);
    COLDSTART_CHECK_GE(now, now_);
    COLDSTART_CHECK_GE(next_seq, next_seq_);
    wheel_.AdvanceTo(now);
    now_ = now;
    next_seq_ = next_seq;
    events_processed_ = events_processed;
  }

  // Re-queues a checkpointed pending event under its *original* (time, seq)
  // key. Unlike ScheduleAt this does not consume a sequence number — the
  // counter was restored wholesale by RestoreClock, which must run first.
  void RestoreEvent(SimTime t, uint64_t seq, Handler fn) {
    COLDSTART_CHECK_GE(t, now_);
    COLDSTART_CHECK_LT(seq, next_seq_);
    wheel_.Push(t, seq, std::move(fn));
  }
  // ---------------------------------------------------------------------------

  // Runs until the queue empties or the clock would pass `until`. Events scheduled
  // exactly at `until` do fire. Returns the number of events processed by this call.
  uint64_t RunUntil(SimTime until);

  // Runs until the queue is empty.
  uint64_t RunToCompletion();

  // Requests that the current RunUntil/RunToCompletion stop after the in-flight
  // handler returns (pending events remain queued; the clock stays at the last
  // processed event).
  void Stop() { stop_requested_ = true; }

 private:
  uint64_t RunLoop(SimTime until);

  TimerWheel wheel_;
  EventSource* source_ = nullptr;  // Not owned; may be null.
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

// Invokes `fn(bucket_index)` every `period` from `start` until `end` (exclusive).
// Used for per-minute metric sampling and pool maintenance loops.
void SchedulePeriodic(Simulator& sim, SimTime start, SimDuration period, SimTime end,
                      std::function<void(int64_t)> fn);

}  // namespace coldstart::sim

#endif  // COLDSTART_SIM_SIMULATOR_H_
