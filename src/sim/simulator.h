// Discrete-event simulation core.
//
// A single-threaded event loop with a deterministic total order: events fire by
// (time, insertion sequence), so two events at the same timestamp run in the order
// they were scheduled. Handlers are arbitrary callables; components that need
// cancellation use generation counters rather than queue surgery (cheaper, and it
// keeps the queue a plain binary heap).
#ifndef COLDSTART_SIM_SIMULATOR_H_
#define COLDSTART_SIM_SIMULATOR_H_

#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace coldstart::sim {

class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

  // Schedules `fn` at absolute time `t` (>= now).
  void ScheduleAt(SimTime t, Handler fn);
  // Schedules `fn` after `dt` (>= 0) from now.
  void ScheduleAfter(SimDuration dt, Handler fn) {
    COLDSTART_CHECK_GE(dt, 0);
    ScheduleAt(now_ + dt, std::move(fn));
  }

  // Runs until the queue empties or the clock would pass `until`. Events scheduled
  // exactly at `until` do fire. Returns the number of events processed by this call.
  uint64_t RunUntil(SimTime until);

  // Runs until the queue is empty.
  uint64_t RunToCompletion();

  // Requests that the current RunUntil/RunToCompletion stop after the in-flight
  // handler returns (pending events remain queued).
  void Stop() { stop_requested_ = true; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Handler fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

// Invokes `fn(bucket_index)` every `period` from `start` until `end` (exclusive).
// Used for per-minute metric sampling and pool maintenance loops.
void SchedulePeriodic(Simulator& sim, SimTime start, SimDuration period, SimTime end,
                      std::function<void(int64_t)> fn);

}  // namespace coldstart::sim

#endif  // COLDSTART_SIM_SIMULATOR_H_
