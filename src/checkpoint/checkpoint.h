// Crash-safe checkpoint files for month-scale runs.
//
// A checkpoint directory holds one file per committed (day, shard) snapshot
// plus a manifest naming the latest committed file per shard. Both are written
// atomically (tmp + fsync + rename, common/atomic_file.h) and CRC-protected,
// so a kill at any instant leaves either the previous consistent state or the
// new one — never a torn file. The payload bytes themselves are produced by
// core::Experiment (sim clock + policy blob + sink state + platform state);
// this module only frames, checksums, and names them.
//
// Failure policy: a checkpoint that exists but does not validate (bad magic,
// short file, CRC mismatch, wrong version) aborts loudly, naming the file —
// resuming from corrupt state would silently diverge from the uninterrupted
// run, the one thing a checkpoint must never do. A file or manifest that
// simply does not exist returns false ("start fresh").
#ifndef COLDSTART_CHECKPOINT_CHECKPOINT_H_
#define COLDSTART_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace coldstart::checkpoint {

// Shard id of a serial (unsharded) run's single checkpoint stream.
inline constexpr uint32_t kSerialShard = 0xffffffffu;

struct CheckpointMeta {
  uint64_t fingerprint = 0;  // ScenarioConfig::Fingerprint() of the run.
  uint8_t trace_mode = 0;    // core::TraceMode of the run's sink.
  // region * shards_per_region + cell group, or kSerialShard.
  uint32_t shard = kSerialShard;
  int64_t day = 0;           // Completed days: state is at day * kDay - 1.
  uint32_t num_regions = 0;
};

// Atomically writes meta + payload. Returns false on I/O failure (the previous
// checkpoint, if any, is left intact).
bool WriteCheckpointFile(const std::string& path, const CheckpointMeta& meta,
                         const std::string& payload);

// Reads and validates `path`. Returns false when the file does not exist;
// aborts (loudly, naming the file) when it exists but is corrupt.
bool ReadCheckpointFile(const std::string& path, CheckpointMeta* meta,
                        std::string* payload);

// The latest committed checkpoint per shard. Rewritten atomically after every
// shard commit; shards of a sharded run may sit at different days. A shard
// with no entry restarts from day 0.
struct ManifestEntry {
  uint32_t shard = kSerialShard;
  int64_t day = 0;
  std::string file;  // File name, relative to the checkpoint directory.
};

struct Manifest {
  uint64_t fingerprint = 0;
  uint8_t trace_mode = 0;
  uint32_t num_regions = 0;
  bool sharded = false;
  // Sub-region shard fan-out of the checkpointed run: each region's functions
  // were split into this many capacity-cell groups (1 = plain region sharding).
  // A resume must adopt the same geometry — shard ids are region * K + group,
  // so entries written under a different K do not line up and are rejected.
  uint32_t shards_per_region = 1;
  std::vector<ManifestEntry> entries;
};

bool WriteManifest(const std::string& dir, const Manifest& manifest);
// Returns false when `dir` has no manifest; aborts on a corrupt one.
bool ReadManifest(const std::string& dir, Manifest* manifest);

// Canonical file name for a (day, shard) snapshot within the directory.
std::string CheckpointFileName(int64_t day, uint32_t shard);
std::string ManifestPath(const std::string& dir);

}  // namespace coldstart::checkpoint

#endif  // COLDSTART_CHECKPOINT_CHECKPOINT_H_
