#include "checkpoint/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/atomic_file.h"
#include "common/byte_serde.h"
#include "common/crc32.h"

namespace coldstart::checkpoint {

namespace {

// "cckpt_v4" / "cmnft_v3", little-endian. Checkpoint v4 frames the cold-start
// model layer into the platform payload — per-(region, cell) model identity plus
// a mutable-state blob, the resource-cost ledger's 128-bit sums, and the per-pod
// warm-idle accumulator. (v3 switched the LogHistogram latency sum to 128-bit
// fixed point; manifest v3 added shards_per_region and is layout-unchanged by
// v4.) Older files encode different layouts and are rejected here as "bad
// magic" rather than half-restored.
constexpr uint64_t kCheckpointMagic = 0x34765F74706B6363ull;
constexpr uint64_t kManifestMagic = 0x33765F74666E6D63ull;

[[noreturn]] void Corrupt(const std::string& path, const char* what) {
  std::fprintf(stderr, "checkpoint: %s: corrupt (%s)\n", path.c_str(), what);
  std::abort();
}

// Shared framing: magic, payload size, payload CRC32, payload bytes. The CRC
// covers only the payload; the frame fields are validated structurally.
bool WriteFramed(const std::string& path, uint64_t magic,
                 const std::string& payload) {
  ByteWriter header;
  header.U64(magic);
  header.U64(payload.size());
  header.U32(Crc32(payload.data(), payload.size()));
  AtomicFile file(path);
  if (!file.ok()) {
    return false;
  }
  file.Write(header.data().data(), header.data().size());
  file.Write(payload.data(), payload.size());
  return file.Commit();
}

// Returns false when `path` does not open (treated as "no checkpoint");
// aborts on any validation failure.
bool ReadFramed(const std::string& path, uint64_t magic, std::string* payload) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    Corrupt(path, "read error");
  }
  constexpr size_t kFrameHeader = 8 + 8 + 4;
  if (bytes.size() < kFrameHeader) {
    Corrupt(path, "truncated header");
  }
  ByteReader r(bytes);
  if (r.U64() != magic) {
    Corrupt(path, "bad magic or version");
  }
  const uint64_t size = r.U64();
  const uint32_t crc = r.U32();
  if (size != bytes.size() - kFrameHeader) {
    Corrupt(path, "truncated payload");
  }
  payload->assign(bytes, kFrameHeader, size);
  if (Crc32(payload->data(), payload->size()) != crc) {
    Corrupt(path, "payload CRC mismatch");
  }
  return true;
}

}  // namespace

bool WriteCheckpointFile(const std::string& path, const CheckpointMeta& meta,
                         const std::string& payload) {
  ByteWriter w;
  w.U64(meta.fingerprint);
  w.U8(meta.trace_mode);
  w.U32(meta.shard);
  w.I64(meta.day);
  w.U32(meta.num_regions);
  w.Str(payload);
  return WriteFramed(path, kCheckpointMagic, w.Take());
}

bool ReadCheckpointFile(const std::string& path, CheckpointMeta* meta,
                        std::string* payload) {
  std::string framed;
  if (!ReadFramed(path, kCheckpointMagic, &framed)) {
    return false;
  }
  // The frame CRC already validated every byte; ByteReader underflow here
  // would be a writer/reader bug and CHECK-fails accordingly.
  ByteReader r(framed);
  meta->fingerprint = r.U64();
  meta->trace_mode = r.U8();
  meta->shard = r.U32();
  meta->day = r.I64();
  meta->num_regions = r.U32();
  *payload = r.Str();
  if (!r.AtEnd()) {
    Corrupt(path, "trailing bytes");
  }
  return true;
}

bool WriteManifest(const std::string& dir, const Manifest& manifest) {
  ByteWriter w;
  w.U64(manifest.fingerprint);
  w.U8(manifest.trace_mode);
  w.U32(manifest.num_regions);
  w.U8(manifest.sharded ? 1 : 0);
  w.U32(manifest.shards_per_region);
  w.U64(manifest.entries.size());
  for (const ManifestEntry& e : manifest.entries) {
    w.U32(e.shard);
    w.I64(e.day);
    w.Str(e.file);
  }
  return WriteFramed(ManifestPath(dir), kManifestMagic, w.Take());
}

bool ReadManifest(const std::string& dir, Manifest* manifest) {
  const std::string path = ManifestPath(dir);
  std::string payload;
  if (!ReadFramed(path, kManifestMagic, &payload)) {
    return false;
  }
  ByteReader r(payload);
  manifest->fingerprint = r.U64();
  manifest->trace_mode = r.U8();
  manifest->num_regions = r.U32();
  manifest->sharded = r.U8() != 0;
  manifest->shards_per_region = r.U32();
  manifest->entries.resize(r.U64());
  for (ManifestEntry& e : manifest->entries) {
    e.shard = r.U32();
    e.day = r.I64();
    e.file = r.Str();
  }
  if (!r.AtEnd()) {
    Corrupt(path, "trailing bytes");
  }
  return true;
}

std::string CheckpointFileName(int64_t day, uint32_t shard) {
  char name[64];
  if (shard == kSerialShard) {
    std::snprintf(name, sizeof(name), "ckpt_day%" PRId64 ".bin", day);
  } else {
    std::snprintf(name, sizeof(name), "ckpt_day%" PRId64 "_r%u.bin", day, shard);
  }
  return name;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST.bin";
}

}  // namespace coldstart::checkpoint
