// Function population generation.
//
// Samples the joint distribution of (user, runtime, trigger, config, rate class,
// execution profile, package sizes, burst personality) for every region, then wires
// workflow edges from popular root functions to workflow-triggered children. All the
// Fig. 8/9 proportion targets are properties of this sampler.
#ifndef COLDSTART_WORKLOAD_POPULATION_H_
#define COLDSTART_WORKLOAD_POPULATION_H_

#include <vector>

#include "workload/region_profile.h"

namespace coldstart::workload {

struct Population {
  std::vector<FunctionSpec> functions;  // Dense ids across all regions.
  uint32_t num_users = 0;               // Dense user ids across all regions.

  // Function id ranges per region: [region_begin[r], region_begin[r+1]).
  std::vector<uint32_t> region_begin;
};

Population GeneratePopulation(const std::vector<RegionProfile>& profiles, uint64_t seed);

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_POPULATION_H_
