#include "workload/function_model.h"

#include "common/check.h"

namespace coldstart::workload {

// Calibration notes (targets from Figures 15 and 17, Region 2):
//  * Custom and http have median total cold starts > 10 s, dominated by pod allocation:
//    Custom is not pool-backed (from-scratch creation every time), http pays an HTTP
//    server start on top of allocation.
//  * Node.js is scheduling-dominated and third slowest overall -> high sched_factor.
//  * Go1.x has much higher code+dependency deployment than scheduling: large static
//    binaries (code_size) and vendored modules (dep size/probability) with a high
//    dep_factor.
//  * Java ships fat jars (large code), PHP/Python are small scripts.
const RuntimeTraits& TraitsOf(trace::Runtime r) {
  static const RuntimeTraits kTraits[trace::kNumRuntimes] = {
      // pool  alloc_extra sched  code  dep   code_kb sigma dep_p  dep_kb  sigma
      /* C# */
      {true, 0.0, 1.2, 1.3, 1.0, 900, 0.8, 0.35, 4096, 0.9},
      /* Custom */
      {false, 0.0, 1.0, 1.1, 0.8, 2048, 1.1, 0.15, 6144, 0.8},
      /* Go1.x */
      {true, 0.0, 0.45, 2.6, 3.2, 4096, 0.9, 0.80, 16384, 0.9},
      /* Java */
      {true, 0.0, 1.35, 1.9, 1.5, 3072, 0.9, 0.55, 8192, 0.9},
      /* Node.js */
      {true, 0.0, 3.1, 0.9, 1.1, 512, 0.9, 0.55, 4096, 1.0},
      /* PHP7.3 */
      {true, 0.0, 1.1, 0.8, 0.9, 256, 0.8, 0.30, 2048, 0.8},
      /* Python2 */
      {true, 0.0, 1.15, 0.8, 1.0, 256, 0.9, 0.40, 3072, 0.9},
      /* Python3 */
      {true, 0.0, 1.0, 0.8, 1.0, 320, 0.9, 0.40, 3072, 0.9},
      /* http */
      {true, 9.5, 1.05, 1.0, 1.0, 768, 0.9, 0.30, 3072, 0.9},
      /* unknown */
      {true, 0.0, 1.0, 1.0, 1.0, 512, 1.0, 0.35, 3072, 1.0},
  };
  const int idx = static_cast<int>(r);
  COLDSTART_CHECK_GE(idx, 0);
  COLDSTART_CHECK_LT(idx, trace::kNumRuntimes);
  return kTraits[idx];
}

}  // namespace coldstart::workload
