// Trace calendar: weekends and the week-long holiday.
//
// The paper's trace is 31 days containing a major week-long holiday: day 13 is the last
// working day before it, days 14-23 are the holiday, day 24 the first working day after
// (§3.2). Day 0 of our trace is a Monday so that weekly periodicity lines up with
// weekday/weekend effects.
#ifndef COLDSTART_WORKLOAD_CALENDAR_H_
#define COLDSTART_WORKLOAD_CALENDAR_H_

#include <cstdint>

#include "common/sim_time.h"

namespace coldstart::workload {

class Calendar {
 public:
  struct Options {
    int trace_days = 31;
    int holiday_first_day = 14;  // Inclusive.
    int holiday_last_day = 23;   // Inclusive.
    // Day-of-week of trace day 0 (0 = Monday). The default makes day 0 a Tuesday so
    // that both day 13 (last pre-holiday workday) and day 24 (first post-holiday
    // workday) land on weekdays, matching the paper's calendar.
    int first_weekday = 1;
  };

  Calendar() : Calendar(Options{}) {}
  explicit Calendar(const Options& opts) : opts_(opts) {}

  int trace_days() const { return opts_.trace_days; }
  SimTime horizon() const { return static_cast<SimTime>(opts_.trace_days) * kDay; }

  bool IsHoliday(int64_t day) const {
    return day >= opts_.holiday_first_day && day <= opts_.holiday_last_day;
  }
  bool IsWeekend(int64_t day) const {
    const int dow = static_cast<int>((day + opts_.first_weekday) % 7);
    return dow == 5 || dow == 6;
  }
  bool IsWorkday(int64_t day) const { return !IsHoliday(day) && !IsWeekend(day); }

  int last_workday_before_holiday() const { return opts_.holiday_first_day - 1; }
  int first_workday_after_holiday() const { return opts_.holiday_last_day + 1; }

  // Days elapsed since the holiday ended (0 on the first post-holiday day); negative
  // during or before the holiday.
  int64_t DaysSinceHolidayEnd(int64_t day) const { return day - opts_.holiday_last_day - 1; }

 private:
  Options opts_;
};

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_CALENDAR_H_
