// Per-region calibration: workload mix + data-center architecture.
//
// A RegionProfile is everything that distinguishes R1..R5 in the paper: scale, function
// mix (runtime x trigger x config), popularity distribution, diurnal phase, holiday
// response, and the cold-start architecture (component base latencies and congestion
// sensitivities). DESIGN.md §4 lists the figure-level targets each constant serves;
// volumes are scaled (~10^-4 of production) as documented in EXPERIMENTS.md.
#ifndef COLDSTART_WORKLOAD_REGION_PROFILE_H_
#define COLDSTART_WORKLOAD_REGION_PROFILE_H_

#include <array>
#include <utility>
#include <vector>

#include "trace/types.h"
#include "workload/diurnal.h"
#include "workload/function_model.h"

namespace coldstart::workload {

// Index order for trigger-assignment rows (condensed choice set; "other" choices are
// expanded to concrete raw triggers during population generation).
enum class TriggerChoice : int {
  kApigS = 0,
  kTimer,
  kObs,
  kWorkflowS,
  kOtherAsync,
  kOtherSync,
};
inline constexpr int kNumTriggerChoices = 6;

// Component-latency model of one region's data center (§4.2): base costs plus
// sensitivities to instantaneous load. These coefficients are the "architectural
// differences between data centers" axis; the same workload run against different
// architectures yields different dominant components, which is exactly the Fig. 11
// cross-region contrast.
struct ColdStartArchitecture {
  // Pod allocation: staged pool search. Stage 1 hits the local cluster pool; each
  // expansion multiplies the median latency by stage_growth. From-scratch creation
  // (pool exhausted) costs scratch_median_s; Custom-image pods, which have no reserved
  // pool at all and must pull their container image, cost custom_scratch_median_s
  // (§4.4: Custom/http medians exceed 10 s).
  double alloc_stage1_median_s = 0.01;
  double alloc_sigma = 0.6;             // LogNormal sigma for every allocation stage.
  double alloc_stage_growth = 6.0;
  double alloc_scratch_median_s = 2.0;
  double alloc_scratch_sigma = 0.5;
  double custom_scratch_median_s = 10.0;
  double alloc_congestion_coeff = 0.0;  // Seconds added per concurrent cold start.

  // Code deployment: download + extract at code_bandwidth, inflated by registry
  // congestion (fraction per concurrent deploy).
  double code_base_s = 0.03;
  double code_bandwidth_kb_per_s = 30000;
  double code_congestion_coeff = 0.05;

  // Dependency deployment (zero-cost for functions without layers).
  double dep_base_s = 0.1;
  double dep_bandwidth_kb_per_s = 9000;
  double dep_congestion_coeff = 0.1;

  // Scheduling/routing overhead: base + per-queued-cold-start queueing term.
  double sched_base_s = 0.2;
  double sched_sigma = 0.45;
  double sched_queue_coeff_s = 0.01;

  // Rate coupling: multiplicative slowdown per unit of the region's decayed
  // cold-start window (~cold starts in the last 5 minutes). These coefficients pick
  // which components track regional demand, i.e. which cells of the Figure 12
  // correlation matrices light up for this region.
  double sched_rate_coeff = 0.0;
  double dep_rate_coeff = 0.0;
  double alloc_rate_coeff = 0.0;
  double code_rate_coeff = 0.0;
  // The window saturates (diminishing marginal slowdown) so burst storms cannot run
  // away through the congestion -> overlap -> congestion feedback loop.
  double rate_saturation = 120.0;

  // Multiplier applied to dependency deployment on the first post-holiday workdays
  // (cold registry caches + first-time redeployments, Fig. 11 day-24 spike).
  double post_holiday_dep_penalty = 1.6;
};

// Which cold-start model prices this region's cold starts. kYuanRong is the
// paper-calibrated default (platform/coldstart_pipeline.h); the *Like presets are
// parameterized from published cold/warm latency benchmarks of the respective
// public clouds (platform/provider_models.h). Selection is part of the scenario
// fingerprint: changing the model invalidates the trace cache.
enum class ColdStartModelKind : uint8_t {
  kYuanRong = 0,
  kAwsLike = 1,
  kGcpLike = 2,
  kAzureLike = 3,
};

struct ColdStartModelConfig {
  ColdStartModelKind kind = ColdStartModelKind::kYuanRong;

  // Snapshot/restore decorator (arXiv 2105.13894): collapse deploy-code and
  // deploy-dep into one restore term, paying `snapshot_memory_mb` of resident
  // memory per pod (the cost ledger integrates it over pod lifetimes).
  bool snapshot_restore = false;
  double restore_base_s = 0.15;             // Fixed restore orchestration cost.
  double restore_bandwidth_mb_per_s = 800;  // Snapshot page-in bandwidth.
  double restore_sigma = 0.25;              // LogNormal sigma on the restore term.
  double snapshot_memory_mb = 128.0;        // Per-pod resident snapshot surcharge.
};

struct RegionProfile {
  trace::RegionId region = 0;
  int num_functions = 500;

  // Users: fraction owning exactly one function (Fig. 4a: 60-90% by region); the rest
  // follow a geometric tail capped at max_functions_per_user.
  double single_function_user_fraction = 0.75;
  int max_functions_per_user = 60;

  // Popularity (requests/day) of modulated-Poisson functions: bounded Pareto.
  double popularity_alpha = 0.8;
  double popularity_min_per_day = 0.5;
  double popularity_max_per_day = 2880;  // ~2 requests/minute sustained.
  // Fraction of OBS-triggered functions that are *hot* feeds: object streams busy all
  // day (rate above the keep-alive threshold), holding standing pod fleets (Fig. 8d's
  // OBS pod share). The rest are sporadic processors at natural popularity rates.
  double obs_hot_fraction = 0.3;
  // Same split for http services: hot ones serve steady traffic (warm pods), the rest
  // are sporadic internal endpoints. There is deliberately no mass in between -- a
  // mid-rate http service would cold-start its 10s server on every request, which the
  // paper's per-runtime cold-start counts (Fig. 8e) rule out.
  double http_hot_fraction = 0.25;

  // Execution profile (Fig. 3b): per-function median ~ LogNormal around
  // exec_median_s with spread exec_median_sigma; per-request sigma below.
  double exec_median_s = 0.05;
  double exec_median_sigma = 1.2;
  double exec_request_sigma = 0.8;
  // CPU usage (Fig. 3c), cores; clamped to the function's config at request time.
  double cpu_median_cores = 0.2;
  double cpu_sigma = 0.7;

  DiurnalParams diurnal;

  std::array<double, trace::kNumRuntimes> runtime_weights{};
  std::array<std::array<double, kNumTriggerChoices>, trace::kNumRuntimes>
      trigger_given_runtime{};
  std::array<double, trace::kNumResourceConfigs> config_weights{};

  // Timer period mix: (period, weight). Periods <= 60 s keep pods warm forever; periods
  // just above 60 s produce one cold start per fire (the Fig. 14 diagonal).
  std::vector<std::pair<SimDuration, double>> timer_period_weights;

  // Burstiness personalities (Fig. 6 peak-to-trough spread).
  double bursty_function_fraction = 0.35;
  double burst_amp_median = 4.0;
  double burst_amp_sigma = 1.1;  // LogNormal sigma; tail reaches >100x amplitudes.
  double diurnal_exponent_min = 0.4;
  double diurnal_exponent_max = 2.2;

  // Fraction of (Java, this region) functions that switch from flat to diurnal traffic
  // mid-trace -- reproduces the Fig. 8b day-18 Java regime change in R2.
  double java_regime_change_fraction = 0.0;
  int java_regime_change_day = 18;

  // Resource pools: base pool size per config and background refill rate.
  std::array<int, trace::kNumResourceConfigs> pool_base_size{};
  double pool_refill_per_min = 4.0;

  ColdStartArchitecture arch;

  // Cold-start model selection (provider presets, snapshot restore). The default
  // reproduces the YuanRong pipeline bit for bit.
  ColdStartModelConfig model;

  // Round-trip latency to the closest peer region (cross-region policy experiments).
  double inter_region_rtt_ms = 40.0;

  // Fraction of functions pinned to a single cluster (no intra-region balancing).
  double single_cluster_fraction = 0.2;
};

// The five calibrated regions, index i = R(i+1).
const std::vector<RegionProfile>& DefaultRegionProfiles();

// Returns a copy with function counts and pool sizes scaled by `scale` (0 < scale <= 4);
// used by tests and the quickstart example to run small scenarios.
RegionProfile ScaledProfile(const RegionProfile& profile, double scale);

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_REGION_PROFILE_H_
