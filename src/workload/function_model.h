// Per-function workload specification and per-runtime traits.
//
// A FunctionSpec carries everything the arrival generator and the platform need to
// know about one deployed function: identity, trigger/runtime/config, arrival process
// parameters, execution profile, package sizes, and workflow fan-out edges.
#ifndef COLDSTART_WORKLOAD_FUNCTION_MODEL_H_
#define COLDSTART_WORKLOAD_FUNCTION_MODEL_H_

#include <vector>

#include "common/sim_time.h"
#include "trace/types.h"

namespace coldstart::workload {

enum class ArrivalKind : uint8_t {
  kModulatedPoisson,  // Diurnal/holiday-modulated Poisson with optional bursts.
  kTimer,             // Strictly periodic cron-style firing; unaffected by calendar.
  kWorkflowChild,     // No exogenous arrivals; invoked by a parent function.
};

struct WorkflowEdge {
  trace::FunctionId child = 0;
  double probability = 1.0;  // Chance that one parent request triggers the child.
};

struct FunctionSpec {
  trace::FunctionId id = 0;
  trace::UserId user = 0;
  trace::RegionId region = 0;
  trace::Runtime runtime = trace::Runtime::kPython3;
  trace::Trigger primary_trigger = trace::Trigger::kTimer;
  uint16_t trigger_mask = 0;
  trace::ResourceConfig config = trace::ResourceConfig::k300m128;

  ArrivalKind kind = ArrivalKind::kModulatedPoisson;
  double base_rate_per_day = 1.0;     // Nominal requests/day (Poisson kind).
  SimDuration timer_period = kHour;   // Timer kind.
  // Steady streams (HTTP services behind load balancers, object pipelines) arrive at
  // jittered-regular intervals rather than memorylessly: a Poisson process at 1.5/min
  // would still leave >60s gaps ~10% of the time and spuriously kill warm pods.
  bool regular_arrivals = false;

  // Per-function periodicity personality: the region day-shape is raised to this
  // exponent, so 0 = flat (no diurnal), 1 = region profile, >1 = sharper peaks.
  double diurnal_exponent = 1.0;
  // Traffic is flat before this time and diurnal after it (0 = diurnal from the start).
  // Models workload regime changes such as R2's Java functions at day 18 (Fig. 8b).
  SimTime diurnal_onset = 0;
  // ON-OFF burst modulation (drives the high peak-to-trough tail of Fig. 6).
  double burst_amplitude = 1.0;       // Rate multiplier while bursting; 1 = no bursts.
  double burst_prob_per_hour = 0.0;   // P(burst starts in a given hour).
  double burst_mean_hours = 2.0;

  // Execution profile: per-request exec time ~ LogNormal(median, sigma).
  double exec_median_us = 50e3;
  double exec_sigma = 1.0;
  double cpu_mean_cores = 0.15;       // Mean per-request CPU usage.
  double mem_mean_kb = 64e3;

  // Package sizes drive the deploy-code / deploy-dependency components.
  uint32_t code_size_kb = 512;
  uint32_t dep_size_kb = 0;           // 0 = no dependency layers.

  int pod_concurrency = 1;            // Requests one pod serves concurrently.
  bool single_cluster = false;        // Some functions are pinned to one cluster (§2.1).
  trace::ClusterId home_cluster = 0;

  std::vector<WorkflowEdge> children;
};

// Static per-runtime behaviour (identical across regions; regions differ via their
// architecture profiles). Calibrated against Figures 15 and 17.
struct RuntimeTraits {
  // Pod allocation: Custom images have no reserved pool and are built from scratch;
  // http functions additionally start an HTTP server inside the pod (§4.4).
  bool pool_backed = true;
  double alloc_extra_s = 0.0;       // Added to pod allocation (http server start).
  double sched_factor = 1.0;        // Node.js placement is scheduling-heavy.
  double code_factor = 1.0;         // Per-runtime code deploy multiplier.
  double dep_factor = 1.0;          // Per-runtime dependency deploy multiplier (Go high).
  double code_size_median_kb = 512;
  double code_size_sigma = 1.0;
  double dep_probability = 0.4;     // Chance a function ships dependency layers.
  double dep_size_median_kb = 4096;
  double dep_size_sigma = 1.0;
};

const RuntimeTraits& TraitsOf(trace::Runtime r);

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_FUNCTION_MODEL_H_
