// Pluggable workload sources.
//
// A WorkloadSource produces the exogenous arrival stream an Experiment drives its
// platform with. Two families exist: the synthetic modulated-Poisson generator
// (SyntheticSource, wrapping the day-cursor machinery in arrivals.h) and trace
// replay (ReplaySource in replay_source.h), which streams arrivals recorded by an
// earlier run or by an external platform. The Experiment runner is
// source-agnostic: any stream that is sorted, in-horizon, and addressed to valid
// population function ids shards by region and merges exactly like the synthetic
// one.
//
// Arrivals are delivered through the pull-based, day-chunked ArrivalStream
// (arrival_stream.h): OpenStream is the one generation primitive and the eager
// Arrivals() vector is a compatibility shim defined as the concatenation of every
// chunk. Peak arrival memory of a run is therefore O(busiest day), not O(days) —
// see docs/architecture.md for the memory model and docs/determinism.md for the
// contracts implementations must keep.
#ifndef COLDSTART_WORKLOAD_WORKLOAD_SOURCE_H_
#define COLDSTART_WORKLOAD_WORKLOAD_SOURCE_H_

#include <memory>
#include <optional>
#include <vector>

#include "workload/arrival_stream.h"
#include "workload/arrivals.h"
#include "workload/calendar.h"
#include "workload/function_cells.h"
#include "workload/population.h"

namespace coldstart::workload {

class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  // Short human-readable tag ("synthetic", "replay:arrivals", ...).
  virtual const char* name() const = 0;

  // Stable hash of everything that shapes the arrival stream *beyond*
  // (pop, profiles, calendar, seed). Folded into ScenarioConfig::Fingerprint() so
  // the trace cache can never serve a synthetic run for a replay run (or one
  // replay file for another).
  virtual uint64_t Fingerprint() const = 0;

  // Opens a day-chunked stream of all exogenous arrivals in
  // [0, calendar.horizon()): ceil(horizon / kDay) chunks, each sorted by
  // (time, function) with every function id < pop.functions.size(). With `region`
  // set, the stream yields only that region's functions — the order-preserving
  // per-region partition the sharded runner consumes, one stream per shard. With
  // `cell_slice` additionally set, only functions whose capacity cell falls in
  // the slice are yielded — the sub-region refinement of the same partition.
  //
  // Determinism contract (docs/determinism.md): the chunk sequence is a pure
  // function of (source state, pop, profiles, calendar, seed, region,
  // cell_slice); reopening yields bit-identical chunks, and the filtered streams
  // partition the unfiltered one. `pop` (and any recorded buffer inside the
  // source) is borrowed: both must outlive the returned stream.
  virtual std::unique_ptr<ArrivalStream> OpenStream(
      const Population& pop, const std::vector<RegionProfile>& profiles,
      const Calendar& calendar, uint64_t seed,
      std::optional<trace::RegionId> region = std::nullopt,
      std::optional<CellSlice> cell_slice = std::nullopt) const = 0;

  // Eager compatibility shim: the concatenation of every chunk of
  // OpenStream(pop, profiles, calendar, seed) — all arrivals sorted by
  // (time, function). Materializes ~16 bytes/arrival; prefer OpenStream for
  // anything long-horizon.
  std::vector<ArrivalEvent> Arrivals(const Population& pop,
                                     const std::vector<RegionProfile>& profiles,
                                     const Calendar& calendar, uint64_t seed) const;
};

// The built-in generator (modulated Poisson + timers) behind the interface.
// Stateless; OpenStream returns a SyntheticArrivalStream whose per-function
// cursors fork their RNG substreams by function id (arrivals.h).
class SyntheticSource final : public WorkloadSource {
 public:
  const char* name() const override { return "synthetic"; }
  uint64_t Fingerprint() const override;
  std::unique_ptr<ArrivalStream> OpenStream(
      const Population& pop, const std::vector<RegionProfile>& profiles,
      const Calendar& calendar, uint64_t seed,
      std::optional<trace::RegionId> region = std::nullopt,
      std::optional<CellSlice> cell_slice = std::nullopt) const override;
};

// Shared immutable instance for configs that do not carry their own source.
const WorkloadSource& DefaultSyntheticSource();

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_WORKLOAD_SOURCE_H_
