// Pluggable workload sources.
//
// A WorkloadSource produces the exogenous arrival stream an Experiment drives its
// platform with. Two families exist: the synthetic modulated-Poisson generator
// (SyntheticSource, wrapping GenerateArrivals) and trace replay (ReplaySource in
// replay_source.h), which streams arrivals recorded by an earlier run or by an
// external platform. The Experiment runner is source-agnostic: any stream that is
// sorted, in-horizon, and addressed to valid population function ids shards by
// region and merges exactly like the synthetic one.
#ifndef COLDSTART_WORKLOAD_WORKLOAD_SOURCE_H_
#define COLDSTART_WORKLOAD_WORKLOAD_SOURCE_H_

#include <vector>

#include "workload/arrivals.h"
#include "workload/calendar.h"
#include "workload/population.h"

namespace coldstart::workload {

class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  // Short human-readable tag ("synthetic", "replay:arrivals", ...).
  virtual const char* name() const = 0;

  // Stable hash of everything that shapes the arrival stream *beyond*
  // (pop, profiles, calendar, seed). Folded into ScenarioConfig::Fingerprint() so
  // the trace cache can never serve a synthetic run for a replay run (or one
  // replay file for another).
  virtual uint64_t Fingerprint() const = 0;

  // All exogenous arrivals in [0, calendar.horizon()), sorted by (time, function),
  // every function id < pop.functions.size(). Deterministic in the arguments.
  virtual std::vector<ArrivalEvent> Arrivals(
      const Population& pop, const std::vector<RegionProfile>& profiles,
      const Calendar& calendar, uint64_t seed) const = 0;
};

// The built-in generator (modulated Poisson + timers) behind the interface.
class SyntheticSource final : public WorkloadSource {
 public:
  const char* name() const override { return "synthetic"; }
  uint64_t Fingerprint() const override;
  std::vector<ArrivalEvent> Arrivals(const Population& pop,
                                     const std::vector<RegionProfile>& profiles,
                                     const Calendar& calendar,
                                     uint64_t seed) const override;
};

// Shared immutable instance for configs that do not carry their own source.
const WorkloadSource& DefaultSyntheticSource();

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_WORKLOAD_SOURCE_H_
