#include "workload/function_cells.h"

#include "common/check.h"
#include "common/rng.h"

namespace coldstart::workload {

namespace {

// Path-halving find over a parent array.
uint32_t Find(std::vector<uint32_t>& parent, uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

// Union by smaller root id: the representative of a component is always its
// smallest member, which makes the component hash independent of edge order.
void Union(std::vector<uint32_t>& parent, uint32_t a, uint32_t b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a == b) {
    return;
  }
  if (b < a) {
    std::swap(a, b);
  }
  parent[b] = a;
}

}  // namespace

std::vector<uint32_t> ComputeFunctionCells(const Population& pop,
                                           uint32_t cells_per_region) {
  COLDSTART_CHECK_GE(cells_per_region, 1u);
  const uint32_t n = static_cast<uint32_t>(pop.functions.size());
  std::vector<uint32_t> parent(n);
  for (uint32_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  for (const FunctionSpec& spec : pop.functions) {
    for (const WorkflowEdge& edge : spec.children) {
      Union(parent, static_cast<uint32_t>(spec.id),
            static_cast<uint32_t>(edge.child));
    }
  }
  std::vector<uint32_t> cells(n);
  const uint64_t salt = HashString("function-cell");
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t rep = Find(parent, i);
    cells[i] = static_cast<uint32_t>(MixHash(salt, rep) % cells_per_region);
  }
  return cells;
}

}  // namespace coldstart::workload
