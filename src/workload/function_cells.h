// Capacity-cell assignment: the function -> cell map behind sub-region sharding.
//
// A cell is the unit a region's capacity decomposes into when
// ScenarioConfig::cells_per_region > 1: each cell owns its own resource pools,
// load state, and RNG stream inside the platform, so disjoint cell groups of one
// region can be simulated on different threads and merged bit-identically
// (docs/determinism.md). Functions map to cells by a stable hash of their
// workflow component: a union-find over the population's WorkflowEdge graph
// groups every parent with its (transitive) children, and the component hashes
// by its smallest function id. Keeping a workflow inside one cell is what lets a
// sub-region shard run its cells without ever invoking a function owned by
// another shard — runtime fan-out never crosses the cell boundary.
#ifndef COLDSTART_WORKLOAD_FUNCTION_CELLS_H_
#define COLDSTART_WORKLOAD_FUNCTION_CELLS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/types.h"
#include "workload/population.h"

namespace coldstart::workload {

// Cell index of every function, indexed by dense function id; each value is in
// [0, cells_per_region). Pure function of (pop, cells_per_region): two
// functions in one workflow component always land in the same cell, and the
// assignment never depends on region (a component hashes the same wherever its
// region's id range happens to sit).
std::vector<uint32_t> ComputeFunctionCells(const Population& pop,
                                           uint32_t cells_per_region);

// The half-open cell range [begin, end) one sub-region shard simulates, plus
// the shared function -> cell map. The map is shared_ptr-owned so filtered
// arrival streams can hold the slice past the planner scope that built it.
struct CellSlice {
  std::shared_ptr<const std::vector<uint32_t>> cells;
  uint32_t begin = 0;
  uint32_t end = 0;

  bool Contains(trace::FunctionId fid) const {
    const uint32_t c = (*cells)[fid];
    return begin <= c && c < end;
  }
};

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_FUNCTION_CELLS_H_
