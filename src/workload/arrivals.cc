#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/distributions.h"

namespace coldstart::workload {

namespace {

// Hour-resolution inhomogeneous Poisson: the diurnal/burst envelope changes on hour
// scales, so sampling a Poisson count per hour and spreading points uniformly inside
// the hour loses nothing the analyses can see (everything downstream is per-minute or
// coarser with smoothing).
void GeneratePoissonArrivals(const FunctionSpec& spec, const DiurnalProfile& profile,
                             const Calendar& calendar, Rng& rng,
                             std::vector<SimTime>& out) {
  const int64_t hours = calendar.horizon() / kHour;
  bool bursting = false;
  double burst_hours_left = 0;
  double regular_phase_us = rng.NextDouble() * 1e6;  // Phase carry-over across hours.
  for (int64_t h = 0; h < hours; ++h) {
    const SimTime hour_start = h * kHour;
    const int64_t day = h / 24;
    const double hour_mid = static_cast<double>(h % 24) + 0.5;

    // Burst state machine (hour steps).
    if (spec.burst_amplitude > 1.0) {
      if (bursting) {
        burst_hours_left -= 1.0;
        if (burst_hours_left <= 0) {
          bursting = false;
        }
      } else if (rng.NextBool(spec.burst_prob_per_hour)) {
        bursting = true;
        burst_hours_left = std::max(0.5, rng.NextExponential(1.0 / spec.burst_mean_hours));
      }
    }

    const double gamma = hour_start < spec.diurnal_onset ? 0.0 : spec.diurnal_exponent;
    const double shape = std::pow(profile.DayShape(hour_mid), gamma);
    // Steady services (regular_arrivals) also damp the weekly/holiday level by their
    // personality exponent: a load balancer's health traffic does not halve on
    // weekends even when user traffic does.
    const double level = spec.regular_arrivals
                             ? std::pow(profile.DayLevel(day), gamma)
                             : profile.DayLevel(day);
    const double burst = bursting ? spec.burst_amplitude : 1.0;
    const double lambda = spec.base_rate_per_day / 24.0 * shape * level * burst;

    if (spec.regular_arrivals) {
      // Jittered-regular spacing at the hour's rate; gaps cluster near 1/lambda.
      if (lambda > 1e-9) {
        const double step_us = static_cast<double>(kHour) / lambda;
        double t = regular_phase_us;
        while (t < static_cast<double>(kHour)) {
          out.push_back(hour_start + static_cast<SimTime>(t));
          t += step_us * rng.Uniform(0.8, 1.2);
        }
        regular_phase_us = t - static_cast<double>(kHour);
      }
      continue;
    }
    const int n = stats::SamplePoisson(rng, lambda);
    for (int i = 0; i < n; ++i) {
      out.push_back(hour_start + static_cast<SimTime>(rng.NextDouble() * kHour));
    }
  }
}

void GenerateTimerArrivals(const FunctionSpec& spec, const Calendar& calendar, Rng& rng,
                           std::vector<SimTime>& out) {
  COLDSTART_CHECK_GT(spec.timer_period, 0);
  // Random phase so the fleet's timers do not fire in lockstep.
  SimTime t = static_cast<SimTime>(rng.NextDouble() * static_cast<double>(spec.timer_period));
  const SimTime horizon = calendar.horizon();
  while (t < horizon) {
    out.push_back(t);
    t += spec.timer_period;
  }
}

}  // namespace

std::vector<SimTime> GenerateFunctionArrivals(const FunctionSpec& spec,
                                              const DiurnalProfile& profile,
                                              const Calendar& calendar, Rng rng) {
  std::vector<SimTime> out;
  switch (spec.kind) {
    case ArrivalKind::kModulatedPoisson:
      GeneratePoissonArrivals(spec, profile, calendar, rng, out);
      break;
    case ArrivalKind::kTimer:
      GenerateTimerArrivals(spec, calendar, rng, out);
      break;
    case ArrivalKind::kWorkflowChild:
      break;  // Invoked by parents at runtime.
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ArrivalEvent> GenerateArrivals(const Population& pop,
                                           const std::vector<RegionProfile>& profiles,
                                           const Calendar& calendar, uint64_t seed) {
  Rng root(MixHash(seed, HashString("arrivals")));

  // One diurnal profile per region, built once.
  std::vector<DiurnalProfile> diurnals;
  diurnals.reserve(profiles.size());
  for (const auto& p : profiles) {
    diurnals.emplace_back(p.diurnal, calendar);
  }

  std::vector<ArrivalEvent> events;
  for (const auto& spec : pop.functions) {
    COLDSTART_CHECK_LT(spec.region, diurnals.size());
    const std::vector<SimTime> times = GenerateFunctionArrivals(
        spec, diurnals[spec.region], calendar, root.ForkStream(spec.id));
    for (const SimTime t : times) {
      events.push_back(ArrivalEvent{t, spec.id});
    }
  }
  std::sort(events.begin(), events.end(), [](const ArrivalEvent& a, const ArrivalEvent& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.function < b.function;
  });
  return events;
}

}  // namespace coldstart::workload
