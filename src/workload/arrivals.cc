#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "stats/distributions.h"

namespace coldstart::workload {

FunctionArrivalCursor::FunctionArrivalCursor(const FunctionSpec& spec,
                                             const DiurnalProfile& profile,
                                             const Calendar& calendar, Rng rng)
    : spec_(&spec), profile_(&profile), calendar_(calendar), rng_(std::move(rng)) {
  // The construction-time draws mirror the whole-horizon generator's preamble
  // exactly; the rest of the stream depends only on per-hour draws, which EmitDay
  // performs in hour order.
  switch (spec_->kind) {
    case ArrivalKind::kModulatedPoisson:
      regular_phase_us_ = rng_.NextDouble() * 1e6;  // Phase carry-over across hours.
      break;
    case ArrivalKind::kTimer:
      COLDSTART_CHECK_GT(spec_->timer_period, 0);
      // Random phase so the fleet's timers do not fire in lockstep.
      timer_next_ = static_cast<SimTime>(rng_.NextDouble() *
                                         static_cast<double>(spec_->timer_period));
      break;
    case ArrivalKind::kWorkflowChild:
      break;  // Invoked by parents at runtime.
  }
}

// Hour-resolution inhomogeneous Poisson: the diurnal/burst envelope changes on hour
// scales, so sampling a Poisson count per hour and spreading points uniformly inside
// the hour loses nothing the analyses can see (everything downstream is per-minute or
// coarser with smoothing).
void FunctionArrivalCursor::EmitPoissonHour(int64_t h, std::vector<SimTime>& out) {
  const FunctionSpec& spec = *spec_;
  const SimTime hour_start = h * kHour;
  const int64_t day = h / 24;
  const double hour_mid = static_cast<double>(h % 24) + 0.5;

  // Burst state machine (hour steps).
  if (spec.burst_amplitude > 1.0) {
    if (bursting_) {
      burst_hours_left_ -= 1.0;
      if (burst_hours_left_ <= 0) {
        bursting_ = false;
      }
    } else if (rng_.NextBool(spec.burst_prob_per_hour)) {
      bursting_ = true;
      burst_hours_left_ =
          std::max(0.5, rng_.NextExponential(1.0 / spec.burst_mean_hours));
    }
  }

  const double gamma = hour_start < spec.diurnal_onset ? 0.0 : spec.diurnal_exponent;
  const double shape = std::pow(profile_->DayShape(hour_mid), gamma);
  // Steady services (regular_arrivals) also damp the weekly/holiday level by their
  // personality exponent: a load balancer's health traffic does not halve on
  // weekends even when user traffic does.
  const double level = spec.regular_arrivals
                           ? std::pow(profile_->DayLevel(day), gamma)
                           : profile_->DayLevel(day);
  const double burst = bursting_ ? spec.burst_amplitude : 1.0;
  const double lambda = spec.base_rate_per_day / 24.0 * shape * level * burst;

  if (spec.regular_arrivals) {
    // Jittered-regular spacing at the hour's rate; gaps cluster near 1/lambda.
    if (lambda > 1e-9) {
      const double step_us = static_cast<double>(kHour) / lambda;
      double t = regular_phase_us_;
      while (t < static_cast<double>(kHour)) {
        out.push_back(hour_start + static_cast<SimTime>(t));
        t += step_us * rng_.Uniform(0.8, 1.2);
      }
      regular_phase_us_ = t - static_cast<double>(kHour);
    }
    return;
  }
  const int n = stats::SamplePoisson(rng_, lambda);
  for (int i = 0; i < n; ++i) {
    out.push_back(hour_start + static_cast<SimTime>(rng_.NextDouble() * kHour));
  }
}

void FunctionArrivalCursor::EmitDay(int64_t day, std::vector<SimTime>& out) {
  COLDSTART_CHECK_EQ(day, next_day_);
  ++next_day_;
  switch (spec_->kind) {
    case ArrivalKind::kModulatedPoisson: {
      const int64_t hours = calendar_.horizon() / kHour;
      const int64_t begin = day * 24;
      const int64_t end = std::min<int64_t>(begin + 24, hours);
      for (int64_t h = begin; h < end; ++h) {
        EmitPoissonHour(h, out);
      }
      break;
    }
    case ArrivalKind::kTimer: {
      const SimTime day_end = std::min((day + 1) * kDay, calendar_.horizon());
      while (timer_next_ < day_end) {
        out.push_back(timer_next_);
        timer_next_ += spec_->timer_period;
      }
      break;
    }
    case ArrivalKind::kWorkflowChild:
      break;
  }
}

void FunctionArrivalCursor::SaveState(ByteWriter& w) const {
  uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  w.Raw(rng_state, sizeof(rng_state));
  w.I64(next_day_);
  w.U8(bursting_ ? 1 : 0);
  w.F64(burst_hours_left_);
  w.F64(regular_phase_us_);
  w.I64(timer_next_);
}

void FunctionArrivalCursor::RestoreState(ByteReader& r) {
  uint64_t rng_state[4];
  r.Raw(rng_state, sizeof(rng_state));
  rng_.RestoreState(rng_state);
  next_day_ = r.I64();
  bursting_ = r.U8() != 0;
  burst_hours_left_ = r.F64();
  regular_phase_us_ = r.F64();
  timer_next_ = r.I64();
}

SyntheticArrivalStream::SyntheticArrivalStream(
    const Population& pop, const std::vector<RegionProfile>& profiles,
    const Calendar& calendar, uint64_t seed, std::optional<trace::RegionId> region,
    std::optional<CellSlice> cell_slice)
    : calendar_(calendar), num_days_(NumDayChunks(calendar)) {
  // The arrivals root stream; each function forks its own substream off it by id,
  // so which functions this stream instantiates (the region/cell filter) cannot
  // perturb any other function's draws.
  const Rng root(MixHash(seed, HashString("arrivals")));

  // One diurnal profile per region, built once. All regions are built even under
  // a filter (cheap) so cursors can index by spec.region directly.
  diurnals_.reserve(profiles.size());
  for (const auto& p : profiles) {
    diurnals_.emplace_back(p.diurnal, calendar);
  }

  functions_.reserve(pop.functions.size());
  for (const auto& spec : pop.functions) {
    COLDSTART_CHECK_LT(spec.region, diurnals_.size());
    if (region.has_value() && spec.region != *region) {
      continue;
    }
    if (cell_slice.has_value() && !cell_slice->Contains(spec.id)) {
      continue;
    }
    functions_.push_back(FunctionEntry{
        spec.id, FunctionArrivalCursor(spec, diurnals_[spec.region], calendar_,
                                       root.ForkStream(spec.id))});
  }
}

bool SyntheticArrivalStream::NextChunk(ArrivalChunk* chunk) {
  if (next_day_ >= num_days_) {
    return false;
  }
  const int64_t day = next_day_++;
  chunk->day = day;
  chunk->events.clear();
  for (FunctionEntry& f : functions_) {
    scratch_.clear();
    f.cursor.EmitDay(day, scratch_);
    for (const SimTime t : scratch_) {
      chunk->events.push_back(ArrivalEvent{t, f.id});
    }
  }
  std::sort(chunk->events.begin(), chunk->events.end(), ArrivalOrderLess);
  return true;
}

bool SyntheticArrivalStream::SaveState(ByteWriter& w) const {
  w.I64(next_day_);
  w.U64(functions_.size());
  for (const FunctionEntry& f : functions_) {
    w.U64(f.id);
    f.cursor.SaveState(w);
  }
  return true;
}

bool SyntheticArrivalStream::RestoreState(ByteReader& r) {
  next_day_ = r.I64();
  COLDSTART_CHECK_LE(next_day_, num_days_);
  // The cursor set is construction-derived (same population, same filter), so it
  // must match the saved one entry for entry.
  COLDSTART_CHECK_EQ(r.U64(), functions_.size());
  for (FunctionEntry& f : functions_) {
    COLDSTART_CHECK_EQ(r.U64(), static_cast<uint64_t>(f.id));
    f.cursor.RestoreState(r);
  }
  return true;
}

std::vector<SimTime> GenerateFunctionArrivals(const FunctionSpec& spec,
                                              const DiurnalProfile& profile,
                                              const Calendar& calendar, Rng rng) {
  std::vector<SimTime> out;
  FunctionArrivalCursor cursor(spec, profile, calendar, std::move(rng));
  const int64_t days = NumDayChunks(calendar);
  for (int64_t d = 0; d < days; ++d) {
    cursor.EmitDay(d, out);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ArrivalEvent> GenerateArrivals(const Population& pop,
                                           const std::vector<RegionProfile>& profiles,
                                           const Calendar& calendar, uint64_t seed) {
  SyntheticArrivalStream stream(pop, profiles, calendar, seed);
  return DrainArrivalStream(stream);
}

}  // namespace coldstart::workload
