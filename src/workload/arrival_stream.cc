#include "workload/arrival_stream.h"

#include <utility>

#include "common/check.h"

namespace coldstart::workload {

MaterializedArrivalStream::MaterializedArrivalStream(std::vector<ArrivalEvent> events,
                                                     int64_t num_days)
    : events_(std::move(events)), num_days_(num_days) {
  COLDSTART_CHECK_GE(num_days_, 0);
}

bool MaterializedArrivalStream::NextChunk(ArrivalChunk* chunk) {
  if (next_day_ >= num_days_) {
    return false;
  }
  const int64_t day = next_day_++;
  chunk->day = day;
  chunk->events.clear();
  const SimTime day_end = (day + 1) * kDay;
  // events_ is sorted by time, so each day is one contiguous span.
  while (next_ < events_.size() && events_[next_].time < day_end) {
    COLDSTART_CHECK_GE(events_[next_].time, day * kDay);  // Sorted-input contract.
    chunk->events.push_back(events_[next_]);
    ++next_;
  }
  return true;
}

bool MaterializedArrivalStream::SaveState(ByteWriter& w) const {
  // events_/num_days_ are construction arguments; only the cursor moves.
  w.U64(next_);
  w.I64(next_day_);
  return true;
}

bool MaterializedArrivalStream::RestoreState(ByteReader& r) {
  next_ = r.U64();
  next_day_ = r.I64();
  COLDSTART_CHECK_LE(next_, events_.size());
  COLDSTART_CHECK_LE(next_day_, num_days_);
  return true;
}

std::vector<ArrivalEvent> DrainArrivalStream(ArrivalStream& stream) {
  std::vector<ArrivalEvent> out;
  ArrivalChunk chunk;
  while (stream.NextChunk(&chunk)) {
    out.insert(out.end(), chunk.events.begin(), chunk.events.end());
  }
  return out;
}

}  // namespace coldstart::workload
