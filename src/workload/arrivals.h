// Exogenous arrival generation.
//
// Produces every externally-triggered request (modulated Poisson + timers) for a
// population over the trace horizon. Workflow children are *not* generated here: they
// are invoked at runtime by the platform when their parents complete, which is what
// makes call-chain prediction (§5) a meaningful policy.
#ifndef COLDSTART_WORKLOAD_ARRIVALS_H_
#define COLDSTART_WORKLOAD_ARRIVALS_H_

#include <vector>

#include "common/rng.h"
#include "workload/calendar.h"
#include "workload/population.h"

namespace coldstart::workload {

struct ArrivalEvent {
  SimTime time = 0;
  trace::FunctionId function = 0;
};

// Generates all exogenous arrivals in [0, calendar.horizon()), sorted by time.
// Deterministic in (pop, profiles, calendar, seed).
std::vector<ArrivalEvent> GenerateArrivals(const Population& pop,
                                           const std::vector<RegionProfile>& profiles,
                                           const Calendar& calendar, uint64_t seed);

// Arrivals for a single function (exposed for tests and workload inspection tools).
std::vector<SimTime> GenerateFunctionArrivals(const FunctionSpec& spec,
                                              const DiurnalProfile& profile,
                                              const Calendar& calendar, Rng rng);

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_ARRIVALS_H_
