// Exogenous arrival generation.
//
// Produces every externally-triggered request (modulated Poisson + timers) for a
// population over the trace horizon. Workflow children are *not* generated here: they
// are invoked at runtime by the platform when their parents complete, which is what
// makes call-chain prediction (§5) a meaningful policy.
//
// Generation is day-incremental: FunctionArrivalCursor walks one function's arrival
// process a day at a time carrying the generator state (RNG position, burst state
// machine, phase) across the boundary, and SyntheticArrivalStream merges a
// population's cursors into day-batched ArrivalChunks. The eager helpers below are
// thin shims over the cursors — both paths draw the identical RNG sequence, so
// chunked and materialized generation are bit-identical (pinned by workload_test).
#ifndef COLDSTART_WORKLOAD_ARRIVALS_H_
#define COLDSTART_WORKLOAD_ARRIVALS_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "workload/arrival_stream.h"
#include "workload/calendar.h"
#include "workload/diurnal.h"
#include "workload/function_cells.h"
#include "workload/population.h"

namespace coldstart::workload {

// Number of day chunks covering the calendar's horizon (arrival_stream.h).
inline int64_t NumDayChunks(const Calendar& calendar) {
  return NumDayChunks(calendar.horizon());
}

// One function's arrival process, advanced a day at a time.
//
// The cursor owns exactly the state the whole-horizon generator threads through
// its hour loop — the RNG, the burst state machine, the jittered-regular phase,
// and the next timer tick — so emitting days 0..N-1 in order performs the same
// draws in the same order as generating the full horizon at once. Seeding is
// per-function (Rng::ForkStream(spec.id) off the arrivals root stream), which is
// what makes a region's functions independent of every other region's and lets a
// fresh cursor regenerate any window bit-identically by fast-forwarding.
class FunctionArrivalCursor {
 public:
  // `spec` and `profile` are borrowed and must outlive the cursor.
  FunctionArrivalCursor(const FunctionSpec& spec, const DiurnalProfile& profile,
                        const Calendar& calendar, Rng rng);

  // The next day EmitDay will produce (days must be consumed in order).
  int64_t next_day() const { return next_day_; }

  // Appends this function's arrivals with time in [day * kDay, (day + 1) * kDay)
  // — clipped to the horizon — to `out`. Times are unsorted within the day (the
  // caller sorts the merged chunk once). Requires day == next_day().
  void EmitDay(int64_t day, std::vector<SimTime>& out);

  // Checkpoint support: the exact carried state (RNG words, burst machine,
  // regular phase, next timer tick; doubles by bit pattern). Restoring onto a
  // freshly constructed cursor for the same (spec, profile, calendar, rng seed)
  // makes subsequent EmitDay calls draw the identical sequence.
  void SaveState(ByteWriter& w) const;
  void RestoreState(ByteReader& r);

 private:
  void EmitPoissonHour(int64_t hour, std::vector<SimTime>& out);

  const FunctionSpec* spec_;
  const DiurnalProfile* profile_;
  Calendar calendar_;
  Rng rng_;
  int64_t next_day_ = 0;
  // Modulated-Poisson state carried across hour (and therefore day) boundaries.
  bool bursting_ = false;
  double burst_hours_left_ = 0;
  double regular_phase_us_ = 0;
  // Timer state: absolute time of the next tick.
  SimTime timer_next_ = 0;
};

// The synthetic generator as a day-chunked stream: one FunctionArrivalCursor per
// (in-filter) function, merged and (time, function)-sorted per day. Peak memory is
// O(busiest day), independent of the horizon. `pop` is borrowed and must outlive
// the stream; profiles/calendar are copied. With `region` set, only that region's
// functions are generated — the same subsequence a full stream would yield for
// them, since every function draws from its own RNG substream. `cell_slice`
// refines the filter to a capacity-cell range the same way.
class SyntheticArrivalStream final : public ArrivalStream {
 public:
  SyntheticArrivalStream(const Population& pop,
                         const std::vector<RegionProfile>& profiles,
                         const Calendar& calendar, uint64_t seed,
                         std::optional<trace::RegionId> region = std::nullopt,
                         std::optional<CellSlice> cell_slice = std::nullopt);

  bool NextChunk(ArrivalChunk* chunk) override;
  // Checkpoint support: the per-function cursor states plus the day counter.
  bool SaveState(ByteWriter& w) const override;
  bool RestoreState(ByteReader& r) override;

 private:
  struct FunctionEntry {
    trace::FunctionId id;
    FunctionArrivalCursor cursor;
  };
  Calendar calendar_;
  std::vector<DiurnalProfile> diurnals_;  // One per region.
  std::vector<FunctionEntry> functions_;  // In population (id) order.
  std::vector<SimTime> scratch_;          // Per-function day buffer, reused.
  int64_t next_day_ = 0;
  int64_t num_days_ = 0;
};

// Generates all exogenous arrivals in [0, calendar.horizon()), sorted by
// (time, function). Deterministic in (pop, profiles, calendar, seed). Eager shim
// over SyntheticArrivalStream — prefer the stream for anything long-horizon.
std::vector<ArrivalEvent> GenerateArrivals(const Population& pop,
                                           const std::vector<RegionProfile>& profiles,
                                           const Calendar& calendar, uint64_t seed);

// Arrivals for a single function, sorted by time (exposed for tests and workload
// inspection tools). Eager shim over FunctionArrivalCursor.
std::vector<SimTime> GenerateFunctionArrivals(const FunctionSpec& spec,
                                              const DiurnalProfile& profile,
                                              const Calendar& calendar, Rng rng);

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_ARRIVALS_H_
