#include "workload/population.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/distributions.h"
#include "trace/records.h"

namespace coldstart::workload {

namespace {

using stats::BoundedParetoParams;
using stats::CategoricalSampler;
using trace::FunctionId;
using trace::ResourceConfig;
using trace::Runtime;
using trace::Trigger;

// Expands a condensed trigger choice to a concrete raw trigger.
Trigger RawTriggerFor(TriggerChoice choice, Rng& rng) {
  switch (choice) {
    case TriggerChoice::kApigS:
      return Trigger::kApigSync;
    case TriggerChoice::kTimer:
      return Trigger::kTimer;
    case TriggerChoice::kObs:
      return Trigger::kObs;
    case TriggerChoice::kWorkflowS:
      return Trigger::kWorkflowSync;
    case TriggerChoice::kOtherAsync: {
      static constexpr Trigger kOtherAsyncTriggers[] = {
          Trigger::kCts,  Trigger::kDis,   Trigger::kLts,
          Trigger::kSmn,  Trigger::kKafka, Trigger::kApigAsync,
          Trigger::kWorkflowAsync,
      };
      return kOtherAsyncTriggers[rng.NextBounded(std::size(kOtherAsyncTriggers))];
    }
    case TriggerChoice::kOtherSync:
      return Trigger::kKafkaSync;
  }
  return Trigger::kUnknown;
}

SimDuration SampleTimerPeriod(const RegionProfile& profile, Rng& rng) {
  double total = 0;
  for (const auto& [period, w] : profile.timer_period_weights) {
    total += w;
  }
  double u = rng.NextDouble() * total;
  for (const auto& [period, w] : profile.timer_period_weights) {
    u -= w;
    if (u <= 0) {
      return period;
    }
  }
  return profile.timer_period_weights.back().first;
}

// A small share of functions have no runtime/trigger metadata logged (the paper's
// 'unknown' slices). Tracked here so the generator produces them deliberately.
constexpr double kUnloggedTriggerFraction = 0.04;

}  // namespace

Population GeneratePopulation(const std::vector<RegionProfile>& profiles, uint64_t seed) {
  Population pop;
  Rng root(MixHash(seed, HashString("population")));

  for (const auto& profile : profiles) {
    pop.region_begin.push_back(static_cast<uint32_t>(pop.functions.size()));
    Rng rng = root.ForkStream(static_cast<uint64_t>(profile.region) + 1);

    const CategoricalSampler runtime_sampler(
        {profile.runtime_weights.begin(), profile.runtime_weights.end()});
    const CategoricalSampler config_sampler(
        {profile.config_weights.begin(), profile.config_weights.end()});
    std::vector<CategoricalSampler> trigger_samplers;
    trigger_samplers.reserve(trace::kNumRuntimes);
    for (int r = 0; r < trace::kNumRuntimes; ++r) {
      const auto& row = profile.trigger_given_runtime[static_cast<size_t>(r)];
      trigger_samplers.emplace_back(std::vector<double>{row.begin(), row.end()});
    }

    // --- Users: geometric tail over "extra" functions beyond the first. ---
    // Assign each function an owner as we go: start a new user, give it 1 function with
    // probability single_function_user_fraction, otherwise 1 + Geometric.
    std::vector<uint32_t> owner_of;  // Per function in this region.
    owner_of.reserve(static_cast<size_t>(profile.num_functions));
    int remaining = profile.num_functions;
    while (remaining > 0) {
      const uint32_t user = pop.num_users++;
      int count = 1;
      if (!rng.NextBool(profile.single_function_user_fraction)) {
        // Geometric with mean ~5 extra functions, capped.
        count += 1 + static_cast<int>(rng.NextExponential(1.0 / 4.0));
        count = std::min({count, profile.max_functions_per_user, remaining});
      }
      for (int i = 0; i < count && remaining > 0; ++i, --remaining) {
        owner_of.push_back(user);
      }
    }

    const BoundedParetoParams popularity{profile.popularity_alpha,
                                         profile.popularity_min_per_day,
                                         profile.popularity_max_per_day};

    std::vector<FunctionId> workflow_children;
    std::vector<FunctionId> root_candidates;  // Potential workflow parents.

    for (int i = 0; i < profile.num_functions; ++i) {
      FunctionSpec f;
      f.id = static_cast<FunctionId>(pop.functions.size());
      f.user = owner_of[static_cast<size_t>(i)];
      f.region = profile.region;
      f.runtime = static_cast<Runtime>(runtime_sampler.Sample(rng));
      if (rng.NextBool(kUnloggedTriggerFraction)) {
        f.primary_trigger = Trigger::kUnknown;
      } else {
        const auto choice = static_cast<TriggerChoice>(
            trigger_samplers[static_cast<size_t>(f.runtime)].Sample(rng));
        f.primary_trigger = RawTriggerFor(choice, rng);
      }
      f.trigger_mask = trace::TriggerBit(f.primary_trigger);
      // APIG-S + TIMER-A is the most common multi-trigger combination (13% of
      // functions, §3.3); model it as APIG-S functions gaining a timer bit.
      if (f.primary_trigger == Trigger::kApigSync && rng.NextBool(0.35)) {
        f.trigger_mask |= trace::TriggerBit(Trigger::kTimer);
      }

      f.config = static_cast<ResourceConfig>(config_sampler.Sample(rng));
      // Heavier runtimes skew to bigger pods (drives Fig. 13's code/dep size effect).
      if ((f.runtime == Runtime::kJava || f.runtime == Runtime::kCustom ||
           f.runtime == Runtime::kGo1x) &&
          rng.NextBool(0.45)) {
        const int upgraded = std::min(static_cast<int>(f.config) + 1,
                                      trace::kNumResourceConfigs - 1);
        f.config = static_cast<ResourceConfig>(upgraded);
      }
      if (f.runtime == Runtime::kCustom) {
        // Container-image workloads ship their own runtime and run memory-hungry batch
        // jobs: never below 600m/512MB. This is also what places the slowest cold
        // starts in the *large* pool class (Fig. 13's small/large gap).
        f.config = std::max(f.config, ResourceConfig::k600m512);
      }

      // --- Arrival process. ---
      const bool is_workflow = f.primary_trigger == Trigger::kWorkflowSync ||
                               f.primary_trigger == Trigger::kWorkflowAsync;
      if (f.primary_trigger == Trigger::kTimer) {
        f.kind = ArrivalKind::kTimer;
        f.timer_period = SampleTimerPeriod(profile, rng);
        f.base_rate_per_day = static_cast<double>(kDay) / static_cast<double>(f.timer_period);
        f.diurnal_exponent = 0.0;
      } else if (is_workflow) {
        f.kind = ArrivalKind::kWorkflowChild;
        workflow_children.push_back(f.id);
      } else {
        f.kind = ArrivalKind::kModulatedPoisson;
        f.base_rate_per_day = popularity.Sample(rng);
        f.diurnal_exponent =
            rng.Uniform(profile.diurnal_exponent_min, profile.diurnal_exponent_max);
        if (f.primary_trigger == Trigger::kObs) {
          // OBS functions process object-storage event streams in minute-scale batch
          // executions. Hot feeds run above the keep-alive threshold all day: their
          // long executions overlap, so they hold standing pod fleets (the OBS pod
          // share of Fig. 8d). Custom-image feeds additionally die off at night and
          // scale up in bursts, and every one of their pods is built from scratch --
          // which makes Custom the dominant source of (slow) OBS cold starts and puts
          // the OBS median at ~10 s in Fig. 16.
          if (rng.NextBool(profile.obs_hot_fraction)) {
            if (f.runtime == Runtime::kCustom) {
              f.base_rate_per_day =
                  std::max(f.base_rate_per_day, rng.Uniform(1440.0, 1800.0));
              f.diurnal_exponent = rng.Uniform(0.8, 1.2);
              f.burst_amplitude = rng.Uniform(3.0, 8.0);
              f.burst_prob_per_hour = rng.Uniform(0.03, 0.06);
              f.burst_mean_hours = rng.Uniform(1.5, 3.0);
            } else {
              f.base_rate_per_day =
                  std::max(f.base_rate_per_day, rng.Uniform(1800.0, 2880.0));
              f.diurnal_exponent = rng.Uniform(0.3, 0.9);
              f.burst_amplitude = 1.0;
              f.regular_arrivals = true;  // Steady object pipeline.
            }
          }
        }
        if (f.runtime == Runtime::kHttp && f.primary_trigger != Trigger::kObs) {
          // http functions are HTTP services. Hot ones see steady sub-minute traffic
          // (pods stay warm; cold starts only on redeploys/diurnal troughs), the rest
          // are sporadic internal endpoints. Neither sits in the dead zone where every
          // request would pay the ~10s server start.
          if (rng.NextBool(profile.http_hot_fraction)) {
            // Comfortably above the keep-alive threshold even at night, so the pod
            // stays warm (at 1/min exactly, half the gaps would cold-start).
            f.base_rate_per_day = std::max(f.base_rate_per_day, rng.Uniform(3400.0, 4800.0));
            f.diurnal_exponent = rng.Uniform(0.1, 0.4);
            f.burst_amplitude = 1.0;
            f.regular_arrivals = true;  // Load-balanced service traffic.
          } else {
            f.base_rate_per_day = std::min(f.base_rate_per_day, rng.Uniform(2.0, 20.0));
          }
        }
        if (f.runtime == Runtime::kGo1x) {
          // Go services in this fleet are batchy backends: long dense sessions with
          // quiet gaps. During a session the pod stays warm for the whole window, so
          // one cold start buys minutes-to-hours of useful lifetime (the high Go
          // utility ratios of Fig. 17a).
          f.diurnal_exponent = rng.Uniform(0.0, 0.3);
          f.base_rate_per_day = rng.Uniform(30.0, 120.0);
          f.burst_amplitude = rng.Uniform(30.0, 60.0);
          f.burst_prob_per_hour = rng.Uniform(0.05, 0.10);
          f.burst_mean_hours = rng.Uniform(1.0, 2.5);
        }
        if (f.runtime == Runtime::kJava && rng.NextBool(profile.java_regime_change_fraction)) {
          f.diurnal_onset = static_cast<SimTime>(profile.java_regime_change_day) * kDay;
          f.diurnal_exponent = std::max(f.diurnal_exponent, 1.2);
        }
        // Burst personality: moderately popular functions can have extreme
        // peak-to-trough ratios (Fig. 6a's >1000x tail).
        if (rng.NextBool(profile.bursty_function_fraction)) {
          const double amp = std::exp(std::log(profile.burst_amp_median) +
                                      profile.burst_amp_sigma * rng.NextGaussian());
          const bool moderate = f.base_rate_per_day >= 5 && f.base_rate_per_day <= 2000;
          f.burst_amplitude = std::clamp(amp, 1.5, moderate ? 3000.0 : 25.0);
          f.burst_prob_per_hour = rng.Uniform(0.004, 0.04);
          f.burst_mean_hours = rng.Uniform(1.0, 4.0);
        }
        if (f.base_rate_per_day >= 30) {
          root_candidates.push_back(f.id);
        }
      }

      // --- Execution profile. ---
      f.exec_median_us = 1e6 * std::exp(std::log(profile.exec_median_s) +
                                        profile.exec_median_sigma * rng.NextGaussian());
      f.exec_median_us = std::clamp(f.exec_median_us, 200.0, 300e6);
      f.exec_sigma = profile.exec_request_sigma;
      f.cpu_mean_cores = std::exp(std::log(profile.cpu_median_cores) +
                                  profile.cpu_sigma * rng.NextGaussian());
      f.cpu_mean_cores = std::clamp(
          f.cpu_mean_cores, 0.01, static_cast<double>(CpuMillicoresOf(f.config)) / 1000.0);
      f.mem_mean_kb = rng.Uniform(0.25, 0.8) * 1024.0 *
                      static_cast<double>(MemoryMbOf(f.config));

      // --- Package sizes. ---
      const RuntimeTraits& traits = TraitsOf(f.runtime);
      f.code_size_kb = static_cast<uint32_t>(std::clamp(
          std::exp(std::log(traits.code_size_median_kb) +
                   traits.code_size_sigma * rng.NextGaussian()),
          16.0, 512e3));
      if (rng.NextBool(traits.dep_probability)) {
        f.dep_size_kb = static_cast<uint32_t>(std::clamp(
            std::exp(std::log(traits.dep_size_median_kb) +
                     traits.dep_size_sigma * rng.NextGaussian()),
            128.0, 2048e3));
      }

      const double conc_draw = rng.NextDouble();
      f.pod_concurrency = conc_draw < 0.70 ? 1 : (conc_draw < 0.90 ? 4 : 10);
      // Very hot functions get high concurrency so pod counts stay realistic.
      if (f.base_rate_per_day > 1000 && f.kind == ArrivalKind::kModulatedPoisson) {
        f.pod_concurrency = std::max(f.pod_concurrency, 10);
      }
      if (f.primary_trigger == Trigger::kObs && f.kind == ArrivalKind::kModulatedPoisson) {
        // Batch jobs: tens-of-seconds executions. Custom images process one object per
        // pod (overlap multiplies pods -- and every pod is a slow scratch build);
        // managed runtimes absorb overlap with in-pod concurrency, so hot managed
        // feeds hold a couple of warm pods instead of cold-starting on every overlap.
        f.exec_median_us = std::clamp(20e6 * std::exp(0.8 * rng.NextGaussian()), 5e6, 120e6);
        const bool hot_managed =
            f.runtime != Runtime::kCustom && f.base_rate_per_day >= 1200;
        f.pod_concurrency = hot_managed ? 6 : 1;
      }

      f.single_cluster = rng.NextBool(profile.single_cluster_fraction);
      f.home_cluster = static_cast<trace::ClusterId>(rng.NextBounded(trace::kClustersPerRegion));

      pop.functions.push_back(std::move(f));
    }

    // --- Workflow wiring: attach each child to a root function in this region. ---
    for (const FunctionId child_id : workflow_children) {
      FunctionSpec& child = pop.functions[child_id];
      if (root_candidates.empty()) {
        // Tiny region with no eligible parents: degrade to a low-rate Poisson source.
        child.kind = ArrivalKind::kModulatedPoisson;
        child.base_rate_per_day = 2.0;
        child.diurnal_exponent = 1.0;
        continue;
      }
      const FunctionId parent_id =
          root_candidates[rng.NextBounded(root_candidates.size())];
      FunctionSpec& parent = pop.functions[parent_id];
      WorkflowEdge edge;
      edge.child = child_id;
      edge.probability = rng.Uniform(0.05, 0.5);
      // Downstream steps fire on a *filtered* subset of parent traffic (a bounded
      // number of chain activations per day); an uncapped edge probability on a hot
      // parent would otherwise put every child in the cold-start-per-request band at
      // thousands of requests/day.
      const double child_rate_cap = rng.Uniform(8.0, 60.0);
      edge.probability =
          std::min(edge.probability, child_rate_cap / parent.base_rate_per_day);
      parent.children.push_back(edge);
      child.base_rate_per_day = parent.base_rate_per_day * edge.probability;
      child.diurnal_exponent = parent.diurnal_exponent;
    }
  }
  pop.region_begin.push_back(static_cast<uint32_t>(pop.functions.size()));
  return pop;
}

}  // namespace coldstart::workload
