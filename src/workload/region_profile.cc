#include "workload/region_profile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::workload {

namespace {

using trace::kNumResourceConfigs;
using trace::kNumRuntimes;

// Runtime weight order: C#, Custom, Go1.x, Java, Node.js, PHP7.3, Python2, Python3,
// http, unknown. Region 2's mix is calibrated against Fig. 8e (Python3 dominant,
// http/Node.js sizable, Custom small-but-visible); other regions are variations.
constexpr std::array<double, kNumRuntimes> kRuntimeMixR1 = {0.03, 0.05, 0.04, 0.12, 0.13,
                                                            0.04, 0.06, 0.34, 0.10, 0.09};
constexpr std::array<double, kNumRuntimes> kRuntimeMixR2 = {0.02, 0.05, 0.03, 0.09, 0.12,
                                                            0.05, 0.07, 0.38, 0.11, 0.08};
constexpr std::array<double, kNumRuntimes> kRuntimeMixR3 = {0.02, 0.03, 0.05, 0.10, 0.10,
                                                            0.06, 0.05, 0.40, 0.12, 0.07};
constexpr std::array<double, kNumRuntimes> kRuntimeMixR4 = {0.02, 0.04, 0.03, 0.08, 0.14,
                                                            0.06, 0.08, 0.40, 0.07, 0.08};
constexpr std::array<double, kNumRuntimes> kRuntimeMixR5 = {0.03, 0.06, 0.05, 0.11, 0.11,
                                                            0.04, 0.05, 0.33, 0.13, 0.09};

// Trigger choice per runtime, order: APIG-S, TIMER, OBS, WORKFLOW-S, other-A, other-S.
// Calibrated against Fig. 9: Python3/PHP/Node.js are timer-heavy; Java and http lean
// APIG-S; Custom images are predominantly OBS-triggered (which is what makes OBS the
// slow trigger in Fig. 16); Python2 has the largest other-A share.
constexpr std::array<std::array<double, kNumTriggerChoices>, kNumRuntimes> kTriggerGivenRuntime =
    {{
        {0.30, 0.30, 0.02, 0.10, 0.18, 0.10},  // C#
        {0.08, 0.15, 0.52, 0.05, 0.15, 0.05},  // Custom
        {0.25, 0.40, 0.02, 0.10, 0.18, 0.05},  // Go1.x
        {0.50, 0.20, 0.02, 0.10, 0.13, 0.05},  // Java
        {0.20, 0.55, 0.02, 0.08, 0.11, 0.04},  // Node.js
        {0.15, 0.65, 0.02, 0.05, 0.09, 0.04},  // PHP7.3
        {0.10, 0.50, 0.03, 0.05, 0.27, 0.05},  // Python2
        {0.12, 0.65, 0.03, 0.05, 0.11, 0.04},  // Python3
        {0.60, 0.10, 0.02, 0.10, 0.08, 0.10},  // http
        {0.20, 0.40, 0.06, 0.05, 0.19, 0.10},  // unknown
    }};

// CPU-memory configuration weights (Fig. 8f: small configs dominate functions and cold
// starts). Order matches ResourceConfig.
constexpr std::array<double, kNumResourceConfigs> kConfigWeights = {0.40, 0.22, 0.15, 0.12,
                                                                    0.06, 0.03, 0.02};

// Timer period mixes. kTimerMixShort includes minute-scale periods that produce the
// dense Fig. 14 diagonal; kTimerMixLong shifts mass to hours for lighter regions.
const std::vector<std::pair<SimDuration, double>>& TimerMixShort() {
  static const std::vector<std::pair<SimDuration, double>> kMix = {
      {60 * kSecond, 0.12},    // Stays warm: period == keep-alive.
      {90 * kSecond, 0.01},    // Just outside keep-alive: cold start every fire.
      {5 * kMinute, 0.05}, {15 * kMinute, 0.10}, {kHour, 0.38},
      {6 * kHour, 0.18},   {kDay, 0.16},
  };
  return kMix;
}

const std::vector<std::pair<SimDuration, double>>& TimerMixLong() {
  static const std::vector<std::pair<SimDuration, double>> kMix = {
      {60 * kSecond, 0.08}, {15 * kMinute, 0.10}, {kHour, 0.42},
      {6 * kHour, 0.22},    {kDay, 0.18},
  };
  return kMix;
}

RegionProfile MakeR1() {
  RegionProfile p;
  p.region = 0;
  p.num_functions = 600;
  p.single_function_user_fraction = 0.60;
  // The busiest region: heavy tail reaches ~4 req/min sustained; ~8% of functions
  // above 1 request / 10 min (the paper's 20% >= 1/min, at our 1:10 rate scale).
  p.popularity_alpha = 0.42;
  p.popularity_min_per_day = 1.0;
  p.popularity_max_per_day = 5760;
  p.obs_hot_fraction = 0.35;
  p.http_hot_fraction = 0.25;
  p.exec_median_s = 0.10;  // Fig. 3b: R1 median ~100 ms.
  p.cpu_median_cores = 0.30;
  p.diurnal.bumps = {{10.5, 1.0, 5.0}, {15.0, 0.45, 6.0}};
  p.diurnal.floor = 0.22;
  p.diurnal.holiday = HolidayResponse::kDipWithCatchUp;
  p.diurnal.holiday_level = 0.55;
  p.runtime_weights = kRuntimeMixR1;
  p.trigger_given_runtime = kTriggerGivenRuntime;
  p.config_weights = kConfigWeights;
  p.timer_period_weights = TimerMixShort();
  p.bursty_function_fraction = 0.40;
  p.burst_amp_median = 5.0;
  p.pool_base_size = {45, 26, 15, 11, 5, 3, 1};
  p.pool_refill_per_min = 6.0;
  // Architecture: dependency registry is the bottleneck and the scheduler queues under
  // load -> cold starts dominated by dependency deployment + scheduling, means reaching
  // ~7 s at peaks (Fig. 11a), with strong total<->sched and total<->dep correlations
  // (Fig. 12a).
  p.arch.alloc_stage1_median_s = 0.008;
  p.arch.alloc_stage_growth = 5.0;
  p.arch.alloc_scratch_median_s = 1.8;
  p.arch.alloc_congestion_coeff = 0.004;
  p.arch.code_base_s = 0.04;
  p.arch.code_bandwidth_kb_per_s = 20000;
  p.arch.code_congestion_coeff = 0.12;
  p.arch.dep_base_s = 0.22;
  p.arch.dep_bandwidth_kb_per_s = 4000;
  p.arch.dep_congestion_coeff = 0.04;
  p.arch.sched_base_s = 0.40;
  p.arch.sched_queue_coeff_s = 0.006;
  p.arch.custom_scratch_median_s = 9.0;
  p.arch.sched_rate_coeff = 0.035;
  p.arch.dep_rate_coeff = 0.015;
  p.arch.code_rate_coeff = 0.004;
  p.arch.sched_sigma = 0.32;
  p.arch.post_holiday_dep_penalty = 1.9;
  p.inter_region_rtt_ms = 35;
  return p;
}

RegionProfile MakeR2() {
  RegionProfile p;
  p.region = 1;
  p.num_functions = 450;
  p.single_function_user_fraction = 0.70;
  p.popularity_alpha = 0.70;
  p.popularity_min_per_day = 0.5;
  p.popularity_max_per_day = 2000;
  p.obs_hot_fraction = 0.50;
  p.http_hot_fraction = 0.20;
  p.exec_median_s = 0.03;
  p.cpu_median_cores = 0.20;
  p.diurnal.bumps = {{14.5, 1.0, 4.5}};
  p.diurnal.floor = 0.25;
  p.diurnal.holiday = HolidayResponse::kDipWithCatchUp;
  p.diurnal.holiday_level = 0.58;
  p.runtime_weights = kRuntimeMixR2;
  p.trigger_given_runtime = kTriggerGivenRuntime;
  p.config_weights = kConfigWeights;
  p.timer_period_weights = TimerMixLong();
  p.bursty_function_fraction = 0.35;
  p.burst_amp_median = 4.0;
  p.java_regime_change_fraction = 0.75;  // Fig. 8b: Java diurnality begins at day 18.
  p.java_regime_change_day = 18;
  // Tight pools + slow refill: allocation frequently expands the staged search or
  // falls through to from-scratch creation, so pod allocation dominates and swings in
  // phase with the cold-start count (Figs. 11b, 12b).
  p.pool_base_size = {14, 8, 5, 4, 2, 1, 1};
  p.pool_refill_per_min = 1.5;
  p.arch.alloc_stage1_median_s = 0.010;
  p.arch.alloc_stage_growth = 8.0;
  p.arch.alloc_scratch_median_s = 2.2;
  p.arch.alloc_congestion_coeff = 0.020;
  p.arch.code_base_s = 0.030;
  p.arch.code_bandwidth_kb_per_s = 30000;
  p.arch.code_congestion_coeff = 0.05;
  p.arch.dep_base_s = 0.10;
  p.arch.dep_bandwidth_kb_per_s = 9000;
  p.arch.dep_congestion_coeff = 0.08;
  p.arch.sched_base_s = 0.18;
  p.arch.sched_queue_coeff_s = 0.004;
  p.arch.custom_scratch_median_s = 10.0;
  p.arch.alloc_rate_coeff = 0.025;
  p.arch.rate_saturation = 60.0;
  p.arch.sched_rate_coeff = 0.004;
  p.arch.dep_rate_coeff = 0.004;
  p.arch.post_holiday_dep_penalty = 1.7;
  p.inter_region_rtt_ms = 35;
  return p;
}

RegionProfile MakeR3() {
  RegionProfile p;
  p.region = 2;
  p.num_functions = 150;
  p.single_function_user_fraction = 0.85;
  p.popularity_alpha = 1.1;
  p.popularity_min_per_day = 0.4;
  p.popularity_max_per_day = 900;
  p.obs_hot_fraction = 0.30;
  p.http_hot_fraction = 0.15;
  p.exec_median_s = 0.02;
  p.cpu_median_cores = 0.10;
  p.diurnal.bumps = {{20.0, 1.0, 4.0}};
  p.diurnal.floor = 0.30;
  p.diurnal.holiday = HolidayResponse::kRise;  // Fig. 7: R3 rises during the holiday.
  p.diurnal.holiday_level = 1.35;
  p.runtime_weights = kRuntimeMixR3;
  p.trigger_given_runtime = kTriggerGivenRuntime;
  p.config_weights = kConfigWeights;
  p.timer_period_weights = TimerMixLong();
  p.bursty_function_fraction = 0.25;
  p.burst_amp_median = 3.0;
  // Ample small-pod pools but skeletal large-pod pools: the 5:1 large/small cold-start
  // ratio of Fig. 13 comes from large allocations expanding the search.
  p.pool_base_size = {36, 20, 4, 3, 1, 1, 0};
  p.pool_refill_per_min = 4.0;
  p.arch.alloc_stage1_median_s = 0.002;
  p.arch.alloc_stage_growth = 10.0;
  p.arch.alloc_scratch_median_s = 1.2;
  p.arch.alloc_congestion_coeff = 0.002;
  p.arch.code_base_s = 0.010;
  p.arch.code_bandwidth_kb_per_s = 60000;
  p.arch.code_congestion_coeff = 0.03;
  p.arch.dep_base_s = 0.030;
  p.arch.dep_bandwidth_kb_per_s = 20000;
  p.arch.dep_congestion_coeff = 0.05;
  p.arch.sched_base_s = 0.060;
  p.arch.sched_queue_coeff_s = 0.004;
  p.arch.custom_scratch_median_s = 7.0;
  p.arch.sched_rate_coeff = 0.050;
  p.arch.code_rate_coeff = 0.030;
  p.arch.post_holiday_dep_penalty = 1.4;
  p.inter_region_rtt_ms = 60;
  return p;
}

RegionProfile MakeR4() {
  RegionProfile p;
  p.region = 3;
  p.num_functions = 850;
  p.single_function_user_fraction = 0.90;
  // Many functions, almost all low-rate (Fig. 3a: ~1% at >= 1/min in the paper).
  p.popularity_alpha = 1.3;
  p.popularity_min_per_day = 0.3;
  p.popularity_max_per_day = 720;
  p.obs_hot_fraction = 0.10;
  p.http_hot_fraction = 0.06;
  p.exec_median_s = 0.01;
  p.cpu_median_cores = 0.15;
  p.diurnal.bumps = {{8.0, 1.0, 5.5}};
  p.diurnal.floor = 0.24;
  p.diurnal.holiday = HolidayResponse::kDipWithCatchUp;
  p.diurnal.holiday_level = 0.62;
  p.runtime_weights = kRuntimeMixR4;
  p.trigger_given_runtime = kTriggerGivenRuntime;
  p.config_weights = kConfigWeights;
  p.timer_period_weights = TimerMixLong();
  p.bursty_function_fraction = 0.30;
  p.burst_amp_median = 4.5;
  p.pool_base_size = {30, 16, 9, 6, 3, 1, 1};
  p.pool_refill_per_min = 2.5;
  p.arch.alloc_stage1_median_s = 0.012;
  p.arch.alloc_stage_growth = 6.0;
  p.arch.alloc_scratch_median_s = 2.0;
  p.arch.alloc_congestion_coeff = 0.015;
  p.arch.code_base_s = 0.030;
  p.arch.code_bandwidth_kb_per_s = 35000;
  p.arch.code_congestion_coeff = 0.05;
  p.arch.dep_base_s = 0.120;
  p.arch.dep_bandwidth_kb_per_s = 8000;
  p.arch.dep_congestion_coeff = 0.10;
  p.arch.sched_base_s = 0.22;
  p.arch.sched_queue_coeff_s = 0.005;
  p.arch.custom_scratch_median_s = 9.0;
  p.arch.alloc_rate_coeff = 0.022;
  p.arch.rate_saturation = 80.0;
  p.arch.dep_rate_coeff = 0.010;
  p.arch.post_holiday_dep_penalty = 1.8;
  p.inter_region_rtt_ms = 45;
  return p;
}

RegionProfile MakeR5() {
  RegionProfile p;
  p.region = 4;
  p.num_functions = 300;
  p.single_function_user_fraction = 0.75;
  p.popularity_alpha = 0.65;
  p.popularity_min_per_day = 0.8;
  p.popularity_max_per_day = 1800;
  p.obs_hot_fraction = 0.30;
  p.http_hot_fraction = 0.15;
  p.exec_median_s = 0.004;  // Fig. 3b: R5 median ~4 ms.
  p.cpu_median_cores = 0.25;
  p.diurnal.bumps = {{17.0, 1.0, 4.5}, {2.0, 0.3, 8.0}};
  p.diurnal.floor = 0.26;
  p.diurnal.holiday = HolidayResponse::kDipWithCatchUp;
  p.diurnal.holiday_level = 0.68;
  p.runtime_weights = kRuntimeMixR5;
  p.trigger_given_runtime = kTriggerGivenRuntime;
  p.config_weights = kConfigWeights;
  p.timer_period_weights = TimerMixShort();
  p.bursty_function_fraction = 0.35;
  p.burst_amp_median = 4.0;
  // Generous pools with a shallow stage ladder: small and large pods see nearly the
  // same allocation cost (Fig. 13's ~1:1 region).
  p.pool_base_size = {60, 36, 22, 16, 8, 4, 2};
  p.pool_refill_per_min = 8.0;
  p.arch.alloc_stage1_median_s = 0.006;
  p.arch.alloc_stage_growth = 2.5;
  p.arch.alloc_scratch_median_s = 1.5;
  p.arch.alloc_congestion_coeff = 0.004;
  p.arch.code_base_s = 0.020;
  p.arch.code_bandwidth_kb_per_s = 40000;
  p.arch.code_congestion_coeff = 0.04;
  // Dependency fetches and scheduling share the same fabric -> the coupled
  // oscillations behind R5's dep<->sched correlation in Fig. 12e.
  p.arch.dep_base_s = 0.18;
  p.arch.dep_bandwidth_kb_per_s = 8000;
  p.arch.dep_congestion_coeff = 0.05;
  p.arch.sched_base_s = 0.26;
  p.arch.sched_queue_coeff_s = 0.004;
  p.arch.custom_scratch_median_s = 8.0;
  p.arch.dep_rate_coeff = 0.032;
  p.arch.sched_rate_coeff = 0.045;
  p.arch.sched_sigma = 0.32;
  p.arch.post_holiday_dep_penalty = 1.5;
  p.inter_region_rtt_ms = 30;
  return p;
}

}  // namespace

const std::vector<RegionProfile>& DefaultRegionProfiles() {
  static const std::vector<RegionProfile> kProfiles = {MakeR1(), MakeR2(), MakeR3(),
                                                       MakeR4(), MakeR5()};
  return kProfiles;
}

RegionProfile ScaledProfile(const RegionProfile& profile, double scale) {
  COLDSTART_CHECK_GT(scale, 0.0);
  COLDSTART_CHECK_LE(scale, 4.0);
  RegionProfile p = profile;
  p.num_functions = std::max(10, static_cast<int>(std::lround(profile.num_functions * scale)));
  for (auto& size : p.pool_base_size) {
    size = std::max(1, static_cast<int>(std::lround(size * scale)));
  }
  p.pool_refill_per_min = std::max(0.5, profile.pool_refill_per_min * scale);
  return p;
}

}  // namespace coldstart::workload
