// Time-varying rate modulation: diurnal shape, weekly effect, holiday response.
//
// The multiplier m(t) scales a function's base arrival rate. The diurnal shape is a
// mixture of circular (von Mises-style) bumps so that regions can have narrow peaks at
// different hours (Fig. 5); the weekly effect reproduces the ~30% weekday/weekend pod
// gap (§3.3); holiday responses implement the Fig. 7 patterns (pre-holiday rush, dip,
// catch-up; or the R3-style rise).
#ifndef COLDSTART_WORKLOAD_DIURNAL_H_
#define COLDSTART_WORKLOAD_DIURNAL_H_

#include <vector>

#include "common/sim_time.h"
#include "workload/calendar.h"

namespace coldstart::workload {

// How a region's load responds to the holiday window.
enum class HolidayResponse {
  kDipWithCatchUp,  // R1/R2/R4/R5: day-13 rush, dip during, day-24 catch-up.
  kRise,            // R3: load increases during the holiday.
  kNone,            // Timer-driven load: unaffected.
};

struct DiurnalParams {
  // Each bump is amplitude * exp(concentration * (cos(2*pi*(h - peak_hour)/24) - 1)).
  struct Bump {
    double peak_hour = 10.0;
    double amplitude = 1.0;
    double concentration = 4.0;  // Higher = narrower peak.
  };
  double floor = 0.25;  // Night-time base level.
  std::vector<Bump> bumps{{10.0, 1.0, 4.0}};
  double weekend_factor = 0.7;
  HolidayResponse holiday = HolidayResponse::kDipWithCatchUp;
  double holiday_level = 0.55;       // Load level during the holiday (dip) or rise factor.
  double pre_holiday_boost = 1.18;   // Day-13 rush.
  double catch_up_boost = 1.30;      // Day-24 spike, decaying over the next days.
  double catch_up_decay_days = 2.0;
};

class DiurnalProfile {
 public:
  DiurnalProfile(DiurnalParams params, Calendar calendar);

  // Rate multiplier at simulated time t. Normalized so the workday diurnal peak is ~1.
  double RateMultiplier(SimTime t) const;

  // The pure time-of-day shape in [floor/peak, 1] (no weekly/holiday effects).
  double DayShape(double hour_of_day) const;

  // Day-level multiplier (weekly x holiday), applied on top of the day shape.
  double DayLevel(int64_t day) const;

  const DiurnalParams& params() const { return params_; }

 private:
  // Unnormalized day shape (floor + bump mixture).
  double DayShapeRaw(double hour_of_day) const;

  DiurnalParams params_;
  Calendar calendar_;
  double peak_norm_ = 1.0;
};

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_DIURNAL_H_
