#include "workload/replay_source.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "trace/csv_util.h"

namespace coldstart::workload {

namespace {

using trace::csv_internal::FilePtr;
using trace::csv_internal::IsBlankLine;
using trace::csv_internal::OpenRead;
using trace::csv_internal::OpenWrite;
using trace::csv_internal::ParseDouble;
using trace::csv_internal::ParseI64;
using trace::csv_internal::ParseU64;
using trace::csv_internal::SetError;
using trace::csv_internal::SplitCsvLine;

double Hash01(uint64_t h) {
  uint64_t s = h;
  return static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
}

// "R3" (1-based, as RegionName renders) -> 2. Anything else is an opaque key.
bool ParseLiteralRegion(const std::string& s, uint64_t& out) {
  unsigned r = 0;
  char tail = '\0';
  if (std::sscanf(s.c_str(), "R%u%c", &r, &tail) != 1 || r == 0) {
    return false;
  }
  out = r - 1;
  return true;
}

}  // namespace

ReplaySource::ReplaySource(std::string name, std::vector<RawEvent> events,
                           ReplayOptions options)
    : name_(std::move(name)), events_(std::move(events)), options_(options) {
  // Keep the recorded stream time-ordered so windowing can early-exit; the final
  // canonical (time, function) order is established per-Arrivals() call, after
  // remapping.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const RawEvent& a, const RawEvent& b) { return a.time < b.time; });
}

std::unique_ptr<ReplaySource> ReplaySource::FromArrivalsCsv(const std::string& path,
                                                            ReplayOptions options,
                                                            trace::CsvError* error) {
  std::vector<ArrivalEvent> arrivals;
  if (!ReadArrivalsCsv(path, arrivals, error)) {
    return nullptr;
  }
  std::vector<RawEvent> events;
  events.reserve(arrivals.size());
  for (const ArrivalEvent& a : arrivals) {
    events.push_back(RawEvent{a.time, a.function, kNoRegion, /*mapped=*/true});
  }
  return std::unique_ptr<ReplaySource>(
      new ReplaySource("replay:arrivals", std::move(events), options));
}

std::unique_ptr<ReplaySource> ReplaySource::FromRequestsCsv(const std::string& path,
                                                            ReplayOptions options,
                                                            trace::CsvError* error) {
  trace::TraceStore store;
  if (!trace::ReadRequestsCsv(path, store, error)) {
    return nullptr;
  }
  std::vector<RawEvent> events;
  events.reserve(store.requests().size());
  for (const trace::RequestRecord& r : store.requests()) {
    events.push_back(RawEvent{r.timestamp, r.function_id, r.region, /*mapped=*/true});
  }
  return std::unique_ptr<ReplaySource>(
      new ReplaySource("replay:requests", std::move(events), options));
}

std::unique_ptr<ReplaySource> ReplaySource::FromExternalCsv(const std::string& path,
                                                            ReplayOptions options,
                                                            trace::CsvError* error) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    SetError(error, 0, "cannot open '" + path + "'");
    return nullptr;
  }
  COLDSTART_CHECK_GT(options.timestamp_scale, 0.0);
  std::vector<RawEvent> events;
  char line[4096];
  int64_t lineno = 0;
  bool maybe_header = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    if (IsBlankLine(line)) {
      continue;
    }
    // A physical line longer than the buffer would silently split into bogus
    // extra rows; reject it instead.
    if (std::strchr(line, '\n') == nullptr && !std::feof(f.get())) {
      SetError(error, lineno,
               "line exceeds " + std::to_string(sizeof(line) - 2) + " characters");
      return nullptr;
    }
    const auto fields = SplitCsvLine(line);
    double ts = 0;
    if (maybe_header && !fields.empty() && !ParseDouble(fields[0], ts)) {
      maybe_header = false;  // "timestamp,function,region,duration" title row.
      continue;
    }
    maybe_header = false;
    if (fields.size() < 2) {
      SetError(error, lineno,
               "expected at least 2 fields (timestamp,function), got " +
                   std::to_string(fields.size()));
      return nullptr;
    }
    if (!ParseDouble(fields[0], ts) || !std::isfinite(ts) || ts < 0) {
      SetError(error, lineno,
               "timestamp '" + fields[0] + "' is not a non-negative number");
      return nullptr;
    }
    if (fields[1].empty()) {
      SetError(error, lineno, "empty function field");
      return nullptr;
    }
    // Guard the scaled clock against int64 overflow (llround on an
    // out-of-range double is unspecified): a mis-set timestamp_scale must fail
    // loudly, not replay as zero arrivals.
    const double scaled_ts = ts * options.timestamp_scale;
    if (scaled_ts >= 9.2e18) {
      SetError(error, lineno, "timestamp '" + fields[0] + "' x timestamp_scale " +
                                  std::to_string(options.timestamp_scale) +
                                  " overflows the microsecond clock");
      return nullptr;
    }
    RawEvent e;
    e.time = static_cast<SimTime>(std::llround(scaled_ts));
    e.function_key = HashString(fields[1]);
    e.region_key = kNoRegion;
    e.mapped = false;
    if (fields.size() >= 3 && !fields[2].empty()) {
      if (!ParseLiteralRegion(fields[2], e.region_key)) {
        e.region_key = HashString(fields[2]);
      }
    }
    // The optional duration column is ignored: execution profiles come from the
    // population function the key is remapped onto.
    events.push_back(e);
  }
  if (std::ferror(f.get()) != 0) {
    SetError(error, lineno, "read error");
    return nullptr;
  }
  return std::unique_ptr<ReplaySource>(
      new ReplaySource("replay:external", std::move(events), options));
}

uint64_t ReplaySource::Fingerprint() const {
  // Hashes the loaded events themselves (not the file path): two configs replaying
  // different traces — or the same trace under different clip/scale options —
  // must never share a trace-cache entry.
  uint64_t h = HashString("workload-source:replay-v1");
  h = MixHash(h, HashString(name_));
  h = MixHash(h, static_cast<uint64_t>(options_.window_begin));
  h = MixHash(h, static_cast<uint64_t>(options_.window_end));
  h = MixHashDouble(h, options_.rate_scale);
  h = MixHashDouble(h, options_.timestamp_scale);
  h = MixHash(h, events_.size());
  for (const RawEvent& e : events_) {
    h = MixHash(h, static_cast<uint64_t>(e.time));
    h = MixHash(h, e.function_key);
    h = MixHash(h, e.region_key);
    h = MixHash(h, e.mapped ? 1 : 0);
  }
  return h;
}

// Day-chunked window over the source's time-sorted raw buffer. One forward
// cursor: raw events are consumed in order, remapped onto the population, and
// rate-scaled by the per-(seed, raw-index) hash — the identical per-event
// decisions the eager path made, split at day boundaries.
class ReplaySource::Stream final : public ArrivalStream {
 public:
  // Holds pointers into the population's heap buffers (not the Population object
  // itself), so the caller may move the Population around after opening — only
  // destroying or reallocating it invalidates the stream.
  Stream(const ReplaySource& source, const Population& pop, size_t num_regions,
         SimTime horizon, uint64_t seed, std::optional<trace::RegionId> region,
         std::optional<CellSlice> cell_slice)
      : source_(&source),
        functions_(pop.functions.data()),
        num_functions_(pop.functions.size()),
        region_begin_(pop.region_begin.data()),
        num_regions_(num_regions),
        horizon_(horizon),
        region_(region),
        cell_slice_(std::move(cell_slice)),
        num_days_(NumDayChunks(horizon)),
        // Remapping is salted independently of the seed: the same trace replayed
        // onto the same population hits the same functions across platform-seed
        // sweeps.
        remap_salt_(HashString("replay-function-remap")),
        rate_salt_(MixHash(seed, HashString("replay-rate-scale"))) {
    const ReplayOptions& options = source_->options_;
    COLDSTART_CHECK_GE(options.rate_scale, 0.0);
    whole_copies_ = static_cast<int>(options.rate_scale);
    extra_prob_ = options.rate_scale - whole_copies_;
  }

  bool NextChunk(ArrivalChunk* chunk) override {
    if (next_day_ >= num_days_) {
      return false;
    }
    const int64_t day = next_day_++;
    chunk->day = day;
    chunk->events.clear();
    const ReplayOptions& options = source_->options_;
    const std::vector<RawEvent>& events = source_->events_;
    const SimTime day_end = std::min((day + 1) * kDay, horizon_);
    while (next_ < events.size()) {
      const RawEvent& e = events[next_];
      if (e.time < options.window_begin) {
        ++next_;
        continue;
      }
      if (options.window_end > 0 && e.time >= options.window_end) {
        next_ = events.size();  // events is time-sorted: nothing further fits.
        break;
      }
      const SimTime t = e.time - options.window_begin;
      if (t >= horizon_) {
        next_ = events.size();
        break;
      }
      if (t >= day_end) {
        break;  // Belongs to a later chunk; leave for the next pull.
      }
      const trace::FunctionId fid = Remap(e);
      const size_t raw_index = next_++;  // The rate hash is keyed by raw index.
      if (region_.has_value() && functions_[fid].region != *region_) {
        continue;  // Filtered out before the rate draw (the hash is stateless).
      }
      if (cell_slice_.has_value() && !cell_slice_->Contains(fid)) {
        continue;  // Same stateless filter, refined to the shard's cell range.
      }
      int copies = whole_copies_;
      if (extra_prob_ > 0 &&
          Hash01(MixHash(rate_salt_, raw_index)) < extra_prob_) {
        ++copies;
      }
      for (int c = 0; c < copies; ++c) {
        chunk->events.push_back(ArrivalEvent{t, fid});
      }
    }
    std::sort(chunk->events.begin(), chunk->events.end(), ArrivalOrderLess);
    return true;
  }

  // Checkpoint support: everything else is construction-derived (salts, copy
  // counts, borrowed buffers) — only the raw-buffer cursor and day counter move.
  bool SaveState(ByteWriter& w) const override {
    w.U64(next_);
    w.I64(next_day_);
    return true;
  }

  bool RestoreState(ByteReader& r) override {
    next_ = r.U64();
    next_day_ = r.I64();
    COLDSTART_CHECK_LE(next_, source_->events_.size());
    COLDSTART_CHECK_LE(next_day_, num_days_);
    return true;
  }

 private:
  trace::FunctionId Remap(const RawEvent& e) const {
    const size_t num_functions = num_functions_;
    if (e.mapped && e.function_key < num_functions) {
      return static_cast<trace::FunctionId>(e.function_key);
    }
    // Remap the opaque key onto the population: region-pinned keys land in
    // their region's id range, everything else spreads over all functions.
    // (Also reached for `mapped` ids from a trace recorded under a larger
    // population — degraded but total, rather than a crash.)
    const uint64_t key = MixHash(remap_salt_, e.function_key);
    size_t lo = 0;
    size_t span = num_functions;
    if (e.region_key != kNoRegion) {
      const size_t region =
          e.region_key < num_regions_
              ? static_cast<size_t>(e.region_key)
              : MixHash(remap_salt_, e.region_key) % num_regions_;
      lo = region_begin_[region];
      span = region_begin_[region + 1] - lo;
      if (span == 0) {  // Region has no functions at this scale.
        lo = 0;
        span = num_functions;
      }
    }
    return static_cast<trace::FunctionId>(lo + key % span);
  }

  const ReplaySource* source_;
  const FunctionSpec* functions_;
  size_t num_functions_;
  const uint32_t* region_begin_;
  size_t num_regions_;
  SimTime horizon_;
  std::optional<trace::RegionId> region_;
  std::optional<CellSlice> cell_slice_;
  int64_t num_days_;
  uint64_t remap_salt_;
  uint64_t rate_salt_;
  int whole_copies_ = 0;
  double extra_prob_ = 0;
  size_t next_ = 0;      // Cursor into source_->events_ (raw index: rate hash key).
  int64_t next_day_ = 0;
};

std::unique_ptr<ArrivalStream> ReplaySource::OpenStream(
    const Population& pop, const std::vector<RegionProfile>& profiles,
    const Calendar& calendar, uint64_t seed,
    std::optional<trace::RegionId> region,
    std::optional<CellSlice> cell_slice) const {
  COLDSTART_CHECK(!pop.functions.empty());
  COLDSTART_CHECK_EQ(pop.region_begin.size(), profiles.size() + 1);
  return std::make_unique<Stream>(*this, pop, profiles.size(), calendar.horizon(),
                                  seed, region, std::move(cell_slice));
}

bool WriteArrivalsCsv(const std::vector<ArrivalEvent>& arrivals,
                      const std::string& path) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(), "timestamp_us,function\n");
  for (const ArrivalEvent& a : arrivals) {
    std::fprintf(f.get(), "%" PRId64 ",%u\n", a.time, a.function);
  }
  return std::ferror(f.get()) == 0;
}

bool WriteArrivalsCsv(ArrivalStream& stream, const std::string& path,
                      size_t* count) {
  FilePtr f = OpenWrite(path);
  if (f == nullptr) {
    return false;
  }
  std::fprintf(f.get(), "timestamp_us,function\n");
  size_t rows = 0;
  ArrivalChunk chunk;
  while (stream.NextChunk(&chunk)) {
    for (const ArrivalEvent& a : chunk.events) {
      std::fprintf(f.get(), "%" PRId64 ",%u\n", a.time, a.function);
    }
    rows += chunk.events.size();
  }
  if (count != nullptr) {
    *count = rows;
  }
  return std::ferror(f.get()) == 0;
}

bool ReadArrivalsCsv(const std::string& path, std::vector<ArrivalEvent>& out,
                     trace::CsvError* error) {
  FilePtr f = OpenRead(path);
  if (f == nullptr) {
    SetError(error, 0, "cannot open '" + path + "'");
    return false;
  }
  char line[256];
  int64_t lineno = 0;
  bool first = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    if (first) {  // Header.
      first = false;
      continue;
    }
    if (IsBlankLine(line)) {
      continue;
    }
    if (std::strchr(line, '\n') == nullptr && !std::feof(f.get())) {
      SetError(error, lineno,
               "line exceeds " + std::to_string(sizeof(line) - 2) + " characters");
      return false;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 2) {
      SetError(error, lineno, "expected 2 fields (timestamp_us,function), got " +
                                  std::to_string(fields.size()));
      return false;
    }
    int64_t t = 0;
    uint64_t fn = 0;
    if (!ParseI64(fields[0], t) || t < 0) {
      SetError(error, lineno,
               "timestamp_us '" + fields[0] + "' is not a non-negative integer");
      return false;
    }
    if (!ParseU64(fields[1], UINT32_MAX, fn)) {
      SetError(error, lineno, "function '" + fields[1] + "' is not a valid id");
      return false;
    }
    out.push_back(ArrivalEvent{t, static_cast<trace::FunctionId>(fn)});
  }
  if (std::ferror(f.get()) != 0) {
    SetError(error, lineno, "read error");
    return false;
  }
  return true;
}

}  // namespace coldstart::workload
