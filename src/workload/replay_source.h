// Trace replay: drive the platform from a recorded invocation stream.
//
// The source paper is built on a real month-long trace; related systems (SPES,
// the cold-start systematic reviews) evaluate mitigation policies by replaying
// recorded traces. ReplaySource closes that loop for us: it streams arrivals from
//   (a) an arrivals CSV exported by this library (lossless: replaying reproduces
//       the original run bit for bit, serial or region-sharded),
//   (b) our own numeric-mode requests CSV (trace/csv.h) — an approximate replay,
//       since request timestamps are execution starts, not arrivals, and workflow
//       children recorded there are re-injected as exogenous load, or
//   (c) a generic external invocation trace (Azure-Functions-style
//       "timestamp,function,region,duration" rows) whose opaque function/region
//       keys are remapped deterministically onto our Population.
// All modes support time-window clipping and deterministic rate scaling.
//
// Replay memory is O(recorded events) for the raw buffer (inherent: it is loaded
// from a file), but arrival *delivery* is day-chunked: OpenStream windows the
// time-sorted buffer with a single forward cursor, remapping and rate-scaling
// each day on demand, so no second materialized arrival vector is ever built.
#ifndef COLDSTART_WORKLOAD_REPLAY_SOURCE_H_
#define COLDSTART_WORKLOAD_REPLAY_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "trace/csv.h"
#include "workload/workload_source.h"

namespace coldstart::workload {

struct ReplayOptions {
  // Clip to recorded times in [window_begin, window_end) and shift so the window
  // starts at t = 0. window_end <= 0 means "no upper clip". Events at or past the
  // calendar horizon are dropped after shifting.
  SimTime window_begin = 0;
  SimTime window_end = 0;
  // Load multiplier. Each recorded event is emitted floor(rate_scale) times plus
  // one more with probability frac(rate_scale), decided by a deterministic
  // per-event hash — 0.5 thins to half the load, 2.0 doubles it. Copies share the
  // original timestamp (the simulator orders equal-time events by sequence).
  double rate_scale = 1.0;
  // Multiplier applied to recorded timestamps before windowing, for traces whose
  // clock is not in microseconds (e.g. 1e6 for seconds-resolution traces).
  double timestamp_scale = 1.0;
};

class ReplaySource final : public WorkloadSource {
 public:
  // One recorded invocation before remapping. For native modes (arrivals /
  // requests CSV) `function_key` is already a population function id and
  // `mapped` is true; for external traces it is a hash of the opaque function
  // name, mapped onto the population at Arrivals() time.
  struct RawEvent {
    SimTime time = 0;
    uint64_t function_key = 0;
    uint64_t region_key = 0;  // kNoRegion when the trace has no region column.
    bool mapped = false;      // function_key is a literal population id.
  };
  static constexpr uint64_t kNoRegion = ~uint64_t{0};

  // Loaders return nullptr on failure and report the offending line via `error`.
  // (a) Lossless arrivals CSV ("timestamp_us,function"), written by
  //     WriteArrivalsCsv below or by the trace_export / trace_replay drivers.
  static std::unique_ptr<ReplaySource> FromArrivalsCsv(const std::string& path,
                                                       ReplayOptions options = {},
                                                       trace::CsvError* error = nullptr);
  // (b) Our numeric-mode requests CSV: every request row becomes an arrival at its
  //     recorded (execution-start) timestamp.
  static std::unique_ptr<ReplaySource> FromRequestsCsv(const std::string& path,
                                                       ReplayOptions options = {},
                                                       trace::CsvError* error = nullptr);
  // (c) External "timestamp,function,region,duration" rows (header optional;
  //     region and duration columns optional). Function and region fields are
  //     opaque strings; durations are ignored — execution profiles come from the
  //     population spec the key is remapped onto. A region of the form R1..R5
  //     pins the key to that region's function range; anything else hashes to a
  //     region deterministically.
  static std::unique_ptr<ReplaySource> FromExternalCsv(const std::string& path,
                                                       ReplayOptions options = {},
                                                       trace::CsvError* error = nullptr);

  const char* name() const override { return name_.c_str(); }
  uint64_t Fingerprint() const override;
  // Day-chunked window over the recorded buffer: each chunk remaps and
  // rate-scales the raw events whose shifted time falls in the day, sorted by
  // (time, function). The source must outlive the stream (it borrows the raw
  // event buffer); remapping is salted independently of `seed`, rate scaling by
  // a per-(seed, raw-index) hash — both identical to the eager path, so chunked
  // and materialized replay are bit-identical (pinned by replay_test).
  // Cost note: a region-filtered stream still scans (and remaps) the whole raw
  // buffer to decide what is in-region, so R shards do R scans — a deliberate
  // trade for never materializing a second per-region arrival vector; the scan
  // is hashing-only and is dwarfed by the simulation it feeds.
  std::unique_ptr<ArrivalStream> OpenStream(
      const Population& pop, const std::vector<RegionProfile>& profiles,
      const Calendar& calendar, uint64_t seed,
      std::optional<trace::RegionId> region = std::nullopt,
      std::optional<CellSlice> cell_slice = std::nullopt) const override;

  size_t raw_event_count() const { return events_.size(); }
  const ReplayOptions& options() const { return options_; }

 private:
  class Stream;

  ReplaySource(std::string name, std::vector<RawEvent> events, ReplayOptions options);

  std::string name_;
  std::vector<RawEvent> events_;  // Sorted by recorded time.
  ReplayOptions options_;
};

// Lossless arrival-stream checkpoint ("timestamp_us,function" numeric rows).
// Round trip: WriteArrivalsCsv(GenerateArrivals(...)) -> FromArrivalsCsv yields a
// source whose Arrivals() equals the original vector exactly.
bool WriteArrivalsCsv(const std::vector<ArrivalEvent>& arrivals,
                      const std::string& path);
// Streaming variant: drains `stream` chunk by chunk into the same format without
// ever materializing the full vector (what trace_export / trace_replay use for
// long horizons). Writes the number of rows to *count when non-null.
bool WriteArrivalsCsv(ArrivalStream& stream, const std::string& path,
                      size_t* count = nullptr);
bool ReadArrivalsCsv(const std::string& path, std::vector<ArrivalEvent>& out,
                     trace::CsvError* error = nullptr);

}  // namespace coldstart::workload

#endif  // COLDSTART_WORKLOAD_REPLAY_SOURCE_H_
