#include "workload/diurnal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

DiurnalProfile::DiurnalProfile(DiurnalParams params, Calendar calendar)
    : params_(std::move(params)), calendar_(calendar) {
  COLDSTART_CHECK_GE(params_.floor, 0.0);
  // Normalize the day shape so its maximum is 1: scan at 1-minute resolution (bumps are
  // smooth; minute resolution is far below their curvature scale).
  double peak = 0.0;
  for (int m = 0; m < 24 * 60; ++m) {
    peak = std::max(peak, DayShapeRaw(static_cast<double>(m) / 60.0));
  }
  peak_norm_ = peak > 0 ? peak : 1.0;
}

double DiurnalProfile::DayShape(double hour_of_day) const {
  return DayShapeRaw(hour_of_day) / peak_norm_;
}

double DiurnalProfile::DayLevel(int64_t day) const {
  double level = calendar_.IsWeekend(day) ? params_.weekend_factor : 1.0;
  switch (params_.holiday) {
    case HolidayResponse::kNone:
      return level;
    case HolidayResponse::kRise:
      if (calendar_.IsHoliday(day)) {
        level *= params_.holiday_level;  // holiday_level > 1 for the rise pattern.
      }
      return level;
    case HolidayResponse::kDipWithCatchUp: {
      if (calendar_.IsHoliday(day)) {
        // Weekend-like level during the holiday regardless of weekday.
        return std::min(level, 1.0) * params_.holiday_level;
      }
      if (day == calendar_.last_workday_before_holiday()) {
        level *= params_.pre_holiday_boost;
      }
      const int64_t since = calendar_.DaysSinceHolidayEnd(day);
      if (since >= 0 && !calendar_.IsWeekend(day)) {
        const double boost =
            1.0 + (params_.catch_up_boost - 1.0) *
                      std::exp(-static_cast<double>(since) / params_.catch_up_decay_days);
        level *= boost;
      }
      return level;
    }
  }
  return level;
}

double DiurnalProfile::RateMultiplier(SimTime t) const {
  const int64_t day = DayIndex(t);
  return DayShape(HourOfDay(t)) * DayLevel(day);
}

double DiurnalProfile::DayShapeRaw(double hour_of_day) const {
  double v = params_.floor;
  for (const auto& bump : params_.bumps) {
    const double phase = kTwoPi * (hour_of_day - bump.peak_hour) / 24.0;
    v += bump.amplitude * std::exp(bump.concentration * (std::cos(phase) - 1.0));
  }
  return v;
}

}  // namespace coldstart::workload
