#include "workload/workload_source.h"

#include "common/rng.h"

namespace coldstart::workload {

std::vector<ArrivalEvent> WorkloadSource::Arrivals(
    const Population& pop, const std::vector<RegionProfile>& profiles,
    const Calendar& calendar, uint64_t seed) const {
  const std::unique_ptr<ArrivalStream> stream =
      OpenStream(pop, profiles, calendar, seed);
  return DrainArrivalStream(*stream);
}

uint64_t SyntheticSource::Fingerprint() const {
  // The generator's behaviour is fully determined by (pop, profiles, calendar,
  // seed), which the scenario fingerprint already covers; a versioned tag is all
  // that is needed to separate it from every replay source.
  return HashString("workload-source:synthetic-v1");
}

std::unique_ptr<ArrivalStream> SyntheticSource::OpenStream(
    const Population& pop, const std::vector<RegionProfile>& profiles,
    const Calendar& calendar, uint64_t seed,
    std::optional<trace::RegionId> region,
    std::optional<CellSlice> cell_slice) const {
  return std::make_unique<SyntheticArrivalStream>(pop, profiles, calendar, seed,
                                                  region, std::move(cell_slice));
}

const WorkloadSource& DefaultSyntheticSource() {
  static const SyntheticSource source;
  return source;
}

}  // namespace coldstart::workload
