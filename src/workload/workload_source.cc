#include "workload/workload_source.h"

#include "common/rng.h"

namespace coldstart::workload {

uint64_t SyntheticSource::Fingerprint() const {
  // The generator's behaviour is fully determined by (pop, profiles, calendar,
  // seed), which the scenario fingerprint already covers; a versioned tag is all
  // that is needed to separate it from every replay source.
  return HashString("workload-source:synthetic-v1");
}

std::vector<ArrivalEvent> SyntheticSource::Arrivals(
    const Population& pop, const std::vector<RegionProfile>& profiles,
    const Calendar& calendar, uint64_t seed) const {
  return GenerateArrivals(pop, profiles, calendar, seed);
}

const WorkloadSource& DefaultSyntheticSource() {
  static const SyntheticSource source;
  return source;
}

}  // namespace coldstart::workload
