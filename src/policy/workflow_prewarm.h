// Workflow call-chain prewarming (§5 "Workflow function calls can be predicted").
//
// When a request of a function with workflow children starts, the children are likely
// to be invoked within the parent's execution time. This policy prewarms pods for
// high-probability children that have no available pod, hiding the child's cold start
// behind the parent's execution.
#ifndef COLDSTART_POLICY_WORKFLOW_PREWARM_H_
#define COLDSTART_POLICY_WORKFLOW_PREWARM_H_

#include <memory>
#include <unordered_map>

#include "platform/platform.h"

namespace coldstart::policy {

class WorkflowPrewarmPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    double min_edge_probability = 0.15;  // Ignore unlikely edges.
    SimDuration prewarm_keep_alive = kMinute;
    SimDuration per_child_cooldown = 30 * kSecond;  // At most one prewarm per window.
  };

  WorkflowPrewarmPolicy();
  explicit WorkflowPrewarmPolicy(Options options);

  void OnAttach(platform::Platform& platform) override { platform_ = &platform; }
  void OnParentRequestStart(const workload::FunctionSpec& parent, SimTime now) override;

  // Workflow edges are wired within a region, so per-child cooldown state shards
  // cleanly.
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<WorkflowPrewarmPolicy>(options_);
  }
  // Reads only the parent's edges and the children's pod availability; workflow
  // components never span capacity cells (workload/function_cells.h), so every
  // observation stays inside the shard.
  bool is_function_local() const override { return true; }
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override {
    prewarms_issued_ +=
        static_cast<const WorkflowPrewarmPolicy&>(shard).prewarms_issued_;
  }

  int64_t prewarms_issued() const { return prewarms_issued_; }

  // Checkpointable: the cooldown table (sorted by child id) and the prewarm
  // counter; platform_ is re-wired by OnAttach on the resumed platform.
  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

 private:
  Options options_;
  platform::Platform* platform_ = nullptr;
  std::unordered_map<trace::FunctionId, SimTime> last_prewarm_;
  int64_t prewarms_issued_ = 0;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_WORKFLOW_PREWARM_H_
