// Dynamic keep-alive (§5: "Cloud providers may consider a dynamic keep-alive time").
//
// Learns each function's inter-arrival time online and sizes the keep-alive window to
// it: functions that return within a bit more than their IAT keep their pods warm
// (fewer cold starts), while functions firing far apart release pods almost
// immediately (less wasted pod-time than the fixed 60 s default).
#ifndef COLDSTART_POLICY_KEEPALIVE_H_
#define COLDSTART_POLICY_KEEPALIVE_H_

#include <memory>
#include <unordered_map>

#include "platform/policy_hooks.h"

namespace coldstart::policy {

class DynamicKeepAlivePolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    SimDuration min_keep_alive = 5 * kSecond;
    SimDuration max_keep_alive = 10 * kMinute;
    SimDuration default_keep_alive = kMinute;
    double headroom = 1.25;  // Keep-alive = headroom x IAT estimate.
    double ewma_alpha = 0.3;
    int min_observations = 3;
  };

  DynamicKeepAlivePolicy();
  explicit DynamicKeepAlivePolicy(Options options);

  void OnArrival(const workload::FunctionSpec& spec, SimTime now) override;
  SimDuration KeepAliveFor(const workload::FunctionSpec& spec, SimTime now) override;

  // Per-function IAT state only: shards cleanly by region.
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<DynamicKeepAlivePolicy>(options_);
  }
  // Keep-alive decisions read only the function's own IAT history — no pools,
  // no region load — so capacity-cell shards see identical inputs.
  bool is_function_local() const override { return true; }

  // Checkpointable: the learned state is the per-function IAT table, serialized
  // sorted by function id.
  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

 private:
  struct History {
    SimTime last_arrival = -1;
    double iat_ewma = 0;
    int observations = 0;
  };

  Options options_;
  std::unordered_map<trace::FunctionId, History> history_;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_KEEPALIVE_H_
