// Prewarming policies (§4.3 / §5 "Predicting cold starts").
//
// TimerAwarePrewarmPolicy: learns each function's inter-arrival period online (timers
// are strictly periodic, so the estimate converges after two arrivals) and spawns a
// prewarmed pod shortly before the next predicted fire when the period exceeds the
// keep-alive window. This directly targets the Fig. 14 diagonal: timer functions that
// cold-start on every invocation.
//
// ProfilePrewarmPolicy: watches functions that recently cold-started and keeps a pod
// warm when the learned minute-of-day profile predicts an imminent invocation —
// the "pre-warm pods with popular configurations" direction of §3.3.
#ifndef COLDSTART_POLICY_PREWARM_H_
#define COLDSTART_POLICY_PREWARM_H_

#include <memory>
#include <set>
#include <unordered_map>

#include "platform/platform.h"

namespace coldstart::policy {

// Prediction state (history_) feeds self-scheduled simulator closures that no
// serializer can capture, so this policy is deliberately non-checkpointable:
// Run(..., &checkpoint) rejects it up front (policy_hooks.h).
// LINT-ALLOW(policy-hooks): prewarm closures live in the event queue; the policy cannot checkpoint by design and Run() refuses it up front
class TimerAwarePrewarmPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    SimDuration lead_time = 5 * kSecond;    // Spawn this long before the predicted fire.
    SimDuration max_period = 2 * kHour;     // Don't prewarm rarer functions than this.
    double stability_tolerance = 0.05;      // |IAT - estimate| / estimate to call it periodic.
    int min_observations = 3;
  };

  TimerAwarePrewarmPolicy();
  explicit TimerAwarePrewarmPolicy(Options options);

  void OnAttach(platform::Platform& platform) override { platform_ = &platform; }
  void OnArrival(const workload::FunctionSpec& spec, SimTime now) override;

  // Per-function period estimates only: shards cleanly by region.
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<TimerAwarePrewarmPolicy>(options_);
  }
  // Period estimates and prewarm spawns are keyed by the observed function
  // alone (ProfilePrewarm, by contrast, competes functions for a region-wide
  // per-tick budget and must stay region-level).
  bool is_function_local() const override { return true; }
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override {
    prewarms_issued_ +=
        static_cast<const TimerAwarePrewarmPolicy&>(shard).prewarms_issued_;
  }

  int64_t prewarms_issued() const { return prewarms_issued_; }

 private:
  struct FunctionHistory {
    SimTime last_arrival = -1;
    double period_estimate = 0;  // µs.
    int stable_count = 0;
  };

  Options options_;
  platform::Platform* platform_ = nullptr;
  std::unordered_map<trace::FunctionId, FunctionHistory> history_;
  int64_t prewarms_issued_ = 0;
};

class ProfilePrewarmPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    double min_expected_arrivals = 0.3;  // Prewarm when next-minute prediction exceeds.
    SimDuration prewarm_keep_alive = 2 * kMinute;
    int max_prewarms_per_tick = 50;
  };

  ProfilePrewarmPolicy();
  explicit ProfilePrewarmPolicy(Options options);

  void OnAttach(platform::Platform& platform) override { platform_ = &platform; }
  void OnArrival(const workload::FunctionSpec& spec, SimTime now) override;
  void OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                   SimDuration total) override;
  void OnMinuteTick(SimTime now) override;

  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

  // Per-function minute-of-day profiles only: shards cleanly by region.
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<ProfilePrewarmPolicy>(options_);
  }
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override {
    prewarms_issued_ +=
        static_cast<const ProfilePrewarmPolicy&>(shard).prewarms_issued_;
  }

  int64_t prewarms_issued() const { return prewarms_issued_; }

 private:
  struct Profile {
    // Smoothed arrivals per minute-of-day (1440 bins), updated online.
    std::vector<float> per_minute = std::vector<float>(1440, 0.f);
    int days_observed = 0;
  };

  Options options_;
  platform::Platform* platform_ = nullptr;
  std::unordered_map<trace::FunctionId, Profile> profiles_;
  // Cold-started recently. Ordered: OnMinuteTick walks it under a prewarm
  // budget, so which functions win the budget must not depend on hash order.
  std::set<trace::FunctionId> watch_list_;
  int64_t prewarms_issued_ = 0;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_PREWARM_H_
