#include "policy/composite.h"

#include <algorithm>

#include "common/byte_serde.h"
#include "common/check.h"

namespace coldstart::policy {

CompositePolicy& CompositePolicy::Add(std::unique_ptr<platform::PlatformPolicy> policy) {
  policies_.push_back(std::move(policy));
  return *this;
}

bool CompositePolicy::is_region_local() const {
  return std::all_of(policies_.begin(), policies_.end(),
                     [](const auto& p) { return p->is_region_local(); });
}

bool CompositePolicy::is_function_local() const {
  return std::all_of(policies_.begin(), policies_.end(),
                     [](const auto& p) { return p->is_function_local(); });
}

std::unique_ptr<platform::PlatformPolicy> CompositePolicy::CloneForShard() const {
  auto clone = std::make_unique<CompositePolicy>();
  for (const auto& p : policies_) {
    auto sub = p->CloneForShard();
    if (sub == nullptr) {
      return nullptr;
    }
    clone->Add(std::move(sub));
  }
  return clone;
}

void CompositePolicy::AbsorbShardStats(const platform::PlatformPolicy& shard) {
  // CloneForShard produced the shard, so its sub-policy list mirrors ours.
  const auto& other = static_cast<const CompositePolicy&>(shard);
  for (size_t i = 0; i < policies_.size(); ++i) {
    policies_[i]->AbsorbShardStats(*other.policies_[i]);
  }
}

void CompositePolicy::OnAttach(platform::Platform& platform) {
  for (auto& p : policies_) {
    p->OnAttach(platform);
  }
}

SimDuration CompositePolicy::AdmissionDelay(const workload::FunctionSpec& spec,
                                            SimTime now,
                                            const platform::RegionLoadState& load) {
  SimDuration delay = 0;
  for (auto& p : policies_) {
    delay = std::max(delay, p->AdmissionDelay(spec, now, load));
  }
  return delay;
}

SimDuration CompositePolicy::KeepAliveFor(const workload::FunctionSpec& spec,
                                          SimTime now) {
  for (auto& p : policies_) {
    const SimDuration ka = p->KeepAliveFor(spec, now);
    if (ka != kMinute) {
      return ka;
    }
  }
  return kMinute;
}

trace::RegionId CompositePolicy::RouteColdStart(const workload::FunctionSpec& spec,
                                                SimTime now) {
  for (auto& p : policies_) {
    const trace::RegionId r = p->RouteColdStart(spec, now);
    if (r != spec.region) {
      return r;
    }
  }
  return spec.region;
}

void CompositePolicy::OnArrival(const workload::FunctionSpec& spec, SimTime now) {
  for (auto& p : policies_) {
    p->OnArrival(spec, now);
  }
}

void CompositePolicy::OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                                  SimDuration total) {
  for (auto& p : policies_) {
    p->OnColdStart(spec, now, total);
  }
}

void CompositePolicy::OnParentRequestStart(const workload::FunctionSpec& parent,
                                           SimTime now) {
  for (auto& p : policies_) {
    p->OnParentRequestStart(parent, now);
  }
}

void CompositePolicy::OnMinuteTick(SimTime now) {
  for (auto& p : policies_) {
    p->OnMinuteTick(now);
  }
}

bool CompositePolicy::SavePolicyState(std::string* out) const {
  ByteWriter w;
  w.U64(policies_.size());
  for (const auto& p : policies_) {
    std::string sub;
    if (!p->SavePolicyState(&sub)) {
      return false;
    }
    w.Str(sub);
  }
  *out = w.Take();
  return true;
}

bool CompositePolicy::RestorePolicyState(std::string_view blob) {
  ByteReader r(blob);
  COLDSTART_CHECK_EQ(r.U64(), policies_.size());
  for (auto& p : policies_) {
    const std::string sub = r.Str();
    if (!p->RestorePolicyState(sub)) {
      return false;
    }
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
