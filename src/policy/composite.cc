#include "policy/composite.h"

#include <algorithm>

namespace coldstart::policy {

CompositePolicy& CompositePolicy::Add(std::unique_ptr<platform::PlatformPolicy> policy) {
  policies_.push_back(std::move(policy));
  return *this;
}

void CompositePolicy::OnAttach(platform::Platform& platform) {
  for (auto& p : policies_) {
    p->OnAttach(platform);
  }
}

SimDuration CompositePolicy::AdmissionDelay(const workload::FunctionSpec& spec,
                                            SimTime now,
                                            const platform::RegionLoadState& load) {
  SimDuration delay = 0;
  for (auto& p : policies_) {
    delay = std::max(delay, p->AdmissionDelay(spec, now, load));
  }
  return delay;
}

SimDuration CompositePolicy::KeepAliveFor(const workload::FunctionSpec& spec,
                                          SimTime now) {
  for (auto& p : policies_) {
    const SimDuration ka = p->KeepAliveFor(spec, now);
    if (ka != kMinute) {
      return ka;
    }
  }
  return kMinute;
}

trace::RegionId CompositePolicy::RouteColdStart(const workload::FunctionSpec& spec,
                                                SimTime now) {
  for (auto& p : policies_) {
    const trace::RegionId r = p->RouteColdStart(spec, now);
    if (r != spec.region) {
      return r;
    }
  }
  return spec.region;
}

void CompositePolicy::OnArrival(const workload::FunctionSpec& spec, SimTime now) {
  for (auto& p : policies_) {
    p->OnArrival(spec, now);
  }
}

void CompositePolicy::OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                                  SimDuration total) {
  for (auto& p : policies_) {
    p->OnColdStart(spec, now, total);
  }
}

void CompositePolicy::OnParentRequestStart(const workload::FunctionSpec& parent,
                                           SimTime now) {
  for (auto& p : policies_) {
    p->OnParentRequestStart(parent, now);
  }
}

void CompositePolicy::OnMinuteTick(SimTime now) {
  for (auto& p : policies_) {
    p->OnMinuteTick(now);
  }
}

}  // namespace coldstart::policy
