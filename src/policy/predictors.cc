#include "policy/predictors.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace coldstart::policy {

MovingAveragePredictor::MovingAveragePredictor(int window) {
  COLDSTART_CHECK_GT(window, 0);
  ring_.assign(static_cast<size_t>(window), 0.0);
}

void MovingAveragePredictor::Observe(double value) {
  sum_ += value - ring_[next_];
  ring_[next_] = value;
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  if (next_ == 0) {
    // Re-derive the running sum once per wraparound: the incremental update
    // accumulates floating-point drift over unbounded streams, and a fresh
    // sum every `window` observations keeps the error bounded by one pass.
    double sum = 0;
    for (const double v : ring_) {
      sum += v;
    }
    sum_ = sum;
  }
}

double MovingAveragePredictor::Predict() const {
  return filled_ == 0 ? 0.0 : sum_ / static_cast<double>(filled_);
}

SeasonalNaivePredictor::SeasonalNaivePredictor(int season) {
  COLDSTART_CHECK_GT(season, 0);
  season_.assign(static_cast<size_t>(season), 0.0);
}

void SeasonalNaivePredictor::Observe(double value) {
  season_[pos_] = value;
  pos_ = (pos_ + 1) % season_.size();
  ++observed_;
  last_ = value;
}

double SeasonalNaivePredictor::Predict() const {
  if (observed_ < season_.size()) {
    return last_;
  }
  // pos_ currently points at the slot holding the value from exactly one season ago.
  return season_[pos_];
}

HoltWintersPredictor::HoltWintersPredictor(int season, double alpha, double beta,
                                           double gamma)
    : alpha_(alpha), beta_(beta), gamma_(gamma) {
  COLDSTART_CHECK_GT(season, 0);
  seasonal_.assign(static_cast<size_t>(season), 0.0);
}

void HoltWintersPredictor::Observe(double value) {
  if (observed_ == 0) {
    level_ = value;
  }
  const double s = seasonal_[pos_];
  const double prev_level = level_;
  level_ = alpha_ * (value - s) + (1 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1 - beta_) * trend_;
  seasonal_[pos_] = gamma_ * (value - level_) + (1 - gamma_) * s;
  pos_ = (pos_ + 1) % seasonal_.size();
  ++observed_;
}

double HoltWintersPredictor::Predict() const {
  return std::max(0.0, level_ + trend_ + seasonal_[pos_]);
}

std::unique_ptr<SeriesPredictor> MakePredictor(const std::string& kind, int season) {
  if (kind == "moving-average") {
    return std::make_unique<MovingAveragePredictor>(30);
  }
  if (kind == "seasonal-naive") {
    return std::make_unique<SeasonalNaivePredictor>(season);
  }
  if (kind == "holt-winters") {
    return std::make_unique<HoltWintersPredictor>(season, 0.3, 0.05, 0.15);
  }
  COLDSTART_CHECK(false);
  return nullptr;
}

}  // namespace coldstart::policy
