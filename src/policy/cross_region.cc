#include "policy/cross_region.h"

namespace coldstart::policy {

CrossRegionPolicy::CrossRegionPolicy() : CrossRegionPolicy(Options{}) {}
CrossRegionPolicy::CrossRegionPolicy(Options options) : options_(options) {}

trace::RegionId CrossRegionPolicy::RouteColdStart(const workload::FunctionSpec& spec,
                                                  SimTime) {
  if (platform_ == nullptr) {
    return spec.region;
  }
  if (!options_.offload_synchronous && trace::IsSynchronous(spec.primary_trigger)) {
    return spec.region;
  }
  const auto& home = platform_->load(spec.region);
  if (home.active_cold_starts < options_.home_pressure_threshold) {
    return spec.region;
  }
  // Pick the quietest peer region; offload only if it is genuinely idle.
  const int num_regions = static_cast<int>(platform_->profiles().size());
  int best = -1;
  int best_load = options_.peer_quiet_threshold;
  for (int r = 0; r < num_regions; ++r) {
    if (r == spec.region) {
      continue;
    }
    const int load = platform_->load(static_cast<trace::RegionId>(r)).active_cold_starts;
    if (load < best_load) {
      best_load = load;
      best = r;
    }
  }
  if (best < 0) {
    return spec.region;
  }
  ++offloads_;
  return static_cast<trace::RegionId>(best);
}

}  // namespace coldstart::policy
