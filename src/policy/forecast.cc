#include "policy/forecast.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace coldstart::policy {

// --- InterArrivalForecaster. ------------------------------------------------

int InterArrivalForecaster::BucketOf(SimDuration iat) {
  const uint64_t us = iat > 0 ? static_cast<uint64_t>(iat) : 1;
  const int bucket = std::bit_width(us) - 1;  // floor(log2).
  return std::min(bucket, kNumBuckets - 1);
}

InterArrivalForecaster::InterArrivalForecaster(Options options)
    : options_(options) {
  COLDSTART_CHECK_GT(options_.window, 0);
  ring_.assign(static_cast<size_t>(options_.window), 0);
}

void InterArrivalForecaster::ObserveArrival(SimTime now) {
  hour_counts_[static_cast<size_t>(HourIndex(now) % 24)] += 1;
  if (last_arrival_ >= 0) {
    const SimDuration iat = now - last_arrival_;
    if (iat > 0) {
      if (filled_ == ring_.size()) {
        hist_[static_cast<size_t>(BucketOf(ring_[next_]))] -= 1;  // Evict.
      }
      ring_[next_] = iat;
      hist_[static_cast<size_t>(BucketOf(iat))] += 1;
      next_ = (next_ + 1) % ring_.size();
      filled_ = std::min<uint64_t>(filled_ + 1, ring_.size());
    }
  }
  last_arrival_ = now;
}

int InterArrivalForecaster::ModalBucket() const {
  if (filled_ == 0) {
    return -1;
  }
  int best = 0;
  for (int b = 1; b < kNumBuckets; ++b) {
    if (hist_[static_cast<size_t>(b)] > hist_[static_cast<size_t>(best)]) {
      best = b;  // Strict >: ties resolve to the lowest bucket.
    }
  }
  return best;
}

double InterArrivalForecaster::Confidence() const {
  if (filled_ < static_cast<uint64_t>(options_.min_samples)) {
    return 0.0;
  }
  const int modal = ModalBucket();
  uint64_t mass = 0;
  for (int b = std::max(0, modal - 1); b <= std::min(kNumBuckets - 1, modal + 1);
       ++b) {
    mass += hist_[static_cast<size_t>(b)];
  }
  return static_cast<double>(mass) / static_cast<double>(filled_);
}

bool InterArrivalForecaster::Confident() const {
  return Confidence() >= options_.min_confidence;
}

SimDuration InterArrivalForecaster::PredictedIat() const {
  if (filled_ < static_cast<uint64_t>(options_.min_samples)) {
    return 0;
  }
  const int modal = ModalBucket();
  // Exact integer mean of the window samples inside the modal neighborhood:
  // a trimmed mean that is exact for strict timers and immune to the stray
  // multi-hour gap that would wreck a plain average.
  int64_t sum = 0;
  int64_t count = 0;
  for (uint64_t i = 0; i < filled_; ++i) {
    const int64_t iat = ring_[i];
    const int b = BucketOf(iat);
    if (b >= modal - 1 && b <= modal + 1) {
      sum += iat;
      ++count;
    }
  }
  COLDSTART_CHECK_GT(count, 0);
  return sum / count;
}

SimDuration InterArrivalForecaster::MeanIat() const {
  if (filled_ == 0) {
    return 0;
  }
  int64_t sum = 0;
  for (uint64_t i = 0; i < filled_; ++i) {
    sum += ring_[i];
  }
  return sum / static_cast<int64_t>(filled_);
}

SimTime InterArrivalForecaster::PredictNextArrival() const {
  if (last_arrival_ < 0 || !Confident()) {
    return -1;
  }
  return last_arrival_ + PredictedIat();
}

SimTime InterArrivalForecaster::PredictDiurnalNext(SimTime now) const {
  uint32_t peak = 0;
  for (const uint32_t c : hour_counts_) {
    peak = std::max(peak, c);
  }
  if (peak < static_cast<uint32_t>(options_.diurnal_min_count)) {
    return -1;
  }
  const SimTime hour_start = now - (now % kHour);
  const int64_t now_hour = HourIndex(now) % 24;
  for (int64_t off = 1; off <= 24; ++off) {
    const auto hod = static_cast<size_t>((now_hour + off) % 24);
    if (hour_counts_[hod] * 2 >= peak) {
      return hour_start + off * kHour;
    }
  }
  return -1;
}

void InterArrivalForecaster::SaveState(ByteWriter& w) const {
  w.I64(last_arrival_);
  w.U64(next_);
  w.U64(filled_);
  for (const int64_t iat : ring_) {
    w.I64(iat);
  }
  for (const uint32_t c : hour_counts_) {
    w.U32(c);
  }
}

void InterArrivalForecaster::RestoreState(ByteReader& r) {
  last_arrival_ = r.I64();
  next_ = r.U64();
  filled_ = r.U64();
  COLDSTART_CHECK(filled_ <= ring_.size() && next_ < ring_.size());
  for (int64_t& iat : ring_) {
    iat = r.I64();
  }
  for (uint32_t& c : hour_counts_) {
    c = r.U32();
  }
  // The histogram is derived state: rebuild it from the restored window. Slots
  // [0, filled_) are exactly the live samples regardless of next_.
  hist_.fill(0);
  for (uint64_t i = 0; i < filled_; ++i) {
    hist_[static_cast<size_t>(BucketOf(ring_[i]))] += 1;
  }
}

// --- ForecastPrewarmPolicy. -------------------------------------------------

uint64_t ForecastPrewarmPolicy::Options::Fingerprint() const {
  uint64_t h = HashString("forecast-options-v1");
  h = MixHash(h, static_cast<uint64_t>(forecaster.window));
  h = MixHash(h, static_cast<uint64_t>(forecaster.min_samples));
  h = MixHashDouble(h, forecaster.min_confidence);
  h = MixHash(h, static_cast<uint64_t>(forecaster.diurnal_min_count));
  h = MixHash(h, static_cast<uint64_t>(forecaster.diurnal_min_mean_iat));
  h = MixHash(h, static_cast<uint64_t>(prewarm_min_iat));
  h = MixHash(h, static_cast<uint64_t>(max_horizon));
  h = MixHash(h, static_cast<uint64_t>(lead_time));
  h = MixHash(h, static_cast<uint64_t>(post_fire_margin));
  h = MixHashDouble(h, keep_alive_headroom);
  h = MixHash(h, static_cast<uint64_t>(min_keep_alive));
  h = MixHash(h, static_cast<uint64_t>(max_keep_alive));
  h = MixHash(h, static_cast<uint64_t>(default_keep_alive));
  h = MixHash(h, use_diurnal ? 1 : 0);
  return h;
}

ForecastPrewarmPolicy::ForecastPrewarmPolicy()
    : ForecastPrewarmPolicy(Options{}) {}
ForecastPrewarmPolicy::ForecastPrewarmPolicy(Options options)
    : options_(options) {}

void ForecastPrewarmPolicy::OnArrival(const workload::FunctionSpec& spec,
                                      SimTime now) {
  auto& forecaster =
      forecasters_.try_emplace(spec.id, options_.forecaster).first->second;
  forecaster.ObserveArrival(now);

  // Re-arm (or disarm) this function's pending fire: every arrival refreshes
  // the prediction, and a stale fire anchored on an older arrival would spawn
  // a pod nobody asked for.
  SimTime fire = -1;
  if (forecaster.Confident()) {
    const SimDuration iat = forecaster.PredictedIat();
    if (iat > options_.prewarm_min_iat && iat <= options_.max_horizon) {
      fire = now + iat;
    }
    // Short IATs are handled by KeepAliveFor — the pod never goes cold.
  } else if (options_.use_diurnal &&
             (forecaster.sample_count() == 0 ||
              forecaster.MeanIat() >= options_.forecaster.diurnal_min_mean_iat)) {
    // Sparse-only: an unpredictable-but-busy function would waste most of its
    // "next active hour" prewarms; a sparse one (or one with no IAT samples
    // yet) is exactly what the hour profile is for.
    const SimTime t = forecaster.PredictDiurnalNext(now);
    if (t >= 0 && t - now > options_.prewarm_min_iat &&
        t - now <= options_.max_horizon) {
      fire = t;
    }
  }
  if (fire >= 0) {
    pending_[spec.id] = fire;
  } else {
    pending_.erase(spec.id);
  }
}

void ForecastPrewarmPolicy::OnMinuteTick(SimTime now) {
  COLDSTART_CHECK(platform_ != nullptr);
  for (auto it = pending_.begin(); it != pending_.end();) {
    const SimTime fire = it->second;
    if (fire <= now) {
      it = pending_.erase(it);  // Stale: the fire (or a miss) already passed.
      continue;
    }
    if (fire - now > kMinute + options_.lead_time) {
      ++it;  // Not this tick; a later tick is still ahead of the fire.
      continue;
    }
    const trace::FunctionId fid = it->first;
    if (!platform_->HasAvailablePod(fid)) {
      // Survive until just past the predicted fire; a correct prediction is
      // served warm, a miss dies post_fire_margin later.
      platform_->SpawnPrewarmedPod(fid, platform_->spec(fid).region,
                                   (fire - now) + options_.post_fire_margin);
      ++prewarms_issued_;
    }
    it = pending_.erase(it);  // One shot; the served arrival re-arms.
  }
}

SimDuration ForecastPrewarmPolicy::KeepAliveFor(const workload::FunctionSpec& spec,
                                                SimTime) {
  const auto it = forecasters_.find(spec.id);
  if (it == forecasters_.end() || !it->second.Confident()) {
    return options_.default_keep_alive;
  }
  const SimDuration iat = it->second.PredictedIat();
  if (iat <= options_.prewarm_min_iat) {
    // Dynamic keep-alive move: cover the predicted gap with headroom. This
    // both extends (IAT slightly over the default window) and shrinks
    // (rapid-fire functions hold pods for far less than 60 s).
    const auto scaled = static_cast<SimDuration>(
        options_.keep_alive_headroom * static_cast<double>(iat));
    const SimDuration ka =
        std::clamp(scaled, options_.min_keep_alive, options_.max_keep_alive);
    if (ka > options_.default_keep_alive) {
      ++keepalive_extended_;
    } else {
      ++keepalive_curtailed_;
    }
    return ka;
  }
  // The next fire is beyond the prewarm threshold: a fresh pod will be
  // prewarmed just ahead of it, so holding this one warm is pure idle cost.
  ++keepalive_curtailed_;
  return options_.min_keep_alive;
}

void ForecastPrewarmPolicy::AbsorbShardStats(
    const platform::PlatformPolicy& shard) {
  const auto& other = static_cast<const ForecastPrewarmPolicy&>(shard);
  prewarms_issued_ += other.prewarms_issued_;
  keepalive_extended_ += other.keepalive_extended_;
  keepalive_curtailed_ += other.keepalive_curtailed_;
}

bool ForecastPrewarmPolicy::SavePolicyState(std::string* out) const {
  // Forecasters serialize sorted by function id: unordered_map iteration
  // order must not reach the blob (pending_ is a std::map, already ordered).
  std::vector<trace::FunctionId> fids;
  fids.reserve(forecasters_.size());
  // LINT-ALLOW(unordered-iter): keys are copied out and sorted before any byte is written
  for (const auto& [fid, forecaster] : forecasters_) {
    fids.push_back(fid);
  }
  std::sort(fids.begin(), fids.end());
  ByteWriter w;
  w.I64(prewarms_issued_);
  w.I64(keepalive_extended_);
  w.I64(keepalive_curtailed_);
  w.U64(pending_.size());
  for (const auto& [fid, fire] : pending_) {
    w.U64(fid);
    w.I64(fire);
  }
  w.U64(fids.size());
  for (const trace::FunctionId fid : fids) {
    w.U64(fid);
    forecasters_.at(fid).SaveState(w);
  }
  *out = w.Take();
  return true;
}

bool ForecastPrewarmPolicy::RestorePolicyState(std::string_view blob) {
  COLDSTART_CHECK(forecasters_.empty() && pending_.empty());
  ByteReader r(blob);
  prewarms_issued_ = r.I64();
  keepalive_extended_ = r.I64();
  keepalive_curtailed_ = r.I64();
  const uint64_t armed = r.U64();
  for (uint64_t i = 0; i < armed; ++i) {
    const auto fid = static_cast<trace::FunctionId>(r.U64());
    pending_[fid] = r.I64();
  }
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    const auto fid = static_cast<trace::FunctionId>(r.U64());
    forecasters_.try_emplace(fid, options_.forecaster)
        .first->second.RestoreState(r);
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
