// Provisioned concurrency (§6 "Mitigations" / provider comparison): an
// always-ready pod floor per enrolled function, the simulation analogue of AWS
// provisioned concurrency / Azure premium pre-warmed instances. Functions enroll
// on their first user-visible cold start (the operator reacting to a cold-start
// complaint), up to a region-wide budget; every minute the policy tops each
// enrolled function back up to its floor with prewarmed pods. The cost side —
// the floor pods' pod-seconds and warm-idle-seconds — lands in the resource-cost
// ledger, which is the point: provisioned concurrency trades always-on spend for
// tail latency, and the ledger makes the trade quantitative.
#ifndef COLDSTART_POLICY_PROVISIONED_H_
#define COLDSTART_POLICY_PROVISIONED_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "platform/platform.h"

namespace coldstart::policy {

class ProvisionedConcurrencyPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    int floor_pods = 1;                     // Always-ready pods per enrolled function.
    int max_provisioned_functions = 200;    // Region-wide enrollment budget.
    SimDuration pod_keep_alive = 2 * kMinute;  // Floor pods outlive the top-up tick.
  };

  ProvisionedConcurrencyPolicy();
  explicit ProvisionedConcurrencyPolicy(Options options);

  void OnAttach(platform::Platform& platform) override { platform_ = &platform; }
  void OnArrival(const workload::FunctionSpec& spec, SimTime now) override;
  void OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                   SimDuration total) override;
  void OnMinuteTick(SimTime now) override;

  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<ProvisionedConcurrencyPolicy>(options_);
  }
  // The enrollment budget is a region-wide resource that functions compete for,
  // so the policy must see the whole region: region-local, not function-local
  // (sub-region K > 1 sharding would split the budget nondeterministically).
  bool is_function_local() const override { return false; }
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override {
    const auto& other = static_cast<const ProvisionedConcurrencyPolicy&>(shard);
    floor_spawns_ += other.floor_spawns_;
    floor_hits_ += other.floor_hits_;
    floor_misses_ += other.floor_misses_;
    enrolled_total_ += other.enrolled_total_;
  }

  // Utilization counters: how often an enrolled function's arrival actually
  // found a ready pod (hit) vs. raced past the floor (miss), and how many
  // top-up pods the floor cost.
  int64_t floor_spawns() const { return floor_spawns_; }
  int64_t floor_hits() const { return floor_hits_; }
  int64_t floor_misses() const { return floor_misses_; }
  int64_t enrolled_functions() const { return enrolled_total_; }

 private:
  Options options_;
  platform::Platform* platform_ = nullptr;
  // Enrolled functions. Ordered: OnMinuteTick walks it to spawn pods, so the
  // spawn order (and thus every downstream RNG draw) must not depend on hash
  // order.
  std::set<trace::FunctionId> provisioned_;
  int64_t floor_spawns_ = 0;
  int64_t floor_hits_ = 0;
  int64_t floor_misses_ = 0;
  int64_t enrolled_total_ = 0;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_PROVISIONED_H_
