#include "policy/peak_shaving.h"

#include "common/byte_serde.h"
#include "common/check.h"
#include "common/rng.h"

namespace coldstart::policy {

PeakShavingPolicy::PeakShavingPolicy() : PeakShavingPolicy(Options{}) {}
PeakShavingPolicy::PeakShavingPolicy(Options options) : options_(options) {}

bool PeakShavingPolicy::Delayable(trace::Trigger t) const {
  switch (t) {
    case trace::Trigger::kObs:
      return options_.delay_obs;
    case trace::Trigger::kLts:
    case trace::Trigger::kCts:
      return options_.delay_logs;
    case trace::Trigger::kTimer:
      return options_.delay_timers;
    case trace::Trigger::kDis:
    case trace::Trigger::kSmn:
    case trace::Trigger::kKafka:
      return true;
    default:
      return false;
  }
}

uint64_t& PeakShavingPolicy::MixFor(trace::RegionId region) {
  while (mix_.size() <= region) {
    mix_.push_back(MixHash(0x9E3779B97F4A7C15ull, mix_.size()));
  }
  return mix_[region];
}

SimDuration PeakShavingPolicy::AdmissionDelay(const workload::FunctionSpec& spec,
                                              SimTime,
                                              const platform::RegionLoadState& load) {
  if (!Delayable(spec.primary_trigger)) {
    return 0;
  }
  if (load.cold_start_window < options_.cold_start_pressure_threshold) {
    return 0;
  }
  ++delays_issued_;
  // Spread admissions uniformly over (0, max_delay] so the shaved peak does not simply
  // reappear max_delay later. One jitter stream per region keeps the sequence a
  // region observes independent of the other regions' traffic.
  const double u = static_cast<double>(SplitMix64(MixFor(spec.region)) >> 11) * 0x1.0p-53;
  return 1 + static_cast<SimDuration>(u * static_cast<double>(options_.max_delay));
}

bool PeakShavingPolicy::SavePolicyState(std::string* out) const {
  ByteWriter w;
  w.I64(delays_issued_);
  w.U64(mix_.size());
  for (const uint64_t m : mix_) {
    w.U64(m);
  }
  *out = w.Take();
  return true;
}

bool PeakShavingPolicy::RestorePolicyState(std::string_view blob) {
  ByteReader r(blob);
  delays_issued_ = r.I64();
  mix_.clear();
  const uint64_t n = r.U64();
  mix_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    mix_.push_back(r.U64());
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
