// Forecasting prewarm (SPES-style, arXiv 2403.17574): predict each function's
// next invocation from its own invocation history and act ahead of it.
//
// InterArrivalForecaster is the per-function estimator: a sliding window of
// recent inter-arrival times bucketed into a log2 histogram. When the
// histogram mass concentrates around one modal bucket the function is
// *predictable* (timers, steady drips) and the trimmed mean of the modal
// neighborhood is the next-IAT estimate; dispersed (Poisson-like) histograms
// fail the confidence gate and the policy leaves the function alone. A
// 24-bin hour-of-day profile adds a coarse diurnal fallback for sparse
// functions whose IATs never concentrate but whose *active hours* do.
//
// ForecastPrewarmPolicy turns predictions into mitigation, choosing per
// function between two moves:
//   - predicted IAT beyond the keep-alive horizon -> prewarm: arm a pending
//     fire time and spawn a short-lived pod from the minute tick just ahead
//     of it (and release served pods after a minimal keep-alive — the pod
//     for the *next* fire will be prewarmed, so holding this one is waste);
//   - predicted IAT short -> extend (or shrink) keep-alive to headroom x IAT,
//     the dynamic keep-alive move, but gated on forecast confidence.
//
// Unlike TimerAwarePrewarmPolicy this policy is fully checkpointable: it
// never schedules its own simulator closures — pending prewarms live in an
// ordered map walked from the platform-managed minute tick, so the whole
// learned state serializes (policy_hooks.h contract (c)).
#ifndef COLDSTART_POLICY_FORECAST_H_
#define COLDSTART_POLICY_FORECAST_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/byte_serde.h"
#include "platform/platform.h"

namespace coldstart::policy {

// Sliding-window inter-arrival histogram + diurnal profile for one function.
// Pure observation state: no platform access, deterministic, serializable.
class InterArrivalForecaster {
 public:
  struct Options {
    int window = 48;              // IAT samples retained.
    int min_samples = 6;          // Below this no prediction is offered.
    double min_confidence = 0.7;  // Modal-neighborhood mass share to act on.
    int diurnal_min_count = 3;    // Arrivals in the peak hour before the
                                  // diurnal fallback speaks.
    // The diurnal fallback only covers *sparse* functions (window mean IAT at
    // least this): a busy-but-bursty function is badly served by "next active
    // hour" prewarms — most would idle out unused and only add pod-seconds.
    SimDuration diurnal_min_mean_iat = kHour;
  };

  // Log2 buckets over IAT microseconds: bucket = floor(log2(iat_us)),
  // clamped. 64 buckets cover every representable IAT.
  static constexpr int kNumBuckets = 64;
  static int BucketOf(SimDuration iat);

  InterArrivalForecaster() : InterArrivalForecaster(Options{}) {}
  explicit InterArrivalForecaster(Options options);

  void ObserveArrival(SimTime now);

  int sample_count() const { return static_cast<int>(filled_); }
  SimTime last_arrival() const { return last_arrival_; }

  // Index of the fullest histogram bucket (ties -> lowest bucket, so the
  // answer never depends on evaluation order); -1 with no samples.
  int ModalBucket() const;
  // Share of window samples inside the modal bucket +-1. 0 below min_samples.
  double Confidence() const;
  bool Confident() const;
  // Trimmed mean (exact integer mean of window samples inside the modal
  // neighborhood) — exact for strict timers, robust to stray outliers.
  // 0 when below min_samples.
  SimDuration PredictedIat() const;
  // Untrimmed mean over the whole window — the sparsity signal for the
  // diurnal gate. 0 with no samples.
  SimDuration MeanIat() const;
  // last_arrival + PredictedIat when confident, else -1.
  SimTime PredictNextArrival() const;
  // Diurnal fallback: the start of the next hour-of-day whose historical
  // arrival count is at least half the peak hour's (peak must have at least
  // diurnal_min_count arrivals); -1 when the profile is too thin.
  SimTime PredictDiurnalNext(SimTime now) const;

  // Serde: the ring and profile travel; the histogram is derived state,
  // rebuilt from the ring on restore. Round trips are bit-exact.
  void SaveState(ByteWriter& w) const;
  void RestoreState(ByteReader& r);

 private:
  Options options_;
  SimTime last_arrival_ = -1;
  std::vector<int64_t> ring_;  // IAT microseconds, circular.
  uint64_t next_ = 0;
  uint64_t filled_ = 0;
  std::array<uint32_t, kNumBuckets> hist_{};  // Counts over ring contents.
  std::array<uint32_t, 24> hour_counts_{};    // All-history arrivals per hour.
};

class ForecastPrewarmPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    InterArrivalForecaster::Options forecaster;
    // Prewarm move: arm when the predicted IAT is in (prewarm_min_iat,
    // max_horizon]; the minute tick spawns once the fire is at most one tick
    // plus lead_time away, with the pod surviving post_fire_margin past it.
    // The default horizon is deliberately short: prediction error grows with
    // distance, and long-horizon prewarms mostly idle out unused — a 30 min
    // cap is what keeps the policy's ledger cost at or under the fixed
    // keep-alive baseline (tests/forecast_policy_test.cc). Sweeps that want
    // the latency-greedy end of the frontier raise it explicitly
    // (examples/pareto_frontier.cpp).
    SimDuration prewarm_min_iat = 3 * kMinute;
    SimDuration max_horizon = 30 * kMinute;
    SimDuration lead_time = 5 * kSecond;
    SimDuration post_fire_margin = 10 * kSecond;
    // Keep-alive move: confident short-IAT functions get headroom x IAT
    // (clamped); confident long-IAT functions release pods after
    // min_keep_alive — the next fire is prewarmed, holding the pod is waste.
    double keep_alive_headroom = 1.25;
    SimDuration min_keep_alive = 5 * kSecond;
    SimDuration max_keep_alive = 10 * kMinute;
    SimDuration default_keep_alive = kMinute;
    bool use_diurnal = true;

    // Stable hash of every knob (fingerprint-style, doubles by bit pattern):
    // keys frontier point caches so a config change can never serve a stale
    // cached evaluation (core/frontier.h).
    uint64_t Fingerprint() const;
  };

  ForecastPrewarmPolicy();
  explicit ForecastPrewarmPolicy(Options options);

  void OnAttach(platform::Platform& platform) override { platform_ = &platform; }
  void OnArrival(const workload::FunctionSpec& spec, SimTime now) override;
  void OnMinuteTick(SimTime now) override;
  SimDuration KeepAliveFor(const workload::FunctionSpec& spec, SimTime now) override;

  // Per-function forecasters and pending fires only — no pools, no region
  // budget — so capacity-cell shards see identical inputs.
  bool is_function_local() const override { return true; }
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<ForecastPrewarmPolicy>(options_);
  }
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override;

  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

  const Options& options() const { return options_; }
  int64_t prewarms_issued() const { return prewarms_issued_; }
  int64_t keepalive_extended() const { return keepalive_extended_; }
  int64_t keepalive_curtailed() const { return keepalive_curtailed_; }
  int64_t tracked_functions() const {
    return static_cast<int64_t>(forecasters_.size());
  }

 private:
  Options options_;
  platform::Platform* platform_ = nullptr;
  std::unordered_map<trace::FunctionId, InterArrivalForecaster> forecasters_;
  // Predicted next fire per armed function. Ordered: OnMinuteTick walks it to
  // spawn pods, so spawn order must not depend on hash order.
  std::map<trace::FunctionId, SimTime> pending_;
  int64_t prewarms_issued_ = 0;
  int64_t keepalive_extended_ = 0;
  int64_t keepalive_curtailed_ = 0;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_FORECAST_H_
