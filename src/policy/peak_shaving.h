// Asynchronous peak shaving (§3.3 / §5 "Synchronous vs. asynchronous calls").
//
// When the region is under cold-start pressure, asynchronous, non-latency-critical
// requests are admitted with a bounded delay, moving their pod allocations out of the
// peak ("even a short delay could significantly reduce peak pod allocations").
// Synchronous triggers are never delayed (the platform enforces this).
#ifndef COLDSTART_POLICY_PEAK_SHAVING_H_
#define COLDSTART_POLICY_PEAK_SHAVING_H_

#include <memory>
#include <vector>

#include "platform/policy_hooks.h"

namespace coldstart::policy {

class PeakShavingPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    double cold_start_pressure_threshold = 30;  // Recent-window cold starts.
    SimDuration max_delay = kMinute;
    // Triggers treated as deadline-insensitive (logs/object events, per §3.3).
    bool delay_obs = true;
    bool delay_logs = true;   // LTS / CTS.
    bool delay_timers = false;
  };

  PeakShavingPolicy();
  explicit PeakShavingPolicy(Options options);

  SimDuration AdmissionDelay(const workload::FunctionSpec& spec, SimTime now,
                             const platform::RegionLoadState& load) override;

  // Reads only the home region's load; jitter state is kept per region so sharded
  // runs replay the exact serial delay sequence.
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<PeakShavingPolicy>(options_);
  }
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override {
    delays_issued_ += static_cast<const PeakShavingPolicy&>(shard).delays_issued_;
  }

  int64_t delays_issued() const { return delays_issued_; }

  // Checkpointable: the delay counter and the per-region jitter streams.
  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

 private:
  bool Delayable(trace::Trigger t) const;
  // Cheap deterministic jitter state for `region`, seeded per region.
  uint64_t& MixFor(trace::RegionId region);

  Options options_;
  int64_t delays_issued_ = 0;
  std::vector<uint64_t> mix_;  // Per region.
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_PEAK_SHAVING_H_
