// Asynchronous peak shaving (§3.3 / §5 "Synchronous vs. asynchronous calls").
//
// When the region is under cold-start pressure, asynchronous, non-latency-critical
// requests are admitted with a bounded delay, moving their pod allocations out of the
// peak ("even a short delay could significantly reduce peak pod allocations").
// Synchronous triggers are never delayed (the platform enforces this).
#ifndef COLDSTART_POLICY_PEAK_SHAVING_H_
#define COLDSTART_POLICY_PEAK_SHAVING_H_

#include "platform/policy_hooks.h"

namespace coldstart::policy {

class PeakShavingPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    double cold_start_pressure_threshold = 30;  // Recent-window cold starts.
    SimDuration max_delay = kMinute;
    // Triggers treated as deadline-insensitive (logs/object events, per §3.3).
    bool delay_obs = true;
    bool delay_logs = true;   // LTS / CTS.
    bool delay_timers = false;
  };

  PeakShavingPolicy();
  explicit PeakShavingPolicy(Options options);

  SimDuration AdmissionDelay(const workload::FunctionSpec& spec, SimTime now,
                             const platform::RegionLoadState& load) override;

  int64_t delays_issued() const { return delays_issued_; }

 private:
  bool Delayable(trace::Trigger t) const;

  Options options_;
  int64_t delays_issued_ = 0;
  uint64_t mix_ = 0x9E3779B97F4A7C15ull;  // Cheap deterministic jitter state.
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_PEAK_SHAVING_H_
