#include "policy/workflow_prewarm.h"

namespace coldstart::policy {

WorkflowPrewarmPolicy::WorkflowPrewarmPolicy() : WorkflowPrewarmPolicy(Options{}) {}
WorkflowPrewarmPolicy::WorkflowPrewarmPolicy(Options options) : options_(options) {}

void WorkflowPrewarmPolicy::OnParentRequestStart(const workload::FunctionSpec& parent,
                                                 SimTime now) {
  if (platform_ == nullptr) {
    return;
  }
  for (const auto& edge : parent.children) {
    if (edge.probability < options_.min_edge_probability) {
      continue;
    }
    const auto it = last_prewarm_.find(edge.child);
    if (it != last_prewarm_.end() && now - it->second < options_.per_child_cooldown) {
      continue;
    }
    if (platform_->HasAvailablePod(edge.child)) {
      continue;
    }
    const workload::FunctionSpec& child = platform_->spec(edge.child);
    platform_->SpawnPrewarmedPod(edge.child, child.region, options_.prewarm_keep_alive);
    last_prewarm_[edge.child] = now;
    ++prewarms_issued_;
  }
}

}  // namespace coldstart::policy
