#include "policy/workflow_prewarm.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/byte_serde.h"
#include "common/check.h"

namespace coldstart::policy {

WorkflowPrewarmPolicy::WorkflowPrewarmPolicy() : WorkflowPrewarmPolicy(Options{}) {}
WorkflowPrewarmPolicy::WorkflowPrewarmPolicy(Options options) : options_(options) {}

void WorkflowPrewarmPolicy::OnParentRequestStart(const workload::FunctionSpec& parent,
                                                 SimTime now) {
  if (platform_ == nullptr) {
    return;
  }
  for (const auto& edge : parent.children) {
    if (edge.probability < options_.min_edge_probability) {
      continue;
    }
    const auto it = last_prewarm_.find(edge.child);
    if (it != last_prewarm_.end() && now - it->second < options_.per_child_cooldown) {
      continue;
    }
    if (platform_->HasAvailablePod(edge.child)) {
      continue;
    }
    const workload::FunctionSpec& child = platform_->spec(edge.child);
    platform_->SpawnPrewarmedPod(edge.child, child.region, options_.prewarm_keep_alive);
    last_prewarm_[edge.child] = now;
    ++prewarms_issued_;
  }
}

bool WorkflowPrewarmPolicy::SavePolicyState(std::string* out) const {
  // LINT-ALLOW(unordered-iter): entries are copied out and sorted by function id before any byte is written
  std::vector<std::pair<trace::FunctionId, SimTime>> entries(last_prewarm_.begin(),
                                                             last_prewarm_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ByteWriter w;
  w.I64(prewarms_issued_);
  w.U64(entries.size());
  for (const auto& [child, t] : entries) {
    w.U64(child);
    w.I64(t);
  }
  *out = w.Take();
  return true;
}

bool WorkflowPrewarmPolicy::RestorePolicyState(std::string_view blob) {
  COLDSTART_CHECK(last_prewarm_.empty());
  ByteReader r(blob);
  prewarms_issued_ = r.I64();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    const auto child = static_cast<trace::FunctionId>(r.U64());
    last_prewarm_[child] = r.I64();
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
