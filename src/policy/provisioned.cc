#include "policy/provisioned.h"

#include "common/byte_serde.h"
#include "common/check.h"

namespace coldstart::policy {

ProvisionedConcurrencyPolicy::ProvisionedConcurrencyPolicy()
    : ProvisionedConcurrencyPolicy(Options{}) {}
ProvisionedConcurrencyPolicy::ProvisionedConcurrencyPolicy(Options options)
    : options_(options) {}

void ProvisionedConcurrencyPolicy::OnArrival(const workload::FunctionSpec& spec,
                                             SimTime) {
  COLDSTART_CHECK(platform_ != nullptr);
  if (provisioned_.count(spec.id) == 0) {
    return;
  }
  if (platform_->HasAvailablePod(spec.id)) {
    ++floor_hits_;
  } else {
    ++floor_misses_;
  }
}

void ProvisionedConcurrencyPolicy::OnColdStart(const workload::FunctionSpec& spec,
                                               SimTime, SimDuration) {
  // Enrollment: the first cold start is the operator's signal to provision the
  // function, budget permitting. The set is ordered, so which functions fit
  // under the budget depends only on arrival content, never on hash order.
  if (static_cast<int>(provisioned_.size()) >= options_.max_provisioned_functions) {
    return;
  }
  if (provisioned_.insert(spec.id).second) {
    ++enrolled_total_;
  }
}

void ProvisionedConcurrencyPolicy::OnMinuteTick(SimTime) {
  COLDSTART_CHECK(platform_ != nullptr);
  for (const trace::FunctionId fid : provisioned_) {
    // Top the function back up to its floor. alive_pod_count includes warming
    // pods, so a top-up in flight is never doubled.
    const int deficit = options_.floor_pods - platform_->alive_pod_count(fid);
    for (int i = 0; i < deficit; ++i) {
      platform_->SpawnPrewarmedPod(fid, platform_->spec(fid).region,
                                   options_.pod_keep_alive);
      ++floor_spawns_;
    }
  }
}

bool ProvisionedConcurrencyPolicy::SavePolicyState(std::string* out) const {
  ByteWriter w;
  w.I64(floor_spawns_);
  w.I64(floor_hits_);
  w.I64(floor_misses_);
  w.I64(enrolled_total_);
  w.U64(provisioned_.size());
  for (const trace::FunctionId fid : provisioned_) {  // std::set: already sorted.
    w.U64(fid);
  }
  *out = w.Take();
  return true;
}

bool ProvisionedConcurrencyPolicy::RestorePolicyState(std::string_view blob) {
  COLDSTART_CHECK(provisioned_.empty());
  ByteReader r(blob);
  floor_spawns_ = r.I64();
  floor_hits_ = r.I64();
  floor_misses_ = r.I64();
  enrolled_total_ = r.I64();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    provisioned_.insert(static_cast<trace::FunctionId>(r.U64()));
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
