// Composition of platform policies.
//
// The platform takes a single PlatformPolicy; CompositePolicy fans every hook out to a
// list of sub-policies so prewarming, dynamic keep-alive, peak shaving, cross-region
// routing, and pool prediction can be combined in one experiment.
//
// Combination rules: observation hooks go to everyone; AdmissionDelay takes the
// maximum requested delay; KeepAliveFor and RouteColdStart take the first sub-policy
// that deviates from the default (list order = priority).
#ifndef COLDSTART_POLICY_COMPOSITE_H_
#define COLDSTART_POLICY_COMPOSITE_H_

#include <memory>
#include <vector>

#include "platform/policy_hooks.h"

namespace coldstart::policy {

class CompositePolicy : public platform::PlatformPolicy {
 public:
  CompositePolicy() = default;

  // Takes ownership. Returns *this for chaining.
  CompositePolicy& Add(std::unique_ptr<platform::PlatformPolicy> policy);

  // Shardable exactly when every sub-policy is: region-locality is the conjunction,
  // and a shard clone is a composite of the sub-policies' clones (nullptr if any
  // sub-policy cannot clone).
  bool is_region_local() const override;
  bool is_function_local() const override;
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override;
  void AbsorbShardStats(const platform::PlatformPolicy& shard) override;

  void OnAttach(platform::Platform& platform) override;
  SimDuration AdmissionDelay(const workload::FunctionSpec& spec, SimTime now,
                             const platform::RegionLoadState& load) override;
  SimDuration KeepAliveFor(const workload::FunctionSpec& spec, SimTime now) override;
  trace::RegionId RouteColdStart(const workload::FunctionSpec& spec, SimTime now) override;
  void OnArrival(const workload::FunctionSpec& spec, SimTime now) override;
  void OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                   SimDuration total) override;
  void OnParentRequestStart(const workload::FunctionSpec& parent, SimTime now) override;
  void OnMinuteTick(SimTime now) override;

  // Checkpointable exactly when every sub-policy is: the blob is the sub-policy
  // blobs length-prefixed in list order.
  bool SavePolicyState(std::string* out) const override;
  bool RestorePolicyState(std::string_view blob) override;

 private:
  std::vector<std::unique_ptr<platform::PlatformPolicy>> policies_;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_COMPOSITE_H_
