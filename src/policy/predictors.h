// Time-series predictors for resource-pool sizing (§5 "Resource pool prediction").
//
// Small online forecasters over per-minute demand series. All of them observe one
// value per bucket and answer "how much will the next bucket need"; the pool policy
// translates that into pool targets.
#ifndef COLDSTART_POLICY_PREDICTORS_H_
#define COLDSTART_POLICY_PREDICTORS_H_

#include <cstdint>
#include <string>
#include <memory>
#include <vector>

namespace coldstart::policy {

class SeriesPredictor {
 public:
  virtual ~SeriesPredictor() = default;
  virtual void Observe(double value) = 0;
  virtual double Predict() const = 0;
  virtual const char* name() const = 0;
};

// Flat moving average over the last `window` observations.
class MovingAveragePredictor : public SeriesPredictor {
 public:
  explicit MovingAveragePredictor(int window);
  void Observe(double value) override;
  double Predict() const override;
  const char* name() const override { return "moving-average"; }

 private:
  std::vector<double> ring_;
  size_t next_ = 0;
  size_t filled_ = 0;
  double sum_ = 0;
};

// Same bucket one season ago (e.g. the same minute yesterday); falls back to the last
// observation until a full season has been seen.
class SeasonalNaivePredictor : public SeriesPredictor {
 public:
  explicit SeasonalNaivePredictor(int season);
  void Observe(double value) override;
  double Predict() const override;
  const char* name() const override { return "seasonal-naive"; }

 private:
  std::vector<double> season_;
  size_t pos_ = 0;
  uint64_t observed_ = 0;
  double last_ = 0;
};

// Additive Holt-Winters with a daily season: level + trend + seasonal index.
class HoltWintersPredictor : public SeriesPredictor {
 public:
  HoltWintersPredictor(int season, double alpha, double beta, double gamma);
  void Observe(double value) override;
  double Predict() const override;
  const char* name() const override { return "holt-winters"; }

 private:
  std::vector<double> seasonal_;
  size_t pos_ = 0;
  uint64_t observed_ = 0;
  double level_ = 0;
  double trend_ = 0;
  double alpha_, beta_, gamma_;
};

std::unique_ptr<SeriesPredictor> MakePredictor(const std::string& kind, int season);

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_PREDICTORS_H_
