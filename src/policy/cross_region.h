// Cross-region cold-start scheduling (§5 "Cross-region workload scheduling").
//
// When the home region is congested (deep pool searches, long scheduler queues) and a
// peer region is quiet, new pods are started in the peer region instead. The platform
// charges the home region's inter-region RTT on the scheduling component, so the
// policy's benefit is exactly the paper's trade: tens of milliseconds of RTT against
// seconds of congested cold start.
#ifndef COLDSTART_POLICY_CROSS_REGION_H_
#define COLDSTART_POLICY_CROSS_REGION_H_

#include <vector>

#include "platform/platform.h"

namespace coldstart::policy {

// Routes cold starts across regions, so it is not region-local and never runs
// under the sharded runner (is_region_local() == false); offloads_ is
// diagnostics-only bookkeeping the serial runner reads back at the end.
// LINT-ALLOW(policy-hooks): not region-local — the sharded runner rejects it, so shard/checkpoint hooks are unreachable
class CrossRegionPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    int home_pressure_threshold = 10;  // Active cold starts to consider offloading.
    int peer_quiet_threshold = 3;      // Peer must be below this to accept.
    // Only offload latency-tolerant (asynchronous) work by default.
    bool offload_synchronous = false;
  };

  CrossRegionPolicy();
  explicit CrossRegionPolicy(Options options);

  void OnAttach(platform::Platform& platform) override { platform_ = &platform; }
  trace::RegionId RouteColdStart(const workload::FunctionSpec& spec, SimTime now) override;

  // Routing decisions read every region's load and move pods across regions, so the
  // sharded runner must fall back to the serial path for this policy.
  bool is_region_local() const override { return false; }

  int64_t offloads() const { return offloads_; }

 private:
  Options options_;
  platform::Platform* platform_ = nullptr;
  int64_t offloads_ = 0;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_CROSS_REGION_H_
