#include "policy/pool_prediction.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::policy {

PoolPredictionPolicy::PoolPredictionPolicy() : PoolPredictionPolicy(Options{}) {}
PoolPredictionPolicy::PoolPredictionPolicy(Options options) : options_(std::move(options)) {}

namespace {
constexpr int kMinutesPerDay = 1440;
}

void PoolPredictionPolicy::OnAttach(platform::Platform& platform) {
  platform_ = &platform;
  const int n =
      static_cast<int>(platform.profiles().size()) * trace::kNumResourceConfigs;
  predictors_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    predictors_.push_back(MakePredictor(options_.predictor, kMinutesPerDay));
  }
  demand_this_minute_.assign(static_cast<size_t>(n), 0.0);
}

void PoolPredictionPolicy::OnColdStart(const workload::FunctionSpec& spec, SimTime,
                                       SimDuration) {
  COLDSTART_CHECK(platform_ != nullptr);
  demand_this_minute_[static_cast<size_t>(IndexOf(spec.region, spec.config))] += 1.0;
}

void PoolPredictionPolicy::OnMinuteTick(SimTime) {
  COLDSTART_CHECK(platform_ != nullptr);
  const int num_regions = static_cast<int>(platform_->profiles().size());
  for (int r = 0; r < num_regions; ++r) {
    for (int c = 0; c < trace::kNumResourceConfigs; ++c) {
      const int idx = IndexOf(static_cast<trace::RegionId>(r),
                              static_cast<trace::ResourceConfig>(c));
      auto& predictor = *predictors_[static_cast<size_t>(idx)];
      predictor.Observe(demand_this_minute_[static_cast<size_t>(idx)]);
      demand_this_minute_[static_cast<size_t>(idx)] = 0.0;
      const int target = std::clamp(
          static_cast<int>(std::ceil(options_.headroom * predictor.Predict())),
          options_.min_target, options_.max_target);
      platform_->pool(static_cast<trace::RegionId>(r),
                      static_cast<trace::ResourceConfig>(c))
          .SetTarget(target);
    }
  }
}

}  // namespace coldstart::policy
