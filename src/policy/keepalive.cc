#include "policy/keepalive.h"

#include <algorithm>

namespace coldstart::policy {

DynamicKeepAlivePolicy::DynamicKeepAlivePolicy() : DynamicKeepAlivePolicy(Options{}) {}
DynamicKeepAlivePolicy::DynamicKeepAlivePolicy(Options options) : options_(options) {}

void DynamicKeepAlivePolicy::OnArrival(const workload::FunctionSpec& spec, SimTime now) {
  History& h = history_[spec.id];
  if (h.last_arrival >= 0) {
    const double iat = static_cast<double>(now - h.last_arrival);
    h.iat_ewma = h.observations == 0
                     ? iat
                     : options_.ewma_alpha * iat + (1 - options_.ewma_alpha) * h.iat_ewma;
    ++h.observations;
  }
  h.last_arrival = now;
}

SimDuration DynamicKeepAlivePolicy::KeepAliveFor(const workload::FunctionSpec& spec,
                                                 SimTime) {
  const auto it = history_.find(spec.id);
  if (it == history_.end() || it->second.observations < options_.min_observations) {
    return options_.default_keep_alive;
  }
  const auto scaled = static_cast<SimDuration>(options_.headroom * it->second.iat_ewma);
  return std::clamp(scaled, options_.min_keep_alive, options_.max_keep_alive);
}

}  // namespace coldstart::policy
