#include "policy/keepalive.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/byte_serde.h"
#include "common/check.h"

namespace coldstart::policy {

DynamicKeepAlivePolicy::DynamicKeepAlivePolicy() : DynamicKeepAlivePolicy(Options{}) {}
DynamicKeepAlivePolicy::DynamicKeepAlivePolicy(Options options) : options_(options) {}

void DynamicKeepAlivePolicy::OnArrival(const workload::FunctionSpec& spec, SimTime now) {
  History& h = history_[spec.id];
  if (h.last_arrival >= 0) {
    const double iat = static_cast<double>(now - h.last_arrival);
    h.iat_ewma = h.observations == 0
                     ? iat
                     : options_.ewma_alpha * iat + (1 - options_.ewma_alpha) * h.iat_ewma;
    ++h.observations;
  }
  h.last_arrival = now;
}

SimDuration DynamicKeepAlivePolicy::KeepAliveFor(const workload::FunctionSpec& spec,
                                                 SimTime) {
  const auto it = history_.find(spec.id);
  if (it == history_.end() || it->second.observations < options_.min_observations) {
    return options_.default_keep_alive;
  }
  const auto scaled = static_cast<SimDuration>(options_.headroom * it->second.iat_ewma);
  return std::clamp(scaled, options_.min_keep_alive, options_.max_keep_alive);
}

bool DynamicKeepAlivePolicy::SavePolicyState(std::string* out) const {
  // Sorted by function id: unordered_map iteration order must not reach the blob.
  // LINT-ALLOW(unordered-iter): entries are copied out and sorted by function id before any byte is written
  std::vector<std::pair<trace::FunctionId, History>> entries(history_.begin(),
                                                             history_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ByteWriter w;
  w.U64(entries.size());
  for (const auto& [fid, h] : entries) {
    w.U64(fid);
    w.I64(h.last_arrival);
    w.F64(h.iat_ewma);
    w.I64(h.observations);
  }
  *out = w.Take();
  return true;
}

bool DynamicKeepAlivePolicy::RestorePolicyState(std::string_view blob) {
  COLDSTART_CHECK(history_.empty());
  ByteReader r(blob);
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    const auto fid = static_cast<trace::FunctionId>(r.U64());
    History& h = history_[fid];
    h.last_arrival = r.I64();
    h.iat_ewma = r.F64();
    h.observations = static_cast<int>(r.I64());
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
