#include "policy/prewarm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/byte_serde.h"
#include "common/check.h"

namespace coldstart::policy {

TimerAwarePrewarmPolicy::TimerAwarePrewarmPolicy() : TimerAwarePrewarmPolicy(Options{}) {}
TimerAwarePrewarmPolicy::TimerAwarePrewarmPolicy(Options options) : options_(options) {}

ProfilePrewarmPolicy::ProfilePrewarmPolicy() : ProfilePrewarmPolicy(Options{}) {}
ProfilePrewarmPolicy::ProfilePrewarmPolicy(Options options) : options_(options) {}

void TimerAwarePrewarmPolicy::OnArrival(const workload::FunctionSpec& spec, SimTime now) {
  COLDSTART_CHECK(platform_ != nullptr);
  FunctionHistory& h = history_[spec.id];
  if (h.last_arrival < 0) {
    h.last_arrival = now;
    return;
  }
  const double iat = static_cast<double>(now - h.last_arrival);
  h.last_arrival = now;
  if (iat <= 0) {
    return;
  }
  if (h.period_estimate <= 0) {
    h.period_estimate = iat;
    h.stable_count = 1;
    return;
  }
  const double rel_err = std::fabs(iat - h.period_estimate) / h.period_estimate;
  if (rel_err <= options_.stability_tolerance) {
    ++h.stable_count;
    h.period_estimate = 0.7 * h.period_estimate + 0.3 * iat;
  } else {
    h.stable_count = 0;
    h.period_estimate = iat;
    return;
  }

  const auto period = static_cast<SimDuration>(h.period_estimate);
  const bool periodic_enough = h.stable_count >= options_.min_observations;
  const bool outside_keep_alive = period > kMinute && period <= options_.max_period;
  if (!periodic_enough || !outside_keep_alive) {
    return;
  }
  // The pod serving the current fire dies after its keep-alive; spawn a fresh pod just
  // before the next fire. Survival window covers prediction error on both sides.
  const SimDuration until_next = period - options_.lead_time;
  if (until_next <= 0) {
    return;
  }
  platform::Platform& p = *platform_;
  const trace::FunctionId fid = spec.id;
  const trace::RegionId region = spec.region;
  const SimDuration survival = 2 * options_.lead_time + 10 * kSecond;
  p.simulator().ScheduleAfter(until_next, [&p, fid, region, survival] {
    if (!p.HasAvailablePod(fid)) {
      p.SpawnPrewarmedPod(fid, region, survival);
    }
  });
  ++prewarms_issued_;
}

void ProfilePrewarmPolicy::OnArrival(const workload::FunctionSpec& spec, SimTime now) {
  Profile& prof = profiles_[spec.id];
  const int minute = static_cast<int>((TimeOfDay(now)) / kMinute);
  prof.per_minute[static_cast<size_t>(minute)] += 1.0f;
}

void ProfilePrewarmPolicy::OnColdStart(const workload::FunctionSpec& spec, SimTime,
                                       SimDuration) {
  watch_list_.insert(spec.id);
}

void ProfilePrewarmPolicy::OnMinuteTick(SimTime now) {
  COLDSTART_CHECK(platform_ != nullptr);
  const int64_t day = DayIndex(now);
  if (day < 1) {
    return;  // Need at least one day of history before the profile means anything.
  }
  const int next_minute = static_cast<int>(((TimeOfDay(now)) / kMinute + 1) % 1440);
  int budget = options_.max_prewarms_per_tick;
  for (auto it = watch_list_.begin(); it != watch_list_.end() && budget > 0;) {
    const trace::FunctionId fid = *it;
    const auto prof_it = profiles_.find(fid);
    if (prof_it == profiles_.end()) {
      it = watch_list_.erase(it);
      continue;
    }
    const double expected =
        prof_it->second.per_minute[static_cast<size_t>(next_minute)] /
        static_cast<double>(day);
    if (expected >= options_.min_expected_arrivals && !platform_->HasAvailablePod(fid)) {
      platform_->SpawnPrewarmedPod(fid, platform_->spec(fid).region,
                                   options_.prewarm_keep_alive);
      ++prewarms_issued_;
      --budget;
    }
    ++it;
  }
}

bool ProfilePrewarmPolicy::SavePolicyState(std::string* out) const {
  // Sorted by function id: unordered_map iteration order must not reach the
  // blob (watch_list_ is a std::set, already ordered).
  std::vector<trace::FunctionId> fids;
  fids.reserve(profiles_.size());
  // LINT-ALLOW(unordered-iter): keys are copied out and sorted before any byte is written
  for (const auto& [fid, prof] : profiles_) {
    fids.push_back(fid);
  }
  std::sort(fids.begin(), fids.end());
  ByteWriter w;
  w.I64(prewarms_issued_);
  w.U64(watch_list_.size());
  for (const trace::FunctionId fid : watch_list_) {
    w.U64(fid);
  }
  w.U64(fids.size());
  for (const trace::FunctionId fid : fids) {
    const Profile& prof = profiles_.at(fid);
    w.U64(fid);
    w.I64(prof.days_observed);
    w.Raw(prof.per_minute.data(), prof.per_minute.size() * sizeof(float));
  }
  *out = w.Take();
  return true;
}

bool ProfilePrewarmPolicy::RestorePolicyState(std::string_view blob) {
  COLDSTART_CHECK(profiles_.empty() && watch_list_.empty());
  ByteReader r(blob);
  prewarms_issued_ = r.I64();
  const uint64_t watched = r.U64();
  for (uint64_t i = 0; i < watched; ++i) {
    watch_list_.insert(static_cast<trace::FunctionId>(r.U64()));
  }
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    const auto fid = static_cast<trace::FunctionId>(r.U64());
    Profile& prof = profiles_[fid];
    prof.days_observed = static_cast<int>(r.I64());
    r.Raw(prof.per_minute.data(), prof.per_minute.size() * sizeof(float));
  }
  COLDSTART_CHECK(r.AtEnd());
  return true;
}

}  // namespace coldstart::policy
