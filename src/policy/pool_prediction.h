// Predictive resource-pool sizing (§5 "Resource pool prediction").
//
// Observes per-(region, config) pod-start demand each minute and retargets the
// inactive-pod pools with a forecaster, instead of the static targets of the baseline:
// "directly predicts required resources" rather than predicting invocations first.
#ifndef COLDSTART_POLICY_POOL_PREDICTION_H_
#define COLDSTART_POLICY_POOL_PREDICTION_H_

#include <memory>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "policy/predictors.h"

namespace coldstart::policy {

// Predictor state is an opaque SeriesPredictor per (region, config) with no
// serialization surface, so the policy is deliberately non-checkpointable:
// Run(..., &checkpoint) rejects it up front (policy_hooks.h).
// LINT-ALLOW(policy-hooks): SeriesPredictor implementations are not serializable; Run() refuses to checkpoint this policy up front
class PoolPredictionPolicy : public platform::PlatformPolicy {
 public:
  struct Options {
    std::string predictor = "seasonal-naive";  // See MakePredictor().
    double headroom = 1.5;                     // Pool target = headroom x prediction.
    int min_target = 1;
    int max_target = 512;
  };

  PoolPredictionPolicy();
  explicit PoolPredictionPolicy(Options options);

  void OnAttach(platform::Platform& platform) override;
  void OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                   SimDuration total) override;
  void OnMinuteTick(SimTime now) override;

  // One predictor per (region, config) with no cross-region coupling: shards cleanly.
  std::unique_ptr<platform::PlatformPolicy> CloneForShard() const override {
    return std::make_unique<PoolPredictionPolicy>(options_);
  }

 private:
  int IndexOf(trace::RegionId region, trace::ResourceConfig config) const {
    return static_cast<int>(region) * trace::kNumResourceConfigs + static_cast<int>(config);
  }

  Options options_;
  platform::Platform* platform_ = nullptr;
  std::vector<std::unique_ptr<SeriesPredictor>> predictors_;  // [region x config].
  std::vector<double> demand_this_minute_;
};

}  // namespace coldstart::policy

#endif  // COLDSTART_POLICY_POOL_PREDICTION_H_
