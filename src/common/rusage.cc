#include "common/rusage.h"

#include <sys/resource.h>

namespace coldstart {

double PeakRssMb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // Bytes.
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB.
#endif
}

}  // namespace coldstart
