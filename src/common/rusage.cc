#include "common/rusage.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

namespace coldstart {

double PeakRssMb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // Bytes.
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB.
#endif
}

double PeakVmMb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1.0;
  }
  double mb = -1.0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmPeak: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

}  // namespace coldstart
