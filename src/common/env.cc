#include "common/env.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace coldstart {

std::optional<int64_t> ParseInt(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative) {
    i = 1;
  }
  if (i == text.size()) {
    return std::nullopt;
  }
  // Accumulate negated: |INT64_MIN| > INT64_MAX, so the negative range is the
  // wider one and never overflows first.
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const int digit = c - '0';
    if (value < (INT64_MIN + digit) / 10) {
      return std::nullopt;  // Would overflow.
    }
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == INT64_MIN) {
      return std::nullopt;  // 9223372036854775808 has no positive representation.
    }
    value = -value;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  const std::string copy(text);  // strtod needs NUL termination.
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

int64_t ParseEnvInt(const char* name, int64_t fallback, int64_t min, int64_t max) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  const std::optional<int64_t> parsed = ParseInt(env);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "fatal: %s=\"%s\" is not a valid integer\n", name, env);
    std::abort();
  }
  if (*parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "fatal: %s=%" PRId64 " is outside the allowed range [%" PRId64
                 ", %" PRId64 "]\n",
                 name, *parsed, min, max);
    std::abort();
  }
  return *parsed;
}

std::string ParseEnvString(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  if (*env == '\0') {
    std::fprintf(stderr, "fatal: %s is set but empty\n", name);
    std::abort();
  }
  return env;
}

}  // namespace coldstart
