// Log-bucketed latency histogram.
//
// Records positive values (durations in µs, ratios, ...) into geometrically spaced
// buckets so that quantiles over 6+ decades (the paper's cold-start times span 10ms to
// >100s) can be tracked in O(1) memory. Quantile error is bounded by the bucket growth
// factor (default ~2.3% with 64 buckets per decade).
#ifndef COLDSTART_COMMON_HISTOGRAM_H_
#define COLDSTART_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/byte_serde.h"

namespace coldstart {

class LogHistogram {
 public:
  // Tracks values in [min_value, max_value] with `buckets_per_decade` geometric buckets
  // per factor of 10. Values below/above the range clamp into the edge buckets.
  LogHistogram(double min_value, double max_value, int buckets_per_decade = 64);

  void Add(double value, uint64_t count = 1);
  void Merge(const LogHistogram& other);
  void Reset();

  uint64_t total_count() const { return total_count_; }
  double min_recorded() const { return min_recorded_; }
  double max_recorded() const { return max_recorded_; }
  double sum() const { return static_cast<double>(sum_fp_) / kSumScale; }
  // NaN for an empty histogram.
  double Mean() const;

  // Value at quantile q in [0, 1]; returns the geometric midpoint of the bucket that
  // contains the q-th sample, clamped to [min_recorded, max_recorded] (so a
  // single-sample histogram returns that sample exactly). NaN for an empty histogram.
  double Quantile(double q) const;

  // Fraction of recorded values <= value.
  double CdfAt(double value) const;

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  uint64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  // Lower edge of bucket i.
  double bucket_lower(int i) const;

  // Checkpoint support: the recorded state (bucket counts plus the exact-value
  // accumulators, doubles by bit pattern). The bucket layout is construction-
  // derived, so RestoreState requires a histogram built with the same range and
  // resolution and CHECK-fails on a bucket-count mismatch.
  void SaveState(ByteWriter& w) const;
  void RestoreState(ByteReader& r);

 private:
  int BucketFor(double value) const;

  // The value sum is accumulated in 2^-20 fixed point inside a 128-bit integer.
  // Integer addition is associative, so a histogram split across sub-region
  // shards merges to the exact serial sum regardless of shard count or merge
  // order — a float accumulator would make the sharded sum order-dependent.
  // Headroom: 10^9 values of 10^9 each stay below 2^110.
  static constexpr double kSumScale = 1048576.0;  // 2^20.
  static __int128 ToFixed(double value) {
    return static_cast<__int128>(value * kSumScale);
  }

  double log_min_;
  double log_max_;
  double inv_log_step_;
  double log_step_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  __int128 sum_fp_ = 0;
  double min_recorded_ = 0;
  double max_recorded_ = 0;
};

}  // namespace coldstart

#endif  // COLDSTART_COMMON_HISTOGRAM_H_
