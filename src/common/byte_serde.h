// Minimal byte-buffer serialization for checkpoint payloads.
//
// Checkpoints (checkpoint/checkpoint.h) snapshot live simulation state —
// RNG words, timers, histograms, slab structure — into a flat byte string that
// is CRC-protected and restored bit-exactly. ByteWriter appends fixed-width
// little-endian fields to an in-memory string; ByteReader consumes them in the
// same order. Floating-point values travel as their IEEE-754 bit patterns, so a
// save/restore round trip is exact (no printf/parse detour).
//
// Readers CHECK-fail on underflow rather than returning errors: the payload
// CRC has already been validated by the time a ByteReader runs, so running out
// of bytes means a writer/reader mismatch — a bug, not bad input. That bug
// class is also caught statically: coldstart_lint's serde-pair rule compares
// the op sequences of every Save*/Restore* (and Write*/Read*) pair in count
// and type (tools/lint/lint.h).
#ifndef COLDSTART_COMMON_BYTE_SERDE_H_
#define COLDSTART_COMMON_BYTE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/check.h"

namespace coldstart {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  // Length-prefixed byte string.
  void Str(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  // Raw bytes, no length prefix — the reader must know the size.
  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  uint8_t U8() {
    COLDSTART_CHECK(p_ < end_);
    return static_cast<uint8_t>(*p_++);
  }
  uint32_t U32() {
    uint32_t v;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t I64() {
    int64_t v;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint64_t size = U64();
    COLDSTART_CHECK(size <= Remaining());
    std::string s(p_, size);
    p_ += size;
    return s;
  }
  void Raw(void* out, size_t size) {
    COLDSTART_CHECK(size <= Remaining());
    std::memcpy(out, p_, size);
    p_ += size;
  }

  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

}  // namespace coldstart

#endif  // COLDSTART_COMMON_BYTE_SERDE_H_
