// Fixed-width text table rendering for bench/report output.
//
// Every bench binary prints its figure/table as aligned rows; this keeps that output
// consistent and makes diffs between runs readable.
#ifndef COLDSTART_COMMON_TABLE_H_
#define COLDSTART_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace coldstart {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Starts a new row; subsequent Cell() calls fill it left to right.
  TextTable& Row();
  TextTable& Cell(const std::string& value);
  TextTable& Cell(double value, int precision = 3);
  TextTable& Cell(int64_t value);
  TextTable& Cell(uint64_t value);
  TextTable& Cell(int value) { return Cell(static_cast<int64_t>(value)); }

  // Renders the table with a header underline and two-space column gaps.
  std::string Render() const;
  // Renders as CSV (no alignment padding).
  std::string RenderCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly ("1.23e+05" only when necessary).
std::string FormatDouble(double v, int precision = 3);

}  // namespace coldstart

#endif  // COLDSTART_COMMON_TABLE_H_
