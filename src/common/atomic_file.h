// Crash-safe file replacement: write-to-temp + fsync + rename.
//
// Every durable artifact this library writes — trace cache files, checkpoint
// shards, checkpoint manifests — must never be observable in a half-written
// state: a crash mid-write would otherwise leave a truncated file at the final
// path that a later run might try to load. AtomicFile gives the standard POSIX
// discipline: bytes go to a temporary file in the *same directory* (rename(2)
// is only atomic within a filesystem), the temp is fsync'd, then renamed over
// the destination, then the directory is fsync'd so the rename itself is
// durable. Until Commit() succeeds the destination path is untouched; on any
// failure (or if the AtomicFile is dropped uncommitted) the temp is unlinked.
#ifndef COLDSTART_COMMON_ATOMIC_FILE_H_
#define COLDSTART_COMMON_ATOMIC_FILE_H_

#include <cstdio>
#include <string>

namespace coldstart {

class AtomicFile {
 public:
  // Opens `<path>.tmp.<pid>` for writing in path's directory. Check ok() before
  // writing — a failed open (missing directory, permissions) is reported there,
  // not thrown.
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  bool ok() const { return file_ != nullptr; }

  // Appends `size` bytes; returns false (and poisons the file) on I/O error.
  bool Write(const void* data, size_t size);

  // Flushes, fsyncs, closes, renames over the destination, and fsyncs the
  // directory. Returns false if any step fails; the destination is then
  // untouched and the temp file has been removed. At most one Commit per file.
  bool Commit();

  // Discards the temp file without touching the destination. Safe to call at
  // any point; the destructor calls it for uncommitted files.
  void Abandon();

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  bool failed_ = false;
};

}  // namespace coldstart

#endif  // COLDSTART_COMMON_ATOMIC_FILE_H_
