// Lightweight assertion macros for invariant checking.
//
// CHECK* macros are always on (release included): simulator correctness depends on
// invariants that must not be compiled away. They print the failing expression with
// file/line context and abort.
#ifndef COLDSTART_COMMON_CHECK_H_
#define COLDSTART_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace coldstart {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace coldstart

#define COLDSTART_CHECK(expr)                                 \
  do {                                                        \
    if (!(expr)) {                                            \
      ::coldstart::CheckFailed(#expr, __FILE__, __LINE__);    \
    }                                                         \
  } while (0)

#define COLDSTART_CHECK_GE(a, b) COLDSTART_CHECK((a) >= (b))
#define COLDSTART_CHECK_GT(a, b) COLDSTART_CHECK((a) > (b))
#define COLDSTART_CHECK_LE(a, b) COLDSTART_CHECK((a) <= (b))
#define COLDSTART_CHECK_LT(a, b) COLDSTART_CHECK((a) < (b))
#define COLDSTART_CHECK_EQ(a, b) COLDSTART_CHECK((a) == (b))
#define COLDSTART_CHECK_NE(a, b) COLDSTART_CHECK((a) != (b))

#endif  // COLDSTART_COMMON_CHECK_H_
