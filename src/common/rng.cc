#include "common/rng.h"

namespace coldstart {

uint64_t HashString(std::string_view s) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

Rng Rng::ForkStream(std::string_view label) const {
  // Combine this stream's state with the label hash; the state itself is untouched.
  uint64_t material = state_[0] ^ Rotl(state_[2], 13);
  return Rng(MixHash(material, HashString(label)));
}

Rng Rng::ForkStream(uint64_t key) const {
  uint64_t material = state_[0] ^ Rotl(state_[2], 13);
  return Rng(MixHash(material, key));
}

}  // namespace coldstart
