// Process resource-usage probes for the memory-budget benches and examples.
#ifndef COLDSTART_COMMON_RUSAGE_H_
#define COLDSTART_COMMON_RUSAGE_H_

namespace coldstart {

// Peak resident set size of this process in MB (getrusage ru_maxrss; KB on
// Linux, bytes on macOS — the platform difference is handled here). Monotonic:
// measure the smaller of two runs first.
double PeakRssMb();

// Peak virtual address-space size of this process in MB (/proc/self/status
// VmPeak) — the quantity `ulimit -v` budgets, which is what the year_scale
// memory-contract test enforces. Returns a negative value where /proc is
// unavailable (non-Linux). Monotonic, like PeakRssMb.
double PeakVmMb();

}  // namespace coldstart

#endif  // COLDSTART_COMMON_RUSAGE_H_
