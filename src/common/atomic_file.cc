#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace coldstart {
namespace {

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

bool FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

AtomicFile::AtomicFile(std::string path) : path_(std::move(path)) {
  tmp_path_ = path_ + ".tmp." + std::to_string(::getpid());
  file_ = std::fopen(tmp_path_.c_str(), "wb");
}

AtomicFile::~AtomicFile() { Abandon(); }

bool AtomicFile::Write(const void* data, size_t size) {
  if (file_ == nullptr || failed_) {
    return false;
  }
  if (size == 0) {
    return true;
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    failed_ = true;
    return false;
  }
  return true;
}

bool AtomicFile::Commit() {
  if (file_ == nullptr || failed_) {
    Abandon();
    return false;
  }
  bool ok = std::fflush(file_) == 0;
  ok = ok && ::fsync(::fileno(file_)) == 0;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  ok = ok && std::rename(tmp_path_.c_str(), path_.c_str()) == 0;
  if (!ok) {
    std::remove(tmp_path_.c_str());
    failed_ = true;
    return false;
  }
  // Make the rename itself durable. A failed directory fsync leaves a valid
  // file that might vanish on power loss — degraded durability, not corruption
  // — so it does not fail the commit.
  FsyncDirectory(DirnameOf(path_));
  return true;
}

void AtomicFile::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
  }
}

}  // namespace coldstart
