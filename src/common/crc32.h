// CRC32 (IEEE 802.3, polynomial 0xEDB88320) for file-format integrity checks.
//
// Both durable binary formats — the trace cache (trace/binary_io.h, v5) and
// checkpoint shards (checkpoint/checkpoint.h) — carry a CRC32 over their
// payload so a torn or bit-flipped file is rejected loudly instead of loading
// silently-wrong state. This is an error-*detection* code, not a cryptographic
// hash; it guards against storage corruption, not tampering.
#ifndef COLDSTART_COMMON_CRC32_H_
#define COLDSTART_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace coldstart {

// Extends `crc` (0 for a fresh checksum) over `size` bytes at `data`. Chainable:
// Crc32(b, nb, Crc32(a, na)) equals Crc32 over the concatenation a ++ b, so
// multi-span payloads are checksummed without copying them into one buffer.
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

}  // namespace coldstart

#endif  // COLDSTART_COMMON_CRC32_H_
