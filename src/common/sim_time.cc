#include "common/sim_time.h"

#include <cinttypes>
#include <cstdio>

namespace coldstart {

std::string FormatSimTime(SimTime t) {
  const int64_t day = DayIndex(t);
  SimDuration rem = TimeOfDay(t);
  const int64_t h = rem / kHour;
  rem %= kHour;
  const int64_t m = rem / kMinute;
  rem %= kMinute;
  const int64_t s = rem / kSecond;
  const int64_t ms = (rem % kSecond) / kMillisecond;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "d%02" PRId64 " %02" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                day, h, m, s, ms);
  return buf;
}

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (abs < static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", d);
  } else if (abs < static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(d) / kMillisecond);
  } else if (abs < static_cast<double>(kMinute)) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / kSecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fmin", static_cast<double>(d) / kMinute);
  }
  return buf;
}

}  // namespace coldstart
