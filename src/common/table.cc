#include "common/table.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace coldstart {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  if (std::isnan(v)) {
    // Statistics of empty sample sets are NaN by contract (stats/ecdf.h,
    // common/histogram.h); render them as explicit n/a, never as a number.
    return "n/a";
  }
  const double a = std::fabs(v);
  if (a != 0.0 && (a >= 1e7 || a < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

TextTable& TextTable::Row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::Cell(const std::string& value) {
  COLDSTART_CHECK(!rows_.empty());
  COLDSTART_CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::Cell(double value, int precision) {
  return Cell(FormatDouble(value, precision));
}

TextTable& TextTable::Cell(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return Cell(std::string(buf));
}

TextTable& TextTable::Cell(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return Cell(std::string(buf));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto append_padded = [&](const std::string& s, size_t w, bool last) {
    out += s;
    if (!last) {
      out.append(w - s.size() + 2, ' ');
    }
  };
  for (size_t c = 0; c < headers_.size(); ++c) {
    append_padded(headers_[c], widths[c], c + 1 == headers_.size());
  }
  out += '\n';
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      append_padded(row[c], widths[c], c + 1 == row.size());
    }
    out += '\n';
  }
  return out;
}

std::string TextTable::RenderCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

}  // namespace coldstart
