// A move-only, small-buffer-optimized callable for the event queue hot path.
//
// The simulator stores millions of scheduled handlers; std::function heap-allocates
// once captures exceed its (implementation-defined, typically 16-byte) inline buffer,
// which makes every completion/keep-alive event an allocation. InlineHandler keeps
// captures up to kInlineCapacity bytes inside the handler object itself — every
// scheduler call site in src/sim and src/platform fits — and falls back to a single
// heap cell only for oversized or alignment-exotic callables (test helpers, tools).
#ifndef COLDSTART_COMMON_INLINE_HANDLER_H_
#define COLDSTART_COMMON_INLINE_HANDLER_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace coldstart {

class InlineHandler {
 public:
  static constexpr size_t kInlineCapacity = 48;

  InlineHandler() = default;

  // Implicit by design, mirroring std::function: call sites pass lambdas directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineHandler> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineHandler(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineHandler(InlineHandler&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineHandler& operator=(InlineHandler&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;

  ~InlineHandler() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    COLDSTART_CHECK(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  // True when the wrapped callable lives entirely in the inline buffer.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs the payload at dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Fn>
  static void InlineInvoke(void* p) {
    (*std::launder(static_cast<Fn*>(p)))();
  }
  template <typename Fn>
  static void InlineRelocate(void* dst, void* src) {
    Fn* s = std::launder(static_cast<Fn*>(src));
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  template <typename Fn>
  static void InlineDestroy(void* p) {
    std::launder(static_cast<Fn*>(p))->~Fn();
  }
  template <typename Fn>
  static constexpr Ops kInlineOps{&InlineInvoke<Fn>, &InlineRelocate<Fn>,
                                  &InlineDestroy<Fn>, /*inline_storage=*/true};

  template <typename Fn>
  static Fn* HeapCell(void* p) {
    return *std::launder(reinterpret_cast<Fn**>(p));
  }
  template <typename Fn>
  static void HeapInvoke(void* p) {
    (*HeapCell<Fn>(p))();
  }
  template <typename Fn>
  static void HeapRelocate(void* dst, void* src) {
    ::new (dst) Fn*(HeapCell<Fn>(src));
  }
  template <typename Fn>
  static void HeapDestroy(void* p) {
    delete HeapCell<Fn>(p);
  }
  template <typename Fn>
  static constexpr Ops kHeapOps{&HeapInvoke<Fn>, &HeapRelocate<Fn>, &HeapDestroy<Fn>,
                                /*inline_storage=*/false};

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace coldstart

#endif  // COLDSTART_COMMON_INLINE_HANDLER_H_
