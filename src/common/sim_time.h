// Simulated-time primitives.
//
// All platform timestamps are microseconds since the start of the trace, matching the
// µs resolution of the paper's pod-level table (Table 1). Times are plain int64 ticks
// (not std::chrono) so they can be stored compactly in columnar traces and serialized
// losslessly to CSV.
#ifndef COLDSTART_COMMON_SIM_TIME_H_
#define COLDSTART_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace coldstart {

// Microseconds since trace start.
using SimTime = int64_t;
// A span of microseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

// Converts a duration to fractional seconds (for analysis/report code).
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

// Converts fractional seconds to a duration, rounding to the nearest microsecond.
constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

// Index of the minute bucket containing `t` (bucket 0 covers [0, 1min)).
constexpr int64_t MinuteIndex(SimTime t) { return t / kMinute; }
// Index of the hour bucket containing `t`.
constexpr int64_t HourIndex(SimTime t) { return t / kHour; }
// Index of the day containing `t` (day 0 is the first trace day).
constexpr int64_t DayIndex(SimTime t) { return t / kDay; }
// Offset within the day, in [0, kDay).
constexpr SimDuration TimeOfDay(SimTime t) { return t % kDay; }
// Fractional hour-of-day in [0, 24).
constexpr double HourOfDay(SimTime t) { return static_cast<double>(TimeOfDay(t)) / kHour; }

// Renders "d12 03:45:06.123" style timestamps for human-readable reports.
std::string FormatSimTime(SimTime t);
// Renders durations with an adaptive unit ("532us", "12.3ms", "4.56s", "2.1min").
std::string FormatDuration(SimDuration d);

}  // namespace coldstart

#endif  // COLDSTART_COMMON_SIM_TIME_H_
