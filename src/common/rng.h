// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that every experiment is exactly
// reproducible from a single 64-bit seed. Substreams (ForkStream) let independent
// components (per-function arrival processes, per-region architecture noise, ...) draw
// without perturbing each other's sequences, which keeps results stable when one
// component changes how many numbers it consumes.
#ifndef COLDSTART_COMMON_RNG_H_
#define COLDSTART_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/check.h"

namespace coldstart {

// SplitMix64: fast, high-quality 64-bit mixing; used both as a generator and to derive
// substream seeds from (seed, label) pairs.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// xoshiro256**-based generator seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : state_) {
      w = SplitMix64(sm);
    }
    // Avoid the all-zero state (cannot occur from SplitMix64 in practice, but cheap to guard).
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 0x1ull;
    }
  }

  // Raw 64 uniform bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Uniform double in (0, 1]; safe as a log() argument.
  double NextDoublePositive() { return 1.0 - NextDouble(); }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free mapping
  // (bias < 2^-64, irrelevant at our sample counts).
  uint64_t NextBounded(uint64_t n) {
    COLDSTART_CHECK_GT(n, 0u);
    const unsigned __int128 m = static_cast<unsigned __int128>(NextU64()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  // Bernoulli trial.
  bool NextBool(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (no cached spare: keeps the stream length predictable).
  double NextGaussian() {
    const double u1 = NextDoublePositive();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586476925286766559 * u2);
  }

  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate) {
    COLDSTART_CHECK_GT(rate, 0.0);
    return -std::log(NextDoublePositive()) / rate;
  }

  // Derives an independent generator for the given label. Deterministic in (this stream's
  // seed material, label): forking the same label twice yields identical substreams.
  Rng ForkStream(std::string_view label) const;

  // Derives an independent generator for the given numeric key (e.g. a function id).
  Rng ForkStream(uint64_t key) const;

  // Checkpoint support: the four xoshiro256** state words. RestoreState makes
  // this generator continue the saved stream bit-exactly.
  void SaveState(uint64_t out[4]) const { std::memcpy(out, state_, sizeof(state_)); }
  void RestoreState(const uint64_t in[4]) { std::memcpy(state_, in, sizeof(state_)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// FNV-1a hash of a string, used for stable substream labels and for hashing entity names
// the way the dataset hashes IDs.
uint64_t HashString(std::string_view s);

// Mixes two 64-bit values into one (for composite substream keys).
inline uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  return SplitMix64(x);
}

// Mixes a double by bit pattern: any representable change to the value yields a
// different hash. Shared by every fingerprint that covers floating-point
// configuration (scenario scalars, replay options) so they can never diverge on
// how doubles are canonicalized.
inline uint64_t MixHashDouble(uint64_t h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return MixHash(h, bits);
}

}  // namespace coldstart

#endif  // COLDSTART_COMMON_RNG_H_
