// Validated environment-variable parsing.
//
// Every knob the lab reads from the environment goes through these helpers. The
// contract is fail-loud: an unset variable falls back to the default, but a set
// variable that is empty, non-numeric, has trailing junk, overflows, or falls
// outside the allowed range aborts with a message naming the variable — a typo in
// COLDSTART_THREADS must never silently become "use the default".
#ifndef COLDSTART_COMMON_ENV_H_
#define COLDSTART_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace coldstart {

// Strict whole-string decimal integer parse (optional leading '-'). Empty text,
// non-digits, trailing junk, and values outside int64_t all return nullopt.
std::optional<int64_t> ParseInt(std::string_view text);

// Strict whole-string finite-double parse: the entire text must be consumed and
// the value must be finite. The CLI-argument counterpart of ParseInt, shared by
// the binaries whose arguments gate CI (a typo'd scale must not silently become
// 0 and turn the run into a vacuous pass).
std::optional<double> ParseDouble(std::string_view text);

// Integer environment variable: unset -> `fallback` (which may lie outside
// [min, max] — e.g. a "not configured" sentinel). Set but malformed or outside
// [min, max] -> prints the variable name and offending value to stderr and aborts.
int64_t ParseEnvInt(const char* name, int64_t fallback, int64_t min, int64_t max);

// String environment variable: unset -> `fallback`; set but empty -> aborts
// (an empty COLDSTART_CACHE_DIR is a typo, not a request for the default).
std::string ParseEnvString(const char* name, const std::string& fallback);

}  // namespace coldstart

#endif  // COLDSTART_COMMON_ENV_H_
