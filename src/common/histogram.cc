#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace coldstart {

LogHistogram::LogHistogram(double min_value, double max_value, int buckets_per_decade) {
  COLDSTART_CHECK_GT(min_value, 0.0);
  COLDSTART_CHECK_GT(max_value, min_value);
  COLDSTART_CHECK_GT(buckets_per_decade, 0);
  log_min_ = std::log10(min_value);
  log_max_ = std::log10(max_value);
  log_step_ = 1.0 / buckets_per_decade;
  inv_log_step_ = buckets_per_decade;
  const int n = static_cast<int>(std::ceil((log_max_ - log_min_) * inv_log_step_)) + 1;
  counts_.assign(static_cast<size_t>(n), 0);
}

int LogHistogram::BucketFor(double value) const {
  if (!(value > 0.0)) {
    return 0;
  }
  const double pos = (std::log10(value) - log_min_) * inv_log_step_;
  const int n = num_buckets();
  if (pos < 0) {
    return 0;
  }
  if (pos >= n - 1) {
    return n - 1;
  }
  return static_cast<int>(pos);
}

void LogHistogram::Add(double value, uint64_t count) {
  if (count == 0) {
    return;
  }
  counts_[static_cast<size_t>(BucketFor(value))] += count;
  if (total_count_ == 0) {
    min_recorded_ = value;
    max_recorded_ = value;
  } else {
    min_recorded_ = std::min(min_recorded_, value);
    max_recorded_ = std::max(max_recorded_, value);
  }
  total_count_ += count;
  sum_fp_ += ToFixed(value) * static_cast<__int128>(count);
}

void LogHistogram::Merge(const LogHistogram& other) {
  COLDSTART_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.total_count_ > 0) {
    if (total_count_ == 0) {
      min_recorded_ = other.min_recorded_;
      max_recorded_ = other.max_recorded_;
    } else {
      min_recorded_ = std::min(min_recorded_, other.min_recorded_);
      max_recorded_ = std::max(max_recorded_, other.max_recorded_);
    }
  }
  total_count_ += other.total_count_;
  sum_fp_ += other.sum_fp_;
}

void LogHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_count_ = 0;
  sum_fp_ = 0;
  min_recorded_ = 0;
  max_recorded_ = 0;
}

double LogHistogram::Mean() const {
  return total_count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                           : sum() / static_cast<double>(total_count_);
}

double LogHistogram::bucket_lower(int i) const {
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

double LogHistogram::Quantile(double q) const {
  if (total_count_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();  // No samples, no quantiles.
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_count_ - 1);
  uint64_t seen = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    const uint64_t c = counts_[static_cast<size_t>(i)];
    if (c == 0) {
      continue;
    }
    if (static_cast<double>(seen + c - 1) >= target) {
      // Geometric midpoint of the bucket, clamped to the recorded range.
      const double mid = std::pow(10.0, log_min_ + (static_cast<double>(i) + 0.5) * log_step_);
      return std::clamp(mid, min_recorded_, max_recorded_);
    }
    seen += c;
  }
  return max_recorded_;
}

void LogHistogram::SaveState(ByteWriter& w) const {
  w.U64(counts_.size());
  for (const uint64_t c : counts_) {
    w.U64(c);
  }
  w.U64(total_count_);
  // The fixed-point sum travels as (low, high) 64-bit halves.
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(sum_fp_)));
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(sum_fp_) >> 64));
  w.F64(min_recorded_);
  w.F64(max_recorded_);
}

void LogHistogram::RestoreState(ByteReader& r) {
  const uint64_t n = r.U64();
  COLDSTART_CHECK_EQ(n, counts_.size());
  for (uint64_t& c : counts_) {
    c = r.U64();
  }
  total_count_ = r.U64();
  const uint64_t sum_lo = r.U64();
  const uint64_t sum_hi = r.U64();
  sum_fp_ = static_cast<__int128>(
      (static_cast<unsigned __int128>(sum_hi) << 64) |
      static_cast<unsigned __int128>(sum_lo));
  min_recorded_ = r.F64();
  max_recorded_ = r.F64();
}

double LogHistogram::CdfAt(double value) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  const int b = BucketFor(value);
  uint64_t seen = 0;
  for (int i = 0; i <= b; ++i) {
    seen += counts_[static_cast<size_t>(i)];
  }
  return static_cast<double>(seen) / static_cast<double>(total_count_);
}

}  // namespace coldstart
