// The cold-start pipeline: computes the four component latencies of Figure 2.
//
// Component model (per DESIGN.md §5):
//   pod allocation  = staged pool search (depth from live pool occupancy) or
//                     from-scratch creation; http adds a server start; plus a
//                     congestion term driven by concurrent cold starts.
//   deploy code     = base + code_size/bandwidth, scaled by runtime factor and
//                     registry congestion.
//   deploy deps     = same shape over dependency size; exactly zero for functions
//                     without layers; post-holiday penalty on the first workdays.
//   scheduling      = base x runtime placement factor + queueing term per in-flight
//                     cold start.
// All noise is multiplicative LogNormal so components stay positive and long-tailed.
#ifndef COLDSTART_PLATFORM_COLDSTART_PIPELINE_H_
#define COLDSTART_PLATFORM_COLDSTART_PIPELINE_H_

#include "platform/load_state.h"
#include "platform/resource_pool.h"
#include "workload/calendar.h"
#include "workload/region_profile.h"

namespace coldstart::platform {

struct ColdStartComponents {
  SimDuration pod_alloc = 0;
  SimDuration deploy_code = 0;
  SimDuration deploy_dep = 0;
  SimDuration scheduling = 0;
  int pool_stage = 1;
  bool from_scratch = false;

  SimDuration total() const { return pod_alloc + deploy_code + deploy_dep + scheduling; }
};

class ColdStartPipeline {
 public:
  ColdStartPipeline(const workload::RegionProfile& profile,
                    const workload::Calendar& calendar);

  // Computes component times for one cold start of `spec` at `now`, drawing a pod from
  // `pool` (mutates pool occupancy).
  ColdStartComponents Compute(const workload::FunctionSpec& spec, ResourcePool& pool,
                              const RegionLoadState& load, SimTime now, Rng& rng) const;

 private:
  // Multiplier > 1 on dependency deployment right after the holiday (cold caches and
  // first-time redeployments), decaying over ~2 workdays.
  double PostHolidayDepMultiplier(SimTime now) const;

  workload::RegionProfile profile_;
  workload::Calendar calendar_;
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_COLDSTART_PIPELINE_H_
