// The default cold-start model: the YuanRong-calibrated pipeline of Figure 2.
//
// Component model (per DESIGN.md §5):
//   pod allocation  = staged pool search (depth from live pool occupancy) or
//                     from-scratch creation; http adds a server start; plus a
//                     congestion term driven by concurrent cold starts.
//   deploy code     = base + code_size/bandwidth, scaled by runtime factor and
//                     registry congestion.
//   deploy deps     = same shape over dependency size; exactly zero for functions
//                     without layers; post-holiday penalty on the first workdays.
//   scheduling      = base x runtime placement factor + queueing term per in-flight
//                     cold start.
// All noise is multiplicative LogNormal so components stay positive and long-tailed.
//
// This is one implementation of the ColdStartModel interface (coldstart_model.h);
// the provider presets in provider_models.h reuse the same engine with published
// AWS/GCP/Azure latency constants.
#ifndef COLDSTART_PLATFORM_COLDSTART_PIPELINE_H_
#define COLDSTART_PLATFORM_COLDSTART_PIPELINE_H_

#include <memory>
#include <string_view>

#include "platform/coldstart_model.h"
#include "workload/calendar.h"
#include "workload/region_profile.h"

namespace coldstart::platform {

class YuanRongModel : public ColdStartModel {
 public:
  YuanRongModel(const workload::RegionProfile& profile,
                const workload::Calendar& calendar);

  // Draws from `rng` in a fixed order (alloc noise, optional http noise, congestion
  // uniform, code noise, optional dep noise, sched noise, queue uniform) — the
  // golden trace digest pins this order bit for bit.
  ColdStartComponents Compute(const workload::FunctionSpec& spec, ResourcePool& pool,
                              const RegionLoadState& load, SimTime now,
                              Rng& rng) override;

  std::string_view name() const override { return "yuanrong"; }
  std::unique_ptr<ColdStartModel> Clone() const override {
    return std::make_unique<YuanRongModel>(*this);
  }
  // profile_/calendar_ are construction-time configuration, not mutable state, so
  // the inherited empty SaveModelState/RestoreModelState pair is correct.
  void SaveModelState(ByteWriter& w) const override { (void)w; }
  void RestoreModelState(ByteReader& r) override { (void)r; }

 private:
  // Multiplier > 1 on dependency deployment right after the holiday (cold caches and
  // first-time redeployments), decaying over ~2 workdays.
  double PostHolidayDepMultiplier(SimTime now) const;

  workload::RegionProfile profile_;
  workload::Calendar calendar_;
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_COLDSTART_PIPELINE_H_
