#include "platform/provider_models.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace coldstart::platform {

namespace {

// Same LogNormal noise / 1 µs floor idiom as the pipeline engine.
double Noise(Rng& rng, double sigma) { return std::exp(sigma * rng.NextGaussian()); }

SimDuration Dur(double seconds) {
  return std::max<SimDuration>(1, FromSeconds(seconds));
}

workload::RegionProfile WithArch(workload::RegionProfile profile,
                                 const workload::ColdStartArchitecture& arch) {
  profile.arch = arch;
  return profile;
}

}  // namespace

// --- Provider architectures. -------------------------------------------------
//
// Constants are fitted so the *unloaded* component sums land on the cold/warm
// latencies that public benchmarks report for small interpreted-language
// functions, with the spread widened to cover the published tails:
//   AWS   — warm invocations add ~10-30 ms; cold starts cluster at 0.2-0.6 s,
//           container-image (from-scratch) paths at several seconds.
//   GCP   — cold starts cluster at 2-4 s, dominated by instance scheduling and
//           code fetch; warm overhead tens of ms.
//   Azure — cold starts 3-6 s with a pronounced heavy tail (>10 s excursions),
//           the widest variance of the three.
// Congestion/rate coefficients keep the YuanRong shape but are toned to each
// provider's observed sensitivity; the pool stages map onto each provider's
// pre-provisioned sandbox tiers.

workload::ColdStartArchitecture AwsLikeArchitecture() {
  workload::ColdStartArchitecture a;
  a.alloc_stage1_median_s = 0.015;  // MicroVM pool hit.
  a.alloc_sigma = 0.4;
  a.alloc_stage_growth = 4.0;
  a.alloc_scratch_median_s = 0.35;  // Fresh microVM boot.
  a.alloc_scratch_sigma = 0.4;
  a.custom_scratch_median_s = 4.0;  // Container-image pull + boot.
  a.alloc_congestion_coeff = 0.002;
  a.code_base_s = 0.05;
  a.code_bandwidth_kb_per_s = 60000;
  a.code_congestion_coeff = 0.03;
  a.dep_base_s = 0.06;
  a.dep_bandwidth_kb_per_s = 20000;
  a.dep_congestion_coeff = 0.05;
  a.sched_base_s = 0.06;
  a.sched_sigma = 0.35;
  a.sched_queue_coeff_s = 0.004;
  a.sched_rate_coeff = 0.001;
  a.post_holiday_dep_penalty = 1.2;
  return a;
}

workload::ColdStartArchitecture GcpLikeArchitecture() {
  workload::ColdStartArchitecture a;
  a.alloc_stage1_median_s = 0.04;
  a.alloc_sigma = 0.5;
  a.alloc_stage_growth = 5.0;
  a.alloc_scratch_median_s = 1.4;
  a.alloc_scratch_sigma = 0.5;
  a.custom_scratch_median_s = 8.0;
  a.alloc_congestion_coeff = 0.004;
  a.code_base_s = 0.5;  // gVisor sandbox + runtime image fetch dominates.
  a.code_bandwidth_kb_per_s = 25000;
  a.code_congestion_coeff = 0.05;
  a.dep_base_s = 0.25;
  a.dep_bandwidth_kb_per_s = 10000;
  a.dep_congestion_coeff = 0.08;
  a.sched_base_s = 0.9;  // Instance scheduling is the reported bottleneck.
  a.sched_sigma = 0.5;
  a.sched_queue_coeff_s = 0.01;
  a.sched_rate_coeff = 0.002;
  a.post_holiday_dep_penalty = 1.3;
  return a;
}

workload::ColdStartArchitecture AzureLikeArchitecture() {
  workload::ColdStartArchitecture a;
  a.alloc_stage1_median_s = 0.06;
  a.alloc_sigma = 0.7;
  a.alloc_stage_growth = 6.0;
  a.alloc_scratch_median_s = 2.2;
  a.alloc_scratch_sigma = 0.9;  // The widest published cold-start spread.
  a.custom_scratch_median_s = 12.0;
  a.alloc_congestion_coeff = 0.006;
  a.code_base_s = 0.8;
  a.code_bandwidth_kb_per_s = 15000;
  a.code_congestion_coeff = 0.08;
  a.dep_base_s = 0.4;
  a.dep_bandwidth_kb_per_s = 8000;
  a.dep_congestion_coeff = 0.1;
  a.sched_base_s = 1.2;
  a.sched_sigma = 0.7;  // Heavy-tailed placement.
  a.sched_queue_coeff_s = 0.015;
  a.sched_rate_coeff = 0.003;
  a.post_holiday_dep_penalty = 1.4;
  return a;
}

ProviderPresetModel::ProviderPresetModel(std::string_view name,
                                         const workload::RegionProfile& profile,
                                         const workload::Calendar& calendar,
                                         const workload::ColdStartArchitecture& arch)
    : name_(name), engine_(WithArch(profile, arch), calendar) {}

ColdStartComponents ProviderPresetModel::Compute(const workload::FunctionSpec& spec,
                                                 ResourcePool& pool,
                                                 const RegionLoadState& load,
                                                 SimTime now, Rng& rng) {
  return engine_.Compute(spec, pool, load, now, rng);
}

std::unique_ptr<ColdStartModel> MakeAwsLikeModel(const workload::RegionProfile& profile,
                                                 const workload::Calendar& calendar) {
  return std::make_unique<ProviderPresetModel>("aws-like", profile, calendar,
                                               AwsLikeArchitecture());
}

std::unique_ptr<ColdStartModel> MakeGcpLikeModel(const workload::RegionProfile& profile,
                                                 const workload::Calendar& calendar) {
  return std::make_unique<ProviderPresetModel>("gcp-like", profile, calendar,
                                               GcpLikeArchitecture());
}

std::unique_ptr<ColdStartModel> MakeAzureLikeModel(const workload::RegionProfile& profile,
                                                   const workload::Calendar& calendar) {
  return std::make_unique<ProviderPresetModel>("azure-like", profile, calendar,
                                               AzureLikeArchitecture());
}

// --- Snapshot/restore decorator. ---------------------------------------------

SnapshotRestoreModel::SnapshotRestoreModel(std::unique_ptr<ColdStartModel> inner,
                                           const Options& options)
    : inner_(std::move(inner)), options_(options) {
  COLDSTART_CHECK(inner_ != nullptr);
  COLDSTART_CHECK(options_.restore_bandwidth_mb_per_s > 0);
  name_ = "snapshot(" + std::string(inner_->name()) + ")";
}

ColdStartComponents SnapshotRestoreModel::Compute(const workload::FunctionSpec& spec,
                                                  ResourcePool& pool,
                                                  const RegionLoadState& load,
                                                  SimTime now, Rng& rng) {
  // The inner model runs in full (same pool draw, same rng consumption for its
  // own terms) so the alloc/scheduling components and pool dynamics are the
  // provider's own; only the init components collapse into the restore.
  ColdStartComponents out = inner_->Compute(spec, pool, load, now, rng);
  const double restore_s =
      (options_.restore_base_s +
       options_.snapshot_memory_mb / options_.restore_bandwidth_mb_per_s) *
      Noise(rng, options_.restore_sigma);
  out.deploy_code = Dur(restore_s);
  out.deploy_dep = 0;  // The snapshot already contains initialized layers.
  ++restores_;
  return out;
}

std::unique_ptr<ColdStartModel> SnapshotRestoreModel::Clone() const {
  return std::make_unique<SnapshotRestoreModel>(inner_->Clone(), options_);
}

void SnapshotRestoreModel::SaveModelState(ByteWriter& w) const {
  inner_->SaveModelState(w);
  w.I64(restores_);
}

void SnapshotRestoreModel::RestoreModelState(ByteReader& r) {
  inner_->RestoreModelState(r);
  restores_ = r.I64();
}

std::unique_ptr<ColdStartModel> MakeColdStartModel(const workload::RegionProfile& profile,
                                                   const workload::Calendar& calendar) {
  std::unique_ptr<ColdStartModel> model;
  switch (profile.model.kind) {
    case workload::ColdStartModelKind::kYuanRong:
      model = std::make_unique<YuanRongModel>(profile, calendar);
      break;
    case workload::ColdStartModelKind::kAwsLike:
      model = MakeAwsLikeModel(profile, calendar);
      break;
    case workload::ColdStartModelKind::kGcpLike:
      model = MakeGcpLikeModel(profile, calendar);
      break;
    case workload::ColdStartModelKind::kAzureLike:
      model = MakeAzureLikeModel(profile, calendar);
      break;
  }
  COLDSTART_CHECK(model != nullptr);
  if (profile.model.snapshot_restore) {
    SnapshotRestoreModel::Options options;
    options.restore_base_s = profile.model.restore_base_s;
    options.restore_bandwidth_mb_per_s = profile.model.restore_bandwidth_mb_per_s;
    options.restore_sigma = profile.model.restore_sigma;
    options.snapshot_memory_mb = profile.model.snapshot_memory_mb;
    model = std::make_unique<SnapshotRestoreModel>(std::move(model), options);
  }
  return model;
}

}  // namespace coldstart::platform
