// Instantaneous per-region load counters.
//
// These are the shared load drivers that couple cold-start components to demand: the
// scheduler queue and registry congestion terms of the pipeline read them, which is
// what produces the Figure 11/12 correlations mechanistically instead of by sampling
// correlated noise.
#ifndef COLDSTART_PLATFORM_LOAD_STATE_H_
#define COLDSTART_PLATFORM_LOAD_STATE_H_

#include <cmath>
#include <cstdint>

#include "common/sim_time.h"

namespace coldstart::platform {

struct RegionLoadState {
  int active_cold_starts = 0;   // Cold-start pipelines currently in flight.
  int active_code_deploys = 0;  // Concurrent package downloads.
  int active_dep_deploys = 0;   // Concurrent dependency-layer fetches.
  int64_t total_cold_starts = 0;
  int64_t total_requests = 0;
  int64_t prewarm_spawns = 0;   // Pods started by policies rather than requests.
  int64_t delayed_allocations = 0;  // Requests admitted late by peak shaving.

  // Exponentially-decayed count of recent cold starts (~5-minute window). This is the
  // shared congestion driver behind the Figure 12 correlations: scheduler queues and
  // registry fabrics slow down when the regional cold-start rate rises.
  double cold_start_window = 0;
  SimTime window_updated = 0;

  static constexpr SimDuration kWindowTau = 5 * kMinute;

  void DecayWindow(SimTime now) {
    if (now > window_updated) {
      cold_start_window *= std::exp(-static_cast<double>(now - window_updated) /
                                    static_cast<double>(kWindowTau));
      window_updated = now;
    }
  }

  // Records one cold start into the window (call before computing the pipeline so the
  // event sees its own contribution to congestion).
  void ObserveColdStart(SimTime now) {
    DecayWindow(now);
    cold_start_window += 1.0;
  }
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_LOAD_STATE_H_
