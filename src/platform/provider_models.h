// Provider cold-start presets and the snapshot/restore decorator.
//
// The AWS/GCP/Azure presets reuse the 4-component engine (coldstart_pipeline.h)
// with architecture constants fitted to published cold/warm latency benchmarks
// (see the per-preset notes in provider_models.cc). They answer "what would this
// workload's cold-start picture look like on another platform?" — the same
// workload, arrival stream, and pool dynamics, priced under a different
// component-latency architecture.
//
// SnapshotRestoreModel wraps any inner model and collapses deploy-code +
// deploy-dep into a single restore term (checkpoint/restore systems page a
// pre-initialized sandbox image back in instead of re-deploying), charging a
// per-pod resident-memory surcharge that the cost ledger integrates over pod
// lifetimes into snapshot-memory MB·s.
#ifndef COLDSTART_PLATFORM_PROVIDER_MODELS_H_
#define COLDSTART_PLATFORM_PROVIDER_MODELS_H_

#include <memory>
#include <string>
#include <string_view>

#include "platform/coldstart_pipeline.h"

namespace coldstart::platform {

// Shared implementation of the provider presets: the YuanRong engine with the
// preset's ColdStartArchitecture substituted into the region profile. Pool
// dynamics (sizes, refill) stay the region's own — providers differ in latency
// architecture, not in this workload's capacity plan.
class ProviderPresetModel : public ColdStartModel {
 public:
  ProviderPresetModel(std::string_view name, const workload::RegionProfile& profile,
                      const workload::Calendar& calendar,
                      const workload::ColdStartArchitecture& arch);

  ColdStartComponents Compute(const workload::FunctionSpec& spec, ResourcePool& pool,
                              const RegionLoadState& load, SimTime now,
                              Rng& rng) override;

  std::string_view name() const override { return name_; }
  std::unique_ptr<ColdStartModel> Clone() const override {
    return std::make_unique<ProviderPresetModel>(*this);
  }
  // name_/engine_ are construction-time configuration, not mutable state.
  void SaveModelState(ByteWriter& w) const override { (void)w; }
  void RestoreModelState(ByteReader& r) override { (void)r; }

 private:
  std::string name_;
  YuanRongModel engine_;
};

// The published-benchmark architecture constants behind each preset.
workload::ColdStartArchitecture AwsLikeArchitecture();
workload::ColdStartArchitecture GcpLikeArchitecture();
workload::ColdStartArchitecture AzureLikeArchitecture();

std::unique_ptr<ColdStartModel> MakeAwsLikeModel(const workload::RegionProfile& profile,
                                                 const workload::Calendar& calendar);
std::unique_ptr<ColdStartModel> MakeGcpLikeModel(const workload::RegionProfile& profile,
                                                 const workload::Calendar& calendar);
std::unique_ptr<ColdStartModel> MakeAzureLikeModel(const workload::RegionProfile& profile,
                                                   const workload::Calendar& calendar);

// Decorator: inner model computes components as usual (including its pool draw),
// then deploy-code/deploy-dep are replaced by one snapshot-restore term. Carries
// mutable state (the restore counter) — the checkpoint hooks and lint rule are
// exercised for real here.
class SnapshotRestoreModel : public ColdStartModel {
 public:
  struct Options {
    double restore_base_s = 0.15;
    double restore_bandwidth_mb_per_s = 800;
    double restore_sigma = 0.25;
    double snapshot_memory_mb = 128.0;
  };

  SnapshotRestoreModel(std::unique_ptr<ColdStartModel> inner, const Options& options);

  ColdStartComponents Compute(const workload::FunctionSpec& spec, ResourcePool& pool,
                              const RegionLoadState& load, SimTime now,
                              Rng& rng) override;

  std::string_view name() const override { return name_; }
  std::unique_ptr<ColdStartModel> Clone() const override;
  double snapshot_memory_mb_per_pod() const override {
    return options_.snapshot_memory_mb;
  }
  void SaveModelState(ByteWriter& w) const override;
  void RestoreModelState(ByteReader& r) override;

  int64_t restores() const { return restores_; }

 private:
  std::unique_ptr<ColdStartModel> inner_;
  Options options_;
  std::string name_;  // "snapshot(<inner>)" — configuration-derived identity.
  int64_t restores_ = 0;
};

// Builds the model a region profile asks for: the kind preset, wrapped in
// SnapshotRestoreModel when `profile.model.snapshot_restore` is set. Platform
// calls this once per (region, cell).
std::unique_ptr<ColdStartModel> MakeColdStartModel(const workload::RegionProfile& profile,
                                                   const workload::Calendar& calendar);

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_PROVIDER_MODELS_H_
