// The resource-cost ledger: what the platform *pays* to serve the workload.
//
// Cold-start mitigations trade latency for resources (SPES frames prewarming as
// exactly this trade-off; snapshot restore pays resident memory). The ledger
// gives every run the resource side of that ledger line: pod-seconds in
// existence, warm-idle-seconds (capacity held but serving nothing), from-scratch
// creation counts, and snapshot-memory MB·s.
//
// Determinism contract: every accumulator is an order-invariant integer sum —
// exact microsecond counts (pod lifetimes and idle intervals are integer µs
// already) plus one 2^-20 fixed-point sum for the fractional MB·s product,
// mirroring the LogHistogram sum_fp_ idiom. Integer addition commutes, so a
// serial run, a region-sharded run, and a K=4 sub-region-sharded run produce
// bit-identical ledgers regardless of accumulation order.
#ifndef COLDSTART_PLATFORM_COST_LEDGER_H_
#define COLDSTART_PLATFORM_COST_LEDGER_H_

#include <cstdint>
#include <vector>

#include "common/byte_serde.h"
#include "trace/records.h"

namespace coldstart::platform {

class ResourceCostLedger {
 public:
  ResourceCostLedger() = default;
  explicit ResourceCostLedger(size_t num_regions) : slots_(num_regions) {}

  size_t num_regions() const { return slots_.size(); }

  // Accounts one pod at death: lifetime (cold-start begin → death), the warm-idle
  // share of it, and the model's per-pod snapshot surcharge. The MB·s product is
  // quantized per pod (deterministically) before summing.
  void AddPodDeath(trace::RegionId region, int64_t lifetime_us, int64_t warm_idle_us,
                   double snapshot_mb);

  // Accounts one from-scratch pod creation (pool exhausted or custom image).
  void AddScratchCreation(trace::RegionId region);

  // Shard merge: plain integer addition per region, commutative and exact.
  void MergeFrom(const ResourceCostLedger& other);

  trace::RegionCostRecord region_record(trace::RegionId region) const;
  trace::RegionCostRecord TotalRecord() const;

  // Checkpoint serde: each 128-bit sum travels as two U64 words (lo, hi).
  void SaveState(ByteWriter& w) const;
  void RestoreState(ByteReader& r);

 private:
  struct Slot {
    __int128 pod_us = 0;
    __int128 warm_idle_us = 0;
    __int128 snapshot_mb_us_fp = 0;
    int64_t scratch_creations = 0;
  };
  std::vector<Slot> slots_;
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_COST_LEDGER_H_
