#include "platform/coldstart_pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::platform {

namespace {

// LogNormal multiplicative noise with median 1 and the given sigma.
double Noise(Rng& rng, double sigma) { return std::exp(sigma * rng.NextGaussian()); }

// Seconds -> SimDuration with a 1 µs floor (component resolutions in Table 1 are µs,
// and a measured component is never exactly zero when the step executes).
SimDuration Dur(double seconds) {
  return std::max<SimDuration>(1, FromSeconds(seconds));
}

}  // namespace

YuanRongModel::YuanRongModel(const workload::RegionProfile& profile,
                             const workload::Calendar& calendar)
    : profile_(profile), calendar_(calendar) {}

double YuanRongModel::PostHolidayDepMultiplier(SimTime now) const {
  const int64_t day = DayIndex(now);
  const int64_t since = calendar_.DaysSinceHolidayEnd(day);
  if (since < 0) {
    return 1.0;
  }
  const double extra = (profile_.arch.post_holiday_dep_penalty - 1.0) *
                       std::exp(-static_cast<double>(since) / 1.5);
  return 1.0 + extra;
}

ColdStartComponents YuanRongModel::Compute(const workload::FunctionSpec& spec,
                                           ResourcePool& pool,
                                           const RegionLoadState& load, SimTime now,
                                           Rng& rng) {
  const auto& arch = profile_.arch;
  const workload::RuntimeTraits& traits = workload::TraitsOf(spec.runtime);
  ColdStartComponents out;

  // Regional congestion factor: decayed cold starts in the last ~5 minutes, with
  // saturation (a congested fabric degrades sublinearly, and this caps the
  // congestion -> overlap -> congestion feedback). The caller (Platform) refreshes
  // the window before invoking Compute.
  const double raw_window = load.cold_start_window;
  const double rate_window = raw_window / (1.0 + raw_window / arch.rate_saturation);
  // In-flight pipeline counts saturate too: queueing capacity is finite, and an
  // unbounded linear term would let overlap feed back into itself without limit.
  const double active_sat = static_cast<double>(load.active_cold_starts) /
                            (1.0 + static_cast<double>(load.active_cold_starts) / 60.0);
  const double active_code_sat = static_cast<double>(load.active_code_deploys) /
                                 (1.0 + static_cast<double>(load.active_code_deploys) / 60.0);
  const double active_dep_sat = static_cast<double>(load.active_dep_deploys) /
                                (1.0 + static_cast<double>(load.active_dep_deploys) / 60.0);

  // --- Pod allocation. ---
  double alloc_s = 0;
  if (!traits.pool_backed) {
    // Custom images have no reserved pool: the pod is built from scratch and the
    // container image pulled every time (the slowest allocation path, §4.4).
    out.pool_stage = 3;
    out.from_scratch = true;
    alloc_s = arch.custom_scratch_median_s * Noise(rng, arch.alloc_scratch_sigma);
  } else {
    const PoolAcquisition acq = pool.Acquire(now, rng);
    out.pool_stage = acq.stage;
    out.from_scratch = acq.from_scratch;
    if (acq.from_scratch) {
      alloc_s = arch.alloc_scratch_median_s * Noise(rng, arch.alloc_scratch_sigma);
    } else {
      const double median = arch.alloc_stage1_median_s *
                            std::pow(arch.alloc_stage_growth, acq.stage - 1);
      alloc_s = median * Noise(rng, arch.alloc_sigma);
    }
  }
  if (traits.alloc_extra_s > 0) {
    // http runtimes start an HTTP server inside the pod before it can serve.
    alloc_s += traits.alloc_extra_s * Noise(rng, 0.25);
  }
  alloc_s += arch.alloc_congestion_coeff * active_sat * rng.Uniform(0.5, 1.5);
  alloc_s *= 1.0 + arch.alloc_rate_coeff * rate_window;
  out.pod_alloc = Dur(alloc_s);

  // --- Code deployment. ---
  const double code_congestion = (1.0 + arch.code_congestion_coeff * active_code_sat) *
                                 (1.0 + arch.code_rate_coeff * rate_window);
  const double code_s = (arch.code_base_s + static_cast<double>(spec.code_size_kb) /
                                                arch.code_bandwidth_kb_per_s) *
                        traits.code_factor * code_congestion * Noise(rng, 0.30);
  out.deploy_code = Dur(code_s);

  // --- Dependency deployment (exactly zero without layers; excluded from Fig. 13d). ---
  if (spec.dep_size_kb > 0) {
    const double dep_congestion = (1.0 + arch.dep_congestion_coeff * active_dep_sat) *
                                  (1.0 + arch.dep_rate_coeff * rate_window);
    const double dep_s = (arch.dep_base_s + static_cast<double>(spec.dep_size_kb) /
                                                arch.dep_bandwidth_kb_per_s) *
                         traits.dep_factor * dep_congestion *
                         PostHolidayDepMultiplier(now) * Noise(rng, 0.35);
    out.deploy_dep = Dur(dep_s);
  }

  // --- Scheduling. ---
  const double sched_s =
      arch.sched_base_s * traits.sched_factor * Noise(rng, arch.sched_sigma) *
          (1.0 + arch.sched_rate_coeff * rate_window) +
      arch.sched_queue_coeff_s * active_sat * rng.Uniform(0.7, 1.3);
  out.scheduling = Dur(sched_s);

  return out;
}

}  // namespace coldstart::platform
