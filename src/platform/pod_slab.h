// Chunked slab allocator with generation-checked handles.
//
// The platform keeps every alive pod in one of these instead of an
// unordered_map<PodId, unique_ptr<Pod>>: completion and keep-alive events carry a
// SlabHandle, so resolving a pod is two shifts and a generation compare instead of
// a hash lookup, and allocation reuses slots from a dense LIFO freelist instead of
// hitting the heap per pod. Chunks are stable — a T* stays valid for the slot's
// lifetime — which lets per-function pod lists hold raw pointers.
//
// Generations make stale handles detectable: Free bumps the slot's generation, so
// a handle captured by an in-flight event resolves to nullptr once the slot is
// freed (or recycled), replacing the old map.find(id) == end() liveness test.
//
// Determinism audit (lint:unordered-iter): no hash containers here — slots are
// indexed by handle and walked in slot order, and SaveSlabStructure serializes
// slots by index, so nothing in this layer depends on hash-iteration order.
#ifndef COLDSTART_PLATFORM_POD_SLAB_H_
#define COLDSTART_PLATFORM_POD_SLAB_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace coldstart::platform {

struct SlabHandle {
  static constexpr uint32_t kInvalidIndex = 0xffffffffu;
  uint32_t index = kInvalidIndex;
  uint32_t gen = 0;
};

template <typename T>
class Slab {
 public:
  // Returns a value-initialized slot and the handle that resolves to it.
  // Determinism note: slots are reused in LIFO order, so allocation order is a
  // pure function of the alloc/free history.
  std::pair<T*, SlabHandle> Allocate() {
    if (free_.empty()) {
      const uint32_t base = capacity_;
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      capacity_ += kChunkSize;
      // Reversed so the new chunk's slots are handed out in ascending order.
      for (uint32_t i = 0; i < kChunkSize; ++i) {
        free_.push_back(base + kChunkSize - 1 - i);
      }
    }
    const uint32_t index = free_.back();
    free_.pop_back();
    Slot& s = slot(index);
    s.value = T{};
    s.alive = true;
    ++alive_;
    return {&s.value, SlabHandle{index, s.gen}};
  }

  // Frees the slot and invalidates every outstanding handle to it.
  void Free(SlabHandle h) {
    COLDSTART_CHECK_LT(h.index, capacity_);
    Slot& s = slot(h.index);
    COLDSTART_CHECK(s.alive);
    COLDSTART_CHECK_EQ(s.gen, h.gen);
    s.alive = false;
    ++s.gen;
    --alive_;
    free_.push_back(h.index);
  }

  // The live object for `h`, or nullptr when the slot was freed or recycled.
  T* Resolve(SlabHandle h) {
    if (h.index >= capacity_) {
      return nullptr;
    }
    Slot& s = slot(h.index);
    return (s.alive && s.gen == h.gen) ? &s.value : nullptr;
  }

  size_t alive_count() const { return alive_; }
  size_t capacity() const { return capacity_; }

  // Visits every alive slot in index order (deterministic; used for final flush).
  template <typename Fn>
  void ForEachAlive(Fn&& fn) {
    for (uint32_t i = 0; i < capacity_; ++i) {
      Slot& s = slot(i);
      if (s.alive) {
        fn(s.value);
      }
    }
  }

  // --- Checkpoint support (src/checkpoint/) ---------------------------------
  // A slab is serialized structurally: capacity, the freelist in LIFO order,
  // and each slot's (generation, alive) pair, plus the alive payloads. That is
  // exactly the state that makes (a) every outstanding SlabHandle resolve the
  // same way after restore and (b) future Allocate calls hand out the same
  // slots in the same order as the uninterrupted run.
  const std::vector<uint32_t>& free_list() const { return free_; }
  uint32_t slot_generation(uint32_t index) const { return slot(index).gen; }
  bool slot_alive(uint32_t index) const { return slot(index).alive; }
  const T& slot_value(uint32_t index) const {
    COLDSTART_CHECK(slot(index).alive);
    return slot(index).value;
  }
  T& slot_value(uint32_t index) {
    COLDSTART_CHECK(slot(index).alive);
    return slot(index).value;
  }

  // Rebuilds an empty slab's structure: allocates `capacity` slots, installs
  // the freelist and per-slot generations/liveness. Alive slots come back
  // value-initialized; the caller fills them via slot_value().
  void RestoreStructure(uint32_t capacity, std::vector<uint32_t> free_list,
                        const std::vector<uint32_t>& generations,
                        const std::vector<uint8_t>& alive) {
    COLDSTART_CHECK_EQ(capacity_, 0u);
    COLDSTART_CHECK_EQ(capacity % kChunkSize, 0u);
    COLDSTART_CHECK_EQ(generations.size(), capacity);
    COLDSTART_CHECK_EQ(alive.size(), capacity);
    while (capacity_ < capacity) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      capacity_ += kChunkSize;
    }
    for (uint32_t i = 0; i < capacity_; ++i) {
      Slot& s = slot(i);
      s.gen = generations[i];
      s.alive = alive[i] != 0;
      if (s.alive) {
        ++alive_;
      }
    }
    free_ = std::move(free_list);
    COLDSTART_CHECK_EQ(free_.size() + alive_, capacity_);
  }
  // ---------------------------------------------------------------------------

 private:
  static constexpr uint32_t kChunkBits = 9;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  struct Slot {
    T value{};
    uint32_t gen = 0;
    bool alive = false;
  };

  Slot& slot(uint32_t index) {
    return chunks_[index >> kChunkBits][index & (kChunkSize - 1)];
  }
  const Slot& slot(uint32_t index) const {
    return chunks_[index >> kChunkBits][index & (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;  // Stable storage.
  std::vector<uint32_t> free_;                   // Dense LIFO freelist.
  uint32_t capacity_ = 0;
  size_t alive_ = 0;
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_POD_SLAB_H_
