#include "platform/resource_pool.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace coldstart::platform {

ResourcePool::ResourcePool(int target, double refill_per_min)
    : free_(target), target_(target), refill_per_min_(refill_per_min) {
  COLDSTART_CHECK_GE(target, 0);
  COLDSTART_CHECK_GE(refill_per_min, 0.0);
}

void ResourcePool::Refill(SimTime now) {
  if (now <= last_refill_) {
    return;
  }
  refill_credit_ += refill_per_min_ * static_cast<double>(now - last_refill_) /
                    static_cast<double>(kMinute);
  last_refill_ = now;
  const int whole = static_cast<int>(refill_credit_);
  if (whole > 0 && free_ < target_) {
    const int add = std::min(whole, target_ - free_);
    free_ += add;
    refill_credit_ -= add;
  }
  // Credit cannot bank more than one target's worth (provisioner capacity bound).
  refill_credit_ = std::min(refill_credit_, static_cast<double>(std::max(target_, 1)));
}

int ResourcePool::free_pods(SimTime now) {
  Refill(now);
  return free_;
}

PoolAcquisition ResourcePool::Acquire(SimTime now, Rng& rng) {
  Refill(now);
  PoolAcquisition acq;
  if (free_ <= 0 || target_ <= 0) {
    acq.stage = 3;
    acq.from_scratch = true;
    ++scratch_count_;
    return acq;
  }
  const double occ = static_cast<double>(free_) / static_cast<double>(target_);
  // Occupancy-driven search depth: a well-stocked pool answers locally; a nearly-empty
  // one forces the scheduler to widen the search across clusters and stages.
  if (occ >= 0.5) {
    acq.stage = 1;
  } else if (occ >= 0.15) {
    acq.stage = rng.NextBool(0.8) ? 1 : 2;
  } else {
    acq.stage = rng.NextBool(0.65) ? 2 : 3;
  }
  --free_;
  return acq;
}

void ResourcePool::Release(SimTime now) {
  Refill(now);
  // Deleted pods recycle into the pool, but the pool never overfills past target plus
  // a small surge margin (the provisioner reclaims the excess).
  const int cap = target_ + std::max(1, target_ / 4);
  if (free_ < cap) {
    ++free_;
  }
}

void ResourcePool::SetTarget(int target) {
  COLDSTART_CHECK_GE(target, 0);
  target_ = target;
}

}  // namespace coldstart::platform
