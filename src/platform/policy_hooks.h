// Extension points for scheduling/mitigation policies (§5 of the paper).
//
// The baseline platform implements the production behaviour described in §2.2 (fixed
// 60 s keep-alive, home-region execution, no prewarming, no admission control).
// Policies override these hooks; concrete implementations live in src/policy/.
#ifndef COLDSTART_PLATFORM_POLICY_HOOKS_H_
#define COLDSTART_PLATFORM_POLICY_HOOKS_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/sim_time.h"
#include "platform/load_state.h"
#include "workload/function_model.h"

namespace coldstart::platform {

class Platform;

class PlatformPolicy {
 public:
  virtual ~PlatformPolicy() = default;

  // --- Parallel-execution traits (core::Experiment's region sharding). ---
  // True when the policy's decisions for a function depend only on that function's
  // home region: no cross-region observation or routing. Region-local policies can
  // run one independent instance per region shard; CrossRegionPolicy is the one
  // built-in policy that must return false.
  virtual bool is_region_local() const { return true; }

  // Stronger locality for sub-region sharding: true when the policy's decisions
  // for a function depend only on that function's own observations (arrivals,
  // cold starts, workflow edges — all of which stay inside the function's
  // capacity cell), never on region-level capacity-coupled state (pools, the
  // region load aggregate, a region-wide budget). Function-local policies can
  // run one independent instance per capacity-cell shard; everything else pins
  // the region to a single cell. Default false: region-level coupling is the
  // common case (ProfilePrewarm's global budget, PeakShaving's load window,
  // PoolPrediction's pool targets), so opting in is an explicit claim.
  virtual bool is_function_local() const { return false; }

  // A fresh instance with this policy's configuration (but none of its learned
  // state) for one shard of a parallel run (a region, or a capacity-cell group
  // when is_function_local()). Returning nullptr (the default) declares the
  // policy non-shardable and forces the serial path. Implementations must be
  // safe to call before the run starts.
  virtual std::unique_ptr<PlatformPolicy> CloneForShard() const { return nullptr; }

  // Folds a finished shard's observable statistics (prewarm/delay counters and the
  // like) back into this prototype after a sharded run, so `policy.xxx_issued()`
  // reads the same totals whether the run was sharded or serial. `shard` is always
  // an instance this policy's CloneForShard() produced. Learned state stays with
  // the shard — it is per-region by construction and dies with the run.
  virtual void AbsorbShardStats(const PlatformPolicy& shard) { (void)shard; }

  // Called once when the platform is constructed; policies keep the pointer to spawn
  // prewarmed pods or adjust pool targets.
  virtual void OnAttach(Platform& platform) { (void)platform; }

  // Admission delay for an *asynchronously triggered* request (peak shaving). The
  // platform asks once per request; returning 0 admits immediately. Synchronous
  // triggers are never delayed.
  virtual SimDuration AdmissionDelay(const workload::FunctionSpec& spec, SimTime now,
                                     const RegionLoadState& load) {
    (void)spec;
    (void)now;
    (void)load;
    return 0;
  }

  // Keep-alive granted to a pod of `spec` going idle at `now`. The production default
  // is one minute (§2.2).
  virtual SimDuration KeepAliveFor(const workload::FunctionSpec& spec, SimTime now) {
    (void)spec;
    (void)now;
    return kMinute;
  }

  // Region in which a needed cold start should run (cross-region scheduling). The
  // platform adds the inter-region RTT to scheduling time when this differs from the
  // function's home region.
  virtual trace::RegionId RouteColdStart(const workload::FunctionSpec& spec, SimTime now) {
    (void)now;
    return spec.region;
  }

  // Observation hooks (for learning policies).
  virtual void OnArrival(const workload::FunctionSpec& spec, SimTime now) {
    (void)spec;
    (void)now;
  }
  virtual void OnColdStart(const workload::FunctionSpec& spec, SimTime now,
                           SimDuration total) {
    (void)spec;
    (void)now;
    (void)total;
  }
  // Fired when a request of a function with workflow children starts executing; chain
  // predictors prewarm the children here.
  virtual void OnParentRequestStart(const workload::FunctionSpec& parent, SimTime now) {
    (void)parent;
    (void)now;
  }

  // Control-loop tick, once per simulated minute.
  virtual void OnMinuteTick(SimTime now) { (void)now; }

  // --- Checkpoint traits (src/checkpoint/). ---
  // Serializes every piece of learned state into `out` so a resumed run
  // continues bit-identically. Returning false (the default) declares the
  // policy non-checkpointable: a checkpointed Run then fails loudly up front
  // instead of writing checkpoints that silently drop policy state.
  //
  // Implementer contract (statically checked: coldstart_lint's policy-hooks
  // rule flags stateful subclasses missing these overrides, and its
  // unordered-iter rule polices (a)): (a) serialize hash-map contents in a
  // sorted order — iteration order must never leak into the blob; (b) floating-point state
  // travels by bit pattern (common/byte_serde.h); (c) a checkpointable policy
  // must not schedule its own simulator closures — pending closures cannot be
  // captured (TimerAwarePrewarmPolicy stays non-checkpointable for exactly that
  // reason; the platform-managed minute tick and prewarm/keep-alive events are
  // bookkept by the platform itself and are fine).
  virtual bool SavePolicyState(std::string* out) const {
    (void)out;
    return false;
  }
  // Restores state written by SavePolicyState onto a freshly constructed,
  // identically configured instance (after OnAttach). Returns false when
  // unsupported; must accept exactly what SavePolicyState produces.
  virtual bool RestorePolicyState(std::string_view blob) {
    (void)blob;
    return false;
  }
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_POLICY_HOOKS_H_
