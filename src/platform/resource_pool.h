// Pools of inactive pods, one per (region, CPU-memory configuration).
//
// Cold starts draw pods from the pool via a staged search (§4.2): the search starts in
// the local cluster's pool and expands outward when pods are scarce; if the pool is
// exhausted the pod is created from scratch. Stage depth is driven by live occupancy,
// so large configurations (small pools) expand more often — the mechanism behind the
// multimodal allocation times and the small/large gap of Figure 13.
//
// Refill is a lazy token bucket: a provisioner adds pods toward the target at a fixed
// rate, computed on demand so no periodic simulator events are needed.
#ifndef COLDSTART_PLATFORM_RESOURCE_POOL_H_
#define COLDSTART_PLATFORM_RESOURCE_POOL_H_

#include "common/rng.h"
#include "common/sim_time.h"

namespace coldstart::platform {

struct PoolAcquisition {
  int stage = 1;             // 1 = local hit, 2 = expanded, 3 = deep region-wide search.
  bool from_scratch = false; // Pool exhausted (or runtime not pool-backed).
};

class ResourcePool {
 public:
  ResourcePool(int target, double refill_per_min);

  // Draws one pod at `now`, returning how deep the search had to go.
  PoolAcquisition Acquire(SimTime now, Rng& rng);

  // Recycles capacity when a pod of this configuration is deleted.
  void Release(SimTime now);

  // Idle pods currently available (after lazy refill).
  int free_pods(SimTime now);

  int target() const { return target_; }
  // Predictive pool-sizing policies adjust the target; free pods above the new target
  // drain through Acquire naturally.
  void SetTarget(int target);

  int64_t scratch_count() const { return scratch_count_; }

  // --- Checkpoint support: the mutable state. Construction parameters
  // (refill_per_min_) are re-derived from the region profile on restore;
  // target_ is saved because pool-sizing policies mutate it via SetTarget.
  struct CheckpointState {
    int free = 0;
    int target = 0;
    double refill_credit = 0;
    SimTime last_refill = 0;
    int64_t scratch_count = 0;
  };
  CheckpointState checkpoint_state() const {
    return {free_, target_, refill_credit_, last_refill_, scratch_count_};
  }
  void restore_checkpoint_state(const CheckpointState& s) {
    free_ = s.free;
    target_ = s.target;
    refill_credit_ = s.refill_credit;
    last_refill_ = s.last_refill;
    scratch_count_ = s.scratch_count;
  }

 private:
  void Refill(SimTime now);

  int free_;
  int target_;
  double refill_per_min_;
  double refill_credit_ = 0;
  SimTime last_refill_ = 0;
  int64_t scratch_count_ = 0;
};

}  // namespace coldstart::platform

#endif  // COLDSTART_PLATFORM_RESOURCE_POOL_H_
