#include "platform/cost_ledger.h"

#include "common/check.h"

namespace coldstart::platform {

namespace {

// 2^20 fixed point, the LogHistogram sum idiom: quantize once per sample, sum in
// 128-bit integers so accumulation order cannot perturb the result.
constexpr double kFixedScale = 1048576.0;

__int128 ToFixed(double value) { return static_cast<__int128>(value * kFixedScale); }

void WriteI128(ByteWriter& w, __int128 v) {
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(v)));
  w.U64(static_cast<uint64_t>(static_cast<unsigned __int128>(v) >> 64));
}

__int128 ReadI128(ByteReader& r) {
  const uint64_t lo = r.U64();
  const uint64_t hi = r.U64();
  return static_cast<__int128>((static_cast<unsigned __int128>(hi) << 64) |
                               static_cast<unsigned __int128>(lo));
}

}  // namespace

void ResourceCostLedger::AddPodDeath(trace::RegionId region, int64_t lifetime_us,
                                     int64_t warm_idle_us, double snapshot_mb) {
  COLDSTART_CHECK(region < slots_.size());
  COLDSTART_CHECK(lifetime_us >= 0);
  COLDSTART_CHECK(warm_idle_us >= 0);
  Slot& slot = slots_[region];
  slot.pod_us += lifetime_us;
  slot.warm_idle_us += warm_idle_us;
  if (snapshot_mb > 0) {
    // MB × µs quantized per pod: the per-pod value is a pure function of the pod,
    // so every geometry quantizes identically before the commutative sum.
    slot.snapshot_mb_us_fp += ToFixed(snapshot_mb * static_cast<double>(lifetime_us));
  }
}

void ResourceCostLedger::AddScratchCreation(trace::RegionId region) {
  COLDSTART_CHECK(region < slots_.size());
  ++slots_[region].scratch_creations;
}

void ResourceCostLedger::MergeFrom(const ResourceCostLedger& other) {
  if (slots_.size() < other.slots_.size()) {
    slots_.resize(other.slots_.size());
  }
  for (size_t i = 0; i < other.slots_.size(); ++i) {
    slots_[i].pod_us += other.slots_[i].pod_us;
    slots_[i].warm_idle_us += other.slots_[i].warm_idle_us;
    slots_[i].snapshot_mb_us_fp += other.slots_[i].snapshot_mb_us_fp;
    slots_[i].scratch_creations += other.slots_[i].scratch_creations;
  }
}

trace::RegionCostRecord ResourceCostLedger::region_record(trace::RegionId region) const {
  COLDSTART_CHECK(region < slots_.size());
  const Slot& slot = slots_[region];
  trace::RegionCostRecord out;
  out.region = region;
  out.pod_us = slot.pod_us;
  out.warm_idle_us = slot.warm_idle_us;
  out.snapshot_mb_us_fp = slot.snapshot_mb_us_fp;
  out.scratch_creations = slot.scratch_creations;
  return out;
}

trace::RegionCostRecord ResourceCostLedger::TotalRecord() const {
  trace::RegionCostRecord out;
  for (const Slot& slot : slots_) {
    out.pod_us += slot.pod_us;
    out.warm_idle_us += slot.warm_idle_us;
    out.snapshot_mb_us_fp += slot.snapshot_mb_us_fp;
    out.scratch_creations += slot.scratch_creations;
  }
  return out;
}

void ResourceCostLedger::SaveState(ByteWriter& w) const {
  w.U64(slots_.size());
  for (const Slot& slot : slots_) {
    WriteI128(w, slot.pod_us);
    WriteI128(w, slot.warm_idle_us);
    WriteI128(w, slot.snapshot_mb_us_fp);
    w.I64(slot.scratch_creations);
  }
}

void ResourceCostLedger::RestoreState(ByteReader& r) {
  const uint64_t n = r.U64();
  slots_.assign(n, Slot{});
  for (Slot& slot : slots_) {
    slot.pod_us = ReadI128(r);
    slot.warm_idle_us = ReadI128(r);
    slot.snapshot_mb_us_fp = ReadI128(r);
    slot.scratch_creations = r.I64();
  }
}

}  // namespace coldstart::platform
